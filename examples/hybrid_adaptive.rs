//! The paper's future-work proposal in action: an objective-driven hybrid.
//!
//! ```sh
//! cargo run --release --example hybrid_adaptive
//! ```
//!
//! Section VII proposes "a hybrid scheduling algorithm in which the
//! conditions of the system and environment against pre-selected
//! requirements … select a specific behavior". This example declares each
//! objective in turn and shows the hybrid matching (or beating) the best
//! specialist on that objective, while the specialists lose on the axes
//! they ignore.

use biosched::prelude::*;

fn main() {
    let scenario = HeterogeneousScenario {
        vm_count: 30,
        cloudlet_count: 300,
        datacenter_count: 4,
        seed: 11,
    }
    .build();
    let problem = scenario.problem();
    println!(
        "scenario: {} heterogeneous VMs, {} cloudlets, {} priced datacenters\n",
        problem.vm_count(),
        problem.cloudlet_count(),
        problem.datacenters.len()
    );

    let mut table = Table::new(vec![
        "scheduler",
        "objective",
        "makespan (ms)",
        "imbalance",
        "cost",
    ]);

    // The three hybrids, one per declared objective.
    for objective in Objective::ALL {
        let mut hybrid = Hybrid::new(objective, 11);
        let assignment = hybrid.schedule(&problem);
        let outcome = scenario.simulate(assignment).expect("feasible scenario");
        table.push_row(vec![
            "Hybrid".to_string(),
            objective.label().to_string(),
            fmt_value(outcome.simulation_time_ms().unwrap_or(0.0)),
            fmt_value(outcome.time_imbalance().unwrap_or(0.0)),
            fmt_value(outcome.total_cost()),
        ]);
    }

    // The fixed-behavior specialists for reference.
    for kind in AlgorithmKind::PAPER_SET {
        let assignment = kind.build(11).schedule(&problem);
        let outcome = scenario.simulate(assignment).expect("feasible scenario");
        table.push_row(vec![
            kind.label().to_string(),
            "-".to_string(),
            fmt_value(outcome.simulation_time_ms().unwrap_or(0.0)),
            fmt_value(outcome.time_imbalance().unwrap_or(0.0)),
            fmt_value(outcome.total_cost()),
        ]);
    }
    println!("{}", table.render());

    // On a homogeneous problem the hybrid recognizes that no advanced
    // decision making is needed and falls back to the optimal cyclic
    // binder (Section VI-D-1's conclusion).
    let homogeneous = HomogeneousScenario {
        vm_count: 16,
        cloudlet_count: 160,
    }
    .build();
    let hp = homogeneous.problem();
    let hybrid_plan = Hybrid::new(Objective::Makespan, 11).schedule(&hp);
    let cyclic_plan = RoundRobin::new().schedule(&hp);
    assert_eq!(hybrid_plan, cyclic_plan);
    println!("homogeneous fast path: hybrid == cyclic Base Test ✓");
}
