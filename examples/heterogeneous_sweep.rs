//! Mini reproduction of the paper's Fig. 6 on your terminal.
//!
//! ```sh
//! cargo run --release --example heterogeneous_sweep
//! ```
//!
//! Sweeps the VM count across a compressed Fig. 6 x-axis, collects all
//! four metrics for the four studied algorithms, and renders ASCII charts.
//! For the full-resolution sweep use the `repro` binary:
//! `cargo run --release -p biosched-bench --bin repro -- fig6`.

use biosched::prelude::*;

fn main() {
    let points = [25usize, 75, 150, 300];
    let cloudlets = 400;
    println!("sweeping {points:?} VMs × {cloudlets} cloudlets (seed 42)…\n");
    let results = sweep(&points, &AlgorithmKind::PAPER_SET, 42, |vms| {
        HeterogeneousScenario {
            vm_count: vms,
            cloudlet_count: cloudlets,
            datacenter_count: 4,
            seed: 42,
        }
        .build()
    });

    type Extractor = fn(&PointResult) -> f64;
    let extractors: [(&str, &str, Extractor); 3] = [
        ("Simulation Time (cf. Fig 6a)", "makespan ms", |r| {
            r.simulation_time_ms
        }),
        ("Degree of Time Imbalance (cf. Fig 6c)", "imbalance", |r| {
            r.imbalance
        }),
        ("Processing Cost (cf. Fig 6d)", "cost", |r| r.total_cost),
    ];

    for (title, y_label, extract) in extractors {
        let mut fig = FigureSeries::new(
            title,
            "VMs",
            y_label,
            points.iter().map(|p| *p as f64).collect(),
        );
        for (ai, alg) in AlgorithmKind::PAPER_SET.iter().enumerate() {
            fig.push_series(
                alg.label(),
                results.iter().map(|row| extract(&row[ai])).collect(),
            );
        }
        println!("{}", fig.render_ascii(64, 14));
    }

    // The headline comparison at the largest point.
    let last = results.last().expect("non-empty sweep");
    let best_makespan = last
        .iter()
        .min_by(|a, b| a.simulation_time_ms.total_cmp(&b.simulation_time_ms))
        .expect("non-empty row");
    let best_cost = last
        .iter()
        .min_by(|a, b| a.total_cost.total_cmp(&b.total_cost))
        .expect("non-empty row");
    println!(
        "at {} VMs: best makespan = {} ({:.0} ms), best cost = {} ({:.0})",
        last[0].vm_count,
        best_makespan.algorithm,
        best_makespan.simulation_time_ms,
        best_cost.algorithm,
        best_cost.total_cost,
    );
}
