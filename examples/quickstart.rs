//! Quickstart: schedule one workload with every algorithm and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's heterogeneous scenario at a small scale, runs the
//! four studied schedulers plus the greedy baselines, simulates each
//! assignment, and prints the paper's four metrics side by side.

use biosched::prelude::*;
use std::time::Instant;

fn main() {
    // The paper's Fig. 6 regime: cloudlets ≈ 2× VMs (Section VI-D-2).
    let scenario = HeterogeneousScenario {
        vm_count: 150,
        cloudlet_count: 300,
        datacenter_count: 4,
        seed: 42,
    }
    .build();
    let problem = scenario.problem();
    println!(
        "scenario: {} VMs ({:.0}–{:.0} MIPS), {} cloudlets, {} datacenters\n",
        problem.vm_count(),
        problem
            .vms
            .iter()
            .map(|v| v.mips)
            .fold(f64::INFINITY, f64::min),
        problem.vms.iter().map(|v| v.mips).fold(0.0, f64::max),
        problem.cloudlet_count(),
        problem.datacenters.len(),
    );

    let algorithms = [
        AlgorithmKind::BaseTest,
        AlgorithmKind::AntColony,
        AlgorithmKind::HoneyBee,
        AlgorithmKind::Rbs,
        AlgorithmKind::MinMin,
        AlgorithmKind::MaxMin,
        AlgorithmKind::Pso,
        AlgorithmKind::Ga,
    ];

    let mut table = Table::new(vec![
        "algorithm",
        "sched (ms)",
        "makespan (ms)",
        "imbalance",
        "cost",
    ]);
    for kind in algorithms {
        let mut scheduler = kind.build(42);
        let started = Instant::now();
        let assignment = scheduler.schedule(&problem);
        let sched_ms = started.elapsed().as_secs_f64() * 1_000.0;
        let outcome = scenario.simulate(assignment).expect("feasible scenario");
        assert_eq!(outcome.finished_count(), problem.cloudlet_count());
        table.push_row(vec![
            kind.label().to_string(),
            fmt_value(sched_ms),
            fmt_value(outcome.simulation_time_ms().unwrap_or(0.0)),
            fmt_value(outcome.time_imbalance().unwrap_or(0.0)),
            fmt_value(outcome.total_cost()),
        ]);
    }
    println!("{}", table.render());
    println!("(expect: AntColony lowest makespan, HoneyBee lowest cost,\n Base Test the fastest decision — the paper's headline result)");
}
