//! Stressing the schedulers beyond the paper's uniform workloads.
//!
//! ```sh
//! cargo run --release --example stress_extremes
//! ```
//!
//! The paper's motivation is behaviour "against extreme load and
//! large-scale environment conditions". This example pushes the three
//! bio-inspired schedulers through workloads the uniform Tables V/VI never
//! produce: heavy-tailed task lengths (elephants and mice), and a skewed
//! fleet where a handful of fast VMs hide among slow ones.

use biosched::prelude::*;
use biosched::workload::traces;
use simcloud::cloudlet_sched::SchedulerKind;
use simcloud::ids::DatacenterId;

fn run_case(name: &str, scenario: &Scenario) {
    let problem = scenario.problem();
    println!("── {name} ──");
    let mut table = Table::new(vec![
        "algorithm",
        "makespan (ms)",
        "imbalance",
        "p99 turnaround",
    ]);
    for kind in AlgorithmKind::PAPER_SET {
        let assignment = kind.build(5).schedule(&problem);
        let outcome = scenario.simulate(assignment).expect("feasible scenario");
        assert_eq!(outcome.finished_count(), problem.cloudlet_count());
        // p99 turnaround: tail latency under the assignment.
        let mut turnarounds: Vec<f64> = outcome
            .records
            .iter()
            .filter_map(|r| Some(r.finish?.saturating_sub(r.submit?).as_millis()))
            .collect();
        turnarounds.sort_by(f64::total_cmp);
        let p99 = turnarounds[(turnarounds.len() as f64 * 0.99) as usize - 1];
        table.push_row(vec![
            kind.label().to_string(),
            fmt_value(outcome.simulation_time_ms().unwrap_or(0.0)),
            fmt_value(outcome.time_imbalance().unwrap_or(0.0)),
            fmt_value(p99),
        ]);
    }
    println!("{}", table.render());
}

fn main() {
    // Case 1: heavy-tailed lengths on a uniform fleet.
    let heavy_tail = Scenario {
        vms: vec![VmSpec::homogeneous_default(); 32],
        cloudlets: traces::pareto_cloudlets(600, 100.0, 50_000.0, 1.1, 3),
        datacenters: vec![DatacenterSetup {
            cost: CostModel::table_vii_midpoint(),
        }],
        vm_placement: vec![DatacenterId(0); 32],
        vm_scheduler: SchedulerKind::TimeShared,
        arrivals: None,
        host_failures: Vec::new(),
        dependencies: None,
        faults: None,
        recovery: None,
    };
    run_case("heavy-tailed lengths (bounded Pareto, α=1.1)", &heavy_tail);

    // Case 2: skewed fleet — 4 fast VMs among 28 slow ones.
    let skewed = Scenario {
        vms: traces::skewed_fleet(32, 4, 4_000.0, 500.0),
        cloudlets: traces::bimodal_cloudlets(600, 1_000.0, 15_000.0, 0.2, 4),
        datacenters: vec![DatacenterSetup {
            cost: CostModel::table_vii_midpoint(),
        }],
        vm_placement: vec![DatacenterId(0); 32],
        vm_scheduler: SchedulerKind::TimeShared,
        arrivals: None,
        host_failures: Vec::new(),
        dependencies: None,
        faults: None,
        recovery: None,
    };
    run_case("skewed fleet (4 fast / 28 slow) + bimodal lengths", &skewed);

    // Case 3: bursty flash crowd.
    let bursty = Scenario {
        vms: traces::skewed_fleet(32, 16, 2_000.0, 1_000.0),
        cloudlets: traces::bursty_cloudlets(600, 200.0, 20_000.0, 10, 0.02, 5),
        datacenters: vec![DatacenterSetup {
            cost: CostModel::table_vii_midpoint(),
        }],
        vm_placement: vec![DatacenterId(0); 32],
        vm_scheduler: SchedulerKind::TimeShared,
        arrivals: None,
        host_failures: Vec::new(),
        dependencies: None,
        faults: None,
        recovery: None,
    };
    run_case("flash crowd (bursts of 10 heavy tasks)", &bursty);

    println!(
        "the gap between Base Test and AntColony widens as the workload\n\
         departs from uniformity — the regime the paper's homogeneous\n\
         scenario cannot reach."
    );
}
