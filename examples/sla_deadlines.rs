//! SLA-aware evaluation: deadlines, attainment and the slack frontier.
//!
//! ```sh
//! cargo run --release --example sla_deadlines
//! ```
//!
//! The paper's introduction names "deadlines for hard real-time
//! applications" and "SLA agreements" among the demands cloud schedulers
//! must absorb, but its evaluation never measures them. This example
//! attaches deadlines to the heterogeneous workload and maps each
//! scheduler's attainment as the SLA tightens — the frontier a provider
//! would actually price.

use biosched::prelude::*;
use biosched::workload::traces::attach_deadlines;

fn main() {
    let slacks = [2.0, 4.0, 8.0, 16.0, 32.0];
    let algorithms = [
        AlgorithmKind::BaseTest,
        AlgorithmKind::AntColony,
        AlgorithmKind::HoneyBee,
        AlgorithmKind::Rbs,
        AlgorithmKind::MaxMin,
    ];

    let mut table = Table::new(
        std::iter::once("SLA slack".to_string())
            .chain(algorithms.iter().map(|a| format!("{} %", a.label())))
            .collect::<Vec<_>>(),
    );
    let mut fig = FigureSeries::new(
        "SLA attainment vs deadline slack",
        "slack (x solo runtime)",
        "attainment",
        slacks.to_vec(),
    );
    let mut per_alg: Vec<Vec<f64>> = vec![Vec::new(); algorithms.len()];

    for slack in slacks {
        let mut scenario = HeterogeneousScenario {
            vm_count: 60,
            cloudlet_count: 240,
            datacenter_count: 4,
            seed: 42,
        }
        .build();
        attach_deadlines(&mut scenario.cloudlets, 2_000.0, slack);
        let problem = scenario.problem();
        let mut row = vec![format!("{slack}x")];
        for (ai, kind) in algorithms.iter().enumerate() {
            let outcome = scenario
                .simulate(kind.build(42).schedule(&problem))
                .expect("feasible scenario");
            let attainment = outcome.sla_attainment().unwrap_or(0.0);
            per_alg[ai].push(attainment);
            row.push(format!("{:.1}", attainment * 100.0));
        }
        table.push_row(row);
    }
    for (ai, kind) in algorithms.iter().enumerate() {
        fig.push_series(kind.label(), per_alg[ai].clone());
    }

    println!("{}", fig.render_ascii(64, 14));
    println!("{}", table.render());
    println!(
        "tight SLAs separate the schedulers: load/speed-aware placement\n\
         (AntColony, MaxMin) holds attainment where blind assignment\n\
         collapses; at generous slack everyone converges toward 100%."
    );
}
