//! Online scheduling with dynamic arrivals and a host failure.
//!
//! ```sh
//! cargo run --release --example online_arrivals
//! ```
//!
//! The paper's introduction motivates schedulers that "adapt to changes
//! along with defined demand". This example drives that regime end to
//! end: cloudlets arrive in Poisson waves, the scheduler is re-invoked
//! per wave with its internal state carried over, and halfway through the
//! run a host fails, taking its VMs — and their queued work — with it.

use biosched::prelude::*;
use biosched::workload::online::{run_online, WavePlan};
use simcloud::ids::HostId;
use simcloud::time::SimTime;

fn main() {
    let scenario = HeterogeneousScenario {
        vm_count: 24,
        cloudlet_count: 240,
        datacenter_count: 2,
        seed: 31,
    }
    .build();
    let plan = WavePlan::poisson(scenario.cloudlet_count(), 30, 8_000.0, 31);
    println!(
        "workload: {} cloudlets arriving in {} Poisson waves over ~{:.0}s\n",
        scenario.cloudlet_count(),
        plan.waves.len(),
        plan.wave_times.last().unwrap_or(&0.0) / 1_000.0
    );

    // Part 1: online vs batch, per algorithm.
    let mut table = Table::new(vec![
        "algorithm",
        "rounds",
        "last finish (s)",
        "mean exec (ms)",
        "finished",
    ]);
    for kind in [
        AlgorithmKind::BaseTest,
        AlgorithmKind::HoneyBee,
        AlgorithmKind::Rbs,
    ] {
        let mut scheduler = kind.build(31);
        let result = run_online(&scenario, scheduler.as_mut(), &plan).expect("feasible scenario");
        let last_finish = result
            .outcome
            .records
            .iter()
            .filter_map(|r| Some(r.finish?.as_secs()))
            .fold(0.0, f64::max);
        table.push_row(vec![
            kind.label().to_string(),
            result.rounds.to_string(),
            fmt_value(last_finish),
            fmt_value(result.outcome.mean_execution_ms().unwrap_or(0.0)),
            result.outcome.finished_count().to_string(),
        ]);
    }
    println!("online (per-wave) scheduling:\n{}", table.render());

    // Part 2: inject a host failure and watch the loss accounting.
    let mut faulty = scenario.clone();
    // Datacenter 0, host 0 dies 20 simulated seconds in.
    faulty
        .host_failures
        .push((0, HostId(0), SimTime::from_secs(20.0)));
    let mut scheduler = AlgorithmKind::BaseTest.build(31);
    let assignment = scheduler.schedule(&faulty.problem());
    let outcome = faulty.simulate(assignment).expect("feasible scenario");
    // `vms_created` counts VMs still active at the end of the run, so
    // after a failure it reports the survivors.
    println!(
        "with a host failure at t=20s: finished {} / failed {} cloudlets; {} of {} VMs survived",
        outcome.finished_count(),
        outcome.cloudlets_failed,
        outcome.vms_created,
        faulty.vm_count(),
    );
    assert_eq!(
        outcome.finished_count() + outcome.cloudlets_failed,
        faulty.cloudlet_count(),
        "conservation: every cloudlet finishes or fails"
    );
    println!("conservation check passed: finished + failed == submitted");

    // Part 3: energy as the fifth metric.
    let energy = estimate_energy(&outcome, faulty.vm_count(), &PowerModel::commodity_server())
        .expect("run finished work");
    println!(
        "energy: {:.1} Wh total ({:.1}% dynamic), mean utilization {:.1}%",
        energy.total_wh(),
        100.0 * energy.dynamic_joules / energy.total_joules(),
        100.0 * energy.mean_utilization
    );
}
