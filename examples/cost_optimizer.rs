//! Cost-driven placement across priced datacenters (HBO's home turf).
//!
//! ```sh
//! cargo run --release --example cost_optimizer
//! ```
//!
//! Builds a federation of datacenters with very different Table VII
//! prices, shows where each algorithm places load, and sweeps HBO's
//! `facLB` load-balance factor to expose its cost-vs-balance trade-off —
//! the knob behind the paper's Fig. 6d discussion.

use biosched::prelude::*;
use simcloud::cloudlet_sched::SchedulerKind;
use simcloud::ids::DatacenterId;

/// Three datacenters: premium, standard and budget tiers.
fn federation(vms_per_dc: usize, cloudlets: usize, seed: u64) -> Scenario {
    let tiers = [
        ("premium", CostModel::new(0.05, 0.004, 0.05, 3.0)),
        ("standard", CostModel::new(0.03, 0.0025, 0.03, 3.0)),
        ("budget", CostModel::new(0.01, 0.001, 0.01, 3.0)),
    ];
    let mut vms = Vec::new();
    let mut placement = Vec::new();
    for (dc, _) in tiers.iter().enumerate() {
        for i in 0..vms_per_dc {
            // Premium tier has faster VMs: cost and speed trade off.
            let mips = match dc {
                0 => 3_000.0 + 50.0 * i as f64,
                1 => 1_500.0 + 50.0 * i as f64,
                _ => 700.0 + 50.0 * i as f64,
            };
            vms.push(VmSpec::new(mips, 5_000.0, 512.0, 500.0, 1));
            placement.push(DatacenterId(dc as u32));
        }
    }
    let mut gen = HeterogeneousScenario {
        vm_count: 1,
        cloudlet_count: cloudlets,
        datacenter_count: 1,
        seed,
    }
    .build();
    gen.vms = vms;
    gen.vm_placement = placement;
    gen.datacenters = tiers
        .iter()
        .map(|(_, cost)| DatacenterSetup { cost: *cost })
        .collect();
    gen.vm_scheduler = SchedulerKind::TimeShared;
    gen
}

fn dc_shares(assignment: &Assignment, scenario: &Scenario) -> [usize; 3] {
    let mut shares = [0usize; 3];
    for vm in assignment.as_slice() {
        shares[scenario.vm_placement[vm.index()].index()] += 1;
    }
    shares
}

fn main() {
    let scenario = federation(10, 300, 7);
    let problem = scenario.problem();
    println!(
        "federation: 3 datacenters (premium/standard/budget) × 10 VMs, {} cloudlets\n",
        problem.cloudlet_count()
    );

    let mut table = Table::new(vec![
        "algorithm",
        "premium",
        "standard",
        "budget",
        "makespan (ms)",
        "total cost",
    ]);
    for kind in [
        AlgorithmKind::BaseTest,
        AlgorithmKind::AntColony,
        AlgorithmKind::HoneyBee,
        AlgorithmKind::Rbs,
    ] {
        let assignment = kind.build(7).schedule(&problem);
        let shares = dc_shares(&assignment, &scenario);
        let outcome = scenario.simulate(assignment).expect("feasible scenario");
        table.push_row(vec![
            kind.label().to_string(),
            shares[0].to_string(),
            shares[1].to_string(),
            shares[2].to_string(),
            fmt_value(outcome.simulation_time_ms().unwrap_or(0.0)),
            fmt_value(outcome.total_cost()),
        ]);
    }
    println!("{}", table.render());
    println!("HoneyBee concentrates on the budget tier; AntColony on the premium\n(fast) tier — cost and makespan pull in opposite directions.\n");

    // facLB sweep: how hard may HBO lean on the cheapest datacenter?
    let mut sweep_table = Table::new(vec!["facLB", "budget share", "makespan (ms)", "cost"]);
    for fac in [0.4, 0.6, 0.8, 1.0] {
        let mut hbo = HoneyBee::new(
            HboParams {
                fac_lb: fac,
                ..HboParams::paper()
            },
            7,
        );
        let assignment = hbo.schedule(&problem);
        let shares = dc_shares(&assignment, &scenario);
        let outcome = scenario.simulate(assignment).expect("feasible scenario");
        sweep_table.push_row(vec![
            format!("{fac:.1}"),
            format!("{}%", shares[2] * 100 / problem.cloudlet_count()),
            fmt_value(outcome.simulation_time_ms().unwrap_or(0.0)),
            fmt_value(outcome.total_cost()),
        ]);
    }
    println!(
        "HBO facLB sweep (1.0 = everything on the cheapest datacenter):\n{}",
        sweep_table.render()
    );
}
