//! Scientific-workflow scheduling: DAGs, precedence, and HEFT.
//!
//! ```sh
//! cargo run --release --example workflow_dag
//! ```
//!
//! The related work the paper builds on schedules *workflows* — tasks
//! with precedence constraints — not independent cloudlets. This example
//! generates three classic DAG shapes, schedules each with HEFT and with
//! the Base Test, and lets the discrete-event simulator (which enforces
//! parent-before-child submission) measure the difference.

use biosched::core::workflow::{heft, heft_estimate_ms};
use biosched::prelude::*;
use biosched::workload::workflow::{self, Workflow};

fn run_workflow(name: &str, wf: &Workflow, table: &mut Table) {
    // A small heterogeneous fleet.
    let mut scenario = HeterogeneousScenario {
        vm_count: 12,
        cloudlet_count: 1, // replaced by the workflow below
        datacenter_count: 2,
        seed: 9,
    }
    .build();
    wf.install(&mut scenario);
    let problem = scenario.problem();
    let parents = scenario.dependencies.clone().expect("workflow installed");

    let heft_plan = heft(&problem, &parents);
    let heft_outcome = scenario.simulate(heft_plan).expect("feasible");
    let rr_plan = RoundRobin::new().schedule(&problem);
    let rr_outcome = scenario.simulate(rr_plan).expect("feasible");

    let span = |o: &SimulationOutcome| {
        o.records
            .iter()
            .filter_map(|r| Some(r.finish?.as_millis()))
            .fold(0.0, f64::max)
    };
    table.push_row(vec![
        name.to_string(),
        wf.len().to_string(),
        wf.edge_count().to_string(),
        fmt_value(heft_estimate_ms(&problem, &parents)),
        fmt_value(span(&heft_outcome)),
        fmt_value(span(&rr_outcome)),
    ]);
    assert_eq!(heft_outcome.finished_count(), wf.len());
    assert_eq!(rr_outcome.finished_count(), wf.len());
}

fn main() {
    let mut table = Table::new(vec![
        "workflow",
        "tasks",
        "edges",
        "HEFT estimate (ms)",
        "HEFT simulated (ms)",
        "Base Test simulated (ms)",
    ]);
    run_workflow("chain(24)", &workflow::chain(24, 4_000.0), &mut table);
    run_workflow(
        "fork_join(8×3)",
        &workflow::fork_join(8, 3, 4_000.0),
        &mut table,
    );
    run_workflow(
        "layered(6×8, p=.3)",
        &workflow::layered_random(6, 8, 0.3, (1_000.0, 8_000.0), 9),
        &mut table,
    );
    run_workflow(
        "ensemble(10×4)",
        &workflow::pipeline_ensemble(10, 4, 4_000.0, 9),
        &mut table,
    );
    println!("{}", table.render());
    println!(
        "HEFT places the critical path on fast VMs and respects precedence;\n\
         the cyclic Base Test scatters chains across slow VMs and pays for it."
    );
}
