//! # biosched-cli — the `biosched` command-line tool
//!
//! Subcommands: `run`, `compare`, `sweep`, `workflow`, `describe`.
//! See [`commands::usage`] or run `biosched help`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod args;
pub mod commands;
pub mod scenario_builder;
