//! Entry point for the `biosched` CLI.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match biosched_cli::commands::dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
