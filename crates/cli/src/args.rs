//! Hand-rolled argument parsing shared by every subcommand.

use biosched_core::objective::Objective;
use biosched_core::scheduler::AlgorithmKind;
use simcloud::cloudlet_sched::SchedulerKind;
use simcloud::simulation::EngineKind;

/// Scenario + execution options common to all commands.
#[derive(Debug, Clone, PartialEq)]
pub struct CommonOpts {
    /// Fleet size.
    pub vms: usize,
    /// Workload size.
    pub cloudlets: usize,
    /// Datacenters (heterogeneous scenario only).
    pub datacenters: usize,
    /// RNG seed.
    pub seed: u64,
    /// Homogeneous (Tables III/IV) instead of heterogeneous (V–VII).
    pub homogeneous: bool,
    /// Per-VM execution policy.
    pub vm_scheduler: SchedulerKind,
    /// Optional SLA slack (deadline = slack × solo runtime @2000 MIPS).
    pub sla_slack: Option<f64>,
    /// Optional CSV output path.
    pub csv: Option<String>,
    /// Worker-thread cap for parallel evaluation (`--threads`); `None`
    /// defers to `RAYON_NUM_THREADS` or the machine's core count.
    pub threads: Option<usize>,
    /// Simulation engine (`--engine sequential|sharded`). The sharded
    /// engine replays every CLI scenario — including fault injection
    /// (`--faults`) and recovery, which run on its epoch-sharded driver —
    /// with results bit-identical to the sequential kernel. The one shape
    /// it hands back (workflow DAGs) is reported on stderr via the
    /// outcome's explicit fallback record, never switched silently.
    pub engine: EngineKind,
    /// Optional chaos campaign (`--faults hosts=0.25,fail=500..8000,...`),
    /// turned into a seeded [`simcloud::faults::FaultPlan`] over the
    /// scenario's fleet and simulated with broker retries.
    pub faults: Option<simcloud::faults::FaultSpec>,
    /// Seed for the fault plan (`--fault-seed`); defaults to `--seed`.
    pub fault_seed: Option<u64>,
    /// Scheduler knob overrides (`--sched-params candidates=32,shards=4`),
    /// parsed by [`biosched_core::tuning::SchedTuning::parse`]. Unknown
    /// keys and incoherent combinations are hard errors, never clamped.
    pub sched_params: biosched_core::tuning::SchedTuning,
}

impl Default for CommonOpts {
    fn default() -> Self {
        CommonOpts {
            vms: 50,
            cloudlets: 500,
            datacenters: 4,
            seed: 42,
            homogeneous: false,
            vm_scheduler: SchedulerKind::TimeShared,
            sla_slack: None,
            csv: None,
            threads: None,
            engine: EngineKind::Sequential,
            faults: None,
            fault_seed: None,
            sched_params: biosched_core::tuning::SchedTuning::default(),
        }
    }
}

impl CommonOpts {
    /// Installs the `--threads` cap as the global rayon thread count.
    ///
    /// Precedence is `--threads` > `RAYON_NUM_THREADS` > core count; with
    /// no cap set this is a no-op so the environment variable still
    /// applies. Results are thread-count independent (schedulers only
    /// parallelize RNG-free scoring), so this knob trades wall-clock for
    /// CPU without changing any output.
    pub fn apply_thread_limit(&self) -> Result<(), String> {
        let Some(n) = self.threads else {
            return Ok(());
        };
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .map_err(|e| format!("failed to set --threads: {e}"))
    }
}

/// Parses an algorithm name as accepted on the command line.
pub fn parse_algorithm(name: &str) -> Result<AlgorithmKind, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "base" | "base-test" | "roundrobin" | "rr" => AlgorithmKind::BaseTest,
        "aco" | "antcolony" | "ant-colony" => AlgorithmKind::AntColony,
        "hbo" | "honeybee" | "honey-bee" => AlgorithmKind::HoneyBee,
        "rbs" | "random-biased-sampling" => AlgorithmKind::Rbs,
        "minmin" | "min-min" => AlgorithmKind::MinMin,
        "maxmin" | "max-min" => AlgorithmKind::MaxMin,
        "pso" => AlgorithmKind::Pso,
        "ga" | "genetic" => AlgorithmKind::Ga,
        "hybrid" | "hybrid-makespan" => AlgorithmKind::Hybrid(Objective::Makespan),
        "hybrid-cost" => AlgorithmKind::Hybrid(Objective::Cost),
        "hybrid-balance" => AlgorithmKind::Hybrid(Objective::Balance),
        "lc" | "leastconn" | "least-connection" => AlgorithmKind::LeastConnection,
        "wrr" | "weightedrr" | "weighted-round-robin" => AlgorithmKind::WeightedRoundRobin,
        "sjf" | "shortest-job-first" => AlgorithmKind::Sjf,
        "bf" | "bestfit" | "best-fit" => AlgorithmKind::BestFit,
        "csos" | "cuckoo" | "cuckoo-sos" => AlgorithmKind::CuckooSos,
        "gsa" | "gravitational" => AlgorithmKind::Gsa,
        "portfolio" | "portfolio-makespan" => AlgorithmKind::Portfolio(Objective::Makespan),
        "portfolio-cost" => AlgorithmKind::Portfolio(Objective::Cost),
        "portfolio-balance" => AlgorithmKind::Portfolio(Objective::Balance),
        "race" | "racing" | "racing-makespan" => AlgorithmKind::Racing(Objective::Makespan),
        "racing-cost" => AlgorithmKind::Racing(Objective::Cost),
        "racing-balance" => AlgorithmKind::Racing(Objective::Balance),
        other => {
            return Err(format!(
                "unknown algorithm '{other}' (try: base aco hbo rbs minmin maxmin \
                 pso ga hybrid hybrid-cost hybrid-balance lc wrr sjf bf csos gsa \
                 portfolio racing racing-cost racing-balance)"
            ))
        }
    })
}

/// Parses a comma-separated algorithm list.
pub fn parse_algorithm_list(list: &str) -> Result<Vec<AlgorithmKind>, String> {
    let kinds: Result<Vec<_>, _> = list
        .split(',')
        .filter(|s| !s.is_empty())
        .map(parse_algorithm)
        .collect();
    let kinds = kinds?;
    if kinds.is_empty() {
        return Err("algorithm list is empty".into());
    }
    Ok(kinds)
}

/// Parses a comma-separated list of positive integers.
pub fn parse_usize_list(list: &str) -> Result<Vec<usize>, String> {
    let values: Result<Vec<usize>, _> = list
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.trim().parse::<usize>())
        .collect();
    let values = values.map_err(|e| format!("bad number list '{list}': {e}"))?;
    if values.is_empty() {
        return Err("number list is empty".into());
    }
    if values.contains(&0) {
        return Err("numbers must be positive".into());
    }
    Ok(values)
}

/// Consumes common options from an argument iterator; returns unconsumed
/// arguments for the command-specific parser.
pub fn parse_common(args: &[String]) -> Result<(CommonOpts, Vec<String>), String> {
    let mut opts = CommonOpts::default();
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--vms" => {
                opts.vms = take("--vms")?
                    .parse()
                    .map_err(|e| format!("bad --vms: {e}"))?
            }
            "--cloudlets" => {
                opts.cloudlets = take("--cloudlets")?
                    .parse()
                    .map_err(|e| format!("bad --cloudlets: {e}"))?
            }
            "--datacenters" => {
                opts.datacenters = take("--datacenters")?
                    .parse()
                    .map_err(|e| format!("bad --datacenters: {e}"))?
            }
            "--seed" => {
                opts.seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--homogeneous" => opts.homogeneous = true,
            "--space-shared" => opts.vm_scheduler = SchedulerKind::SpaceShared,
            "--backfill" => opts.vm_scheduler = SchedulerKind::SpaceSharedBackfill,
            "--time-shared" => opts.vm_scheduler = SchedulerKind::TimeShared,
            "--sla-slack" => {
                opts.sla_slack = Some(
                    take("--sla-slack")?
                        .parse()
                        .map_err(|e| format!("bad --sla-slack: {e}"))?,
                )
            }
            "--csv" => opts.csv = Some(take("--csv")?),
            "--threads" => {
                opts.threads = Some(
                    take("--threads")?
                        .parse()
                        .map_err(|e| format!("bad --threads: {e}"))?,
                )
            }
            "--engine" => {
                opts.engine = match take("--engine")?.to_ascii_lowercase().as_str() {
                    "sequential" | "seq" => EngineKind::Sequential,
                    "sharded" => EngineKind::Sharded,
                    other => {
                        return Err(format!(
                            "bad --engine: '{other}' (try: sequential, sharded)"
                        ))
                    }
                }
            }
            "--faults" => {
                opts.faults = Some(simcloud::faults::FaultSpec::parse(&take("--faults")?)?)
            }
            "--fault-seed" => {
                opts.fault_seed = Some(
                    take("--fault-seed")?
                        .parse()
                        .map_err(|e| format!("bad --fault-seed: {e}"))?,
                )
            }
            "--sched-params" => {
                opts.sched_params =
                    biosched_core::tuning::SchedTuning::parse(&take("--sched-params")?)
                        .map_err(|e| format!("bad --sched-params: {e}"))?
            }
            _ => rest.push(arg.clone()),
        }
    }
    if opts.vms == 0 || opts.cloudlets == 0 || opts.datacenters == 0 {
        return Err("--vms, --cloudlets and --datacenters must be positive".into());
    }
    if opts.threads == Some(0) {
        return Err("--threads must be positive".into());
    }
    Ok((opts, rest))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn algorithm_names() {
        assert_eq!(parse_algorithm("aco").unwrap(), AlgorithmKind::AntColony);
        assert_eq!(parse_algorithm("Base").unwrap(), AlgorithmKind::BaseTest);
        assert_eq!(
            parse_algorithm("hybrid-cost").unwrap(),
            AlgorithmKind::Hybrid(Objective::Cost)
        );
        assert_eq!(
            parse_algorithm("lc").unwrap(),
            AlgorithmKind::LeastConnection
        );
        assert_eq!(
            parse_algorithm("weighted-round-robin").unwrap(),
            AlgorithmKind::WeightedRoundRobin
        );
        assert_eq!(parse_algorithm("sjf").unwrap(), AlgorithmKind::Sjf);
        assert_eq!(parse_algorithm("best-fit").unwrap(), AlgorithmKind::BestFit);
        assert_eq!(parse_algorithm("csos").unwrap(), AlgorithmKind::CuckooSos);
        assert_eq!(
            parse_algorithm("cuckoo-sos").unwrap(),
            AlgorithmKind::CuckooSos
        );
        assert_eq!(parse_algorithm("gsa").unwrap(), AlgorithmKind::Gsa);
        assert_eq!(
            parse_algorithm("portfolio").unwrap(),
            AlgorithmKind::Portfolio(Objective::Makespan)
        );
        assert_eq!(
            parse_algorithm("racing").unwrap(),
            AlgorithmKind::Racing(Objective::Makespan)
        );
        assert_eq!(
            parse_algorithm("racing-cost").unwrap(),
            AlgorithmKind::Racing(Objective::Cost)
        );
        assert!(parse_algorithm("nope").is_err());
    }

    #[test]
    fn algorithm_lists() {
        let kinds = parse_algorithm_list("aco,hbo,rbs").unwrap();
        assert_eq!(kinds.len(), 3);
        assert!(parse_algorithm_list("").is_err());
        assert!(parse_algorithm_list("aco,bogus").is_err());
    }

    #[test]
    fn usize_lists() {
        assert_eq!(parse_usize_list("50,150, 250").unwrap(), vec![50, 150, 250]);
        assert!(parse_usize_list("50,0").is_err());
        assert!(parse_usize_list("x").is_err());
    }

    #[test]
    fn common_options_roundtrip() {
        let (opts, rest) = parse_common(&args(
            "--vms 10 --cloudlets 20 --seed 7 --homogeneous --space-shared \
             --sla-slack 4.5 --csv out.csv --extra positional",
        ))
        .unwrap();
        assert_eq!(opts.vms, 10);
        assert_eq!(opts.cloudlets, 20);
        assert_eq!(opts.seed, 7);
        assert!(opts.homogeneous);
        assert_eq!(opts.vm_scheduler, SchedulerKind::SpaceShared);
        assert_eq!(opts.sla_slack, Some(4.5));
        assert_eq!(opts.csv.as_deref(), Some("out.csv"));
        assert_eq!(rest, args("--extra positional"));
    }

    #[test]
    fn defaults_apply() {
        let (opts, rest) = parse_common(&[]).unwrap();
        assert_eq!(opts, CommonOpts::default());
        assert!(rest.is_empty());
    }

    #[test]
    fn threads_option() {
        let (opts, rest) = parse_common(&args("--threads 2")).unwrap();
        assert_eq!(opts.threads, Some(2));
        assert!(rest.is_empty());
        assert!(opts.apply_thread_limit().is_ok());
        assert_eq!(parse_common(&[]).unwrap().0.threads, None);
        assert!(parse_common(&args("--threads 0")).is_err());
        assert!(parse_common(&args("--threads x")).is_err());
    }

    #[test]
    fn engine_option() {
        let (opts, rest) = parse_common(&args("--engine sharded")).unwrap();
        assert_eq!(opts.engine, EngineKind::Sharded);
        assert!(rest.is_empty());
        let (opts, _) = parse_common(&args("--engine sequential")).unwrap();
        assert_eq!(opts.engine, EngineKind::Sequential);
        assert_eq!(parse_common(&[]).unwrap().0.engine, EngineKind::Sequential);
        assert!(parse_common(&args("--engine warp")).is_err());
    }

    #[test]
    fn faults_option() {
        let (opts, rest) =
            parse_common(&args("--faults hosts=0.25,fail=500..8000 --fault-seed 9")).unwrap();
        let spec = opts.faults.expect("spec parsed");
        assert_eq!(spec.host_fail_fraction, 0.25);
        assert_eq!(spec.fail_window_ms, (500.0, 8_000.0));
        assert_eq!(opts.fault_seed, Some(9));
        assert!(rest.is_empty());
        assert!(parse_common(&args("--faults hosts=2.0")).is_err());
        // Chaos timelines replay on the epoch-sharded driver: the
        // combination is valid.
        let (opts, _) = parse_common(&args("--faults hosts=0.2 --engine sharded")).unwrap();
        assert_eq!(opts.engine, EngineKind::Sharded);
        assert!(opts.faults.is_some());
    }

    #[test]
    fn sched_params_option() {
        let (opts, rest) = parse_common(&args(
            "--sched-params candidates=16,sampling=prefix,shards=2",
        ))
        .unwrap();
        assert_eq!(opts.sched_params.candidates, Some(Some(16)));
        assert!(opts.sched_params.shards.is_some());
        assert!(rest.is_empty());
        // Errors propagate instead of clamping.
        assert!(parse_common(&args("--sched-params candidates=0")).is_err());
        assert!(parse_common(&args("--sched-params warp=9")).is_err());
        assert_eq!(
            parse_common(&[]).unwrap().0.sched_params,
            biosched_core::tuning::SchedTuning::default()
        );
    }

    #[test]
    fn missing_values_error() {
        assert!(parse_common(&args("--vms")).is_err());
        assert!(parse_common(&args("--seed abc")).is_err());
    }
}
