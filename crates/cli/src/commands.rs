//! The CLI subcommands.

use std::time::Instant;

use biosched_core::scheduler::AlgorithmKind;
use biosched_core::workflow::heft;
use biosched_metrics::distribution::percentile;
use biosched_metrics::report::{fmt_value, Table};
use biosched_workload::scenario::Scenario;
use biosched_workload::sweep::sweep_on;
use biosched_workload::workflow;
use simcloud::energy::{estimate_energy, PowerModel};
use simcloud::simulation::EngineKind;
use simcloud::stats::SimulationOutcome;

use crate::args::{
    parse_algorithm, parse_algorithm_list, parse_common, parse_usize_list, CommonOpts,
};
use crate::scenario_builder::{build_scenario, describe_scenario};

/// Help text for all commands.
pub fn usage() -> &'static str {
    "biosched — bio-inspired cloud task scheduling

usage: biosched <command> [options]

commands:
  run --algorithm <name>      run one scheduler, print every metric
  compare --algorithms a,b,c  run several schedulers side by side
  sweep --points 50,150,...   sweep the VM count, print/export series
  workflow --shape <shape>    schedule a DAG (chain|fork-join|layered|layered-sparse|ensemble)
  online --waves N            re-invoke the scheduler per arrival wave
  stream --waves N            streaming broker: warm-state incremental
                              replanning per wave (--cold for the control
                              arm) with queueing/latency metrics
  describe                    print the scenario a given option set builds

scenario options (all commands):
  --vms N          fleet size (default 50)
  --cloudlets N    workload size (default 500)
  --datacenters N  heterogeneous datacenters (default 4)
  --seed N         RNG seed (default 42)
  --homogeneous    Tables III/IV instead of V-VII
  --space-shared / --time-shared   per-VM execution policy
  --sla-slack F    attach deadlines at F x solo runtime @2000 MIPS
  --csv PATH       also write results as CSV
  --threads N      cap worker threads for parallel evaluation (default:
                   RAYON_NUM_THREADS, else all cores; never changes results)
  --engine E       simulation engine: sequential (default) or sharded
                   (parallel per-VM replay, identical results; faults,
                   recovery, and workflow DAGs all run on its epoch
                   drivers — no shape falls back to sequential)
  --faults SPEC    seeded chaos campaign with broker retries, e.g.
                   hosts=0.25,fail=500..8000,repair=2000..5000,slow=0.4
                   (keys: hosts fail repair stragglers slow slowstart
                   slowdur; repair/slowdur accept 'never')
  --fault-seed N   fault-plan seed (default: --seed)
  --sched-params S scheduler knob overrides, comma-separated key=value:
                   candidates=N|full strategy=random|topeta
                   sampling=linear|prefix|alias ants=N iterations=N
                   batch=N q0=F (AntColony only), population=N rounds=N
                   (CuckooSOS/GSA only), budget=N quantum=N (Racing only,
                   in evaluation units), shards=N|dc (any algorithm;
                   divide-and-conquer over VM shards).
                   Bad keys/values are errors, never silently clamped

algorithms: base aco hbo rbs minmin maxmin pso ga hybrid[-cost|-balance]
            lc wrr sjf bf csos gsa portfolio[-cost|-balance]
            racing[-cost|-balance]

examples:
  biosched run --algorithm aco --vms 100 --cloudlets 1000
  biosched run --algorithm racing --vms 100 --cloudlets 1000
  biosched compare --algorithms base,aco,hbo,rbs --sla-slack 8
  biosched compare --algorithms csos,gsa,racing --vms 50
  biosched compare --algorithms base,aco --faults hosts=0.3
  biosched sweep --points 50,250,450 --algorithms base,aco
  biosched workflow --shape fork-join --tasks 32 --scheduler heft
  biosched stream --algorithm aco --waves 8 --poisson --engine sharded"
}

/// Collects every metric for one (scenario, algorithm) pair.
struct RunResult {
    name: String,
    scheduling_ms: f64,
    outcome: SimulationOutcome,
    meta: Option<biosched_core::scheduler::MetaProvenance>,
}

fn run_one(
    scenario: &Scenario,
    kind: AlgorithmKind,
    tuning: &biosched_core::tuning::SchedTuning,
    seed: u64,
    engine: EngineKind,
) -> Result<RunResult, String> {
    let problem = scenario.problem();
    let mut scheduler = tuning.build(kind, seed)?;
    let started = Instant::now();
    let assignment = scheduler.schedule(&problem);
    let scheduling_ms = started.elapsed().as_secs_f64() * 1_000.0;
    let meta = scheduler.last_meta();
    assignment
        .validate(&problem)
        .map_err(|e| format!("{kind} produced an invalid plan: {e}"))?;
    let outcome = if scenario.recovery.is_some() {
        // Fault-armed scenario: the same scheduler instance re-plans
        // every retry batch over the surviving fleet.
        let rescheduler = biosched_workload::resilience::CacheRescheduler::new(scheduler, problem);
        scenario.simulate_resilient(
            assignment,
            engine,
            simcloud::stats::RecordMode::Full,
            Box::new(rescheduler),
        )
    } else {
        scenario.simulate_on(assignment, engine)
    }
    .map_err(|e| format!("simulation failed: {e}"))?;
    note_fallback(&outcome);
    Ok(RunResult {
        name: kind.label().to_string(),
        scheduling_ms,
        outcome,
        meta,
    })
}

/// Prints meta-scheduler provenance (portfolio/racer winner and budget)
/// after the metrics table.
fn report_meta(results: &[RunResult]) {
    for r in results {
        if let Some(meta) = &r.meta {
            let spent: Vec<String> = meta
                .spent
                .iter()
                .map(|(name, units)| format!("{name}={units}"))
                .collect();
            println!(
                "{}: winner {} after {} evaluation units ({})",
                r.name,
                meta.winner,
                meta.total_units,
                spent.join(", ")
            );
        }
    }
}

/// One-line stderr note when the outcome ran on a different engine than
/// the one requested, so `--engine sharded` users always learn what ran.
fn note_fallback(outcome: &SimulationOutcome) {
    if let Some(fb) = &outcome.fallback {
        eprintln!(
            "note: requested the {} engine but the run executed on the {} engine: {}",
            fb.requested.name(),
            fb.ran.name(),
            fb.reason
        );
    }
}

/// Prints resilience counters after the metrics table when faults ran.
fn report_resilience(results: &[RunResult]) {
    for r in results {
        let res = &r.outcome.resilience;
        if res.retries == 0 && res.abandoned == 0 && res.wasted_work_ms == 0.0 {
            continue;
        }
        println!(
            "{}: completion {:.1}%, goodput {:.3}, {} retries, {} abandoned, \
             {:.0} ms wasted, MTTR {:.0} ms",
            r.name,
            r.outcome.completion_ratio().unwrap_or(1.0) * 100.0,
            r.outcome.goodput().unwrap_or(1.0),
            res.retries,
            res.abandoned,
            res.wasted_work_ms,
            r.outcome.mean_time_to_recovery_ms().unwrap_or(0.0),
        );
    }
}

fn metrics_table(results: &[RunResult], vm_count: usize) -> Table {
    let mut table = Table::new(vec![
        "scheduler",
        "sched (ms)",
        "makespan (ms)",
        "imbalance",
        "cost",
        "SLA %",
        "p99 turnaround (ms)",
        "energy (Wh)",
    ]);
    for r in results {
        let mut turnarounds: Vec<f64> = r
            .outcome
            .records
            .iter()
            .filter_map(|rec| Some(rec.finish?.saturating_sub(rec.submit?).as_millis()))
            .collect();
        turnarounds.sort_by(f64::total_cmp);
        let p99 = percentile(&turnarounds, 0.99).unwrap_or(0.0);
        let energy = estimate_energy(&r.outcome, vm_count, &PowerModel::commodity_server());
        table.push_row(vec![
            r.name.clone(),
            fmt_value(r.scheduling_ms),
            fmt_value(r.outcome.simulation_time_ms().unwrap_or(0.0)),
            fmt_value(r.outcome.time_imbalance().unwrap_or(0.0)),
            fmt_value(r.outcome.total_cost()),
            r.outcome
                .sla_attainment()
                .map(|a| format!("{:.1}", a * 100.0))
                .unwrap_or_else(|| "-".into()),
            fmt_value(p99),
            energy
                .map(|e| fmt_value(e.total_wh()))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    table
}

fn emit_table(table: &Table, csv: Option<&str>) -> Result<(), String> {
    println!("{}", table.render());
    if let Some(path) = csv {
        table
            .write_csv(std::path::Path::new(path))
            .map_err(|e| format!("failed to write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// `biosched run`.
pub fn cmd_run(args: &[String]) -> Result<(), String> {
    let (opts, rest) = parse_common(args)?;
    opts.apply_thread_limit()?;
    let mut algorithm = AlgorithmKind::AntColony;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--algorithm" => {
                algorithm = parse_algorithm(it.next().ok_or("--algorithm needs a value")?)?
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    let scenario = build_scenario(&opts);
    println!("{}", describe_scenario(&opts));
    let result = run_one(
        &scenario,
        algorithm,
        &opts.sched_params,
        opts.seed,
        opts.engine,
    )?;
    if result.outcome.finished_count() != scenario.cloudlet_count() {
        println!(
            "warning: only {}/{} cloudlets finished",
            result.outcome.finished_count(),
            scenario.cloudlet_count()
        );
    }
    let results = [result];
    emit_table(&metrics_table(&results, opts.vms), opts.csv.as_deref())?;
    report_meta(&results);
    report_resilience(&results);
    Ok(())
}

/// `biosched compare`.
pub fn cmd_compare(args: &[String]) -> Result<(), String> {
    let (opts, rest) = parse_common(args)?;
    opts.apply_thread_limit()?;
    let mut algorithms = vec![
        AlgorithmKind::BaseTest,
        AlgorithmKind::AntColony,
        AlgorithmKind::HoneyBee,
        AlgorithmKind::Rbs,
    ];
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--algorithms" => {
                algorithms = parse_algorithm_list(it.next().ok_or("--algorithms needs a value")?)?
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    let scenario = build_scenario(&opts);
    println!("{}", describe_scenario(&opts));
    let results: Result<Vec<RunResult>, String> = algorithms
        .iter()
        .map(|kind| run_one(&scenario, *kind, &opts.sched_params, opts.seed, opts.engine))
        .collect();
    let results = results?;
    emit_table(&metrics_table(&results, opts.vms), opts.csv.as_deref())?;
    report_meta(&results);
    report_resilience(&results);
    Ok(())
}

/// `biosched sweep`.
pub fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let (opts, rest) = parse_common(args)?;
    opts.apply_thread_limit()?;
    let mut points = vec![50usize, 150, 250, 350, 450];
    let mut algorithms = AlgorithmKind::PAPER_SET.to_vec();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--points" => points = parse_usize_list(it.next().ok_or("--points needs a value")?)?,
            "--algorithms" => {
                algorithms = parse_algorithm_list(it.next().ok_or("--algorithms needs a value")?)?
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    println!(
        "sweeping {} VM points × {} algorithms ({} cloudlets each)…",
        points.len(),
        algorithms.len(),
        opts.cloudlets
    );
    let base = opts.clone();
    let results = sweep_on(&points, &algorithms, opts.seed, opts.engine, move |vms| {
        build_scenario(&CommonOpts {
            vms,
            ..base.clone()
        })
    });
    let mut table = Table::new(
        std::iter::once("VMs".to_string())
            .chain(algorithms.iter().flat_map(|a| {
                [
                    format!("{} makespan", a.label()),
                    format!("{} cost", a.label()),
                ]
            }))
            .collect::<Vec<_>>(),
    );
    for (x, row) in points.iter().zip(&results) {
        table.push_row(
            std::iter::once(x.to_string())
                .chain(
                    row.iter()
                        .flat_map(|r| [fmt_value(r.simulation_time_ms), fmt_value(r.total_cost)]),
                )
                .collect::<Vec<_>>(),
        );
    }
    emit_table(&table, opts.csv.as_deref())
}

/// `biosched workflow`.
pub fn cmd_workflow(args: &[String]) -> Result<(), String> {
    let (opts, rest) = parse_common(args)?;
    opts.apply_thread_limit()?;
    let mut shape = "fork-join".to_string();
    let mut tasks = 32usize;
    let mut use_heft = true;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--shape" => shape = it.next().ok_or("--shape needs a value")?.clone(),
            "--tasks" => {
                tasks = it
                    .next()
                    .ok_or("--tasks needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --tasks: {e}"))?
            }
            "--scheduler" => {
                use_heft = match it.next().ok_or("--scheduler needs a value")?.as_str() {
                    "heft" => true,
                    "base" => false,
                    other => return Err(format!("unknown workflow scheduler {other}")),
                }
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    let tasks = tasks.max(2);
    let wf = match shape.as_str() {
        "chain" => workflow::chain(tasks, 4_000.0),
        "fork-join" => workflow::fork_join((tasks - 2).div_ceil(3).max(1), 3, 4_000.0),
        "layered" => workflow::layered_random(
            4,
            tasks.div_ceil(4).max(1),
            0.3,
            (1_000.0, 8_000.0),
            opts.seed,
        ),
        "ensemble" => workflow::pipeline_ensemble(tasks.div_ceil(4).max(1), 4, 4_000.0, opts.seed),
        // O(tasks × k) generator — the shape that scales to the paper's
        // 1M-task tier (the quadratic "layered" does not).
        "layered-sparse" => workflow::layered_sparse(
            8,
            tasks.div_ceil(8).max(1),
            3,
            (1_000.0, 8_000.0),
            opts.seed,
        ),
        other => {
            return Err(format!(
                "unknown shape {other} (chain|fork-join|layered|layered-sparse|ensemble)"
            ))
        }
    };
    let mut scenario = build_scenario(&opts);
    wf.install(&mut scenario);
    let problem = scenario.problem();
    println!(
        "{} workflow: {} tasks, {} edges, critical path {:.0} MI",
        shape,
        wf.len(),
        wf.edge_count(),
        wf.critical_path_mi()
    );
    let plan = if use_heft {
        heft(&problem, &wf.parents)
    } else {
        opts.sched_params
            .build(AlgorithmKind::BaseTest, opts.seed)?
            .schedule(&problem)
    };
    let outcome = scenario
        .simulate_on(plan, opts.engine)
        .map_err(|e| format!("simulation failed: {e}"))?;
    note_fallback(&outcome);
    let span = outcome
        .records
        .iter()
        .filter_map(|r| Some(r.finish?.as_millis()))
        .fold(0.0, f64::max);
    println!(
        "scheduler: {} | finished {}/{} | span {:.1} ms",
        if use_heft { "HEFT" } else { "Base Test" },
        outcome.finished_count(),
        wf.len(),
        span
    );
    Ok(())
}

/// `biosched online`.
pub fn cmd_online(args: &[String]) -> Result<(), String> {
    use biosched_workload::online::{run_online, WavePlan};
    let (opts, rest) = parse_common(args)?;
    opts.apply_thread_limit()?;
    let mut algorithm = AlgorithmKind::BaseTest;
    let mut waves = 4usize;
    let mut interval_ms = 5_000.0f64;
    let mut poisson = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--algorithm" => {
                algorithm = parse_algorithm(it.next().ok_or("--algorithm needs a value")?)?
            }
            "--waves" => {
                waves = it
                    .next()
                    .ok_or("--waves needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --waves: {e}"))?
            }
            "--interval-ms" => {
                interval_ms = it
                    .next()
                    .ok_or("--interval-ms needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --interval-ms: {e}"))?
            }
            "--poisson" => poisson = true,
            other => return Err(format!("unknown option {other}")),
        }
    }
    if waves == 0 {
        return Err("--waves must be positive".into());
    }
    let scenario = build_scenario(&opts);
    println!("{}", describe_scenario(&opts));
    let plan = if poisson {
        WavePlan::poisson(
            scenario.cloudlet_count(),
            scenario.cloudlet_count().div_ceil(waves).max(1),
            interval_ms,
            opts.seed,
        )
    } else {
        WavePlan::uniform(scenario.cloudlet_count(), waves, interval_ms)
    };
    let mut scheduler = opts.sched_params.build(algorithm, opts.seed)?;
    let result = run_online(&scenario, scheduler.as_mut(), &plan)
        .map_err(|e| format!("online run failed: {e}"))?;
    let last_finish = result
        .outcome
        .records
        .iter()
        .filter_map(|r| Some(r.finish?.as_secs()))
        .fold(0.0, f64::max);
    println!(
        "{}: {} waves, finished {}/{}, last completion at {:.1}s, mean exec {:.0} ms",
        algorithm.label(),
        result.rounds,
        result.outcome.finished_count(),
        scenario.cloudlet_count(),
        last_finish,
        result.outcome.mean_execution_ms().unwrap_or(0.0),
    );
    Ok(())
}

/// `biosched stream`.
pub fn cmd_stream(args: &[String]) -> Result<(), String> {
    use biosched_workload::online::WavePlan;
    use biosched_workload::stream::{run_stream_with, ReplanMode, StreamConfig};
    let (opts, rest) = parse_common(args)?;
    opts.apply_thread_limit()?;
    let mut algorithm = AlgorithmKind::AntColony;
    let mut waves = 8usize;
    let mut interval_ms = 2_000.0f64;
    let mut poisson = false;
    let mut mode = ReplanMode::Warm;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--algorithm" => {
                algorithm = parse_algorithm(it.next().ok_or("--algorithm needs a value")?)?
            }
            "--waves" => {
                waves = it
                    .next()
                    .ok_or("--waves needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --waves: {e}"))?
            }
            "--interval-ms" => {
                interval_ms = it
                    .next()
                    .ok_or("--interval-ms needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --interval-ms: {e}"))?
            }
            "--poisson" => poisson = true,
            "--cold" => mode = ReplanMode::Cold,
            "--warm" => mode = ReplanMode::Warm,
            other => return Err(format!("unknown option {other}")),
        }
    }
    if waves == 0 {
        return Err("--waves must be positive".into());
    }
    let scenario = build_scenario(&opts);
    println!("{}", describe_scenario(&opts));
    let plan = if poisson {
        WavePlan::poisson(
            scenario.cloudlet_count(),
            scenario.cloudlet_count().div_ceil(waves).max(1),
            interval_ms,
            opts.seed,
        )
    } else {
        WavePlan::uniform(scenario.cloudlet_count(), waves, interval_ms)
    };
    // Surface tuning errors before entering the wave loop.
    drop(opts.sched_params.build(algorithm, opts.seed)?);
    let cfg = StreamConfig {
        kind: algorithm,
        seed: opts.seed,
        mode,
        engine: opts.engine,
        record: simcloud::stats::RecordMode::Full,
    };
    let tuning = opts.sched_params.clone();
    let result = run_stream_with(&scenario, &plan, &cfg, &mut |seed| {
        tuning
            .build(algorithm, seed)
            .expect("tuning validated before the wave loop")
    })
    .map_err(|e| format!("stream run failed: {e}"))?;
    note_fallback(&result.outcome);
    println!(
        "{} ({} replanning): {} waves, finished {}/{}, peak backlog {}",
        algorithm.label(),
        cfg.mode.label(),
        result.rounds(),
        result.outcome.finished_count(),
        scenario.cloudlet_count(),
        result.peak_backlog(),
    );
    println!(
        "scheduling latency: total {:.1} ms, mean {:.2} ms/wave, worst {:.2} ms",
        result.total_sched_ms(),
        result.mean_sched_ms().unwrap_or(0.0),
        result.max_sched_ms().unwrap_or(0.0),
    );
    println!(
        "queueing: wait p50 {:.1} ms, p99 {:.1} ms, mean {:.1} ms | throughput {:.1}/s",
        result.outcome.wait_p50_ms().unwrap_or(0.0),
        result.outcome.wait_p99_ms().unwrap_or(0.0),
        result.outcome.mean_wait_ms().unwrap_or(0.0),
        result.outcome.throughput_per_s().unwrap_or(0.0),
    );
    if let Some(path) = opts.csv.as_deref() {
        let mut table = Table::new(vec![
            "wave",
            "arrival_ms",
            "scheduled",
            "backlog",
            "sched_ms",
        ]);
        for w in &result.waves {
            table.push_row(vec![
                w.wave.to_string(),
                fmt_value(w.arrival_ms),
                w.scheduled.to_string(),
                w.backlog.to_string(),
                fmt_value(w.sched_ms),
            ]);
        }
        table
            .write_csv(std::path::Path::new(path))
            .map_err(|e| format!("failed to write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// `biosched describe`.
pub fn cmd_describe(args: &[String]) -> Result<(), String> {
    let (opts, rest) = parse_common(args)?;
    opts.apply_thread_limit()?;
    if !rest.is_empty() {
        return Err(format!("unknown option {}", rest[0]));
    }
    let scenario = build_scenario(&opts);
    println!("{}", describe_scenario(&opts));
    let problem = scenario.problem();
    let mut table = Table::new(vec!["property", "value"]);
    let mips_min = problem
        .vms
        .iter()
        .map(|v| v.mips)
        .fold(f64::INFINITY, f64::min);
    let mips_max = problem.vms.iter().map(|v| v.mips).fold(0.0, f64::max);
    let len_min = problem
        .cloudlets
        .iter()
        .map(|c| c.length_mi)
        .fold(f64::INFINITY, f64::min);
    let len_max = problem
        .cloudlets
        .iter()
        .map(|c| c.length_mi)
        .fold(0.0, f64::max);
    table.push_row(vec![
        "VM MIPS range".to_string(),
        format!("{mips_min:.0}–{mips_max:.0}"),
    ]);
    table.push_row(vec![
        "cloudlet length range (MI)".to_string(),
        format!("{len_min:.0}–{len_max:.0}"),
    ]);
    table.push_row(vec![
        "total demand (MI)".to_string(),
        format!(
            "{:.0}",
            problem.cloudlets.iter().map(|c| c.length_mi).sum::<f64>()
        ),
    ]);
    table.push_row(vec![
        "total capacity (MIPS)".to_string(),
        format!(
            "{:.0}",
            problem.vms.iter().map(|v| v.total_mips()).sum::<f64>()
        ),
    ]);
    for (i, dc) in problem.datacenters.iter().enumerate() {
        table.push_row(vec![
            format!("dc{i} prices (mem/sto/bw/cpu)"),
            format!(
                "{:.3}/{:.4}/{:.3}/{:.1}",
                dc.cost.per_memory,
                dc.cost.per_storage,
                dc.cost.per_bandwidth,
                dc.cost.per_processing
            ),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

/// Dispatches a full argument vector (without the binary name).
pub fn dispatch(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err(usage().to_string());
    };
    let rest = &args[1..];
    match command.as_str() {
        "run" => cmd_run(rest),
        "compare" => cmd_compare(rest),
        "sweep" => cmd_sweep(rest),
        "workflow" => cmd_workflow(rest),
        "online" => cmd_online(rest),
        "stream" => cmd_stream(rest),
        "describe" => cmd_describe(rest),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other}\n\n{}", usage())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn run_command_small() {
        cmd_run(&args(
            "--algorithm base --vms 4 --cloudlets 12 --datacenters 2 --seed 1",
        ))
        .unwrap();
    }

    #[test]
    fn run_command_sharded_engine() {
        cmd_run(&args(
            "--algorithm base --vms 4 --cloudlets 12 --datacenters 2 --engine sharded",
        ))
        .unwrap();
    }

    #[test]
    fn run_command_with_faults() {
        cmd_run(&args(
            "--algorithm base --vms 8 --cloudlets 24 --datacenters 2 --seed 3 \
             --faults hosts=0.9,fail=100..2000,repair=1000..2000 --fault-seed 5",
        ))
        .unwrap();
        // Chaos + sharded runs on the epoch driver.
        cmd_run(&args(
            "--algorithm base --vms 8 --cloudlets 24 --datacenters 2 --seed 3 \
             --faults hosts=0.5,fail=100..2000 --engine sharded",
        ))
        .unwrap();
    }

    #[test]
    fn compare_command_small() {
        cmd_compare(&args(
            "--algorithms base,rbs --vms 4 --cloudlets 12 --datacenters 2 --sla-slack 16",
        ))
        .unwrap();
    }

    #[test]
    fn run_command_new_families_and_racer() {
        cmd_run(&args(
            "--algorithm csos --vms 4 --cloudlets 12 --datacenters 2 \
             --sched-params population=6,rounds=3",
        ))
        .unwrap();
        cmd_run(&args(
            "--algorithm gsa --vms 4 --cloudlets 12 --datacenters 2 \
             --sched-params population=6,rounds=3",
        ))
        .unwrap();
        cmd_run(&args(
            "--algorithm racing --vms 4 --cloudlets 12 --datacenters 2 \
             --sched-params budget=200,quantum=20",
        ))
        .unwrap();
        cmd_run(&args(
            "--algorithm portfolio --vms 4 --cloudlets 12 --datacenters 2",
        ))
        .unwrap();
        // Kind-gating errors surface through the CLI.
        assert!(cmd_run(&args(
            "--algorithm aco --vms 4 --cloudlets 12 --sched-params budget=10"
        ))
        .is_err());
    }

    #[test]
    fn sweep_command_small() {
        cmd_sweep(&args(
            "--points 2,4 --algorithms base --cloudlets 8 --datacenters 2",
        ))
        .unwrap();
    }

    #[test]
    fn workflow_command_shapes() {
        for shape in [
            "chain",
            "fork-join",
            "layered",
            "layered-sparse",
            "ensemble",
        ] {
            cmd_workflow(&args(&format!(
                "--shape {shape} --tasks 8 --vms 4 --datacenters 2"
            )))
            .unwrap_or_else(|e| panic!("{shape}: {e}"));
        }
        assert!(cmd_workflow(&args("--shape mystery")).is_err());
    }

    #[test]
    fn online_command_small() {
        cmd_online(&args(
            "--waves 2 --interval-ms 100 --vms 4 --cloudlets 8 --datacenters 2",
        ))
        .unwrap();
        cmd_online(&args("--poisson --vms 4 --cloudlets 8 --datacenters 2")).unwrap();
        assert!(cmd_online(&args("--waves 0")).is_err());
    }

    #[test]
    fn stream_command_small() {
        cmd_stream(&args(
            "--waves 2 --interval-ms 100 --vms 4 --cloudlets 8 --datacenters 2 --algorithm lc",
        ))
        .unwrap();
        cmd_stream(&args(
            "--cold --poisson --vms 4 --cloudlets 8 --datacenters 2 --algorithm wrr \
             --engine sharded",
        ))
        .unwrap();
        assert!(cmd_stream(&args("--waves 0")).is_err());
        assert!(cmd_stream(&args("--bogus")).is_err());
    }

    #[test]
    fn describe_command() {
        cmd_describe(&args("--vms 3 --cloudlets 5 --datacenters 2")).unwrap();
        assert!(cmd_describe(&args("--bogus")).is_err());
    }

    #[test]
    fn dispatch_rejects_unknown() {
        assert!(dispatch(&args("frobnicate")).is_err());
        assert!(dispatch(&[]).is_err());
        dispatch(&args("help")).unwrap();
    }
}
