//! Builds a [`Scenario`] from parsed CLI options.

use biosched_workload::heterogeneous::HeterogeneousScenario;
use biosched_workload::homogeneous::HomogeneousScenario;
use biosched_workload::scenario::Scenario;
use biosched_workload::traces::attach_deadlines;

use crate::args::CommonOpts;

/// Reference MIPS for SLA deadline attachment (mid Table V).
pub const SLA_REFERENCE_MIPS: f64 = 2_000.0;

/// Materializes the scenario the options describe.
pub fn build_scenario(opts: &CommonOpts) -> Scenario {
    let mut scenario = if opts.homogeneous {
        HomogeneousScenario {
            vm_count: opts.vms,
            cloudlet_count: opts.cloudlets,
        }
        .build()
    } else {
        HeterogeneousScenario {
            vm_count: opts.vms,
            cloudlet_count: opts.cloudlets,
            datacenter_count: opts.datacenters,
            seed: opts.seed,
        }
        .build()
    };
    scenario.vm_scheduler = opts.vm_scheduler;
    if let Some(slack) = opts.sla_slack {
        attach_deadlines(&mut scenario.cloudlets, SLA_REFERENCE_MIPS, slack);
    }
    if let Some(spec) = &opts.faults {
        biosched_workload::resilience::inject_faults(
            &mut scenario,
            spec,
            opts.fault_seed.unwrap_or(opts.seed),
            simcloud::broker::RecoveryPolicy::default(),
        );
    }
    scenario
}

/// One-line human description of the scenario.
pub fn describe_scenario(opts: &CommonOpts) -> String {
    format!(
        "{} scenario: {} VMs, {} cloudlets, {} datacenter(s), {} VMs, seed {}{}",
        if opts.homogeneous {
            "homogeneous (Tables III/IV)"
        } else {
            "heterogeneous (Tables V-VII)"
        },
        opts.vms,
        opts.cloudlets,
        if opts.homogeneous {
            1
        } else {
            opts.datacenters
        },
        match opts.vm_scheduler {
            simcloud::cloudlet_sched::SchedulerKind::TimeShared => "time-shared",
            simcloud::cloudlet_sched::SchedulerKind::SpaceShared => "space-shared",
            simcloud::cloudlet_sched::SchedulerKind::SpaceSharedBackfill => {
                "space-shared+backfill"
            }
        },
        opts.seed,
        match (&opts.sla_slack, &opts.faults) {
            (Some(s), Some(_)) => format!(", SLA slack {s}x, faults armed"),
            (Some(s), None) => format!(", SLA slack {s}x"),
            (None, Some(_)) => ", faults armed".to_string(),
            (None, None) => String::new(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heterogeneous_by_default() {
        let opts = CommonOpts::default();
        let s = build_scenario(&opts);
        assert_eq!(s.vm_count(), 50);
        assert_eq!(s.cloudlet_count(), 500);
        assert_eq!(s.datacenters.len(), 4);
        assert!(!s.problem().is_homogeneous());
    }

    #[test]
    fn homogeneous_flag_switches_tables() {
        let opts = CommonOpts {
            homogeneous: true,
            vms: 8,
            cloudlets: 16,
            ..CommonOpts::default()
        };
        let s = build_scenario(&opts);
        assert!(s.problem().is_homogeneous());
        assert_eq!(s.datacenters.len(), 1);
    }

    #[test]
    fn sla_slack_attaches_deadlines() {
        let opts = CommonOpts {
            sla_slack: Some(4.0),
            cloudlets: 10,
            ..CommonOpts::default()
        };
        let s = build_scenario(&opts);
        assert!(s.cloudlets.iter().all(|c| c.deadline_ms.is_some()));
    }

    #[test]
    fn description_mentions_key_facts() {
        let opts = CommonOpts::default();
        let d = describe_scenario(&opts);
        assert!(d.contains("heterogeneous"));
        assert!(d.contains("50 VMs"));
        assert!(d.contains("seed 42"));
    }
}
