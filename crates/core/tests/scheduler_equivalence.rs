//! Scheduler hot-path equivalence: thread counts and the frozen reference.
//!
//! The scheduler hot-path overhaul (parallel ACO colonies, powf-free tour
//! construction, allocation-free scratch) promises **byte-identical
//! assignments per seed** at any rayon thread count, and byte-identity
//! with the pre-overhaul implementation preserved verbatim in
//! `biosched_core::aco::reference`. This test sweeps ≥3 seeds × both
//! scenario families × thread counts {1, 2, 4, 8} and asserts exactly
//! that for every scheduler whose hot path was touched (ACO, HBO, RBS).
//!
//! Thread counts are switched in-process through rayon's global builder
//! (the vendored shim allows repeated `build_global` calls; last one
//! wins). Tests in this binary may race on that global — harmlessly:
//! thread-count *independence* is precisely the property under test.
#![cfg(feature = "parallel")]

use biosched_core::aco::{reference, AcoParams, AntColony};
use biosched_core::problem::SchedulingProblem;
use biosched_core::scheduler::{AlgorithmKind, Scheduler};
use rand::Rng;
use simcloud::characteristics::CostModel;
use simcloud::cloudlet::CloudletSpec;
use simcloud::vm::VmSpec;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SEEDS: [u64; 3] = [11, 42, 9001];

/// The two scenario families from the paper's evaluation.
#[derive(Debug, Clone, Copy)]
enum Shape {
    /// One uniform fleet, uniform cloudlets.
    Homogeneous,
    /// Mixed VM sizes and cloudlet lengths drawn from a seeded stream.
    Heterogeneous,
}

fn build_problem(shape: Shape, seed: u64) -> SchedulingProblem {
    let mut rng = simcloud::rng::stream(seed, "scheduler-equivalence");
    let (vm_count, cloudlet_count) = (24, 160);
    let vms: Vec<VmSpec> = (0..vm_count)
        .map(|_| match shape {
            Shape::Homogeneous => VmSpec::new(1_000.0, 10_000.0, 512.0, 1_000.0, 1),
            Shape::Heterogeneous => VmSpec::new(
                rng.gen_range(500.0..2_500.0),
                10_000.0,
                512.0,
                rng.gen_range(100.0..1_000.0),
                1,
            ),
        })
        .collect();
    let cloudlets: Vec<CloudletSpec> = (0..cloudlet_count)
        .map(|_| {
            let len = rng.gen_range(1_000.0..40_000.0);
            match shape {
                Shape::Homogeneous => CloudletSpec::new(len, 0.0, 0.0, 1),
                Shape::Heterogeneous => {
                    CloudletSpec::new(len, rng.gen_range(0.0..300.0), rng.gen_range(0.0..300.0), 1)
                }
            }
        })
        .collect();
    SchedulingProblem::single_datacenter(vms, cloudlets, CostModel::default())
}

fn set_threads(n: usize) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("vendored rayon accepts repeated build_global");
}

#[test]
fn assignments_are_byte_identical_across_thread_counts() {
    // ACO is the scheduler that actually fans out; HBO and RBS ride along
    // to prove their hot-path changes (sort-key hoist, free counter) did
    // not sneak in any thread- or order-sensitivity either.
    let schedulers = [
        AlgorithmKind::AntColony,
        AlgorithmKind::HoneyBee,
        AlgorithmKind::Rbs,
    ];
    for shape in [Shape::Homogeneous, Shape::Heterogeneous] {
        for seed in SEEDS {
            let problem = build_problem(shape, seed);
            for kind in schedulers {
                set_threads(1);
                let baseline = kind.build(seed).schedule(&problem);
                for threads in &THREAD_COUNTS[1..] {
                    set_threads(*threads);
                    let got = kind.build(seed).schedule(&problem);
                    assert_eq!(
                        baseline, got,
                        "{kind} diverged at {threads} threads ({shape:?}, seed {seed})"
                    );
                }
            }
        }
    }
    set_threads(0); // restore automatic sizing for other tests
}

#[test]
fn aco_matches_frozen_reference_at_every_thread_count() {
    for shape in [Shape::Homogeneous, Shape::Heterogeneous] {
        for seed in SEEDS {
            let problem = build_problem(shape, seed);
            // The reference is single-path regardless of pool size; run it
            // before touching the global pool.
            let expected = reference::schedule_reference(&AcoParams::fast(), seed, &problem);
            for threads in THREAD_COUNTS {
                set_threads(threads);
                let got = AntColony::new(AcoParams::fast(), seed).schedule(&problem);
                assert_eq!(
                    expected, got,
                    "ACO diverged from reference at {threads} threads \
                     ({shape:?}, seed {seed})"
                );
            }
        }
    }
    set_threads(0);
}

#[test]
fn aco_paper_params_match_reference() {
    // The full paper preset (α = 0.01 exercises the powf snapshot path).
    let problem = build_problem(Shape::Heterogeneous, 7);
    let expected = reference::schedule_reference(&AcoParams::paper(), 7, &problem);
    for threads in [1, 4] {
        set_threads(threads);
        let got = AntColony::new(AcoParams::paper(), 7).schedule(&problem);
        assert_eq!(expected, got, "paper params diverged at {threads} threads");
    }
    set_threads(0);
}

#[test]
fn aco_reference_equivalence_holds_when_candidates_cover_fleet() {
    // The acceptance bar for the candidate-list overhaul: whenever
    // k ≥ #VMs the TopEta fast path must stand down and the optimized
    // scheduler must stay bitwise-equal to the frozen reference — across
    // seeds and thread counts.
    use biosched_core::aco::{CandidateStrategy, SamplingMode};
    for shape in [Shape::Homogeneous, Shape::Heterogeneous] {
        for seed in SEEDS {
            let problem = build_problem(shape, seed);
            let params = AcoParams {
                candidates: Some(problem.vm_count()), // k == #VMs
                strategy: CandidateStrategy::TopEta,
                sampling: SamplingMode::PrefixSum,
                ..AcoParams::paper()
            };
            let expected = reference::schedule_reference(&params, seed, &problem);
            for threads in [1, 4] {
                set_threads(threads);
                let got = AntColony::new(params.clone(), seed).schedule(&problem);
                assert_eq!(
                    expected, got,
                    "k >= #VMs must run the reference-equivalent path \
                     ({shape:?}, seed {seed}, {threads} threads)"
                );
            }
        }
    }
    set_threads(0);
}

#[test]
fn aco_candidate_fast_path_is_thread_independent() {
    // k < #VMs engages the candidate-list fast path. It intentionally
    // diverges from the reference plan, but it must stay byte-identical
    // per seed at any thread count, in every sampling mode.
    use biosched_core::aco::{CandidateStrategy, SamplingMode};
    for sampling in [
        SamplingMode::Linear,
        SamplingMode::PrefixSum,
        SamplingMode::Alias,
    ] {
        for shape in [Shape::Homogeneous, Shape::Heterogeneous] {
            for seed in SEEDS {
                let problem = build_problem(shape, seed);
                let params = AcoParams {
                    candidates: Some(8), // << 24 VMs
                    strategy: CandidateStrategy::TopEta,
                    sampling,
                    ..AcoParams::paper()
                };
                set_threads(1);
                let baseline = AntColony::new(params.clone(), seed).schedule(&problem);
                baseline.validate(&problem).expect("fast path plan valid");
                for threads in &THREAD_COUNTS[1..] {
                    set_threads(*threads);
                    let got = AntColony::new(params.clone(), seed).schedule(&problem);
                    assert_eq!(
                        baseline, got,
                        "fast path ({sampling:?}) diverged at {threads} threads \
                         ({shape:?}, seed {seed})"
                    );
                }
            }
        }
    }
    set_threads(0);
}

#[test]
fn aco_alpha_one_fast_path_matches_reference() {
    // α = 1 takes the snapshot's identity fast path; the reference calls
    // powf(τ, 1.0) — both must agree bit for bit.
    let params = AcoParams {
        alpha: 1.0,
        ..AcoParams::fast()
    };
    let problem = build_problem(Shape::Homogeneous, 13);
    let expected = reference::schedule_reference(&params, 13, &problem);
    for threads in [1, 4] {
        set_threads(threads);
        let got = AntColony::new(params.clone(), 13).schedule(&problem);
        assert_eq!(expected, got, "α=1 fast path diverged at {threads} threads");
    }
    set_threads(0);
}
