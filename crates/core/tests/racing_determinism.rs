//! Racing meta-scheduler determinism and never-worse guarantees.
//!
//! The racer's budget is counted in deterministic evaluation units, so a
//! race's elimination order, winner, per-member spend and returned plan
//! must be byte-identical at any rayon thread count (the matrix here
//! sweeps {1, 2, 4, 8} × 3 seeds × both scenario families), and the
//! raced plan must never score worse than any member run standalone to
//! its full racing budget on the same seed (the survivor anchor makes
//! this exact for the winner; eliminated members are covered by the
//! pruning guarantee, asserted over every seed in the matrix).
#![cfg(feature = "parallel")]

use biosched_core::eval::EvalCache;
use biosched_core::objective::Objective;
use biosched_core::problem::SchedulingProblem;
use biosched_core::racing::{RaceParams, RacingScheduler};
use biosched_core::scheduler::Scheduler;
use rand::Rng;
use simcloud::characteristics::CostModel;
use simcloud::cloudlet::CloudletSpec;
use simcloud::vm::VmSpec;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SEEDS: [u64; 3] = [11, 42, 9001];

#[derive(Debug, Clone, Copy)]
enum Shape {
    Homogeneous,
    Heterogeneous,
}

fn build_problem(shape: Shape, seed: u64) -> SchedulingProblem {
    let mut rng = simcloud::rng::stream(seed, "racing-determinism");
    let (vm_count, cloudlet_count) = (12, 80);
    let vms: Vec<VmSpec> = (0..vm_count)
        .map(|_| match shape {
            Shape::Homogeneous => VmSpec::new(1_000.0, 10_000.0, 512.0, 1_000.0, 1),
            Shape::Heterogeneous => VmSpec::new(
                rng.gen_range(500.0..2_500.0),
                10_000.0,
                512.0,
                rng.gen_range(100.0..1_000.0),
                1,
            ),
        })
        .collect();
    let cloudlets: Vec<CloudletSpec> = (0..cloudlet_count)
        .map(|_| {
            let len = rng.gen_range(1_000.0..40_000.0);
            match shape {
                Shape::Homogeneous => CloudletSpec::new(len, 0.0, 0.0, 1),
                Shape::Heterogeneous => {
                    CloudletSpec::new(len, rng.gen_range(0.0..300.0), rng.gen_range(0.0..300.0), 1)
                }
            }
        })
        .collect();
    SchedulingProblem::single_datacenter(vms, cloudlets, CostModel::default())
}

fn set_threads(n: usize) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("vendored rayon accepts repeated build_global");
}

fn race_params() -> RaceParams {
    RaceParams {
        target_units: Some(480),
        ..RaceParams::new(Objective::Makespan)
    }
}

#[test]
fn races_are_byte_identical_across_thread_counts() {
    for shape in [Shape::Homogeneous, Shape::Heterogeneous] {
        for seed in SEEDS {
            let problem = build_problem(shape, seed);
            set_threads(1);
            let mut racer = RacingScheduler::new(race_params(), seed);
            let baseline_plan = racer.schedule(&problem);
            let baseline_report = racer.last_report().cloned().expect("race ran");
            for threads in &THREAD_COUNTS[1..] {
                set_threads(*threads);
                let mut racer = RacingScheduler::new(race_params(), seed);
                let plan = racer.schedule(&problem);
                let report = racer.last_report().cloned().expect("race ran");
                assert_eq!(
                    baseline_plan, plan,
                    "racer plan diverged at {threads} threads ({shape:?}, seed {seed})"
                );
                assert_eq!(
                    baseline_report, report,
                    "race provenance diverged at {threads} threads ({shape:?}, seed {seed})"
                );
            }
        }
    }
    set_threads(0); // restore automatic sizing for other tests
}

#[test]
fn raced_plan_never_loses_to_a_standalone_member() {
    // Budget parity: each member standalone gets exactly its full racing
    // budget (the roster the racer itself builds for round 0 shares the
    // member seeds, so the winner's standalone run is the racer's own
    // survivor path).
    for shape in [Shape::Homogeneous, Shape::Heterogeneous] {
        for seed in SEEDS {
            let problem = build_problem(shape, seed);
            let cache = EvalCache::new(&problem);
            let params = race_params();
            let mut racer = RacingScheduler::new(params.clone(), seed);
            let plan = racer.schedule_with_cache(&problem, &cache);
            let raced = cache.score(plan.as_slice(), Objective::Makespan);
            let report = racer.last_report().expect("race ran");
            for (name, score) in
                biosched_core::racing::standalone_scores(seed, &params, &problem, &cache)
            {
                assert!(
                    raced <= score + 1e-9,
                    "racer ({}) at {raced} lost to standalone {name} at {score} \
                     ({shape:?}, seed {seed})",
                    report.winner
                );
            }
        }
    }
}
