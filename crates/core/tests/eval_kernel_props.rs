//! Property-based tests of the evaluation kernel: the incremental
//! [`LoadTracker`] and the batch [`EvalCache`] scoring paths must agree
//! with the from-scratch [`score_assignment`] reference on arbitrary
//! problems, assignments, and mutation sequences.
//!
//! Assign-only sequences reproduce the reference bit-for-bit (the tracker
//! performs the identical additions in the identical order); sequences
//! containing reassignments accumulate floating-point drift of the usual
//! `(x + d) - d != x` kind, so those comparisons use a relative tolerance.

use biosched_core::assignment::Assignment;
use biosched_core::eval::{evaluate_population, EvalCache, LoadTracker};
use biosched_core::objective::{score_assignment, Objective};
use biosched_core::problem::SchedulingProblem;
use proptest::prelude::*;
use simcloud::characteristics::CostModel;
use simcloud::cloudlet::CloudletSpec;
use simcloud::ids::VmId;
use simcloud::vm::VmSpec;

/// A random scheduling scenario plus a mutation script.
#[derive(Debug, Clone)]
struct Scenario {
    vms: Vec<VmSpec>,
    cloudlets: Vec<CloudletSpec>,
    /// Initial full assignment, one VM index per cloudlet.
    initial: Vec<usize>,
    /// Reassignment script: (cloudlet, new VM), indices taken modulo size.
    moves: Vec<(usize, usize)>,
}

impl Scenario {
    fn problem(&self) -> SchedulingProblem {
        SchedulingProblem::single_datacenter(
            self.vms.clone(),
            self.cloudlets.clone(),
            CostModel::default(),
        )
    }
}

fn scenario() -> impl Strategy<Value = Scenario> {
    let vm = (400.0f64..4_000.0, 1u32..=4)
        .prop_map(|(mips, pes)| VmSpec::new(mips, 5_000.0, 512.0, 500.0, pes));
    let cloudlet = (100.0f64..20_000.0, 0.0f64..400.0, 1u32..=4)
        .prop_map(|(len, file, pes)| CloudletSpec::new(len, file, file, pes));
    (
        prop::collection::vec(vm, 1..8),
        prop::collection::vec(cloudlet, 1..40),
        prop::collection::vec((0usize..1_000, 0usize..1_000), 0..60),
        any::<u64>(),
    )
        .prop_map(|(vms, cloudlets, moves, pick)| {
            let v = vms.len();
            let initial = (0..cloudlets.len())
                .map(|i| (pick as usize).wrapping_add(i * 13) % v)
                .collect();
            Scenario {
                vms,
                cloudlets,
                initial,
                moves,
            }
        })
}

/// Relative comparison: kernel drift must stay far below any decision
/// threshold the schedulers use.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Batch cache scoring is bit-identical to the from-scratch reference
    /// for every objective, with and without the dense ETC matrix.
    #[test]
    fn cache_score_matches_reference_bitwise(s in scenario()) {
        let p = s.problem();
        let map: Vec<VmId> = s.initial.iter().map(|&v| VmId::from_index(v)).collect();
        let plan = Assignment::new(map);
        for cache in [EvalCache::new(&p), EvalCache::lite(&p)] {
            for obj in Objective::ALL {
                let reference = score_assignment(&p, &plan, obj);
                let cached = cache.score(plan.as_slice(), obj);
                prop_assert_eq!(
                    cached.to_bits(),
                    reference.to_bits(),
                    "objective {:?}: cache {} vs reference {}",
                    obj, cached, reference
                );
            }
        }
    }

    /// An assign-only tracker reproduces the reference bit-for-bit.
    #[test]
    fn tracker_assign_only_is_bit_identical(s in scenario()) {
        let p = s.problem();
        let cache = EvalCache::new(&p);
        let mut tracker = LoadTracker::new(&cache);
        for (c, &v) in s.initial.iter().enumerate() {
            tracker.assign(&cache, c, v);
        }
        let map: Vec<VmId> = s.initial.iter().map(|&v| VmId::from_index(v)).collect();
        let plan = Assignment::new(map);
        for obj in Objective::ALL {
            let reference = score_assignment(&p, &plan, obj);
            prop_assert_eq!(tracker.score(obj).to_bits(), reference.to_bits());
        }
    }

    /// After an arbitrary reassignment script the tracker still matches
    /// the from-scratch reference to relative tolerance, for all three
    /// objectives.
    #[test]
    fn tracker_survives_mutation_scripts(s in scenario()) {
        let p = s.problem();
        let c = p.cloudlet_count();
        let v = p.vm_count();
        let cache = EvalCache::new(&p);
        let mut tracker = LoadTracker::new(&cache);
        let mut current = s.initial.clone();
        for (cl, &vm) in current.iter().enumerate() {
            tracker.assign(&cache, cl, vm);
        }
        for &(cl_raw, vm_raw) in &s.moves {
            let cl = cl_raw % c;
            let vm = vm_raw % v;
            tracker.reassign(&cache, cl, vm);
            current[cl] = vm;
        }
        let map: Vec<VmId> = current.iter().map(|&vm| VmId::from_index(vm)).collect();
        let plan = Assignment::new(map);
        for obj in Objective::ALL {
            let reference = score_assignment(&p, &plan, obj);
            let tracked = tracker.score(obj);
            prop_assert!(
                close(tracked, reference),
                "objective {:?}: tracker {} vs reference {} after {} moves",
                obj, tracked, reference, s.moves.len()
            );
        }
        // The tracker's view of the plan itself is exact, not approximate.
        for (cl, &vm) in current.iter().enumerate() {
            prop_assert_eq!(tracker.vm_of(cl), Some(vm));
        }
    }

    /// Speculative scoring returns the committed value and leaves no trace.
    #[test]
    fn score_if_is_exact_and_stateless(s in scenario()) {
        let p = s.problem();
        let c = p.cloudlet_count();
        let v = p.vm_count();
        let cache = EvalCache::new(&p);
        let mut tracker = LoadTracker::new(&cache);
        for (cl, &vm) in s.initial.iter().enumerate() {
            tracker.assign(&cache, cl, vm);
        }
        for &(cl_raw, vm_raw) in s.moves.iter().take(8) {
            let cl = cl_raw % c;
            let vm = vm_raw % v;
            let orig = tracker.unassign(&cache, cl);
            for obj in Objective::ALL {
                let before: Vec<u64> =
                    tracker.loads().iter().map(|l| l.to_bits()).collect();
                let speculative = tracker.score_if(&cache, cl, vm, obj);
                let after: Vec<u64> =
                    tracker.loads().iter().map(|l| l.to_bits()).collect();
                prop_assert_eq!(&before, &after, "score_if mutated the tracker");

                let mut committed = tracker.clone();
                committed.assign(&cache, cl, vm);
                prop_assert_eq!(speculative.to_bits(), committed.score(obj).to_bits());
            }
            tracker.assign(&cache, cl, orig);
        }
    }

    /// Population evaluation returns, per genome, exactly the serial
    /// cache score regardless of batch size or thread count.
    #[test]
    fn population_scores_match_serial(s in scenario()) {
        let p = s.problem();
        let v = p.vm_count();
        let cache = EvalCache::new(&p);
        let genomes: Vec<Vec<u32>> = (0..12)
            .map(|g| {
                s.initial
                    .iter()
                    .map(|&vm| ((vm + g * 3) % v) as u32)
                    .collect()
            })
            .collect();
        for obj in Objective::ALL {
            let batch = evaluate_population(&cache, &genomes, obj);
            prop_assert_eq!(batch.len(), genomes.len());
            for (genome, score) in genomes.iter().zip(&batch) {
                prop_assert_eq!(score.to_bits(), cache.score_genes(genome, obj).to_bits());
            }
        }
    }
}
