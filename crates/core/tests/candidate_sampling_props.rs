//! Property-based tests of the candidate-list machinery behind the ACO
//! fast path: candidate blocks must only ever name real, distinct VMs on
//! arbitrary problems, and the O(log k) prefix-sum roulette must pick
//! exactly the VM a linear left-to-right roulette scan picks given the
//! same weight row and the same spin.

use biosched_core::aco::prefix_pick;
use biosched_core::eval::EvalCache;
use biosched_core::problem::SchedulingProblem;
use proptest::prelude::*;
use simcloud::characteristics::CostModel;
use simcloud::cloudlet::CloudletSpec;
use simcloud::vm::VmSpec;

/// A random fleet/workload pair.
#[derive(Debug, Clone)]
struct Scenario {
    vms: Vec<VmSpec>,
    cloudlets: Vec<CloudletSpec>,
}

impl Scenario {
    fn problem(&self) -> SchedulingProblem {
        SchedulingProblem::single_datacenter(
            self.vms.clone(),
            self.cloudlets.clone(),
            CostModel::default(),
        )
    }
}

fn scenario() -> impl Strategy<Value = Scenario> {
    let vm = (400.0f64..4_000.0, 1u32..=4, 100.0f64..1_000.0)
        .prop_map(|(mips, pes, bw)| VmSpec::new(mips, 5_000.0, 512.0, bw, pes));
    let cloudlet = (100.0f64..20_000.0, 0.0f64..400.0, 1u32..=4)
        .prop_map(|(len, file, pes)| CloudletSpec::new(len, file, file, pes));
    (
        prop::collection::vec(vm, 1..24),
        prop::collection::vec(cloudlet, 1..48),
    )
        .prop_map(|(vms, cloudlets)| Scenario { vms, cloudlets })
}

/// The linear-scan reference: the smallest index whose prefix strictly
/// exceeds the spin, clamping past-the-total spins to the last index.
fn linear_pick(prefix: &[f64], spin: f64) -> usize {
    for (i, &p) in prefix.iter().enumerate() {
        if spin < p {
            return i;
        }
    }
    prefix.len() - 1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every candidate row names exactly k distinct, in-range VMs —
    /// ants can never be offered a dead or duplicated VM.
    #[test]
    fn candidate_rows_are_distinct_live_vms(s in scenario(), k in 1usize..12, beta in 0.2f64..2.0) {
        let p = s.problem();
        let cache = EvalCache::new(&p);
        let c = p.cloudlet_count();
        let v = p.vm_count();
        let block = cache.candidate_block(0..c, k, beta);
        prop_assert!(block.k() >= 1);
        prop_assert!(block.k() <= k.min(v));
        prop_assert_eq!(block.slot_count(), c);
        let mut seen = vec![false; v];
        for s in 0..c {
            let row = block.row(s);
            prop_assert_eq!(row.len(), block.k());
            for &vm in row {
                let vm = vm as usize;
                prop_assert!(vm < v, "candidate names VM {} of {}", vm, v);
                prop_assert!(!seen[vm], "slot {} repeats VM {}", s, vm);
                seen[vm] = true;
            }
            for &vm in row {
                seen[vm as usize] = false;
            }
            // The weight row is finite, non-negative, and sums to the
            // recorded per-slot total.
            let eta = block.eta_row(s);
            let mut sum = 0.0f64;
            for &w in eta {
                prop_assert!(w.is_finite() && w >= 0.0);
                sum += w;
            }
            let total = block.eta_sum(s);
            prop_assert!((sum - total).abs() <= 1e-12 * sum.abs().max(total.abs()).max(1.0));
        }
    }

    /// The binary-search roulette and the linear-scan roulette pick the
    /// same index for every spin over the same prefix row, including
    /// spins exactly on cell boundaries and past the total.
    #[test]
    fn prefix_pick_matches_linear_scan(
        weights in prop::collection::vec(0.0f64..100.0, 1..40),
        fractions in prop::collection::vec(0.0f64..1.0, 1..20),
    ) {
        let mut prefix = Vec::with_capacity(weights.len());
        let mut running = 0.0f64;
        for &w in &weights {
            running += w;
            prefix.push(running);
        }
        let total = running;
        let mut spins: Vec<f64> = fractions.iter().map(|f| f * total).collect();
        // Boundary spins: exactly on every prefix value, zero, and past
        // the total (a degenerate roulette must clamp, not panic).
        spins.extend(prefix.iter().copied());
        spins.push(0.0);
        spins.push(total);
        spins.push(total * 1.5 + 1.0);
        for spin in spins {
            let fast = prefix_pick(&prefix, spin);
            let slow = linear_pick(&prefix, spin);
            prop_assert_eq!(
                fast, slow,
                "spin {} over prefix {:?} diverged", spin, prefix
            );
        }
    }
}
