//! The shared evaluation kernel.
//!
//! Every scheduler in this crate ultimately scores candidate cloudlet→VM
//! bindings with the same two formulas: the Eq. 6 expected execution time
//! `d(c, v)` and the Eq. 1 processing cost. Before this module existed each
//! algorithm recomputed those quantities in its own inner loop through
//! [`crate::problem::SchedulingProblem::expected_exec_ms`], and each kept a
//! private per-VM load vector for makespan/balance bookkeeping. This module
//! centralizes all of it:
//!
//! * [`EvalCache`] — built once per problem; precomputes the per-VM rate
//!   factors and per-cloudlet lengths so `d(c, v)` becomes a cached lookup
//!   (dense ETC matrix under [`DENSE_ETC_MAX_ENTRIES`], exact on-the-fly
//!   recomputation above it), and scores whole assignments with the same
//!   floating-point evaluation order as
//!   [`crate::objective::score_assignment`] — results are bit-identical.
//! * [`LoadTracker`] — incremental per-VM busy time with running min / max /
//!   sum order statistics, so makespan, the Eq. 13 imbalance and the Eq. 1
//!   total cost update in O(log V) per (re)assignment instead of O(C·V)
//!   from scratch.
//! * [`evaluate_population`] / [`par_map`] — the one place batch scoring
//!   fans out over threads (behind the `parallel` feature); GA, PSO and
//!   ACO all route their population/tour evaluation through it instead of
//!   owning private `rayon` call sites.
//!
//! Determinism: nothing in this module draws randomness, and the parallel
//! map is order-preserving, so schedulers refactored onto the kernel
//! produce byte-identical assignments per seed.

mod cache;
mod population;
mod tracker;

pub use cache::{CandidateBlock, EvalCache, DENSE_ETC_MAX_ENTRIES, ETA_POW_MAX_ENTRIES};
pub use population::{evaluate_population, par_map, par_map_if, Genome, MIN_PAR_ITEMS};
pub use tracker::{LoadTracker, MinLoadHeap};
