//! Incremental load tracking for cache-backed scoring.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use crate::eval::EvalCache;
use crate::objective::Objective;

/// Multiset insert over bit-keyed `f64` values.
fn ms_insert(set: &mut BTreeMap<u64, u32>, bits: u64) {
    *set.entry(bits).or_insert(0) += 1;
}

/// Multiset remove; panics if the value is absent (a tracker bug).
fn ms_remove(set: &mut BTreeMap<u64, u32>, bits: u64) {
    match set.get_mut(&bits) {
        Some(n) if *n > 1 => *n -= 1,
        Some(_) => {
            set.remove(&bits);
        }
        None => unreachable!("tracker multiset lost a value"),
    }
}

/// Incremental per-VM busy-time tracker.
///
/// Maintains, under `assign` / `unassign` / speculative `score_if` moves:
///
/// * the per-VM estimated load (sum of Eq. 6 times of bound cloudlets),
/// * a sorted multiset of those loads — makespan is an O(1) max lookup,
/// * a sorted multiset of the assigned cloudlets' `d` values plus their
///   running sum — the Eq. 13 imbalance is an O(1) min/max/sum read,
/// * the running Eq. 1 cost total.
///
/// Each (re)assignment is O(log V + log C) for the multiset updates; the
/// three objective scores are O(1) reads. The multisets key values by
/// [`f64::to_bits`], which orders non-negative floats correctly and lets
/// speculative moves revert *exactly* (the inserted key is removed, the
/// removed key reinserted — no floating-point drift).
///
/// Floating-point caveat: `unassign` subtracts from a running sum, and
/// `(x + d) - d` is not always `x` in IEEE arithmetic. Assign-only
/// sequences match a from-scratch [`EvalCache::score`] bit for bit (same
/// accumulation per VM when performed in cloudlet order); sequences with
/// unassignments agree to relative rounding error only.
#[derive(Debug, Clone)]
pub struct LoadTracker {
    /// Estimated busy time per VM, in ms.
    load: Vec<f64>,
    /// Which VM each cloudlet is currently bound to, if any.
    vm_of: Vec<Option<u32>>,
    /// Multiset of `load` values (every VM, idle ones included).
    loads_ms: BTreeMap<u64, u32>,
    /// Multiset of the assigned cloudlets' Eq. 6 times.
    d_values: BTreeMap<u64, u32>,
    /// Running sum of the assigned cloudlets' Eq. 6 times.
    d_sum: f64,
    /// Running Eq. 1 cost total.
    cost_total: f64,
    /// Number of currently assigned cloudlets.
    assigned: usize,
}

impl LoadTracker {
    /// An empty tracker sized for `cache`'s problem — every VM idle,
    /// every cloudlet unassigned.
    pub fn new(cache: &EvalCache) -> Self {
        let mut loads_ms = BTreeMap::new();
        loads_ms.insert(0.0f64.to_bits(), cache.vm_count() as u32);
        LoadTracker {
            load: vec![0.0; cache.vm_count()],
            vm_of: vec![None; cache.cloudlet_count()],
            loads_ms,
            d_values: BTreeMap::new(),
            d_sum: 0.0,
            cost_total: 0.0,
            assigned: 0,
        }
    }

    /// Binds cloudlet `c` to VM `v`. Panics (debug) if `c` is already
    /// assigned — use [`LoadTracker::reassign`] to move it.
    pub fn assign(&mut self, cache: &EvalCache, c: usize, v: usize) {
        debug_assert!(self.vm_of[c].is_none(), "cloudlet {c} already assigned");
        let d = cache.exec_ms(c, v);
        let old = self.load[v];
        let new = old + d;
        ms_remove(&mut self.loads_ms, old.to_bits());
        ms_insert(&mut self.loads_ms, new.to_bits());
        self.load[v] = new;
        ms_insert(&mut self.d_values, d.to_bits());
        self.d_sum += d;
        self.cost_total += cache.cost(c, v);
        self.vm_of[c] = Some(v as u32);
        self.assigned += 1;
    }

    /// Unbinds cloudlet `c`, returning the VM it was on. Panics if `c` is
    /// not assigned.
    pub fn unassign(&mut self, cache: &EvalCache, c: usize) -> usize {
        let v = self.vm_of[c].take().expect("cloudlet not assigned") as usize;
        let d = cache.exec_ms(c, v);
        let old = self.load[v];
        // Clamp at zero: `(x + d) - d` can round below zero, and negative
        // floats would break the bit-keyed multiset's ordering.
        let new = (old - d).max(0.0);
        ms_remove(&mut self.loads_ms, old.to_bits());
        ms_insert(&mut self.loads_ms, new.to_bits());
        self.load[v] = new;
        ms_remove(&mut self.d_values, d.to_bits());
        self.d_sum -= d;
        self.cost_total -= cache.cost(c, v);
        self.assigned -= 1;
        if self.assigned == 0 {
            // Drop any accumulated rounding residue once nothing is bound.
            self.d_sum = 0.0;
            self.cost_total = 0.0;
        }
        v
    }

    /// Moves cloudlet `c` to VM `v` (no-op when already there).
    pub fn reassign(&mut self, cache: &EvalCache, c: usize, v: usize) {
        if self.vm_of[c] == Some(v as u32) {
            return;
        }
        if self.vm_of[c].is_some() {
            self.unassign(cache, c);
        }
        self.assign(cache, c, v);
    }

    /// The VM cloudlet `c` is bound to, if any.
    pub fn vm_of(&self, c: usize) -> Option<usize> {
        self.vm_of[c].map(|v| v as usize)
    }

    /// Estimated busy time of VM `v`, in ms.
    #[inline]
    pub fn load(&self, v: usize) -> f64 {
        self.load[v]
    }

    /// Estimated busy time of every VM, in ms.
    pub fn loads(&self) -> &[f64] {
        &self.load
    }

    /// Number of currently assigned cloudlets.
    pub fn assigned_count(&self) -> usize {
        self.assigned
    }

    /// Estimated makespan — the largest per-VM load (O(1)).
    pub fn makespan(&self) -> f64 {
        self.loads_ms
            .last_key_value()
            .map(|(bits, _)| f64::from_bits(*bits))
            .unwrap_or(0.0)
    }

    /// Running Eq. 1 cost of the assigned cloudlets (O(1)).
    pub fn cost(&self) -> f64 {
        self.cost_total
    }

    /// Eq. 13 imbalance over the assigned cloudlets' Eq. 6 times (O(1)):
    /// `(max d − min d) / (mean d)`, 0 when nothing is assigned or every
    /// time is zero.
    pub fn balance(&self) -> f64 {
        if self.assigned == 0 || self.d_sum == 0.0 {
            return 0.0;
        }
        let min = f64::from_bits(*self.d_values.first_key_value().expect("assigned > 0").0);
        let max = f64::from_bits(*self.d_values.last_key_value().expect("assigned > 0").0);
        (max - min) / (self.d_sum / self.assigned as f64)
    }

    /// Current score under `objective` — lower is better.
    pub fn score(&self, objective: Objective) -> f64 {
        match objective {
            Objective::Makespan => self.makespan(),
            Objective::Cost => self.cost(),
            Objective::Balance => self.balance(),
        }
    }

    /// Score the tracker *would* have if unassigned cloudlet `c` were
    /// bound to VM `v`. The speculative move is applied and then reverted
    /// exactly (bit-keyed multiset insert/remove, scalar save/restore), so
    /// the tracker state is untouched down to the last bit.
    pub fn score_if(&mut self, cache: &EvalCache, c: usize, v: usize, objective: Objective) -> f64 {
        debug_assert!(
            self.vm_of[c].is_none(),
            "score_if needs an unassigned cloudlet"
        );
        let d = cache.exec_ms(c, v);
        let old = self.load[v];
        let old_bits = old.to_bits();
        let new = old + d;
        let new_bits = new.to_bits();
        let saved_sum = self.d_sum;
        let saved_cost = self.cost_total;

        ms_remove(&mut self.loads_ms, old_bits);
        ms_insert(&mut self.loads_ms, new_bits);
        self.load[v] = new;
        ms_insert(&mut self.d_values, d.to_bits());
        self.d_sum += d;
        self.cost_total += cache.cost(c, v);
        self.assigned += 1;

        let score = self.score(objective);

        self.assigned -= 1;
        self.cost_total = saved_cost;
        self.d_sum = saved_sum;
        ms_remove(&mut self.d_values, d.to_bits());
        self.load[v] = old;
        ms_remove(&mut self.loads_ms, new_bits);
        ms_insert(&mut self.loads_ms, old_bits);
        score
    }

    /// Score change of binding unassigned cloudlet `c` to VM `v`:
    /// `score_if(c, v) − score()`. Negative deltas are improvements.
    pub fn delta(&mut self, cache: &EvalCache, c: usize, v: usize, objective: Objective) -> f64 {
        let before = self.score(objective);
        self.score_if(cache, c, v, objective) - before
    }
}

/// Min-heap of `(load, vm)` pairs ordered by [`f64::total_cmp`] then VM id
/// — the "least-loaded VM" structure HBO's scouts pop from and push back
/// with the updated load. Extracted here so the tie-breaking order is
/// defined once.
#[derive(Debug, Clone, Default)]
pub struct MinLoadHeap {
    heap: BinaryHeap<Reverse<(TotalF64, u32)>>,
}

/// Total order over f64 load values (`total_cmp`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct TotalF64(f64);

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl MinLoadHeap {
    /// An empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a `(load, vm)` entry.
    pub fn push(&mut self, load: f64, vm: u32) {
        self.heap.push(Reverse((TotalF64(load), vm)));
    }

    /// Removes and returns the least-loaded entry (ties broken by the
    /// smaller VM id).
    pub fn pop(&mut self) -> Option<(f64, u32)> {
        self.heap
            .pop()
            .map(|Reverse((TotalF64(load), vm))| (load, vm))
    }

    /// The least-loaded entry without removing it.
    pub fn peek(&self) -> Option<(f64, u32)> {
        self.heap
            .peek()
            .map(|Reverse((TotalF64(load), vm))| (*load, *vm))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no entries remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::SchedulingProblem;
    use simcloud::characteristics::CostModel;
    use simcloud::cloudlet::CloudletSpec;
    use simcloud::ids::VmId;
    use simcloud::vm::VmSpec;

    fn hetero_problem() -> SchedulingProblem {
        let vms: Vec<VmSpec> = (0..5)
            .map(|i| VmSpec::new(500.0 + 600.0 * (i % 3) as f64, 5_000.0, 512.0, 500.0, 1))
            .collect();
        let cloudlets: Vec<CloudletSpec> = (0..17)
            .map(|i| CloudletSpec::new(800.0 + 400.0 * (i % 7) as f64, 150.0, 150.0, 1))
            .collect();
        SchedulingProblem::single_datacenter(vms, cloudlets, CostModel::new(0.01, 0.001, 0.01, 3.0))
    }

    #[test]
    fn assign_only_matches_from_scratch_bitwise() {
        let p = hetero_problem();
        let cache = EvalCache::new(&p);
        let mut tracker = LoadTracker::new(&cache);
        let plan: Vec<VmId> = (0..p.cloudlet_count())
            .map(|c| VmId(((c * 3 + 1) % p.vm_count()) as u32))
            .collect();
        for (c, vm) in plan.iter().enumerate() {
            tracker.assign(&cache, c, vm.index());
        }
        for objective in Objective::ALL {
            assert_eq!(
                tracker.score(objective).to_bits(),
                cache.score(&plan, objective).to_bits(),
                "{objective:?} diverged"
            );
        }
        assert_eq!(tracker.assigned_count(), p.cloudlet_count());
    }

    #[test]
    fn unassign_restores_scores_approximately() {
        let p = hetero_problem();
        let cache = EvalCache::new(&p);
        let mut tracker = LoadTracker::new(&cache);
        for c in 0..p.cloudlet_count() {
            tracker.assign(&cache, c, c % p.vm_count());
        }
        let before: Vec<f64> = Objective::ALL.iter().map(|o| tracker.score(*o)).collect();
        // Move a few cloudlets away and back.
        for c in [0, 5, 11] {
            let v = tracker.unassign(&cache, c);
            tracker.assign(&cache, c, (v + 2) % p.vm_count());
            tracker.reassign(&cache, c, v);
        }
        for (objective, b) in Objective::ALL.iter().zip(before) {
            let after = tracker.score(*objective);
            assert!(
                (after - b).abs() <= 1e-9 * b.abs().max(1.0),
                "{objective:?}: {after} vs {b}"
            );
        }
    }

    #[test]
    fn score_if_leaves_state_bit_identical() {
        let p = hetero_problem();
        let cache = EvalCache::new(&p);
        let mut tracker = LoadTracker::new(&cache);
        for c in 1..p.cloudlet_count() {
            tracker.assign(&cache, c, (c * 2) % p.vm_count());
        }
        let loads_before: Vec<u64> = tracker.loads().iter().map(|l| l.to_bits()).collect();
        let scores_before: Vec<u64> = Objective::ALL
            .iter()
            .map(|o| tracker.score(*o).to_bits())
            .collect();
        for v in 0..p.vm_count() {
            for objective in Objective::ALL {
                let speculative = tracker.score_if(&cache, 0, v, objective);
                assert!(speculative.is_finite());
                let _ = tracker.delta(&cache, 0, v, objective);
            }
        }
        let loads_after: Vec<u64> = tracker.loads().iter().map(|l| l.to_bits()).collect();
        let scores_after: Vec<u64> = Objective::ALL
            .iter()
            .map(|o| tracker.score(*o).to_bits())
            .collect();
        assert_eq!(loads_before, loads_after);
        assert_eq!(scores_before, scores_after);
        assert_eq!(tracker.vm_of(0), None);
    }

    #[test]
    fn score_if_equals_commit_then_score() {
        let p = hetero_problem();
        let cache = EvalCache::new(&p);
        let mut tracker = LoadTracker::new(&cache);
        for c in 1..6 {
            tracker.assign(&cache, c, c % p.vm_count());
        }
        for objective in Objective::ALL {
            let speculative = tracker.score_if(&cache, 0, 3, objective);
            tracker.assign(&cache, 0, 3);
            assert_eq!(speculative.to_bits(), tracker.score(objective).to_bits());
            tracker.unassign(&cache, 0);
        }
    }

    #[test]
    fn makespan_counts_idle_vms_as_zero() {
        let p = hetero_problem();
        let cache = EvalCache::new(&p);
        let mut tracker = LoadTracker::new(&cache);
        assert_eq!(tracker.makespan(), 0.0);
        assert_eq!(tracker.balance(), 0.0);
        assert_eq!(tracker.cost(), 0.0);
        tracker.assign(&cache, 0, 2);
        assert_eq!(tracker.makespan().to_bits(), cache.exec_ms(0, 2).to_bits());
        assert_eq!(tracker.balance(), 0.0, "single cloudlet has max == min");
    }

    #[test]
    fn min_load_heap_orders_by_load_then_vm() {
        let mut heap = MinLoadHeap::new();
        assert!(heap.is_empty());
        heap.push(5.0, 1);
        heap.push(2.0, 9);
        heap.push(2.0, 3);
        heap.push(7.0, 0);
        assert_eq!(heap.len(), 4);
        assert_eq!(heap.peek(), Some((2.0, 3)));
        assert_eq!(heap.pop(), Some((2.0, 3)));
        assert_eq!(heap.pop(), Some((2.0, 9)));
        assert_eq!(heap.pop(), Some((5.0, 1)));
        assert_eq!(heap.pop(), Some((7.0, 0)));
        assert_eq!(heap.pop(), None);
    }
}
