//! Per-problem evaluation cache for Eq. 6 times and Eq. 1 costs.

use std::sync::OnceLock;

use simcloud::cost::LENGTH_NORM_MI;
use simcloud::ids::VmId;

use crate::objective::Objective;
use crate::problem::SchedulingProblem;

/// Largest `cloudlets × vms` product for which [`EvalCache::new`] also
/// materializes the dense ETC (expected-time-to-compute) matrix — 2²³
/// entries, 64 MB of `f64`. Above the threshold the cache falls back to
/// recomputing `d(c, v)` on demand from the precomputed per-VM and
/// per-cloudlet factors; the fallback evaluates the exact expression used
/// to fill the matrix, so scores are bit-identical either way.
pub const DENSE_ETC_MAX_ENTRIES: usize = 1 << 23;

/// Largest `batch × vms` product for which [`EvalCache::eta_pow_block`]
/// materializes the η^β block — 2²² entries, 32 MB of `f64` per colony.
/// Colonies run in parallel, so this scratch is per-thread; above the cap
/// ACO falls back to computing η^β per candidate (identical values).
pub const ETA_POW_MAX_ENTRIES: usize = 1 << 22;

/// Immutable evaluation cache, built once per [`SchedulingProblem`].
///
/// Holds the raw factors of Eq. 6 (`length`, `pes`, `file_size` per
/// cloudlet; `mips`, `pes`, `bw` per VM) in flat arrays, the per-VM Eq. 1
/// rate factors, and — when the problem is small enough — the dense ETC
/// matrix. All evaluation replicates the floating-point expression order of
/// [`SchedulingProblem::expected_exec_ms`] and
/// [`crate::objective::score_assignment`] exactly, so a cached score equals
/// the uncached one bit for bit.
pub struct EvalCache {
    cl_len: Vec<f64>,
    cl_pes: Vec<u32>,
    cl_file: Vec<f64>,
    vm_mips: Vec<f64>,
    vm_pes: Vec<u32>,
    vm_bw: Vec<f64>,
    /// Eq. 1 `(Size + M + Bw)` factor of the datacenter hosting each VM.
    vm_resource_rate: Vec<f64>,
    /// `per_processing` price of the datacenter hosting each VM.
    vm_per_processing: Vec<f64>,
    /// Row-major `[c * vm_count + v]` Eq. 6 matrix, when materialized.
    etc: Option<Vec<f64>>,
    /// Lazily built η-proportional candidate ring (see [`CandidateRing`]);
    /// shared by every colony scheduling against this cache.
    ring: OnceLock<CandidateRing>,
}

/// η-proportional stratified candidate ring.
///
/// A naive per-cloudlet "top-k VMs by η" collapses on fleets with one
/// shared speed ranking (homogeneous or MIPS-sorted): every cloudlet
/// would list the *same* k fastest VMs, the batch tabu rule exhausts
/// them after k slots, and all load concentrates on a handful of VMs.
/// Instead the ring tiles `vm_count` cells with VMs *proportionally to
/// their canonical desirability* (η̂ against a mean reference cloudlet):
/// fast VMs own many cells, slow VMs few (possibly zero). Cloudlet `c`'s
/// candidate list is the first k distinct VMs read clockwise from cell
/// `(c * k) % cells`, so consecutive batch slots consume disjoint cell
/// windows (tabu-friendly) while faster VMs still appear in ∝η̂-many
/// lists. For a homogeneous fleet every VM owns exactly one cell and the
/// lists degenerate to round-robin tiles.
struct CandidateRing {
    /// `cells[i]` = VM index owning cell `i`; `len == vm_count`.
    cells: Vec<u32>,
    /// Number of distinct VMs owning at least one cell (effective upper
    /// bound on candidate-list width).
    distinct: usize,
}

impl CandidateRing {
    fn build(cache: &EvalCache) -> Self {
        let v = cache.vm_count();
        if v == 0 {
            return CandidateRing {
                cells: Vec::new(),
                distinct: 0,
            };
        }
        let c_count = cache.cloudlet_count().max(1) as f64;
        // Canonical reference cloudlet: mean length/file size, mean PEs.
        let mean_len = cache.cl_len.iter().sum::<f64>() / c_count;
        let mean_file = cache.cl_file.iter().sum::<f64>() / c_count;
        let mean_pes = (cache.cl_pes.iter().map(|&p| u64::from(p)).sum::<u64>() as f64 / c_count)
            .round()
            .max(1.0);
        let score = |vm: usize| -> f64 {
            let pes = f64::from(cache.vm_pes[vm]).min(mean_pes);
            let compute_ms = mean_len / (pes * cache.vm_mips[vm]) * 1_000.0;
            let staging_ms = mean_file * 8.0 / cache.vm_bw[vm] * 1_000.0;
            let eta = 1.0 / (compute_ms + staging_ms);
            if eta.is_finite() && eta > 0.0 {
                eta
            } else {
                0.0
            }
        };
        let mut order: Vec<u32> = (0..v as u32).collect();
        let scores: Vec<f64> = (0..v).map(score).collect();
        order.sort_by(|&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let total: f64 = order.iter().map(|&vm| scores[vm as usize]).sum();
        let mut cells = Vec::with_capacity(v);
        if !(total.is_finite() && total > 0.0) {
            // Degenerate desirability (all zero/non-finite): uniform ring.
            cells.extend(0..v as u32);
        } else {
            // CDF-stratified tiling: cell i targets mass (i + ½)·total/v;
            // two monotone pointers make this O(v) overall.
            let mut ptr = 0usize;
            let mut prefix = scores[order[0] as usize];
            for i in 0..v {
                let target = (i as f64 + 0.5) * total / v as f64;
                while prefix <= target && ptr + 1 < v {
                    ptr += 1;
                    prefix += scores[order[ptr] as usize];
                }
                cells.push(order[ptr]);
            }
        }
        let mut seen = vec![false; v];
        let mut distinct = 0usize;
        for &vm in &cells {
            if !seen[vm as usize] {
                seen[vm as usize] = true;
                distinct += 1;
            }
        }
        CandidateRing { cells, distinct }
    }
}

/// Dense per-batch candidate block: for each slot (cloudlet) of a batch,
/// the `k` candidate VM indices and their exact `η(c, vm)^β` weights,
/// slot-major (`[slot * k + rank]`). Built by
/// [`EvalCache::candidate_block`] once per colony; the ACO fast path
/// reads it instead of scanning all VMs.
pub struct CandidateBlock {
    k: usize,
    /// Candidate VM indices, `[slot * k + rank]`.
    idx: Vec<u32>,
    /// `η(c, idx)^β` matching `idx` entry-wise (non-finite clipped to 0).
    eta_pow: Vec<f64>,
    /// Per-slot `Σ η^β` over the row (alias-table base mass).
    eta_sum: Vec<f64>,
}

impl CandidateBlock {
    /// Effective candidate-list width (≤ requested k; shrinks when the
    /// ring holds fewer distinct VMs).
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of slots covered.
    #[inline]
    pub fn slot_count(&self) -> usize {
        self.eta_sum.len()
    }

    /// Candidate VM indices of slot `s`.
    #[inline]
    pub fn row(&self, s: usize) -> &[u32] {
        &self.idx[s * self.k..(s + 1) * self.k]
    }

    /// `η^β` weights of slot `s`, parallel to [`Self::row`].
    #[inline]
    pub fn eta_row(&self, s: usize) -> &[f64] {
        &self.eta_pow[s * self.k..(s + 1) * self.k]
    }

    /// `Σ η^β` over slot `s`'s row.
    #[inline]
    pub fn eta_sum(&self, s: usize) -> f64 {
        self.eta_sum[s]
    }
}

impl EvalCache {
    /// Builds the cache, materializing the dense ETC matrix when the
    /// problem is at most [`DENSE_ETC_MAX_ENTRIES`] pairs.
    pub fn new(problem: &SchedulingProblem) -> Self {
        let dense = problem
            .cloudlet_count()
            .checked_mul(problem.vm_count())
            .is_some_and(|entries| entries <= DENSE_ETC_MAX_ENTRIES);
        Self::with_dense(problem, dense)
    }

    /// Builds the cache without the dense matrix — per-VM and per-cloudlet
    /// factors only. Right for one-shot scoring where filling an O(C·V)
    /// matrix would cost more than it saves.
    pub fn lite(problem: &SchedulingProblem) -> Self {
        Self::with_dense(problem, false)
    }

    /// Builds the cache with explicit control over ETC materialization.
    pub fn with_dense(problem: &SchedulingProblem, dense: bool) -> Self {
        let mut cache = EvalCache {
            cl_len: problem.cloudlets.iter().map(|cl| cl.length_mi).collect(),
            cl_pes: problem.cloudlets.iter().map(|cl| cl.pes).collect(),
            cl_file: problem.cloudlets.iter().map(|cl| cl.file_size_mb).collect(),
            vm_mips: problem.vms.iter().map(|vm| vm.mips).collect(),
            vm_pes: problem.vms.iter().map(|vm| vm.pes).collect(),
            vm_bw: problem.vms.iter().map(|vm| vm.bw_mbps).collect(),
            vm_resource_rate: (0..problem.vm_count())
                .map(|v| simcloud::cost::resource_rate(problem.cost_of_vm(v), &problem.vms[v]))
                .collect(),
            vm_per_processing: (0..problem.vm_count())
                .map(|v| problem.cost_of_vm(v).per_processing)
                .collect(),
            etc: None,
            ring: OnceLock::new(),
        };
        if dense {
            let v = cache.vm_count();
            let mut etc = Vec::with_capacity(cache.cloudlet_count() * v);
            for c in 0..cache.cloudlet_count() {
                for vm in 0..v {
                    etc.push(cache.compute_exec_ms(c, vm));
                }
            }
            cache.etc = Some(etc);
        }
        cache
    }

    /// Warm-wave retarget: swaps the *cloudlet* side of the cache for
    /// `problem`'s cloudlets while keeping every per-VM artifact — the
    /// Eq. 1 rate factors and the lazily-built η-proportional candidate
    /// ring. The streaming broker calls this once per wave against an
    /// unchanged fleet, turning the O(#VMs) per-wave rebuild into
    /// O(#wave-cloudlets). Evaluation stays bit-identical to a fresh
    /// cache over the same problem (`exec_ms`/`score`/`cost` read only
    /// per-VM factors plus the swapped arrays); the kept ring was seeded
    /// from the cloudlet mix of the wave that built it, which only biases
    /// *candidate-list quality*, never scores — accepted staleness under
    /// the warm-state contract (see DESIGN.md "Streaming broker").
    ///
    /// The dense ETC matrix is rebuilt iff it was materialized before and
    /// the new `cloudlets × vms` product still fits
    /// [`DENSE_ETC_MAX_ENTRIES`]; a lite cache stays lite.
    ///
    /// # Panics
    /// If `problem`'s fleet size differs from the cached one — the fleet
    /// must be unchanged for the per-VM half to remain valid.
    pub fn retarget_cloudlets(&mut self, problem: &SchedulingProblem) {
        assert_eq!(
            problem.vm_count(),
            self.vm_count(),
            "retarget requires an unchanged fleet"
        );
        self.cl_len = problem.cloudlets.iter().map(|cl| cl.length_mi).collect();
        self.cl_pes = problem.cloudlets.iter().map(|cl| cl.pes).collect();
        self.cl_file = problem.cloudlets.iter().map(|cl| cl.file_size_mb).collect();
        let v = self.vm_count();
        let dense = self.etc.is_some()
            && self
                .cloudlet_count()
                .checked_mul(v)
                .is_some_and(|entries| entries <= DENSE_ETC_MAX_ENTRIES);
        self.etc = None;
        if dense {
            let mut etc = Vec::with_capacity(self.cloudlet_count() * v);
            for c in 0..self.cloudlet_count() {
                for vm in 0..v {
                    etc.push(self.compute_exec_ms(c, vm));
                }
            }
            self.etc = Some(etc);
        }
    }

    /// Number of VMs covered.
    #[inline]
    pub fn vm_count(&self) -> usize {
        self.vm_mips.len()
    }

    /// Number of cloudlets covered.
    #[inline]
    pub fn cloudlet_count(&self) -> usize {
        self.cl_len.len()
    }

    /// True when the dense ETC matrix is materialized.
    pub fn has_dense_etc(&self) -> bool {
        self.etc.is_some()
    }

    /// Length of cloudlet `c` in MI (Eq. 1's `TCL_j` factor).
    #[inline]
    pub fn cloudlet_len_mi(&self, c: usize) -> f64 {
        self.cl_len[c]
    }

    /// Eq. 6 from the cached factors — the identical floating-point
    /// expression [`SchedulingProblem::expected_exec_ms`] evaluates
    /// (compute over the effective PEs plus input staging over the VM's
    /// bandwidth, both in ms).
    #[inline]
    fn compute_exec_ms(&self, c: usize, v: usize) -> f64 {
        let compute_ms = self.cl_len[c]
            / (f64::from(self.cl_pes[c].min(self.vm_pes[v])) * self.vm_mips[v])
            * 1_000.0;
        let staging_ms = self.cl_file[c] * 8.0 / self.vm_bw[v] * 1_000.0;
        compute_ms + staging_ms
    }

    /// Eq. 6 expected execution time of cloudlet `c` on VM `v`, in ms.
    /// A dense-matrix lookup when materialized, otherwise recomputed from
    /// the cached factors — bit-identical either way.
    #[inline]
    pub fn exec_ms(&self, c: usize, v: usize) -> f64 {
        match &self.etc {
            Some(etc) => etc[c * self.vm_count() + v],
            None => self.compute_exec_ms(c, v),
        }
    }

    /// Eq. 6's heuristic desirability `η = 1 / d`.
    #[inline]
    pub fn heuristic(&self, c: usize, v: usize) -> f64 {
        1.0 / self.exec_ms(c, v)
    }

    /// Materializes `η(c, j)^β` for every (cloudlet, VM) pair of a batch —
    /// the Eq. 5 heuristic factor ACO's tour construction reads per
    /// candidate. Row-major: entry `(c - slots.start) * vm_count + j`.
    /// Each entry is exactly `self.heuristic(c, j).powf(beta)`, so a
    /// precomputed block is bit-identical to the inline expression.
    ///
    /// Returns `None` when the block would exceed
    /// [`ETA_POW_MAX_ENTRIES`] or cost more `powf` calls than the expected
    /// number of candidate lookups it replaces (`expected_lookups`);
    /// callers then fall back to the inline per-candidate expression.
    pub fn eta_pow_block(
        &self,
        slots: std::ops::Range<usize>,
        beta: f64,
        expected_lookups: usize,
    ) -> Option<Vec<f64>> {
        let v = self.vm_count();
        let entries = slots.len().checked_mul(v)?;
        if entries == 0 || entries > ETA_POW_MAX_ENTRIES || entries > expected_lookups {
            return None;
        }
        let mut block = Vec::with_capacity(entries);
        for c in slots {
            for j in 0..v {
                block.push(self.heuristic(c, j).powf(beta));
            }
        }
        Some(block)
    }

    /// Builds the dense candidate block for a batch of slots: per slot the
    /// `k` distinct candidate VMs read from the η-proportional ring
    /// starting at cell `(c * k) % vm_count`, with exact `η(c, vm)^β`
    /// weights (`heuristic(c, vm).powf(beta)`, non-finite clipped to 0).
    ///
    /// The effective width may shrink below `k` when the ring holds fewer
    /// distinct VMs (heavy η skew can leave the slowest VMs without a
    /// cell); read it back from [`CandidateBlock::k`]. The ring itself is
    /// built once per cache and shared across colonies/threads.
    pub fn candidate_block(
        &self,
        slots: std::ops::Range<usize>,
        k: usize,
        beta: f64,
    ) -> CandidateBlock {
        let v = self.vm_count();
        let ring = self.ring.get_or_init(|| CandidateRing::build(self));
        let k = k.min(ring.distinct).max(usize::from(v > 0));
        let b = slots.len();
        let mut idx = Vec::with_capacity(b * k);
        let mut eta_pow = Vec::with_capacity(b * k);
        let mut eta_sum = Vec::with_capacity(b);
        // Generation-stamped dedup: one u32 array reused across slots.
        let mut stamp = vec![0u32; v];
        let mut generation = 0u32;
        for c in slots {
            generation = generation.wrapping_add(1);
            let mut cell = (c * k) % v.max(1);
            let mut taken = 0usize;
            let mut scanned = 0usize;
            let mut sum = 0.0;
            while taken < k && scanned < v {
                let vm = ring.cells[cell];
                cell += 1;
                if cell == v {
                    cell = 0;
                }
                scanned += 1;
                if stamp[vm as usize] == generation {
                    continue;
                }
                stamp[vm as usize] = generation;
                let w = self.heuristic(c, vm as usize).powf(beta);
                let w = if w.is_finite() { w } else { 0.0 };
                idx.push(vm);
                eta_pow.push(w);
                sum += w;
                taken += 1;
            }
            debug_assert_eq!(taken, k, "ring guarantees k ≤ distinct VMs");
            eta_sum.push(sum);
        }
        CandidateBlock {
            k,
            idx,
            eta_pow,
            eta_sum,
        }
    }

    /// Eq. 1 processing cost of cloudlet `c` on VM `v`, using the Eq. 6
    /// estimate as the CPU time — the exact term
    /// [`crate::objective::score_assignment`] sums for [`Objective::Cost`].
    #[inline]
    pub fn cost(&self, c: usize, v: usize) -> f64 {
        let cpu_seconds = self.exec_ms(c, v) / 1_000.0;
        let resource_term = self.vm_resource_rate[v] * (self.cl_len[c] / LENGTH_NORM_MI);
        let cpu_term = self.vm_per_processing[v] * cpu_seconds;
        resource_term + cpu_term
    }

    /// Per-VM estimated busy time of a plan (the quantity load-aware
    /// schedulers balance), accumulated in cloudlet order like
    /// [`crate::assignment::Assignment::estimated_load_ms`].
    pub fn load_vector(&self, plan: &[VmId]) -> Vec<f64> {
        let mut load = vec![0.0; self.vm_count()];
        for (c, vm) in plan.iter().enumerate() {
            load[vm.index()] += self.exec_ms(c, vm.index());
        }
        load
    }

    /// Scores a cloudlet→VM plan under `objective` — lower is better.
    /// Bit-identical to [`crate::objective::score_assignment`] on the
    /// problem the cache was built from.
    pub fn score(&self, plan: &[VmId], objective: Objective) -> f64 {
        self.score_iter(plan.iter().map(|vm| vm.index()), objective)
    }

    /// Scores a raw `u32` gene vector (GA chromosomes, ACO tours) without
    /// converting it into an [`crate::assignment::Assignment`] first.
    pub fn score_genes(&self, genes: &[u32], objective: Objective) -> f64 {
        self.score_iter(genes.iter().map(|g| *g as usize), objective)
    }

    /// Shared scoring core; `vms[i]` is the VM index of cloudlet `i`. The
    /// iteration order replicates `score_assignment` exactly so results
    /// match bit for bit.
    fn score_iter<I: Iterator<Item = usize>>(&self, vms: I, objective: Objective) -> f64 {
        match objective {
            Objective::Makespan => {
                let mut load = vec![0.0; self.vm_count()];
                for (c, v) in vms.enumerate() {
                    load[v] += self.exec_ms(c, v);
                }
                load.into_iter().fold(0.0, f64::max)
            }
            Objective::Cost => {
                let mut total = 0.0;
                for (c, v) in vms.enumerate() {
                    total += self.cost(c, v);
                }
                total
            }
            Objective::Balance => {
                let mut min = f64::INFINITY;
                let mut max = f64::NEG_INFINITY;
                let mut sum = 0.0;
                let mut n = 0usize;
                for (c, v) in vms.enumerate() {
                    let d = self.exec_ms(c, v);
                    min = min.min(d);
                    max = max.max(d);
                    sum += d;
                    n += 1;
                }
                if n == 0 || sum == 0.0 {
                    0.0
                } else {
                    (max - min) / (sum / n as f64)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::Assignment;
    use crate::objective::score_assignment;
    use simcloud::characteristics::CostModel;
    use simcloud::cloudlet::CloudletSpec;
    use simcloud::ids::DatacenterId;
    use simcloud::vm::VmSpec;

    fn hetero_problem() -> SchedulingProblem {
        let vms: Vec<VmSpec> = (0..7)
            .map(|i| {
                VmSpec::new(
                    500.0 + 700.0 * (i % 4) as f64,
                    5_000.0,
                    512.0,
                    300.0 + 100.0 * (i % 3) as f64,
                    1 + (i % 2) as u32,
                )
            })
            .collect();
        let cloudlets: Vec<CloudletSpec> = (0..23)
            .map(|i| {
                CloudletSpec::new(
                    750.0 + 450.0 * (i % 9) as f64,
                    if i % 3 == 0 {
                        0.0
                    } else {
                        120.0 + 60.0 * (i % 4) as f64
                    },
                    100.0,
                    1 + (i % 3) as u32,
                )
            })
            .collect();
        let dcs = vec![
            crate::problem::DatacenterView {
                id: DatacenterId(0),
                cost: CostModel::new(0.05, 0.004, 0.05, 3.0),
            },
            crate::problem::DatacenterView {
                id: DatacenterId(1),
                cost: CostModel::new(0.01, 0.001, 0.01, 3.0),
            },
        ];
        let placement = (0..7).map(|i| DatacenterId(u32::from(i >= 4))).collect();
        SchedulingProblem::new(vms, cloudlets, dcs, placement).unwrap()
    }

    fn some_plan(problem: &SchedulingProblem) -> Vec<VmId> {
        (0..problem.cloudlet_count())
            .map(|c| VmId(((c * 5 + 3) % problem.vm_count()) as u32))
            .collect()
    }

    #[test]
    fn exec_ms_is_bit_identical_to_problem() {
        let p = hetero_problem();
        for cache in [EvalCache::new(&p), EvalCache::lite(&p)] {
            for c in 0..p.cloudlet_count() {
                for v in 0..p.vm_count() {
                    assert_eq!(
                        cache.exec_ms(c, v).to_bits(),
                        p.expected_exec_ms(c, v).to_bits(),
                        "d({c},{v}) diverged (dense={})",
                        cache.has_dense_etc()
                    );
                    assert_eq!(cache.heuristic(c, v).to_bits(), p.heuristic(c, v).to_bits());
                }
            }
        }
    }

    #[test]
    fn dense_matrix_respects_threshold() {
        let p = hetero_problem();
        assert!(EvalCache::new(&p).has_dense_etc());
        assert!(!EvalCache::lite(&p).has_dense_etc());
        assert!(!EvalCache::with_dense(&p, false).has_dense_etc());
    }

    #[test]
    fn scores_are_bit_identical_to_score_assignment() {
        let p = hetero_problem();
        let plan = some_plan(&p);
        let assignment = Assignment::new(plan.clone());
        for cache in [EvalCache::new(&p), EvalCache::lite(&p)] {
            for objective in Objective::ALL {
                assert_eq!(
                    cache.score(&plan, objective).to_bits(),
                    score_assignment(&p, &assignment, objective).to_bits(),
                    "{objective:?} diverged (dense={})",
                    cache.has_dense_etc()
                );
            }
        }
    }

    #[test]
    fn score_genes_matches_score() {
        let p = hetero_problem();
        let cache = EvalCache::new(&p);
        let plan = some_plan(&p);
        let genes: Vec<u32> = plan.iter().map(|vm| vm.0).collect();
        for objective in Objective::ALL {
            assert_eq!(
                cache.score_genes(&genes, objective).to_bits(),
                cache.score(&plan, objective).to_bits()
            );
        }
    }

    #[test]
    fn load_vector_matches_assignment() {
        let p = hetero_problem();
        let cache = EvalCache::new(&p);
        let plan = some_plan(&p);
        let expect = Assignment::new(plan.clone()).estimated_load_ms(&p);
        let got = cache.load_vector(&plan);
        assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(&expect) {
            assert_eq!(g.to_bits(), e.to_bits());
        }
    }

    #[test]
    fn cost_uses_per_datacenter_prices() {
        let p = hetero_problem();
        let cache = EvalCache::new(&p);
        // VM 0 sits in the expensive DC, VM 6 in the cheap one.
        assert!(cache.cost(0, 0) > cache.cost(0, 6));
    }

    #[test]
    fn eta_pow_block_matches_inline_expression() {
        let p = hetero_problem();
        let cache = EvalCache::new(&p);
        let beta = 0.99;
        let block = cache
            .eta_pow_block(3..9, beta, usize::MAX)
            .expect("small block materializes");
        assert_eq!(block.len(), 6 * p.vm_count());
        for (i, c) in (3..9).enumerate() {
            for v in 0..p.vm_count() {
                assert_eq!(
                    block[i * p.vm_count() + v].to_bits(),
                    cache.heuristic(c, v).powf(beta).to_bits()
                );
            }
        }
    }

    #[test]
    fn eta_pow_block_declines_unprofitable_work() {
        let p = hetero_problem();
        let cache = EvalCache::new(&p);
        // Fewer expected lookups than block entries: not worth it.
        assert!(cache.eta_pow_block(0..4, 0.99, 3).is_none());
        // Empty batch never materializes.
        assert!(cache.eta_pow_block(5..5, 0.99, usize::MAX).is_none());
    }

    fn uniform_problem(vm_count: usize, cloudlet_count: usize) -> SchedulingProblem {
        let vms: Vec<VmSpec> = (0..vm_count)
            .map(|_| VmSpec::new(1_000.0, 5_000.0, 512.0, 500.0, 1))
            .collect();
        let cloudlets: Vec<CloudletSpec> = (0..cloudlet_count)
            .map(|_| CloudletSpec::new(250.0, 100.0, 20.0, 1))
            .collect();
        SchedulingProblem::single_datacenter(vms, cloudlets, CostModel::default())
    }

    #[test]
    fn candidate_block_rows_are_distinct_and_in_range() {
        let p = hetero_problem();
        let cache = EvalCache::new(&p);
        for k in [1, 3, 5, 7, 20] {
            let block = cache.candidate_block(0..p.cloudlet_count(), k, 0.99);
            assert!(block.k() >= 1 && block.k() <= k.min(p.vm_count()));
            assert_eq!(block.slot_count(), p.cloudlet_count());
            for s in 0..block.slot_count() {
                let row = block.row(s);
                assert_eq!(row.len(), block.k());
                let mut seen = vec![false; p.vm_count()];
                for &vm in row {
                    assert!((vm as usize) < p.vm_count());
                    assert!(!seen[vm as usize], "duplicate VM in candidate row");
                    seen[vm as usize] = true;
                }
            }
        }
    }

    #[test]
    fn candidate_block_weights_match_inline_eta_pow() {
        let p = hetero_problem();
        let cache = EvalCache::new(&p);
        let beta = 0.99;
        let block = cache.candidate_block(0..p.cloudlet_count(), 4, beta);
        for s in 0..block.slot_count() {
            let mut sum = 0.0;
            for (&vm, &w) in block.row(s).iter().zip(block.eta_row(s)) {
                let expect = cache.heuristic(s, vm as usize).powf(beta);
                let expect = if expect.is_finite() { expect } else { 0.0 };
                assert_eq!(w.to_bits(), expect.to_bits());
                sum += w;
            }
            assert_eq!(block.eta_sum(s).to_bits(), sum.to_bits());
        }
    }

    #[test]
    fn homogeneous_ring_tiles_round_robin() {
        // Identical VMs: every VM owns exactly one cell, so consecutive
        // slots read disjoint k-windows and a sweep of ceil(v/k) slots
        // covers the whole fleet.
        let p = uniform_problem(10, 40);
        let cache = EvalCache::lite(&p);
        let k = 3;
        let block = cache.candidate_block(0..40, k, 0.99);
        assert_eq!(block.k(), k);
        let mut covered = vec![false; 10];
        for s in 0..4 {
            for &vm in block.row(s) {
                covered[vm as usize] = true;
            }
        }
        assert!(covered.iter().filter(|&&c| c).count() >= 10 - k);
        // Slot 0 and slot 1 windows are disjoint (cells 0..3 vs 3..6).
        let a: Vec<u32> = block.row(0).to_vec();
        let b: Vec<u32> = block.row(1).to_vec();
        assert!(a.iter().all(|vm| !b.contains(vm)));
    }

    #[test]
    fn faster_vms_own_more_ring_cells() {
        // One VM 8× faster than the rest: it should appear in far more
        // candidate lists than any single slow VM.
        let mut vms: Vec<VmSpec> = (0..16)
            .map(|_| VmSpec::new(500.0, 5_000.0, 512.0, 500.0, 1))
            .collect();
        vms[5] = VmSpec::new(4_000.0, 5_000.0, 512.0, 500.0, 1);
        // Compute-dominated cloudlets (no input staging), so the 8× MIPS
        // gap shows up in the canonical η.
        let cloudlets: Vec<CloudletSpec> = (0..64)
            .map(|_| CloudletSpec::new(2_000.0, 0.0, 0.0, 1))
            .collect();
        let p = SchedulingProblem::single_datacenter(vms, cloudlets, CostModel::default());
        let cache = EvalCache::lite(&p);
        let block = cache.candidate_block(0..64, 4, 0.99);
        let mut appearances = vec![0usize; 16];
        for s in 0..64 {
            for &vm in block.row(s) {
                appearances[vm as usize] += 1;
            }
        }
        // Dedup-walk boundary effects can inflate individual slow VMs
        // sitting just past the fast run, so compare against the *mean*
        // slow appearance count: the fast VM must be clearly over-
        // represented relative to a typical slow VM.
        let slow_total: usize = appearances
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != 5)
            .map(|(_, &n)| n)
            .sum();
        let slow_mean = slow_total as f64 / 15.0;
        assert!(
            appearances[5] as f64 > 1.5 * slow_mean,
            "fast VM appears {} times, slow mean {slow_mean:.1}",
            appearances[5]
        );
    }

    #[test]
    fn candidate_block_k_clamps_to_fleet() {
        let p = uniform_problem(4, 8);
        let cache = EvalCache::lite(&p);
        let block = cache.candidate_block(0..8, 32, 0.99);
        assert_eq!(block.k(), 4);
    }

    #[test]
    fn retarget_matches_fresh_cache_bitwise() {
        let first = hetero_problem();
        // Same fleet, different cloudlet mix (the next wave).
        let second = SchedulingProblem::new(
            first.vms.clone(),
            (0..31)
                .map(|i| CloudletSpec::new(500.0 + 333.0 * (i % 7) as f64, 50.0, 80.0, 1))
                .collect(),
            first.datacenters.clone(),
            first.vm_placement.clone(),
        )
        .unwrap();
        for lite in [false, true] {
            let mut warm = if lite {
                EvalCache::lite(&first)
            } else {
                EvalCache::new(&first)
            };
            // Prime the ring so retarget provably keeps it working.
            let _ = warm.candidate_block(0..first.cloudlet_count(), 3, 0.99);
            warm.retarget_cloudlets(&second);
            let fresh = EvalCache::new(&second);
            assert_eq!(warm.cloudlet_count(), 31);
            assert_eq!(warm.has_dense_etc(), !lite);
            for c in 0..second.cloudlet_count() {
                for v in 0..second.vm_count() {
                    assert_eq!(warm.exec_ms(c, v).to_bits(), fresh.exec_ms(c, v).to_bits());
                    assert_eq!(warm.cost(c, v).to_bits(), fresh.cost(c, v).to_bits());
                }
            }
            let plan = some_plan(&second);
            for objective in Objective::ALL {
                assert_eq!(
                    warm.score(&plan, objective).to_bits(),
                    fresh.score(&plan, objective).to_bits()
                );
            }
            let block = warm.candidate_block(0..31, 3, 0.99);
            assert_eq!(block.slot_count(), 31);
        }
    }

    #[test]
    fn retarget_rejects_fleet_changes() {
        let p = hetero_problem();
        let shrunk = SchedulingProblem::single_datacenter(
            p.vms[..3].to_vec(),
            p.cloudlets.clone(),
            CostModel::default(),
        );
        let mut cache = EvalCache::new(&p);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.retarget_cloudlets(&shrunk)
        }));
        assert!(result.is_err(), "fleet-size change must panic");
    }

    #[test]
    fn empty_plan_scores_zero() {
        let p = hetero_problem();
        let cache = EvalCache::new(&p);
        assert_eq!(cache.score(&[], Objective::Balance), 0.0);
        assert_eq!(cache.score(&[], Objective::Makespan), 0.0);
        assert_eq!(cache.score(&[], Objective::Cost), 0.0);
    }
}
