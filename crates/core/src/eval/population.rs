//! Batch (population) evaluation — the crate's single parallel fan-out.

use simcloud::ids::VmId;

use crate::assignment::Assignment;
use crate::eval::EvalCache;
use crate::objective::Objective;

/// Below this many items [`par_map`] stays sequential: thread dispatch
/// costs more than it saves on tiny batches.
pub const MIN_PAR_ITEMS: usize = 8;

/// Order-preserving map over `items`, parallel when the `parallel` feature
/// is enabled and the batch has at least [`MIN_PAR_ITEMS`] items. `f` must
/// be deterministic per item for schedulers to stay reproducible — the
/// output order always matches the input order regardless of thread count.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Send + Sync,
{
    #[cfg(feature = "parallel")]
    {
        use rayon::prelude::*;
        if items.len() >= MIN_PAR_ITEMS {
            return items.par_iter().map(&f).collect();
        }
    }
    items.iter().map(f).collect()
}

/// [`par_map`] with an extra caller-side gate: when `parallel_worthwhile`
/// is false (e.g. each item is too cheap to amortize a fork), the map runs
/// sequentially regardless of batch size.
pub fn par_map_if<T, U, F>(parallel_worthwhile: bool, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Send + Sync,
{
    if parallel_worthwhile {
        par_map(items, f)
    } else {
        items.iter().map(f).collect()
    }
}

/// Anything an [`EvalCache`] can score as a complete cloudlet→VM plan:
/// typed plans ([`Assignment`], `[VmId]`) and the raw `u32` chromosomes
/// GA/ACO breed.
pub trait Genome {
    /// Scores this genome under `objective` — lower is better. Bit-identical
    /// to [`crate::objective::score_assignment`] on the cached problem.
    fn score(&self, cache: &EvalCache, objective: Objective) -> f64;
}

impl Genome for [VmId] {
    fn score(&self, cache: &EvalCache, objective: Objective) -> f64 {
        cache.score(self, objective)
    }
}

impl Genome for Vec<VmId> {
    fn score(&self, cache: &EvalCache, objective: Objective) -> f64 {
        cache.score(self, objective)
    }
}

impl Genome for Assignment {
    fn score(&self, cache: &EvalCache, objective: Objective) -> f64 {
        cache.score(self.as_slice(), objective)
    }
}

impl Genome for [u32] {
    fn score(&self, cache: &EvalCache, objective: Objective) -> f64 {
        cache.score_genes(self, objective)
    }
}

impl Genome for Vec<u32> {
    fn score(&self, cache: &EvalCache, objective: Objective) -> f64 {
        cache.score_genes(self, objective)
    }
}

/// Scores every genome of a population, in input order — the shared entry
/// point GA, PSO and ACO use instead of private per-algorithm `rayon`
/// call sites. Parallel under the `parallel` feature for populations of
/// at least [`MIN_PAR_ITEMS`]; scoring draws no randomness, so results are
/// identical at any thread count.
pub fn evaluate_population<G>(cache: &EvalCache, population: &[G], objective: Objective) -> Vec<f64>
where
    G: Genome + Sync,
{
    par_map(population, |genome| genome.score(cache, objective))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::SchedulingProblem;
    use simcloud::characteristics::CostModel;
    use simcloud::cloudlet::CloudletSpec;
    use simcloud::vm::VmSpec;

    fn problem() -> SchedulingProblem {
        let vms: Vec<VmSpec> = (0..4)
            .map(|i| VmSpec::new(500.0 + 500.0 * i as f64, 5_000.0, 512.0, 500.0, 1))
            .collect();
        SchedulingProblem::single_datacenter(
            vms,
            vec![CloudletSpec::new(2_000.0, 100.0, 100.0, 1); 12],
            CostModel::new(0.01, 0.001, 0.01, 3.0),
        )
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = par_map(&items, |x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        let gated = par_map_if(false, &items, |x| x + 1);
        assert_eq!(gated[99], 100);
    }

    #[test]
    fn population_scores_match_serial_scoring() {
        let p = problem();
        let cache = EvalCache::new(&p);
        let population: Vec<Vec<u32>> = (0..20)
            .map(|i| (0..12).map(|c| ((c + i) % 4) as u32).collect())
            .collect();
        for objective in Objective::ALL {
            let batch = evaluate_population(&cache, &population, objective);
            for (genes, score) in population.iter().zip(&batch) {
                assert_eq!(
                    score.to_bits(),
                    cache.score_genes(genes, objective).to_bits()
                );
            }
        }
    }

    #[test]
    fn genome_impls_agree() {
        let p = problem();
        let cache = EvalCache::new(&p);
        let genes: Vec<u32> = (0..12).map(|c| (c % 4) as u32).collect();
        let plan: Vec<simcloud::ids::VmId> =
            genes.iter().map(|g| simcloud::ids::VmId(*g)).collect();
        let assignment = Assignment::new(plan.clone());
        for objective in Objective::ALL {
            let from_genes = genes.score(&cache, objective).to_bits();
            assert_eq!(from_genes, plan.score(&cache, objective).to_bits());
            assert_eq!(from_genes, assignment.score(&cache, objective).to_bits());
        }
    }
}
