//! Workflow-aware scheduling: HEFT.
//!
//! The paper's studied algorithms bind independent cloudlets; its related
//! work, however, is dominated by *workflow* schedulers (PSO for DAGs
//! [18]/[3]/[23]). This module provides the classic list-scheduling
//! reference those works compare against — **HEFT** (Heterogeneous
//! Earliest Finish Time): rank tasks by upward rank over mean execution
//! times, then greedily place each on the VM minimizing its earliest
//! finish time honoring parent completions.
//!
//! ```
//! use biosched_core::problem::SchedulingProblem;
//! use biosched_core::workflow::heft;
//! use simcloud::ids::CloudletId;
//! use simcloud::prelude::*;
//!
//! let problem = SchedulingProblem::single_datacenter(
//!     vec![VmSpec::new(500.0, 5000.0, 512.0, 500.0, 1),
//!          VmSpec::new(4000.0, 5000.0, 512.0, 500.0, 1)],
//!     vec![CloudletSpec::new(1_000.0, 0.0, 0.0, 1); 3],
//!     CostModel::default(),
//! );
//! // A chain: 0 -> 1 -> 2. HEFT keeps it on the fast VM.
//! let parents = vec![vec![], vec![CloudletId(0)], vec![CloudletId(1)]];
//! let plan = heft(&problem, &parents);
//! assert!(plan.as_slice().iter().all(|vm| vm.index() == 1));
//! ```

use simcloud::ids::{CloudletId, VmId};

use crate::assignment::Assignment;
use crate::eval::EvalCache;
use crate::problem::SchedulingProblem;

/// Upward ranks over mean Eq. 6 execution times.
///
/// `rank(c) = w̄(c) + max over children rank(child)`, where `w̄(c)` is the
/// task's mean expected execution time across the fleet. Higher rank =
/// closer to the critical path's head.
pub fn upward_ranks(problem: &SchedulingProblem, parents: &[Vec<CloudletId>]) -> Vec<f64> {
    upward_ranks_with(&EvalCache::new(problem), parents)
}

/// [`upward_ranks`] over a prebuilt cache (shared-artifact pipelines).
pub fn upward_ranks_with(cache: &EvalCache, parents: &[Vec<CloudletId>]) -> Vec<f64> {
    let n = cache.cloudlet_count();
    assert_eq!(parents.len(), n, "parents must cover every cloudlet");
    let v = cache.vm_count();
    let mean_w: Vec<f64> = (0..n)
        .map(|c| (0..v).map(|vm| cache.exec_ms(c, vm)).sum::<f64>() / v as f64)
        .collect();

    // Process in reverse topological order: children before parents.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut child_count = vec![0usize; n];
    for (c, ps) in parents.iter().enumerate() {
        for p in ps {
            children[p.index()].push(c);
            child_count[p.index()] += 1;
        }
    }
    let mut pending_children = child_count.clone();
    let mut ready: Vec<usize> = (0..n).filter(|c| pending_children[*c] == 0).collect();
    let mut rank = vec![0.0f64; n];
    let mut visited = 0usize;
    while let Some(c) = ready.pop() {
        visited += 1;
        let best_child = children[c]
            .iter()
            .map(|&ch| rank[ch])
            .fold(0.0f64, f64::max);
        rank[c] = mean_w[c] + best_child;
        for p in &parents[c] {
            let slot = &mut pending_children[p.index()];
            *slot -= 1;
            if *slot == 0 {
                ready.push(p.index());
            }
        }
    }
    assert_eq!(visited, n, "dependency graph must be acyclic");
    rank
}

/// HEFT: schedules a DAG onto the fleet, returning a cloudlet→VM plan.
///
/// Insertion-free variant: a VM is modeled as a FIFO ready-time (matching
/// the simulator's space-shared queue), so `EFT(c, v) = max(ready[v],
/// latest parent finish) + d(c, v)`.
pub fn heft(problem: &SchedulingProblem, parents: &[Vec<CloudletId>]) -> Assignment {
    heft_with(&EvalCache::new(problem), parents)
}

/// [`heft`] over a prebuilt cache (shared-artifact pipelines).
pub fn heft_with(cache: &EvalCache, parents: &[Vec<CloudletId>]) -> Assignment {
    let n = cache.cloudlet_count();
    let v = cache.vm_count();
    let ranks = upward_ranks_with(cache, parents);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|a, b| ranks[*b].total_cmp(&ranks[*a]));

    let mut vm_ready = vec![0.0f64; v];
    let mut finish = vec![0.0f64; n];
    let mut map = vec![VmId(0); n];
    for c in order {
        let parents_done = parents[c]
            .iter()
            .map(|p| finish[p.index()])
            .fold(0.0f64, f64::max);
        let mut best = (f64::INFINITY, 0usize);
        for (vm, ready) in vm_ready.iter().enumerate() {
            let est = ready.max(parents_done);
            let eft = est + cache.exec_ms(c, vm);
            if eft < best.0 {
                best = (eft, vm);
            }
        }
        let (eft, vm) = best;
        finish[c] = eft;
        vm_ready[vm] = eft;
        map[c] = VmId::from_index(vm);
    }
    Assignment::new(map)
}

/// HEFT's own makespan estimate for a plan it produced — the largest
/// predicted finish time. Useful for quick comparisons without running
/// the simulator.
pub fn heft_estimate_ms(problem: &SchedulingProblem, parents: &[Vec<CloudletId>]) -> f64 {
    heft_estimate_ms_with(&EvalCache::new(problem), parents)
}

/// [`heft_estimate_ms`] over a prebuilt cache (shared-artifact pipelines).
pub fn heft_estimate_ms_with(cache: &EvalCache, parents: &[Vec<CloudletId>]) -> f64 {
    let n = cache.cloudlet_count();
    let ranks = upward_ranks_with(cache, parents);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|a, b| ranks[*b].total_cmp(&ranks[*a]));
    let v = cache.vm_count();
    let mut vm_ready = vec![0.0f64; v];
    let mut finish = vec![0.0f64; n];
    for c in order {
        let parents_done = parents[c]
            .iter()
            .map(|p| finish[p.index()])
            .fold(0.0f64, f64::max);
        let mut best = f64::INFINITY;
        let mut best_vm = 0usize;
        for (vm, ready) in vm_ready.iter().enumerate() {
            let eft = ready.max(parents_done) + cache.exec_ms(c, vm);
            if eft < best {
                best = eft;
                best_vm = vm;
            }
        }
        finish[c] = best;
        vm_ready[best_vm] = best;
    }
    finish.into_iter().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcloud::characteristics::CostModel;
    use simcloud::cloudlet::CloudletSpec;
    use simcloud::vm::VmSpec;

    fn fleet(mips: &[f64]) -> Vec<VmSpec> {
        mips.iter()
            .map(|m| VmSpec::new(*m, 5_000.0, 512.0, 500.0, 1))
            .collect()
    }

    fn pure_compute(lengths: &[f64]) -> Vec<CloudletSpec> {
        lengths
            .iter()
            .map(|l| CloudletSpec::new(*l, 0.0, 0.0, 1))
            .collect()
    }

    #[test]
    fn ranks_decrease_along_chains() {
        let p = SchedulingProblem::single_datacenter(
            fleet(&[1_000.0]),
            pure_compute(&[100.0, 100.0, 100.0]),
            CostModel::free(),
        );
        let parents = vec![vec![], vec![CloudletId(0)], vec![CloudletId(1)]];
        let ranks = upward_ranks(&p, &parents);
        assert!(ranks[0] > ranks[1]);
        assert!(ranks[1] > ranks[2]);
        // Head of the chain carries the whole path: 300ms.
        assert!((ranks[0] - 300.0).abs() < 1e-9);
    }

    #[test]
    fn chain_sticks_to_the_fastest_vm() {
        let p = SchedulingProblem::single_datacenter(
            fleet(&[500.0, 4_000.0, 1_000.0]),
            pure_compute(&[1_000.0; 4]),
            CostModel::free(),
        );
        let parents = vec![
            vec![],
            vec![CloudletId(0)],
            vec![CloudletId(1)],
            vec![CloudletId(2)],
        ];
        let plan = heft(&p, &parents);
        assert!(plan.as_slice().iter().all(|vm| vm.index() == 1));
    }

    #[test]
    fn parallel_branches_spread_across_vms() {
        // Independent tasks (no edges) on two equal VMs: HEFT must use
        // both instead of queueing everything on one.
        let p = SchedulingProblem::single_datacenter(
            fleet(&[1_000.0, 1_000.0]),
            pure_compute(&[1_000.0; 4]),
            CostModel::free(),
        );
        let parents = vec![vec![]; 4];
        let plan = heft(&p, &parents);
        let counts = plan.counts_per_vm(2);
        assert_eq!(counts, vec![2, 2]);
    }

    #[test]
    fn estimate_matches_hand_computed_chain() {
        let p = SchedulingProblem::single_datacenter(
            fleet(&[1_000.0, 2_000.0]),
            pure_compute(&[1_000.0, 1_000.0]),
            CostModel::free(),
        );
        let parents = vec![vec![], vec![CloudletId(0)]];
        // Both on the 2000-MIPS VM: 500 + 500 = 1000ms.
        assert!((heft_estimate_ms(&p, &parents) - 1_000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "acyclic")]
    fn cyclic_graph_panics() {
        let p = SchedulingProblem::single_datacenter(
            fleet(&[1_000.0]),
            pure_compute(&[100.0, 100.0]),
            CostModel::free(),
        );
        let parents = vec![vec![CloudletId(1)], vec![CloudletId(0)]];
        let _ = upward_ranks(&p, &parents);
    }

    #[test]
    fn empty_workflow() {
        let p = SchedulingProblem::single_datacenter(fleet(&[1_000.0]), vec![], CostModel::free());
        let plan = heft(&p, &[]);
        assert!(plan.is_empty());
    }
}
