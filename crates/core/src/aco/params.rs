//! ACO tuning parameters (the paper's Table II).

/// Parameters of the ant colony (Table II plus implementation knobs).
#[derive(Debug, Clone, PartialEq)]
pub struct AcoParams {
    /// Number of ants per iteration (Table II: 50).
    pub ants: usize,
    /// Pheromone weight α in Eq. 5 (Table II: 0.01).
    pub alpha: f64,
    /// Heuristic weight β in Eq. 5 (Table II: 0.99).
    pub beta: f64,
    /// Pheromone decay ρ in Eq. 9 (Table II: 0.4).
    pub rho: f64,
    /// Deposit constant Q in Eqs. 7/11 (Table II: 100).
    pub q: f64,
    /// Initial pheromone τ(0) on every edge (Algorithm 2's constant C).
    pub initial_pheromone: f64,
    /// Construction/update iterations per batch (Algorithm 2's loop).
    pub iterations: usize,
    /// Cloudlets scheduled per colony run. Each ant's tabu list forbids
    /// revisiting a VM within a batch (the paper's constraint-satisfaction
    /// rule), so a batch can never exceed the VM count; it is clamped.
    pub batch_size: usize,
    /// Candidate-list size: how many random VMs each ant examines per
    /// choice (a standard ACO acceleration). `None` examines every VM.
    pub candidates: Option<usize>,
    /// Ant Colony System exploitation probability: with probability `q0`
    /// an ant deterministically takes the best-weighted VM instead of
    /// spinning the Eq. 5 roulette. `0` (the paper's plain Ant System)
    /// disables it; Dorigo's ACS uses 0.9. Exposed for the ablation bench.
    pub q0: f64,
    /// Cap on the batch as a fraction of the VM fleet. A batch equal to
    /// the fleet size degenerates into a permutation (the tabu rule forces
    /// every VM to be used exactly once, erasing the colony's preference
    /// for fast VMs), so batches are clamped to
    /// `ceil(max_vm_fraction × #VMs)`.
    pub max_vm_fraction: f64,
}

impl AcoParams {
    /// Exactly Table II, with the implementation knobs at study defaults.
    pub fn paper() -> Self {
        AcoParams {
            ants: 50,
            alpha: 0.01,
            beta: 0.99,
            rho: 0.4,
            q: 100.0,
            initial_pheromone: 1.0,
            iterations: 8,
            batch_size: 128,
            candidates: Some(48),
            q0: 0.0,
            max_vm_fraction: 0.5,
        }
    }

    /// Ant Colony System flavor: strong exploitation (q0 = 0.9).
    pub fn acs() -> Self {
        AcoParams {
            q0: 0.9,
            ..Self::paper()
        }
    }

    /// A cheaper configuration for very large sweeps; same search
    /// structure, fewer ants and iterations.
    pub fn fast() -> Self {
        AcoParams {
            ants: 12,
            iterations: 4,
            candidates: Some(24),
            ..Self::paper()
        }
    }

    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.ants == 0 {
            return Err("ants must be at least 1".into());
        }
        if self.iterations == 0 {
            return Err("iterations must be at least 1".into());
        }
        if self.batch_size == 0 {
            return Err("batch_size must be at least 1".into());
        }
        if !(self.rho > 0.0 && self.rho < 1.0) {
            return Err(format!("rho must be in (0,1), got {}", self.rho));
        }
        for (name, v) in [
            ("alpha", self.alpha),
            ("beta", self.beta),
            ("q", self.q),
            ("initial_pheromone", self.initial_pheromone),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{name} must be positive, got {v}"));
            }
        }
        if self.candidates == Some(0) {
            return Err("candidate list cannot be empty".into());
        }
        if !(0.0..=1.0).contains(&self.q0) {
            return Err(format!("q0 must be in [0,1], got {}", self.q0));
        }
        if !(self.max_vm_fraction > 0.0 && self.max_vm_fraction <= 1.0) {
            return Err(format!(
                "max_vm_fraction must be in (0,1], got {}",
                self.max_vm_fraction
            ));
        }
        Ok(())
    }
}

impl Default for AcoParams {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_table_ii() {
        let p = AcoParams::paper();
        assert_eq!(p.ants, 50);
        assert_eq!(p.alpha, 0.01);
        assert_eq!(p.beta, 0.99);
        assert_eq!(p.rho, 0.4);
        assert_eq!(p.q, 100.0);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn fast_preset_is_valid_and_cheaper() {
        let f = AcoParams::fast();
        assert!(f.validate().is_ok());
        assert!(f.ants < AcoParams::paper().ants);
        assert!(f.iterations < AcoParams::paper().iterations);
    }

    #[test]
    fn validation_rejects_degenerate_values() {
        assert!(AcoParams {
            ants: 0,
            ..AcoParams::paper()
        }
        .validate()
        .is_err());
        assert!(AcoParams {
            rho: 1.0,
            ..AcoParams::paper()
        }
        .validate()
        .is_err());
        assert!(AcoParams {
            beta: -1.0,
            ..AcoParams::paper()
        }
        .validate()
        .is_err());
        assert!(AcoParams {
            candidates: Some(0),
            ..AcoParams::paper()
        }
        .validate()
        .is_err());
        assert!(AcoParams {
            max_vm_fraction: 0.0,
            ..AcoParams::paper()
        }
        .validate()
        .is_err());
        assert!(AcoParams {
            max_vm_fraction: 1.1,
            ..AcoParams::paper()
        }
        .validate()
        .is_err());
        assert!(AcoParams {
            q0: 1.5,
            ..AcoParams::paper()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn acs_preset_exploits() {
        let acs = AcoParams::acs();
        assert_eq!(acs.q0, 0.9);
        assert!(acs.validate().is_ok());
        assert_eq!(AcoParams::paper().q0, 0.0, "plain AS by default");
    }
}
