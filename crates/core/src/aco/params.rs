//! ACO tuning parameters (the paper's Table II).

/// How candidate lists are formed when `candidates = Some(k)` restricts
/// each ant's choice to k VMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateStrategy {
    /// Legacy behavior: draw k distinct VMs uniformly at random per slot
    /// (rejection sampling). Matches `aco::reference` bit for bit.
    Random,
    /// η-proportional ring candidates precomputed once per batch into a
    /// dense `k × slots` block ([`crate::eval::EvalCache::candidate_block`]).
    /// Engages only when `k < #VMs`; otherwise the legacy full-row path
    /// runs, preserving reference equivalence.
    TopEta,
}

/// How a VM is drawn from the fused Eq. 5 weight row in the candidate-list
/// fast path ([`CandidateStrategy::TopEta`] with `k < #VMs`). The legacy
/// path always uses the linear roulette.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingMode {
    /// O(k) subtraction-chain roulette over the weight row.
    Linear,
    /// O(log k) binary search over a per-slot prefix-sum row.
    PrefixSum,
    /// Vose alias table over the static η^β mass plus a sparse
    /// τ-deposit delta list — no per-iteration row rebuild at all.
    /// Incompatible with `q0 > 0` (no dense row to argmax over).
    Alias,
}

/// Parameters of the ant colony (Table II plus implementation knobs).
#[derive(Debug, Clone, PartialEq)]
pub struct AcoParams {
    /// Number of ants per iteration (Table II: 50).
    pub ants: usize,
    /// Pheromone weight α in Eq. 5 (Table II: 0.01).
    pub alpha: f64,
    /// Heuristic weight β in Eq. 5 (Table II: 0.99).
    pub beta: f64,
    /// Pheromone decay ρ in Eq. 9 (Table II: 0.4).
    pub rho: f64,
    /// Deposit constant Q in Eqs. 7/11 (Table II: 100).
    pub q: f64,
    /// Initial pheromone τ(0) on every edge (Algorithm 2's constant C).
    pub initial_pheromone: f64,
    /// Construction/update iterations per batch (Algorithm 2's loop).
    pub iterations: usize,
    /// Cloudlets scheduled per colony run. Each ant's tabu list forbids
    /// revisiting a VM within a batch (the paper's constraint-satisfaction
    /// rule), so a batch can never exceed the VM count; it is clamped.
    pub batch_size: usize,
    /// Candidate-list size: how many VMs each ant examines per choice
    /// (a standard ACO acceleration). `None` — the paper-profile default —
    /// examines every VM; [`AcoParams::for_scale`] defaults to
    /// [`AcoParams::DEFAULT_CANDIDATES`].
    pub candidates: Option<usize>,
    /// How the candidate list is formed (see [`CandidateStrategy`]).
    pub strategy: CandidateStrategy,
    /// How the fast path draws from the weight row (see [`SamplingMode`]).
    pub sampling: SamplingMode,
    /// Ant Colony System exploitation probability: with probability `q0`
    /// an ant deterministically takes the best-weighted VM instead of
    /// spinning the Eq. 5 roulette. `0` (the paper's plain Ant System)
    /// disables it; Dorigo's ACS uses 0.9. Exposed for the ablation bench.
    pub q0: f64,
    /// Cap on the batch as a fraction of the VM fleet. A batch equal to
    /// the fleet size degenerates into a permutation (the tabu rule forces
    /// every VM to be used exactly once, erasing the colony's preference
    /// for fast VMs), so batches are clamped to
    /// `ceil(max_vm_fraction × #VMs)`.
    pub max_vm_fraction: f64,
}

impl AcoParams {
    /// Exactly Table II, with the implementation knobs at study defaults.
    /// Ants examine the full weight row (no candidate restriction), so
    /// plans match the pre-candidate-list study bit for bit — the
    /// prefix-sum sampler draws the same VM the linear roulette would.
    /// Candidate lists cost 5–53 % makespan on heterogeneous fleets at
    /// figure scale, so they default on only in [`Self::for_scale`].
    pub fn paper() -> Self {
        AcoParams {
            ants: 50,
            alpha: 0.01,
            beta: 0.99,
            rho: 0.4,
            q: 100.0,
            initial_pheromone: 1.0,
            iterations: 8,
            batch_size: 128,
            candidates: None,
            strategy: CandidateStrategy::TopEta,
            sampling: SamplingMode::PrefixSum,
            q0: 0.0,
            max_vm_fraction: 0.5,
        }
    }

    /// Default candidate-list size of the scale profile (and of the
    /// schedbench quality gate).
    pub const DEFAULT_CANDIDATES: usize = 32;

    /// The scale profile: top-η candidate lists
    /// ([`Self::DEFAULT_CANDIDATES`] per slot) at any size — the O(k)
    /// tour loop is what makes 10⁵-VM fleets tractable — plus reduced
    /// ants/iterations above [`Self::SCALE_CUTOVER`] cloudlets, where
    /// per-cloudlet optimization effort must also shrink for the batch
    /// sweep to stay inside a wall-clock budget at 10⁶-cloudlet scale.
    pub fn for_scale(cloudlets: usize) -> Self {
        let base = AcoParams {
            candidates: Some(Self::DEFAULT_CANDIDATES),
            ..Self::paper()
        };
        if cloudlets > Self::SCALE_CUTOVER {
            AcoParams {
                ants: 12,
                iterations: 4,
                ..base
            }
        } else {
            base
        }
    }

    /// Cloudlet count above which [`Self::for_scale`] switches to the
    /// reduced-effort profile.
    pub const SCALE_CUTOVER: usize = 250_000;

    /// The pre-candidate-ring profile: random candidate subsets (k = 32)
    /// with the linear roulette, as `aco::reference` implements. Bitwise
    /// reference equivalence holds for this profile at any k.
    pub fn reference_compat() -> Self {
        AcoParams {
            candidates: Some(Self::DEFAULT_CANDIDATES),
            strategy: CandidateStrategy::Random,
            sampling: SamplingMode::Linear,
            ..Self::paper()
        }
    }

    /// Ant Colony System flavor: strong exploitation (q0 = 0.9).
    pub fn acs() -> Self {
        AcoParams {
            q0: 0.9,
            ..Self::paper()
        }
    }

    /// A cheaper configuration for very large sweeps; same search
    /// structure, fewer ants and iterations.
    pub fn fast() -> Self {
        AcoParams {
            ants: 12,
            iterations: 4,
            candidates: Some(24),
            ..Self::paper()
        }
    }

    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.ants == 0 {
            return Err("ants must be at least 1".into());
        }
        if self.iterations == 0 {
            return Err("iterations must be at least 1".into());
        }
        if self.batch_size == 0 {
            return Err("batch_size must be at least 1".into());
        }
        if !(self.rho > 0.0 && self.rho < 1.0) {
            return Err(format!("rho must be in (0,1), got {}", self.rho));
        }
        for (name, v) in [
            ("alpha", self.alpha),
            ("beta", self.beta),
            ("q", self.q),
            ("initial_pheromone", self.initial_pheromone),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{name} must be positive, got {v}"));
            }
        }
        if self.candidates == Some(0) {
            return Err("candidate list cannot be empty".into());
        }
        if !(0.0..=1.0).contains(&self.q0) {
            return Err(format!("q0 must be in [0,1], got {}", self.q0));
        }
        if self.sampling != SamplingMode::Linear && self.strategy == CandidateStrategy::Random {
            return Err(
                "prefix/alias sampling requires the top-eta candidate strategy \
                 (random candidate subsets are rebuilt per draw, so there is no \
                 stable row to index)"
                    .into(),
            );
        }
        if self.sampling == SamplingMode::Alias && self.q0 > 0.0 {
            return Err("alias sampling is incompatible with q0 > 0 exploitation \
                 (no dense weight row to take an argmax over); use sampling \
                 prefix or linear"
                .into());
        }
        if !(self.max_vm_fraction > 0.0 && self.max_vm_fraction <= 1.0) {
            return Err(format!(
                "max_vm_fraction must be in (0,1], got {}",
                self.max_vm_fraction
            ));
        }
        Ok(())
    }
}

impl Default for AcoParams {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_table_ii() {
        let p = AcoParams::paper();
        assert_eq!(p.ants, 50);
        assert_eq!(p.alpha, 0.01);
        assert_eq!(p.beta, 0.99);
        assert_eq!(p.rho, 0.4);
        assert_eq!(p.q, 100.0);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn fast_preset_is_valid_and_cheaper() {
        let f = AcoParams::fast();
        assert!(f.validate().is_ok());
        assert!(f.ants < AcoParams::paper().ants);
        assert!(f.iterations < AcoParams::paper().iterations);
    }

    #[test]
    fn validation_rejects_degenerate_values() {
        assert!(AcoParams {
            ants: 0,
            ..AcoParams::paper()
        }
        .validate()
        .is_err());
        assert!(AcoParams {
            rho: 1.0,
            ..AcoParams::paper()
        }
        .validate()
        .is_err());
        assert!(AcoParams {
            beta: -1.0,
            ..AcoParams::paper()
        }
        .validate()
        .is_err());
        assert!(AcoParams {
            candidates: Some(0),
            ..AcoParams::paper()
        }
        .validate()
        .is_err());
        assert!(AcoParams {
            max_vm_fraction: 0.0,
            ..AcoParams::paper()
        }
        .validate()
        .is_err());
        assert!(AcoParams {
            max_vm_fraction: 1.1,
            ..AcoParams::paper()
        }
        .validate()
        .is_err());
        assert!(AcoParams {
            q0: 1.5,
            ..AcoParams::paper()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn validation_rejects_incoherent_strategy_combos() {
        assert!(AcoParams {
            strategy: CandidateStrategy::Random,
            sampling: SamplingMode::PrefixSum,
            ..AcoParams::paper()
        }
        .validate()
        .is_err());
        assert!(AcoParams {
            sampling: SamplingMode::Alias,
            q0: 0.5,
            ..AcoParams::paper()
        }
        .validate()
        .is_err());
        assert!(AcoParams {
            sampling: SamplingMode::Alias,
            ..AcoParams::paper()
        }
        .validate()
        .is_ok());
        assert!(AcoParams::reference_compat().validate().is_ok());
    }

    #[test]
    fn paper_profile_is_unrestricted() {
        assert_eq!(AcoParams::paper().candidates, None);
        assert_eq!(AcoParams::default(), AcoParams::paper());
    }

    #[test]
    fn for_scale_reduces_effort_above_cutover() {
        let small = AcoParams::for_scale(10_000);
        assert_eq!(small.candidates, Some(AcoParams::DEFAULT_CANDIDATES));
        assert_eq!(small.ants, AcoParams::paper().ants);
        let big = AcoParams::for_scale(1_000_000);
        assert_eq!(big.candidates, Some(AcoParams::DEFAULT_CANDIDATES));
        assert!(big.ants < AcoParams::paper().ants);
        assert!(big.iterations < AcoParams::paper().iterations);
        assert!(big.validate().is_ok());
    }

    #[test]
    fn acs_preset_exploits() {
        let acs = AcoParams::acs();
        assert_eq!(acs.q0, 0.9);
        assert!(acs.validate().is_ok());
        assert_eq!(AcoParams::paper().q0, 0.0, "plain AS by default");
    }
}
