//! Ant Colony Optimization scheduler (Section IV of the paper).
//!
//! Ants construct cloudlet→VM tours guided by pheromone trails τ and the
//! heuristic desirability η = 1/d of Eq. 6. The transition rule is Eq. 5,
//! pheromone updates follow Eqs. 7–11, and each ant's tabu list forbids
//! reusing a VM within a tour (the paper's constraint-satisfaction rule).
//!
//! Cloudlets are scheduled in *batches* of at most `batch_size` (clamped to
//! the VM count, since a tour cannot revisit VMs). Each batch runs a full
//! colony: `iterations` rounds of `ants` tour constructions followed by
//! local evaporation + deposit (Eqs. 9–10) and a global best-tour
//! reinforcement (Eq. 11). The best tour ever seen becomes the batch's
//! assignment.
//!
//! A tour's length `L_k` is the sum of Eq. 6 expected execution times of
//! its (cloudlet, VM) pairs — the scheduling analog of the TSP tour length
//! the original ACO minimizes (the paper's Eq. 8 rendering is garbled; the
//! sum interpretation preserves "shorter tour = better schedule").
//!
//! # Hot path
//!
//! Colonies are mutually independent, so `run` pre-draws every ant seed in
//! the exact order the old sequential loop consumed them (colony-major,
//! then iteration, then ant) and fans whole colonies out through
//! [`eval::par_map_if`] — assignments stay byte-identical per seed at any
//! thread count. Inside a colony the Eq. 5 weight is read from two caches
//! instead of calling `powf` per candidate: an η^β block precomputed per
//! batch ([`EvalCache::eta_pow_block`]) and the τ^α snapshot the slot-major
//! [`PheromoneMatrix`] refreshes once per iteration. Tabu and
//! candidate-membership checks are generation-stamped array probes in
//! per-colony scratch ([`TourScratch`]), so tour construction allocates
//! nothing but the returned tour. The pre-overhaul loop survives verbatim
//! in [`reference`] as the equivalence baseline.

//!
//! ```
//! use biosched_core::aco::{AcoParams, AntColony};
//! use biosched_core::problem::SchedulingProblem;
//! use biosched_core::scheduler::Scheduler;
//! use simcloud::prelude::*;
//!
//! let problem = SchedulingProblem::single_datacenter(
//!     vec![VmSpec::new(500.0, 5000.0, 512.0, 500.0, 1),
//!          VmSpec::new(4000.0, 5000.0, 512.0, 500.0, 1)],
//!     vec![CloudletSpec::new(10_000.0, 300.0, 300.0, 1); 6],
//!     CostModel::default(),
//! );
//! let mut aco = AntColony::new(AcoParams::fast(), 42);
//! let plan = aco.schedule(&problem);
//! assert!(plan.validate(&problem).is_ok());
//! ```
mod params;
mod pheromone;
pub mod reference;

pub use params::{AcoParams, CandidateStrategy, SamplingMode};
pub use pheromone::PheromoneMatrix;

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simcloud::ids::VmId;
use simcloud::rng::stream;

use crate::assignment::Assignment;
use crate::eval::{self, CandidateBlock, EvalCache};
use crate::problem::SchedulingProblem;
use crate::scheduler::Scheduler;

/// Minimum estimated per-run work (`colonies × iterations × ants × batch
/// × k` weight-row reads) before colony construction fans out over
/// threads. Below it the fork/join overhead outweighs the work — the 1k
/// scale regressed ~2× at 4 threads before this cutover — so small
/// problems stay serial regardless of the worker-pool size.
const PAR_MIN_WORK: u64 = 1 << 26;

/// Tabu rejection-sampling budget of the candidate-list fast path: draw
/// from the unconditioned row distribution up to this many times before
/// switching to the exact non-tabu conditional roulette.
const MAX_TABU_RESAMPLES: usize = 8;

/// The ACO scheduler.
pub struct AntColony {
    params: AcoParams,
    rng: StdRng,
}

impl AntColony {
    /// Creates a colony with the given parameters and seed.
    pub fn new(params: AcoParams, seed: u64) -> Self {
        params.validate().expect("invalid AcoParams");
        AntColony {
            params,
            rng: stream(seed, "aco"),
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &AcoParams {
        &self.params
    }

    /// Like [`Scheduler::schedule`], but also returns the best tour
    /// length after each iteration of the *first* colony — ACO's
    /// convergence curve (subsequent batches behave statistically alike).
    pub fn schedule_traced(&mut self, problem: &SchedulingProblem) -> (Assignment, Vec<f64>) {
        self.run(problem, &EvalCache::new(problem), true, None)
    }

    /// Warm-start entry point for the streaming broker: when `warm` holds
    /// a pheromone matrix from a previous wave it is aged by one
    /// evaporation and becomes every colony's starting trail (its
    /// slot-position preferences — "which VMs are good" — transfer across
    /// waves of similar cloudlets); afterwards `warm` is replaced with the
    /// final matrix of the last colony. A `None` prior behaves exactly
    /// like [`Scheduler::schedule_with_cache`] but still captures.
    pub fn schedule_with_warm_pheromone(
        &mut self,
        problem: &SchedulingProblem,
        cache: &EvalCache,
        warm: &mut Option<PheromoneMatrix>,
    ) -> Assignment {
        self.run(problem, cache, false, Some(warm)).0
    }

    fn run(
        &mut self,
        problem: &SchedulingProblem,
        cache: &EvalCache,
        traced: bool,
        mut warm: Option<&mut Option<PheromoneMatrix>>,
    ) -> (Assignment, Vec<f64>) {
        let c = problem.cloudlet_count();
        let v = problem.vm_count();
        // Clamp: a tour may not revisit VMs, and a tour covering the whole
        // fleet is a bare permutation with no room for preference.
        let fleet_cap = ((v as f64 * self.params.max_vm_fraction).ceil() as usize).max(1);
        let batch = self.params.batch_size.min(fleet_cap).max(1);

        let mut colonies: Vec<(usize, Range<usize>)> = Vec::with_capacity(c.div_ceil(batch));
        let mut start = 0;
        while start < c {
            let end = (start + batch).min(c);
            colonies.push((colonies.len(), start..end));
            start = end;
        }

        // Pre-draw every ant seed in the order the sequential loop used to
        // consume them (colony-major, then iteration, then ant): colonies
        // can then run on any thread count with identical seed streams.
        let per_colony = self.params.iterations * self.params.ants;
        let seeds: Vec<u64> = (0..colonies.len() * per_colony)
            .map(|_| self.rng.gen())
            .collect();

        // Candidate-list fast path: engages only when the list is a strict
        // subset of the fleet, so any run with k ≥ #VMs takes the legacy
        // reference-equivalent machinery unchanged.
        let k = self.params.candidates.unwrap_or(v).min(v);
        let use_topk = self.params.strategy == params::CandidateStrategy::TopEta && k < v;

        // Fan whole colonies out when there are enough to fill the pool
        // AND the total work amortizes the fork — otherwise run serially
        // (ant-level parallelism inside a colony is gated the same way).
        let per_colony_work = (self.params.iterations as u64)
            .saturating_mul(self.params.ants as u64)
            .saturating_mul(batch as u64)
            .saturating_mul(k as u64);
        let total_work = per_colony_work.saturating_mul(colonies.len() as u64);
        let colonies_parallel = colonies.len() >= eval::MIN_PAR_ITEMS && total_work >= PAR_MIN_WORK;
        let ants_parallel = !colonies_parallel && per_colony_work >= PAR_MIN_WORK;
        // Age the warm prior once per wave, then hand every colony a clone
        // of the aged matrix; the last colony's final matrix is carried
        // forward. Taking it out of the slot keeps the borrow shareable
        // across the parallel fan-out. Compaction bounds each lane to the
        // strongest few candidate-widths of deposits: without it the
        // carried matrix grows by every wave's trails (evaporation never
        // shrinks a deposit relative to the base) and warm replanning
        // slows down wave over wave instead of speeding up.
        // One candidate-row width of the strongest trails per slot: wide
        // enough to carry "which VMs are good here" across the wave
        // boundary, narrow enough that the next wave's deposits don't pay
        // mid-lane inserts into already-full lanes.
        let capture = warm.is_some();
        let lane_cap = k;
        let prior_owned: Option<PheromoneMatrix> =
            warm.as_deref_mut().and_then(|w| w.take()).map(|mut m| {
                m.evaporate(self.params.rho);
                m.compact_top(lane_cap);
                m
            });
        let prior = prior_owned.as_ref();
        let last = colonies.len().saturating_sub(1);
        let params = &self.params;
        let results = eval::par_map_if(colonies_parallel, &colonies, |(i, slots)| {
            let colony_seeds = &seeds[i * per_colony..(i + 1) * per_colony];
            let capture_here = capture && *i == last;
            if use_topk {
                run_colony_topk(
                    cache,
                    params,
                    slots.clone(),
                    colony_seeds,
                    traced && *i == 0,
                    k,
                    prior,
                    capture_here,
                )
            } else {
                run_colony(
                    cache,
                    params,
                    slots.clone(),
                    colony_seeds,
                    traced && *i == 0,
                    ants_parallel,
                    prior,
                    capture_here,
                )
            }
        });

        let mut map = Vec::with_capacity(c);
        let mut trace = Vec::new();
        let mut captured = None;
        for (i, (tour, colony_trace, matrix)) in results.into_iter().enumerate() {
            map.extend(tour);
            if i == 0 {
                trace = colony_trace;
            }
            if matrix.is_some() {
                captured = matrix;
            }
        }
        if let Some(w) = warm {
            *w = captured;
        }
        (Assignment::new(map), trace)
    }
}

/// Per-colony iteration state shared by the one-shot colony loops and the
/// anytime [`AcoRun`] stepper: the pheromone matrix, the best tour so
/// far, tour-construction scratch and the engine-specific weight caches.
/// Factoring the per-iteration body here is what makes "stepped to done ≡
/// one-shot" true by construction rather than by parallel maintenance.
struct ColonyState {
    slots: Range<usize>,
    pheromone: PheromoneMatrix,
    best: Option<(Vec<u32>, f64)>,
    scratch: TourScratch,
    engine: ColonyEngine,
}

/// The two tour-construction machineries (see [`run_colony`] /
/// [`run_colony_topk`] for their contracts).
enum ColonyEngine {
    /// Legacy reference-equivalent path: full-fleet η^β block plus the
    /// fused per-iteration weight table (both absent when declined).
    Legacy {
        eta_pow: Option<Vec<f64>>,
        weight_block: Option<Vec<f64>>,
    },
    /// Candidate-list fast path: per-batch [`CandidateBlock`] plus the
    /// sampling-mode-specific row or alias caches.
    Topk {
        block: CandidateBlock,
        rows: Option<CandidateRows>,
        alias: Option<AliasTables>,
    },
}

impl ColonyState {
    /// Builds the legacy-path state (the prologue of [`run_colony`]).
    fn new_legacy(
        cache: &EvalCache,
        params: &AcoParams,
        slots: Range<usize>,
        prior: Option<&PheromoneMatrix>,
    ) -> Self {
        let v = cache.vm_count();
        let k = params.candidates.unwrap_or(v).min(v);
        // η^β for the whole batch, shared by every ant and iteration;
        // declined (→ inline fallback) when the block would out-cost the
        // lookups.
        let expected_lookups = params
            .ants
            .saturating_mul(params.iterations)
            .saturating_mul(slots.len())
            .saturating_mul(k);
        let eta_pow = cache.eta_pow_block(slots.clone(), params.beta, expected_lookups);
        // Fused Eq. 5 weight table (slot-major, τ^α·η^β per edge),
        // refreshed from the pheromone snapshot each iteration. Same size
        // as the η^β block, so it exists exactly when that block does.
        let weight_block: Option<Vec<f64>> = eta_pow.as_ref().map(|block| vec![0.0; block.len()]);
        ColonyState {
            pheromone: match prior {
                Some(p) => p.clone(),
                None => PheromoneMatrix::new(params.initial_pheromone),
            },
            best: None,
            scratch: TourScratch::new(v),
            slots,
            engine: ColonyEngine::Legacy {
                eta_pow,
                weight_block,
            },
        }
    }

    /// Builds the candidate-list fast-path state (the prologue of
    /// [`run_colony_topk`]).
    fn new_topk(
        cache: &EvalCache,
        params: &AcoParams,
        slots: Range<usize>,
        k: usize,
        prior: Option<&PheromoneMatrix>,
    ) -> Self {
        let v = cache.vm_count();
        let block = cache.candidate_block(slots.clone(), k, params.beta);
        let rows = match params.sampling {
            SamplingMode::Alias => None,
            SamplingMode::Linear | SamplingMode::PrefixSum => {
                Some(CandidateRows::new(slots.len(), block.k()))
            }
        };
        let alias = match params.sampling {
            SamplingMode::Alias => Some(AliasTables::build(&block)),
            SamplingMode::Linear | SamplingMode::PrefixSum => None,
        };
        ColonyState {
            pheromone: match prior {
                Some(p) => p.clone(),
                None => PheromoneMatrix::new(params.initial_pheromone),
            },
            best: None,
            scratch: TourScratch::new(v),
            slots,
            engine: ColonyEngine::Topk { block, rows, alias },
        }
    }

    /// One colony iteration: refresh the weight caches from the pheromone
    /// snapshot, construct every ant's tour from `iter_seeds`, apply the
    /// pheromone updates. Returns the best tour length so far.
    fn iterate(
        &mut self,
        cache: &EvalCache,
        params: &AcoParams,
        iter_seeds: &[u64],
        ants_parallel: bool,
    ) -> f64 {
        let v = cache.vm_count();
        let slots = self.slots.clone();
        let tours: Vec<(Vec<u32>, f64)> = match &mut self.engine {
            ColonyEngine::Legacy {
                eta_pow,
                weight_block,
            } => {
                self.pheromone.prepare_pow(params.alpha);
                if let (Some(weights), Some(eta)) = (weight_block.as_mut(), eta_pow.as_deref()) {
                    for s in 0..slots.len() {
                        self.pheromone.fill_weight_row(
                            s,
                            &eta[s * v..(s + 1) * v],
                            &mut weights[s * v..(s + 1) * v],
                        );
                    }
                }
                let weights_ref = weight_block.as_deref();
                let pheromone = &self.pheromone;
                if ants_parallel {
                    eval::par_map(iter_seeds, |&seed| {
                        let mut ant_scratch = TourScratch::new(v);
                        construct_tour(
                            cache,
                            slots.clone(),
                            pheromone,
                            params,
                            seed,
                            weights_ref,
                            &mut ant_scratch,
                        )
                    })
                } else {
                    let scratch = &mut self.scratch;
                    iter_seeds
                        .iter()
                        .map(|&seed| {
                            construct_tour(
                                cache,
                                slots.clone(),
                                pheromone,
                                params,
                                seed,
                                weights_ref,
                                scratch,
                            )
                        })
                        .collect()
                }
            }
            ColonyEngine::Topk { block, rows, alias } => {
                self.pheromone.prepare_pow_incremental(params.alpha);
                if let Some(rows) = rows.as_mut() {
                    rows.refresh(&self.pheromone, block);
                }
                if let Some(alias) = alias.as_mut() {
                    alias.refresh(&self.pheromone, block);
                }
                let pheromone = &self.pheromone;
                let scratch = &mut self.scratch;
                iter_seeds
                    .iter()
                    .map(|&seed| {
                        construct_tour_topk(
                            cache,
                            slots.clone(),
                            pheromone,
                            params,
                            seed,
                            block,
                            rows.as_ref(),
                            alias.as_ref(),
                            scratch,
                        )
                    })
                    .collect()
            }
        };
        apply_pheromone_updates(&mut self.pheromone, params, tours, &mut self.best)
    }

    /// The best tour found so far (empty before the first iteration).
    fn best_tour(&self) -> &[u32] {
        self.best.as_ref().map(|(t, _)| t.as_slice()).unwrap_or(&[])
    }

    /// Epilogue shared by the one-shot colony loops.
    fn into_result(
        self,
        trace: Vec<f64>,
        capture: bool,
    ) -> (Vec<VmId>, Vec<f64>, Option<PheromoneMatrix>) {
        let tour = self
            .best
            .expect("ants always produce tours")
            .0
            .into_iter()
            .map(VmId)
            .collect();
        (tour, trace, capture.then_some(self.pheromone))
    }
}

/// Runs one colony over `slots` (global cloudlet indices). Returns the
/// best tour found plus, when `traced`, the best length per iteration,
/// plus, when `capture`, the colony's final pheromone matrix (the warm
/// prior of the next wave). `prior` replaces the fresh initial matrix;
/// with `prior = None` and `capture = false` behavior is bit-identical to
/// the pre-warm code.
#[allow(clippy::too_many_arguments)]
fn run_colony(
    cache: &EvalCache,
    params: &AcoParams,
    slots: Range<usize>,
    seeds: &[u64],
    traced: bool,
    ants_parallel: bool,
    prior: Option<&PheromoneMatrix>,
    capture: bool,
) -> (Vec<VmId>, Vec<f64>, Option<PheromoneMatrix>) {
    // Mirrors the pre-overhaul per-iteration gate (cheap batches do not
    // amortize a fork), further gated off when colonies already fan out.
    let ants_parallel = ants_parallel && slots.len() >= 32;
    let mut state = ColonyState::new_legacy(cache, params, slots, prior);
    let mut trace = Vec::new();
    for iter in 0..params.iterations {
        let iter_seeds = &seeds[iter * params.ants..(iter + 1) * params.ants];
        let best_len = state.iterate(cache, params, iter_seeds, ants_parallel);
        if traced {
            trace.push(best_len);
        }
    }
    state.into_result(trace, capture)
}

/// The per-iteration pheromone bookkeeping both colony bodies share: local
/// update (Eqs. 9–10 — evaporate once, every ant deposits Q/L_k along its
/// tour), global-best tracking and the Eq. 11 best-tour reinforcement.
/// Returns the best tour length so far (the traced convergence value).
fn apply_pheromone_updates(
    pheromone: &mut PheromoneMatrix,
    params: &AcoParams,
    tours: Vec<(Vec<u32>, f64)>,
    best: &mut Option<(Vec<u32>, f64)>,
) -> f64 {
    pheromone.evaporate(params.rho);
    for (tour, len) in &tours {
        let dq = params.q / len.max(f64::MIN_POSITIVE);
        for (i, vm) in tour.iter().enumerate() {
            pheromone.deposit(i as u32, *vm, dq);
        }
    }

    for (tour, len) in tours {
        if best.as_ref().is_none_or(|(_, b)| len < *b) {
            *best = Some((tour, len));
        }
    }
    let (bt, bl) = best.as_ref().expect("ants always produce tours");
    let dq = params.q / bl.max(f64::MIN_POSITIVE);
    for (i, vm) in bt.iter().enumerate() {
        pheromone.deposit(i as u32, *vm, dq);
    }
    *bl
}

/// Candidate-list fast path: one colony over `slots` with the per-batch
/// [`CandidateBlock`] replacing full-fleet rows. Engaged only when
/// `k < #VMs` (see [`AntColony::run`]); makes no bitwise-equivalence
/// claims against [`reference`] — the quality gate lives in `schedbench`.
/// Refreshes the τ^α snapshot incrementally
/// ([`PheromoneMatrix::prepare_pow_incremental`]): evaporation's uniform
/// rescale becomes one scalar multiply per clean entry, and only
/// deposited-this-iteration edges pay a powf.
#[allow(clippy::too_many_arguments)]
fn run_colony_topk(
    cache: &EvalCache,
    params: &AcoParams,
    slots: Range<usize>,
    seeds: &[u64],
    traced: bool,
    k: usize,
    prior: Option<&PheromoneMatrix>,
    capture: bool,
) -> (Vec<VmId>, Vec<f64>, Option<PheromoneMatrix>) {
    let mut state = ColonyState::new_topk(cache, params, slots, k, prior);
    let mut trace = Vec::new();
    for iter in 0..params.iterations {
        let iter_seeds = &seeds[iter * params.ants..(iter + 1) * params.ants];
        let best_len = state.iterate(cache, params, iter_seeds, false);
        if traced {
            trace.push(best_len);
        }
    }
    state.into_result(trace, capture)
}

/// The anytime ACO run: every colony's [`ColonyState`] plus a shared
/// iteration cursor. One [`AcoRun::step`] call advances *every* colony by
/// one iteration (colonies evolve in lockstep, iteration-major), charging
/// `ants` evaluation units — each of the `ants` tours per colony covers
/// only that colony's batch, so all colonies together construct `ants`
/// full assignments per step.
///
/// Ant seeds are pre-drawn colony-major exactly like [`AntColony::run`]
/// and colonies are mutually independent, so a fresh `AcoRun` stepped to
/// completion picks the same per-colony best tours as the one-shot
/// scheduler — bit-identical plans (asserted in tests for both the legacy
/// and the candidate-list engines). Stepping is always sequential; the
/// one-shot path's colony/ant parallelism never changes results, only
/// wall clock.
pub struct AcoRun {
    params: AcoParams,
    colonies: Vec<ColonyState>,
    seeds: Vec<u64>,
    per_colony: usize,
    iter: usize,
}

impl AcoRun {
    /// Starts a run from a cold seed, mirroring [`AntColony::run`]'s
    /// prologue: batch clamp, colony slicing, colony-major seed pre-draw,
    /// candidate-list engagement, and (when `prior` is given) the warm
    /// matrix aged by one evaporation + lane compaction.
    pub fn cold(
        params: AcoParams,
        seed: u64,
        cache: &EvalCache,
        prior: Option<&PheromoneMatrix>,
    ) -> Self {
        params.validate().expect("invalid AcoParams");
        let mut rng = stream(seed, "aco");
        let c = cache.cloudlet_count();
        let v = cache.vm_count();
        let fleet_cap = ((v as f64 * params.max_vm_fraction).ceil() as usize).max(1);
        let batch = params.batch_size.min(fleet_cap).max(1);
        let mut ranges: Vec<Range<usize>> = Vec::with_capacity(c.div_ceil(batch));
        let mut start = 0;
        while start < c {
            let end = (start + batch).min(c);
            ranges.push(start..end);
            start = end;
        }
        let per_colony = params.iterations * params.ants;
        let seeds: Vec<u64> = (0..ranges.len() * per_colony).map(|_| rng.gen()).collect();
        let k = params.candidates.unwrap_or(v).min(v);
        let use_topk = params.strategy == params::CandidateStrategy::TopEta && k < v;
        let aged = prior.map(|p| {
            let mut m = p.clone();
            m.evaporate(params.rho);
            m.compact_top(k);
            m
        });
        let colonies = ranges
            .into_iter()
            .map(|slots| {
                if use_topk {
                    ColonyState::new_topk(cache, &params, slots, k, aged.as_ref())
                } else {
                    ColonyState::new_legacy(cache, &params, slots, aged.as_ref())
                }
            })
            .collect();
        AcoRun {
            params,
            colonies,
            seeds,
            per_colony,
            iter: 0,
        }
    }

    /// Evaluation units one [`AcoRun::step`] charges (`ants` full
    /// assignments across all colonies; see the type docs).
    pub fn step_units(&self) -> u64 {
        self.params.ants as u64
    }

    /// True once every planned iteration has run (or the workload is
    /// empty).
    pub fn done(&self) -> bool {
        self.iter >= self.params.iterations || self.colonies.is_empty()
    }

    /// Advances every colony by one iteration. Returns the minimum best
    /// tour length across colonies (informational — racing re-scores the
    /// incumbent under its own objective).
    pub fn step(&mut self, cache: &EvalCache) -> f64 {
        if self.done() {
            return 0.0;
        }
        let iter = self.iter;
        let ants = self.params.ants;
        let mut best = f64::INFINITY;
        for (i, colony) in self.colonies.iter_mut().enumerate() {
            let base = i * self.per_colony + iter * ants;
            let iter_seeds = &self.seeds[base..base + ants];
            let len = colony.iterate(cache, &self.params, iter_seeds, false);
            best = best.min(len);
        }
        self.iter += 1;
        best
    }

    /// The full-workload incumbent: every colony's best tour,
    /// concatenated in cloudlet order. `None` before the first step
    /// (colonies have no tours yet) on non-empty workloads.
    pub fn incumbent(&self) -> Option<Vec<u32>> {
        if self.iter == 0 && !self.colonies.is_empty() {
            return None;
        }
        let mut genes = Vec::with_capacity(self.colonies.iter().map(|c| c.slots.len()).sum());
        for colony in &self.colonies {
            genes.extend_from_slice(colony.best_tour());
        }
        Some(genes)
    }
}

/// Per-iteration fused Eq. 5 weight rows of the candidate-list fast path:
/// slot-major k-wide `τ^α·η^β` rows plus their running prefix sums, so a
/// draw is either an O(k) roulette or an O(log k) binary search.
struct CandidateRows {
    k: usize,
    weights: Vec<f64>,
    prefix: Vec<f64>,
}

impl CandidateRows {
    fn new(slots: usize, k: usize) -> Self {
        CandidateRows {
            k,
            weights: vec![0.0; slots * k],
            prefix: vec![0.0; slots * k],
        }
    }

    /// Rebuilds every row from the current pheromone snapshot (call after
    /// [`PheromoneMatrix::prepare_pow`]). Non-finite products clip to 0,
    /// like the legacy path.
    fn refresh(&mut self, pheromone: &PheromoneMatrix, block: &CandidateBlock) {
        let k = self.k;
        for s in 0..block.slot_count() {
            let row = block.row(s);
            let eta = block.eta_row(s);
            let mut acc = 0.0;
            for r in 0..k {
                let w = pheromone.get_pow(s as u32, row[r]) * eta[r];
                let w = if w.is_finite() { w } else { 0.0 };
                self.weights[s * k + r] = w;
                acc += w;
                self.prefix[s * k + r] = acc;
            }
        }
    }

    #[inline]
    fn weight_row(&self, s: usize) -> &[f64] {
        &self.weights[s * self.k..(s + 1) * self.k]
    }

    #[inline]
    fn prefix_row(&self, s: usize) -> &[f64] {
        &self.prefix[s * self.k..(s + 1) * self.k]
    }
}

/// O(log k) roulette over a non-decreasing prefix-sum row: the smallest
/// index whose prefix strictly exceeds `spin` — exactly the index a linear
/// left-to-right scan (`spin < prefix[i]`) of the same row returns. A spin
/// at or beyond the total clamps to the last index.
pub fn prefix_pick(prefix: &[f64], spin: f64) -> usize {
    debug_assert!(!prefix.is_empty());
    prefix.partition_point(|&p| p <= spin).min(prefix.len() - 1)
}

/// Static Vose alias tables over the per-slot η^β mass plus sparse
/// per-iteration τ-deposit deltas. Eq. 5's row weight factors as
/// `τ^α·η^β = base^α·η^β + (τ^α − base^α)·η^β`: evaporation rescales the
/// base uniformly (the *shape* of the first term never changes, so its
/// alias table is built once per batch), and the second term is non-zero
/// only on deposited edges — a short per-slot list. Sampling draws from
/// the two-part mixture without ever rebuilding a dense row.
struct AliasTables {
    k: usize,
    /// Vose acceptance probability per `[slot * k + rank]` cell.
    prob: Vec<f64>,
    /// Vose alias rank per cell.
    alias: Vec<u32>,
    /// Slots whose η^β mass was finite and positive (usable static part).
    static_ok: Vec<bool>,
    /// Candidate VMs of each slot, sorted ascending, with their ranks —
    /// O(log k) vm→rank lookups during delta extraction.
    sorted_vm: Vec<u32>,
    sorted_rank: Vec<u32>,
    /// Per-iteration mixture state (refreshed after `prepare_pow`).
    base_total: Vec<f64>,
    delta_rank: Vec<Vec<u32>>,
    delta_w: Vec<Vec<f64>>,
    delta_total: Vec<f64>,
}

impl AliasTables {
    fn build(block: &CandidateBlock) -> Self {
        let k = block.k();
        let b = block.slot_count();
        let mut prob = vec![1.0; b * k];
        let mut alias = vec![0u32; b * k];
        let mut static_ok = vec![false; b];
        let mut sorted_vm = Vec::with_capacity(b * k);
        let mut sorted_rank = Vec::with_capacity(b * k);
        let mut small: Vec<u32> = Vec::with_capacity(k);
        let mut large: Vec<u32> = Vec::with_capacity(k);
        let mut scaled = vec![0.0; k];
        for s in 0..b {
            let eta = block.eta_row(s);
            let sum = block.eta_sum(s);
            let mut pairs: Vec<(u32, u32)> = block
                .row(s)
                .iter()
                .enumerate()
                .map(|(r, &vm)| (vm, r as u32))
                .collect();
            pairs.sort_unstable();
            for (vm, r) in pairs {
                sorted_vm.push(vm);
                sorted_rank.push(r);
            }
            if !(sum.is_finite() && sum > 0.0) {
                // Degenerate slot: no static mass; deltas (or the exact
                // fallback in tour construction) carry the distribution.
                for r in 0..k {
                    alias[s * k + r] = r as u32;
                }
                continue;
            }
            static_ok[s] = true;
            // Vose's algorithm: partition ranks by scaled weight, pair
            // small cells with large donors.
            small.clear();
            large.clear();
            for r in 0..k {
                scaled[r] = eta[r] * k as f64 / sum;
                if scaled[r] < 1.0 {
                    small.push(r as u32);
                } else {
                    large.push(r as u32);
                }
            }
            while !small.is_empty() && !large.is_empty() {
                let s_rank = small.pop().expect("checked non-empty") as usize;
                let l_rank = *large.last().expect("checked non-empty") as usize;
                prob[s * k + s_rank] = scaled[s_rank];
                alias[s * k + s_rank] = l_rank as u32;
                scaled[l_rank] -= 1.0 - scaled[s_rank];
                if scaled[l_rank] < 1.0 {
                    large.pop();
                    small.push(l_rank as u32);
                }
            }
            for &r in small.iter().chain(large.iter()) {
                prob[s * k + r as usize] = 1.0;
                alias[s * k + r as usize] = r;
            }
        }
        AliasTables {
            k,
            prob,
            alias,
            static_ok,
            sorted_vm,
            sorted_rank,
            base_total: vec![0.0; b],
            delta_rank: vec![Vec::new(); b],
            delta_w: vec![Vec::new(); b],
            delta_total: vec![0.0; b],
        }
    }

    /// Rebuilds the mixture state from the current pheromone snapshot
    /// (call after [`PheromoneMatrix::prepare_pow`]).
    fn refresh(&mut self, pheromone: &PheromoneMatrix, block: &CandidateBlock) {
        let k = self.k;
        let base_pow = pheromone.base_pow();
        for s in 0..block.slot_count() {
            self.base_total[s] = if self.static_ok[s] {
                base_pow * block.eta_sum(s)
            } else {
                0.0
            };
            self.delta_rank[s].clear();
            self.delta_w[s].clear();
            self.delta_total[s] = 0.0;
        }
        pheromone.for_each_deposited_pow(|slot, vm, pow| {
            if slot >= block.slot_count() {
                return;
            }
            let sorted = &self.sorted_vm[slot * k..(slot + 1) * k];
            if let Ok(i) = sorted.binary_search(&vm) {
                let rank = self.sorted_rank[slot * k + i];
                // τ ≥ base on deposited edges, so the delta is ≥ 0 up to
                // powf rounding; clamp defensively.
                let w = (pow - base_pow) * block.eta_row(slot)[rank as usize];
                let w = if w.is_finite() { w.max(0.0) } else { 0.0 };
                if w > 0.0 {
                    self.delta_rank[slot].push(rank);
                    self.delta_w[slot].push(w);
                    self.delta_total[slot] += w;
                }
            }
        });
    }

    /// Draws a rank from slot `s`'s mixture, or `None` when the slot has
    /// no usable mass (caller falls back to the exact conditional path).
    fn sample(&self, s: usize, rng: &mut StdRng) -> Option<usize> {
        let total = self.base_total[s] + self.delta_total[s];
        if !(total.is_finite() && total > 0.0) {
            return None;
        }
        let spin = rng.gen_range(0.0..total);
        if spin < self.base_total[s] {
            let r = rng.gen_range(0..self.k);
            let flip: f64 = rng.gen_range(0.0..1.0);
            Some(if flip < self.prob[s * self.k + r] {
                r
            } else {
                self.alias[s * self.k + r] as usize
            })
        } else {
            let mut rem = spin - self.base_total[s];
            let ranks = &self.delta_rank[s];
            for (i, &w) in self.delta_w[s].iter().enumerate() {
                rem -= w;
                if rem <= 0.0 {
                    return Some(ranks[i] as usize);
                }
            }
            ranks.last().map(|&r| r as usize)
        }
    }
}

/// One ant's tour on the candidate-list fast path: per slot, draw from the
/// full-row distribution (prefix binary search, alias mixture, or linear
/// roulette), rejecting tabu picks up to [`MAX_TABU_RESAMPLES`] times
/// before switching to the exact roulette conditioned on the non-tabu
/// candidates; a fully-tabu row falls back to the first free VM scanning
/// from a random start (the legacy escape hatch).
#[allow(clippy::too_many_arguments)]
fn construct_tour_topk(
    cache: &EvalCache,
    slots: Range<usize>,
    pheromone: &PheromoneMatrix,
    params: &AcoParams,
    seed: u64,
    block: &CandidateBlock,
    rows: Option<&CandidateRows>,
    alias: Option<&AliasTables>,
    scratch: &mut TourScratch,
) -> (Vec<u32>, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let v = cache.vm_count();
    let k = block.k();
    scratch.begin_ant();
    let mut tour = Vec::with_capacity(slots.len());
    let mut length = 0.0;

    for (slot_idx, c) in slots.enumerate() {
        let row = block.row(slot_idx);
        let mut chosen: Option<u32> = None;

        if params.q0 > 0.0 && rng.gen_range(0.0..1.0) < params.q0 {
            // ACS exploitation: argmax over the non-tabu candidates
            // (validation guarantees a dense row exists when q0 > 0).
            if let Some(rows) = rows {
                let weights = rows.weight_row(slot_idx);
                let mut best: Option<(u32, f64)> = None;
                for r in 0..k {
                    let j = row[r];
                    if scratch.is_tabu(j) {
                        continue;
                    }
                    if best.is_none_or(|(_, bw)| weights[r].total_cmp(&bw).is_gt()) {
                        best = Some((j, weights[r]));
                    }
                }
                chosen = best.map(|(j, _)| j);
            }
        } else {
            for _ in 0..MAX_TABU_RESAMPLES {
                let rank = if let Some(rows) = rows {
                    let prefix = rows.prefix_row(slot_idx);
                    let total = prefix[k - 1];
                    if !(total.is_finite() && total > 0.0) {
                        break;
                    }
                    match params.sampling {
                        SamplingMode::PrefixSum => prefix_pick(prefix, rng.gen_range(0.0..total)),
                        _ => roulette(&mut rng, rows.weight_row(slot_idx), total),
                    }
                } else if let Some(alias) = alias {
                    match alias.sample(slot_idx, &mut rng) {
                        Some(rank) => rank,
                        None => break,
                    }
                } else {
                    unreachable!("fast path always builds rows or alias tables")
                };
                let j = row[rank];
                if !scratch.is_tabu(j) {
                    chosen = Some(j);
                    break;
                }
            }
        }

        if chosen.is_none() {
            // Exact conditional: roulette over the non-tabu candidates.
            scratch.begin_slot();
            let mut total = 0.0;
            for (r, &j) in row.iter().enumerate().take(k) {
                if scratch.is_tabu(j) {
                    continue;
                }
                let w = match rows {
                    Some(rows) => rows.weight_row(slot_idx)[r],
                    None => {
                        let w = pheromone.get_pow(slot_idx as u32, j) * block.eta_row(slot_idx)[r];
                        if w.is_finite() {
                            w
                        } else {
                            0.0
                        }
                    }
                };
                scratch.candidates.push(j);
                scratch.weights.push(w);
                total += w;
            }
            if scratch.candidates.is_empty() {
                // Whole row tabu: first free VM from a random start.
                let start = rng.gen_range(0..v);
                for off in 0..v {
                    let j = ((start + off) % v) as u32;
                    if !scratch.is_tabu(j) {
                        chosen = Some(j);
                        break;
                    }
                }
            } else {
                let pick = roulette(&mut rng, &scratch.weights, total);
                chosen = Some(scratch.candidates[pick]);
            }
        }

        let j = chosen.expect("tabu cannot exhaust all VMs");
        scratch.make_tabu(j);
        tour.push(j);
        length += cache.exec_ms(c, j as usize);
    }
    (tour, length)
}

/// Reusable per-colony buffers for tour construction. Tabu and candidate
/// membership are generation-stamped arrays (`stamp[j] == gen` means "in
/// the set"), so clearing a set between ants or slots is a counter bump
/// instead of an O(v) wipe or a fresh allocation.
struct TourScratch {
    tabu_stamp: Vec<u32>,
    tabu_gen: u32,
    cand_stamp: Vec<u32>,
    cand_gen: u32,
    candidates: Vec<u32>,
    weights: Vec<f64>,
}

impl TourScratch {
    fn new(v: usize) -> Self {
        TourScratch {
            tabu_stamp: vec![0; v],
            tabu_gen: 0,
            cand_stamp: vec![0; v],
            cand_gen: 0,
            candidates: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Starts a fresh ant: one bump empties the tabu set.
    fn begin_ant(&mut self) {
        if self.tabu_gen == u32::MAX {
            self.tabu_stamp.fill(0);
            self.tabu_gen = 0;
        }
        self.tabu_gen += 1;
    }

    /// Starts a fresh slot: one bump empties the candidate set.
    fn begin_slot(&mut self) {
        if self.cand_gen == u32::MAX {
            self.cand_stamp.fill(0);
            self.cand_gen = 0;
        }
        self.cand_gen += 1;
        self.candidates.clear();
        self.weights.clear();
    }

    #[inline]
    fn is_tabu(&self, j: u32) -> bool {
        self.tabu_stamp[j as usize] == self.tabu_gen
    }

    #[inline]
    fn make_tabu(&mut self, j: u32) {
        self.tabu_stamp[j as usize] = self.tabu_gen;
    }

    #[inline]
    fn in_candidates(&self, j: u32) -> bool {
        self.cand_stamp[j as usize] == self.cand_gen
    }

    #[inline]
    fn push_candidate(&mut self, j: u32) {
        self.cand_stamp[j as usize] = self.cand_gen;
        self.candidates.push(j);
    }
}

/// One ant's tour: for each slot, pick a VM by the Eq. 5 roulette over the
/// candidate list, respecting the tabu set. RNG draws, weight values and
/// accumulation order replicate [`reference`] exactly, so picks are
/// byte-identical to the pre-overhaul loop.
fn construct_tour(
    cache: &EvalCache,
    slots: Range<usize>,
    pheromone: &PheromoneMatrix,
    params: &AcoParams,
    seed: u64,
    weight_block: Option<&[f64]>,
    scratch: &mut TourScratch,
) -> (Vec<u32>, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let v = cache.vm_count();
    let b = slots.len();
    debug_assert!(b <= v, "batch must be clamped to the VM count");

    scratch.begin_ant();
    let mut tour = Vec::with_capacity(b);
    let mut length = 0.0;

    for (slot_idx, c) in slots.enumerate() {
        scratch.begin_slot();
        // One VM goes tabu per slot, so `slot_idx` counts the tabu set.
        let free = v - slot_idx;
        let k = params.candidates.unwrap_or(v).min(v);

        if k >= free {
            // Few VMs left: enumerate all allowed ones.
            for j in 0..v as u32 {
                if !scratch.is_tabu(j) {
                    scratch.push_candidate(j);
                }
            }
        } else {
            // Sample k distinct allowed VMs.
            let mut attempts = 0;
            let max_attempts = 6 * k;
            while scratch.candidates.len() < k && attempts < max_attempts {
                attempts += 1;
                let j = rng.gen_range(0..v) as u32;
                if !scratch.is_tabu(j) && !scratch.in_candidates(j) {
                    scratch.push_candidate(j);
                }
            }
            if scratch.candidates.is_empty() {
                // Rejection sampling got unlucky; take the first free VM
                // scanning from a random start.
                let start = rng.gen_range(0..v);
                for off in 0..v {
                    let j = ((start + off) % v) as u32;
                    if !scratch.is_tabu(j) {
                        scratch.push_candidate(j);
                        break;
                    }
                }
            }
        }
        debug_assert!(
            !scratch.candidates.is_empty(),
            "tabu cannot exhaust all VMs"
        );

        // Eq. 5: p(j) ∝ τ(i,j)^α · η(i,j)^β over allowed candidates — one
        // read from the fused weight table, or the cached-τ^α × inline-η^β
        // product at scales where the table was declined (identical bits
        // either way; see the module docs).
        let mut total = 0.0;
        let weight_row = weight_block.map(|block| &block[slot_idx * v..(slot_idx + 1) * v]);
        for i in 0..scratch.candidates.len() {
            let j = scratch.candidates[i];
            let w = match weight_row {
                Some(row) => row[j as usize],
                None => {
                    pheromone.get_pow(slot_idx as u32, j)
                        * cache.heuristic(c, j as usize).powf(params.beta)
                }
            };
            let w = if w.is_finite() { w } else { 0.0 };
            total += w;
            scratch.weights.push(w);
        }
        // ACS pseudo-random-proportional rule: exploit the best edge with
        // probability q0, otherwise spin the roulette.
        let pick = if params.q0 > 0.0 && rng.gen_range(0.0..1.0) < params.q0 {
            scratch
                .weights
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("candidates are non-empty")
        } else {
            roulette(&mut rng, &scratch.weights, total)
        };
        let j = scratch.candidates[pick];
        scratch.make_tabu(j);
        tour.push(j);
        length += cache.exec_ms(c, j as usize);
    }
    (tour, length)
}

/// Roulette-wheel selection; degenerates to uniform if all weights vanish.
fn roulette(rng: &mut StdRng, weights: &[f64], total: f64) -> usize {
    debug_assert!(!weights.is_empty());
    if !(total.is_finite() && total > 0.0) {
        return rng.gen_range(0..weights.len());
    }
    let mut spin = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        spin -= w;
        if spin <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

impl Scheduler for AntColony {
    fn name(&self) -> &'static str {
        "ant-colony"
    }

    fn schedule(&mut self, problem: &SchedulingProblem) -> Assignment {
        self.run(problem, &EvalCache::new(problem), false, None).0
    }

    fn schedule_with_cache(
        &mut self,
        problem: &SchedulingProblem,
        cache: &EvalCache,
    ) -> Assignment {
        self.run(problem, cache, false, None).0
    }

    fn schedule_warm(
        &mut self,
        problem: &SchedulingProblem,
        cache: &EvalCache,
        warm: &mut crate::warm::WarmState,
    ) -> Assignment {
        let plan = self.schedule_with_warm_pheromone(problem, cache, &mut warm.pheromone);
        warm.note_plan(&plan);
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcloud::characteristics::CostModel;
    use simcloud::cloudlet::CloudletSpec;
    use simcloud::vm::VmSpec;

    fn hetero_problem(vms: usize, cloudlets: usize) -> SchedulingProblem {
        // Alternating slow/fast VMs, uniform cloudlets.
        let vm_specs: Vec<VmSpec> = (0..vms)
            .map(|i| {
                let mips = if i % 2 == 0 { 500.0 } else { 4_000.0 };
                VmSpec::new(mips, 5_000.0, 512.0, 500.0, 1)
            })
            .collect();
        let cl = CloudletSpec::new(10_000.0, 0.0, 0.0, 1);
        SchedulingProblem::single_datacenter(vm_specs, vec![cl; cloudlets], CostModel::default())
    }

    #[test]
    fn produces_complete_valid_assignment() {
        let p = hetero_problem(10, 37);
        let a = AntColony::new(AcoParams::fast(), 1).schedule(&p);
        assert!(a.validate(&p).is_ok());
        assert_eq!(a.len(), 37);
    }

    #[test]
    fn tabu_forbids_vm_reuse_within_batch() {
        let p = hetero_problem(16, 16);
        let params = AcoParams {
            batch_size: 16,
            max_vm_fraction: 1.0,
            ..AcoParams::fast()
        };
        let a = AntColony::new(params, 2).schedule(&p);
        let mut seen = std::collections::HashSet::new();
        for vm in a.as_slice() {
            assert!(seen.insert(*vm), "VM {vm} reused within a single batch");
        }
    }

    #[test]
    fn batch_clamped_to_fleet_fraction() {
        // 10 VMs, fraction 0.5 -> batches of 5: within any window of 5
        // consecutive cloudlets every VM is distinct.
        let p = hetero_problem(10, 20);
        let params = AcoParams {
            batch_size: 128,
            max_vm_fraction: 0.5,
            ..AcoParams::fast()
        };
        let a = AntColony::new(params, 11).schedule(&p);
        for chunk in a.as_slice().chunks(5) {
            let distinct: std::collections::HashSet<_> = chunk.iter().collect();
            assert_eq!(distinct.len(), chunk.len());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = hetero_problem(8, 40);
        let a = AntColony::new(AcoParams::fast(), 9).schedule(&p);
        let b = AntColony::new(AcoParams::fast(), 9).schedule(&p);
        assert_eq!(a, b);
        let c = AntColony::new(AcoParams::fast(), 10).schedule(&p);
        // Different seeds almost surely differ on 40 choices.
        assert_ne!(a, c);
    }

    #[test]
    fn favors_fast_vms() {
        // β=0.99 makes ants strongly heuristic-driven: fast VMs must
        // receive clearly more cloudlets than slow ones.
        let p = hetero_problem(10, 200);
        let a = AntColony::new(AcoParams::paper(), 3).schedule(&p);
        let counts = a.counts_per_vm(10);
        let slow: usize = counts.iter().step_by(2).sum();
        let fast: usize = counts.iter().skip(1).step_by(2).sum();
        assert!(
            fast > slow * 2,
            "fast VMs should dominate: fast={fast} slow={slow}"
        );
    }

    #[test]
    fn beats_round_robin_on_estimated_makespan() {
        use crate::round_robin::RoundRobin;
        let p = hetero_problem(10, 100);
        let aco = AntColony::new(AcoParams::paper(), 4).schedule(&p);
        let rr = RoundRobin::new().schedule(&p);
        assert!(
            aco.estimated_makespan_ms(&p) < rr.estimated_makespan_ms(&p),
            "ACO {} should beat RR {}",
            aco.estimated_makespan_ms(&p),
            rr.estimated_makespan_ms(&p)
        );
    }

    #[test]
    fn trace_is_monotone_and_harmless() {
        let p = hetero_problem(12, 24);
        let (plan, trace) = AntColony::new(AcoParams::fast(), 13).schedule_traced(&p);
        assert_eq!(trace.len(), AcoParams::fast().iterations);
        // The global best tour length never regresses.
        assert!(trace.windows(2).all(|w| w[1] <= w[0] + 1e-12));
        // Tracing does not change the schedule.
        let untraced = AntColony::new(AcoParams::fast(), 13).schedule(&p);
        assert_eq!(plan, untraced);
    }

    #[test]
    fn single_vm_degenerates_gracefully() {
        let p = hetero_problem(1, 5);
        let a = AntColony::new(AcoParams::fast(), 5).schedule(&p);
        assert!(a.as_slice().iter().all(|v| v.index() == 0));
    }

    #[test]
    fn acs_exploitation_is_valid_and_greedier() {
        let p = hetero_problem(10, 100);
        let acs = AntColony::new(
            AcoParams {
                q0: 0.9,
                ..AcoParams::fast()
            },
            30,
        )
        .schedule(&p);
        assert!(acs.validate(&p).is_ok());
        // Full exploitation (q0=1) is near-deterministic given the
        // pheromone trajectory and must still cover everything.
        let greedy = AntColony::new(
            AcoParams {
                q0: 1.0,
                ..AcoParams::fast()
            },
            30,
        )
        .schedule(&p);
        assert_eq!(greedy.len(), 100);
    }

    #[test]
    fn exhaustive_candidates_work() {
        // candidates = None examines every VM per choice.
        let p = hetero_problem(6, 12);
        let params = AcoParams {
            candidates: None,
            ..AcoParams::fast()
        };
        let a = AntColony::new(params, 20).schedule(&p);
        assert!(a.validate(&p).is_ok());
    }

    #[test]
    fn more_cloudlets_than_vms_by_far() {
        // 3 VMs, 50 cloudlets: many tiny batches of ceil(3*0.5)=2.
        let p = hetero_problem(3, 50);
        let a = AntColony::new(AcoParams::fast(), 21).schedule(&p);
        assert_eq!(a.len(), 50);
        let counts = a.counts_per_vm(3);
        assert!(
            counts.iter().all(|c| *c > 0),
            "all VMs see work: {counts:?}"
        );
    }

    #[test]
    fn repeated_rounds_advance_rng_state() {
        // Two consecutive schedule() calls on one colony instance draw
        // fresh ant seeds — rounds differ (statistically certain here).
        let p = hetero_problem(10, 30);
        let mut colony = AntColony::new(AcoParams::fast(), 22);
        let first = colony.schedule(&p);
        let second = colony.schedule(&p);
        assert_ne!(first, second);
    }

    #[test]
    fn roulette_respects_weights() {
        let mut rng = StdRng::seed_from_u64(0);
        let weights = [0.0, 0.0, 10.0];
        for _ in 0..32 {
            assert_eq!(roulette(&mut rng, &weights, 10.0), 2);
        }
        // Degenerate: all-zero weights fall back to uniform.
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(roulette(&mut rng, &[0.0, 0.0], 0.0));
        }
        assert_eq!(seen.len(), 2);
    }

    /// Fast-path params: k strictly below the fleet size so the
    /// candidate-list machinery engages.
    fn topk_params(k: usize, sampling: SamplingMode) -> AcoParams {
        AcoParams {
            candidates: Some(k),
            strategy: CandidateStrategy::TopEta,
            sampling,
            ..AcoParams::fast()
        }
    }

    #[test]
    fn topk_path_produces_complete_valid_assignment() {
        let p = hetero_problem(40, 200);
        for sampling in [
            SamplingMode::Linear,
            SamplingMode::PrefixSum,
            SamplingMode::Alias,
        ] {
            let a = AntColony::new(topk_params(8, sampling), 7).schedule(&p);
            assert!(a.validate(&p).is_ok(), "{sampling:?}");
            assert_eq!(a.len(), 200);
        }
    }

    #[test]
    fn topk_path_is_deterministic_per_seed() {
        let p = hetero_problem(40, 120);
        for sampling in [SamplingMode::PrefixSum, SamplingMode::Alias] {
            let a = AntColony::new(topk_params(8, sampling), 11).schedule(&p);
            let b = AntColony::new(topk_params(8, sampling), 11).schedule(&p);
            assert_eq!(a, b, "{sampling:?}");
        }
    }

    #[test]
    fn topk_path_respects_tabu_within_batch() {
        let p = hetero_problem(32, 64);
        let params = AcoParams {
            batch_size: 16,
            max_vm_fraction: 1.0,
            ..topk_params(8, SamplingMode::PrefixSum)
        };
        let a = AntColony::new(params, 3).schedule(&p);
        for chunk in a.as_slice().chunks(16) {
            let distinct: std::collections::HashSet<_> = chunk.iter().collect();
            assert_eq!(distinct.len(), chunk.len(), "VM reused within a batch");
        }
    }

    #[test]
    fn topk_path_favors_fast_vms() {
        let p = hetero_problem(40, 400);
        let params = AcoParams {
            candidates: Some(8),
            ..AcoParams::paper()
        };
        let a = AntColony::new(params, 5).schedule(&p);
        let counts = a.counts_per_vm(40);
        let slow: usize = counts.iter().step_by(2).sum();
        let fast: usize = counts.iter().skip(1).step_by(2).sum();
        assert!(
            fast > slow,
            "fast VMs should receive more work: fast={fast} slow={slow}"
        );
    }

    #[test]
    fn topk_with_k_at_fleet_size_matches_reference() {
        // The fast path must disengage at k ≥ #VMs: bitwise reference
        // equivalence is the contract there.
        let p = hetero_problem(12, 70);
        for k in [12, 20] {
            let params = AcoParams {
                candidates: Some(k),
                strategy: CandidateStrategy::TopEta,
                sampling: SamplingMode::PrefixSum,
                ..AcoParams::fast()
            };
            let new = AntColony::new(params.clone(), 17).schedule(&p);
            let old = reference::schedule_reference(&params, 17, &p);
            assert_eq!(new, old, "k={k} must take the legacy path");
        }
    }

    #[test]
    fn topk_traced_convergence_is_monotone() {
        let p = hetero_problem(64, 128);
        let (plan, trace) =
            AntColony::new(topk_params(8, SamplingMode::PrefixSum), 23).schedule_traced(&p);
        assert!(plan.validate(&p).is_ok());
        assert_eq!(trace.len(), AcoParams::fast().iterations);
        assert!(trace.windows(2).all(|w| w[1] <= w[0] + 1e-12));
    }

    #[test]
    fn alias_and_prefix_agree_on_quality_not_bits() {
        // Different sampling modes draw different streams, but on a
        // strongly heterogeneous fleet both must land near the same
        // estimated makespan (same distribution, same pheromone dynamics).
        let p = hetero_problem(40, 400);
        let prefix = AntColony::new(topk_params(8, SamplingMode::PrefixSum), 9).schedule(&p);
        let alias = AntColony::new(topk_params(8, SamplingMode::Alias), 9).schedule(&p);
        let mp = prefix.estimated_makespan_ms(&p);
        let ma = alias.estimated_makespan_ms(&p);
        assert!(
            (mp - ma).abs() <= 0.35 * mp.max(ma),
            "prefix {mp} vs alias {ma} diverged"
        );
    }

    #[test]
    fn prefix_pick_matches_linear_scan() {
        let prefix = [0.5, 0.5, 2.0, 2.0, 3.5];
        for spin in [0.0, 0.4999, 0.5, 1.0, 1.9999, 2.0, 3.4, 10.0] {
            let linear = prefix
                .iter()
                .position(|&p| spin < p)
                .unwrap_or(prefix.len() - 1);
            assert_eq!(prefix_pick(&prefix, spin), linear, "spin={spin}");
        }
    }

    #[test]
    fn warm_none_prior_matches_cold_schedule() {
        // An empty warm slot must not perturb the plan — only capture.
        let p = hetero_problem(16, 60);
        let cache = EvalCache::new(&p);
        for params in [AcoParams::fast(), topk_params(8, SamplingMode::PrefixSum)] {
            let mut warm = None;
            let warm_plan = AntColony::new(params.clone(), 9)
                .schedule_with_warm_pheromone(&p, &cache, &mut warm);
            let cold_plan = AntColony::new(params.clone(), 9).schedule_with_cache(&p, &cache);
            assert_eq!(warm_plan, cold_plan);
            assert!(warm.is_some(), "matrix captured for the next wave");
        }
    }

    #[test]
    fn warm_prior_reuse_is_deterministic_per_seed() {
        let p = hetero_problem(20, 80);
        for params in [AcoParams::fast(), topk_params(8, SamplingMode::PrefixSum)] {
            let run_two_waves = || {
                let cache = EvalCache::new(&p);
                let mut warm = None;
                let first = AntColony::new(params.clone(), 5)
                    .schedule_with_warm_pheromone(&p, &cache, &mut warm);
                let second = AntColony::new(params.clone(), 6)
                    .schedule_with_warm_pheromone(&p, &cache, &mut warm);
                (first, second)
            };
            let (a1, a2) = run_two_waves();
            let (b1, b2) = run_two_waves();
            assert_eq!(a1, b1);
            assert_eq!(a2, b2);
            assert!(a2.validate(&p).is_ok());
        }
    }

    #[test]
    fn anytime_run_matches_one_shot_bitwise() {
        // The anytime contract the racing driver relies on: a cold AcoRun
        // stepped to completion picks the one-shot plan, same bits — on
        // both the legacy and the candidate-list engines, and on batched
        // workloads (several colonies advancing in lockstep).
        let p = hetero_problem(14, 90);
        let cache = EvalCache::new(&p);
        for params in [AcoParams::fast(), topk_params(8, SamplingMode::PrefixSum)] {
            let mut run = AcoRun::cold(params.clone(), 17, &cache, None);
            assert!(run.incumbent().is_none(), "no tours before the first step");
            let mut steps = 0;
            while !run.done() {
                run.step(&cache);
                steps += 1;
            }
            assert_eq!(steps, params.iterations);
            assert_eq!(run.step_units(), params.ants as u64);
            let stepped = run.incumbent().expect("stepped to completion");
            let one_shot = AntColony::new(params, 17).schedule_with_cache(&p, &cache);
            let one_shot: Vec<u32> = one_shot.as_slice().iter().map(|vm| vm.0).collect();
            assert_eq!(stepped, one_shot);
        }
    }

    #[test]
    fn matches_reference_implementation() {
        // The optimized hot path must pick byte-identical tours. (The
        // cross-thread-count matrix lives in tests/scheduler_equivalence.)
        for seed in [9u64, 77, 1234] {
            let p = hetero_problem(14, 90);
            let new = AntColony::new(AcoParams::fast(), seed).schedule(&p);
            let old = reference::schedule_reference(&AcoParams::fast(), seed, &p);
            assert_eq!(new, old, "seed {seed} diverged from the reference");
        }
    }

    #[test]
    fn matches_reference_with_alpha_one_fast_path() {
        // α = 1 takes the powf-free identity path; the reference calls
        // powf(τ, 1.0). Both must agree bit for bit.
        let params = AcoParams {
            alpha: 1.0,
            ..AcoParams::fast()
        };
        let p = hetero_problem(12, 60);
        let new = AntColony::new(params.clone(), 5).schedule(&p);
        let old = reference::schedule_reference(&params, 5, &p);
        assert_eq!(new, old);
    }

    #[test]
    fn matches_reference_when_eta_block_declined() {
        // One ant × one iteration makes the η^β block unprofitable, so
        // construct_tour exercises the inline powf fallback.
        let params = AcoParams {
            ants: 1,
            iterations: 1,
            ..AcoParams::fast()
        };
        let p = hetero_problem(20, 55);
        let new = AntColony::new(params.clone(), 31).schedule(&p);
        let old = reference::schedule_reference(&params, 31, &p);
        assert_eq!(new, old);
    }
}
