//! Ant Colony Optimization scheduler (Section IV of the paper).
//!
//! Ants construct cloudlet→VM tours guided by pheromone trails τ and the
//! heuristic desirability η = 1/d of Eq. 6. The transition rule is Eq. 5,
//! pheromone updates follow Eqs. 7–11, and each ant's tabu list forbids
//! reusing a VM within a tour (the paper's constraint-satisfaction rule).
//!
//! Cloudlets are scheduled in *batches* of at most `batch_size` (clamped to
//! the VM count, since a tour cannot revisit VMs). Each batch runs a full
//! colony: `iterations` rounds of `ants` tour constructions followed by
//! local evaporation + deposit (Eqs. 9–10) and a global best-tour
//! reinforcement (Eq. 11). The best tour ever seen becomes the batch's
//! assignment.
//!
//! A tour's length `L_k` is the sum of Eq. 6 expected execution times of
//! its (cloudlet, VM) pairs — the scheduling analog of the TSP tour length
//! the original ACO minimizes (the paper's Eq. 8 rendering is garbled; the
//! sum interpretation preserves "shorter tour = better schedule").
//!
//! # Hot path
//!
//! Colonies are mutually independent, so `run` pre-draws every ant seed in
//! the exact order the old sequential loop consumed them (colony-major,
//! then iteration, then ant) and fans whole colonies out through
//! [`eval::par_map_if`] — assignments stay byte-identical per seed at any
//! thread count. Inside a colony the Eq. 5 weight is read from two caches
//! instead of calling `powf` per candidate: an η^β block precomputed per
//! batch ([`EvalCache::eta_pow_block`]) and the τ^α snapshot the slot-major
//! [`PheromoneMatrix`] refreshes once per iteration. Tabu and
//! candidate-membership checks are generation-stamped array probes in
//! per-colony scratch ([`TourScratch`]), so tour construction allocates
//! nothing but the returned tour. The pre-overhaul loop survives verbatim
//! in [`reference`] as the equivalence baseline.

//!
//! ```
//! use biosched_core::aco::{AcoParams, AntColony};
//! use biosched_core::problem::SchedulingProblem;
//! use biosched_core::scheduler::Scheduler;
//! use simcloud::prelude::*;
//!
//! let problem = SchedulingProblem::single_datacenter(
//!     vec![VmSpec::new(500.0, 5000.0, 512.0, 500.0, 1),
//!          VmSpec::new(4000.0, 5000.0, 512.0, 500.0, 1)],
//!     vec![CloudletSpec::new(10_000.0, 300.0, 300.0, 1); 6],
//!     CostModel::default(),
//! );
//! let mut aco = AntColony::new(AcoParams::fast(), 42);
//! let plan = aco.schedule(&problem);
//! assert!(plan.validate(&problem).is_ok());
//! ```
mod params;
mod pheromone;
pub mod reference;

pub use params::AcoParams;
pub use pheromone::PheromoneMatrix;

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simcloud::ids::VmId;
use simcloud::rng::stream;

use crate::assignment::Assignment;
use crate::eval::{self, EvalCache};
use crate::problem::SchedulingProblem;
use crate::scheduler::Scheduler;

/// The ACO scheduler.
pub struct AntColony {
    params: AcoParams,
    rng: StdRng,
}

impl AntColony {
    /// Creates a colony with the given parameters and seed.
    pub fn new(params: AcoParams, seed: u64) -> Self {
        params.validate().expect("invalid AcoParams");
        AntColony {
            params,
            rng: stream(seed, "aco"),
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &AcoParams {
        &self.params
    }

    /// Like [`Scheduler::schedule`], but also returns the best tour
    /// length after each iteration of the *first* colony — ACO's
    /// convergence curve (subsequent batches behave statistically alike).
    pub fn schedule_traced(&mut self, problem: &SchedulingProblem) -> (Assignment, Vec<f64>) {
        self.run(problem, &EvalCache::new(problem), true)
    }

    fn run(
        &mut self,
        problem: &SchedulingProblem,
        cache: &EvalCache,
        traced: bool,
    ) -> (Assignment, Vec<f64>) {
        let c = problem.cloudlet_count();
        let v = problem.vm_count();
        // Clamp: a tour may not revisit VMs, and a tour covering the whole
        // fleet is a bare permutation with no room for preference.
        let fleet_cap = ((v as f64 * self.params.max_vm_fraction).ceil() as usize).max(1);
        let batch = self.params.batch_size.min(fleet_cap).max(1);

        let mut colonies: Vec<(usize, Range<usize>)> = Vec::with_capacity(c.div_ceil(batch));
        let mut start = 0;
        while start < c {
            let end = (start + batch).min(c);
            colonies.push((colonies.len(), start..end));
            start = end;
        }

        // Pre-draw every ant seed in the order the sequential loop used to
        // consume them (colony-major, then iteration, then ant): colonies
        // can then run on any thread count with identical seed streams.
        let per_colony = self.params.iterations * self.params.ants;
        let seeds: Vec<u64> = (0..colonies.len() * per_colony)
            .map(|_| self.rng.gen())
            .collect();

        // Fan whole colonies out when there are enough to fill the pool;
        // otherwise keep ant-level parallelism inside each colony (nesting
        // both would oversubscribe the scoped-thread fan-out).
        let colonies_parallel = colonies.len() >= eval::MIN_PAR_ITEMS;
        let params = &self.params;
        let results = eval::par_map_if(colonies_parallel, &colonies, |(i, slots)| {
            run_colony(
                cache,
                params,
                slots.clone(),
                &seeds[i * per_colony..(i + 1) * per_colony],
                traced && *i == 0,
                !colonies_parallel,
            )
        });

        let mut map = Vec::with_capacity(c);
        let mut trace = Vec::new();
        for (i, (tour, colony_trace)) in results.into_iter().enumerate() {
            map.extend(tour);
            if i == 0 {
                trace = colony_trace;
            }
        }
        (Assignment::new(map), trace)
    }
}

/// Runs one colony over `slots` (global cloudlet indices). Returns the
/// best tour found plus, when `traced`, the best length per iteration.
fn run_colony(
    cache: &EvalCache,
    params: &AcoParams,
    slots: Range<usize>,
    seeds: &[u64],
    traced: bool,
    ants_parallel: bool,
) -> (Vec<VmId>, Vec<f64>) {
    let v = cache.vm_count();
    let k = params.candidates.unwrap_or(v).min(v);
    // η^β for the whole batch, shared by every ant and iteration; declined
    // (→ inline fallback) when the block would out-cost the lookups.
    let expected_lookups = params
        .ants
        .saturating_mul(params.iterations)
        .saturating_mul(slots.len())
        .saturating_mul(k);
    let eta_pow = cache.eta_pow_block(slots.clone(), params.beta, expected_lookups);
    // Fused Eq. 5 weight table (slot-major, τ^α·η^β per edge), refreshed
    // from the pheromone snapshot each iteration. Same size as the η^β
    // block, so it exists exactly when that block does.
    let mut weight_block: Option<Vec<f64>> = eta_pow.as_ref().map(|block| vec![0.0; block.len()]);

    let mut pheromone = PheromoneMatrix::new(params.initial_pheromone);
    let mut best: Option<(Vec<u32>, f64)> = None;
    let mut trace = Vec::new();
    let mut scratch = TourScratch::new(v);
    // Mirrors the pre-overhaul per-iteration gate (cheap batches do not
    // amortize a fork), further gated off when colonies already fan out.
    let ants_parallel = ants_parallel && slots.len() >= 32;

    for iter in 0..params.iterations {
        let iter_seeds = &seeds[iter * params.ants..(iter + 1) * params.ants];
        pheromone.prepare_pow(params.alpha);
        if let (Some(weights), Some(eta)) = (weight_block.as_mut(), eta_pow.as_deref()) {
            for s in 0..slots.len() {
                pheromone.fill_weight_row(
                    s,
                    &eta[s * v..(s + 1) * v],
                    &mut weights[s * v..(s + 1) * v],
                );
            }
        }
        let weights_ref = weight_block.as_deref();
        let tours: Vec<(Vec<u32>, f64)> = if ants_parallel {
            eval::par_map(iter_seeds, |&seed| {
                let mut ant_scratch = TourScratch::new(v);
                construct_tour(
                    cache,
                    slots.clone(),
                    &pheromone,
                    params,
                    seed,
                    weights_ref,
                    &mut ant_scratch,
                )
            })
        } else {
            iter_seeds
                .iter()
                .map(|&seed| {
                    construct_tour(
                        cache,
                        slots.clone(),
                        &pheromone,
                        params,
                        seed,
                        weights_ref,
                        &mut scratch,
                    )
                })
                .collect()
        };

        // Local update (Eqs. 9–10): evaporate once, then every ant
        // deposits Q/L_k along its tour.
        pheromone.evaporate(params.rho);
        for (tour, len) in &tours {
            let dq = params.q / len.max(f64::MIN_POSITIVE);
            for (i, vm) in tour.iter().enumerate() {
                pheromone.deposit(i as u32, *vm, dq);
            }
        }

        // Track the global best and reinforce it (Eq. 11).
        for (tour, len) in tours {
            if best.as_ref().is_none_or(|(_, b)| len < *b) {
                best = Some((tour, len));
            }
        }
        let (bt, bl) = best.as_ref().expect("ants always produce tours");
        let dq = params.q / bl.max(f64::MIN_POSITIVE);
        for (i, vm) in bt.iter().enumerate() {
            pheromone.deposit(i as u32, *vm, dq);
        }
        if traced {
            trace.push(*bl);
        }
    }

    let tour = best
        .expect("ants always produce tours")
        .0
        .into_iter()
        .map(VmId)
        .collect();
    (tour, trace)
}

/// Reusable per-colony buffers for tour construction. Tabu and candidate
/// membership are generation-stamped arrays (`stamp[j] == gen` means "in
/// the set"), so clearing a set between ants or slots is a counter bump
/// instead of an O(v) wipe or a fresh allocation.
struct TourScratch {
    tabu_stamp: Vec<u32>,
    tabu_gen: u32,
    cand_stamp: Vec<u32>,
    cand_gen: u32,
    candidates: Vec<u32>,
    weights: Vec<f64>,
}

impl TourScratch {
    fn new(v: usize) -> Self {
        TourScratch {
            tabu_stamp: vec![0; v],
            tabu_gen: 0,
            cand_stamp: vec![0; v],
            cand_gen: 0,
            candidates: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Starts a fresh ant: one bump empties the tabu set.
    fn begin_ant(&mut self) {
        if self.tabu_gen == u32::MAX {
            self.tabu_stamp.fill(0);
            self.tabu_gen = 0;
        }
        self.tabu_gen += 1;
    }

    /// Starts a fresh slot: one bump empties the candidate set.
    fn begin_slot(&mut self) {
        if self.cand_gen == u32::MAX {
            self.cand_stamp.fill(0);
            self.cand_gen = 0;
        }
        self.cand_gen += 1;
        self.candidates.clear();
        self.weights.clear();
    }

    #[inline]
    fn is_tabu(&self, j: u32) -> bool {
        self.tabu_stamp[j as usize] == self.tabu_gen
    }

    #[inline]
    fn make_tabu(&mut self, j: u32) {
        self.tabu_stamp[j as usize] = self.tabu_gen;
    }

    #[inline]
    fn in_candidates(&self, j: u32) -> bool {
        self.cand_stamp[j as usize] == self.cand_gen
    }

    #[inline]
    fn push_candidate(&mut self, j: u32) {
        self.cand_stamp[j as usize] = self.cand_gen;
        self.candidates.push(j);
    }
}

/// One ant's tour: for each slot, pick a VM by the Eq. 5 roulette over the
/// candidate list, respecting the tabu set. RNG draws, weight values and
/// accumulation order replicate [`reference`] exactly, so picks are
/// byte-identical to the pre-overhaul loop.
fn construct_tour(
    cache: &EvalCache,
    slots: Range<usize>,
    pheromone: &PheromoneMatrix,
    params: &AcoParams,
    seed: u64,
    weight_block: Option<&[f64]>,
    scratch: &mut TourScratch,
) -> (Vec<u32>, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let v = cache.vm_count();
    let b = slots.len();
    debug_assert!(b <= v, "batch must be clamped to the VM count");

    scratch.begin_ant();
    let mut tour = Vec::with_capacity(b);
    let mut length = 0.0;

    for (slot_idx, c) in slots.enumerate() {
        scratch.begin_slot();
        // One VM goes tabu per slot, so `slot_idx` counts the tabu set.
        let free = v - slot_idx;
        let k = params.candidates.unwrap_or(v).min(v);

        if k >= free {
            // Few VMs left: enumerate all allowed ones.
            for j in 0..v as u32 {
                if !scratch.is_tabu(j) {
                    scratch.push_candidate(j);
                }
            }
        } else {
            // Sample k distinct allowed VMs.
            let mut attempts = 0;
            let max_attempts = 6 * k;
            while scratch.candidates.len() < k && attempts < max_attempts {
                attempts += 1;
                let j = rng.gen_range(0..v) as u32;
                if !scratch.is_tabu(j) && !scratch.in_candidates(j) {
                    scratch.push_candidate(j);
                }
            }
            if scratch.candidates.is_empty() {
                // Rejection sampling got unlucky; take the first free VM
                // scanning from a random start.
                let start = rng.gen_range(0..v);
                for off in 0..v {
                    let j = ((start + off) % v) as u32;
                    if !scratch.is_tabu(j) {
                        scratch.push_candidate(j);
                        break;
                    }
                }
            }
        }
        debug_assert!(
            !scratch.candidates.is_empty(),
            "tabu cannot exhaust all VMs"
        );

        // Eq. 5: p(j) ∝ τ(i,j)^α · η(i,j)^β over allowed candidates — one
        // read from the fused weight table, or the cached-τ^α × inline-η^β
        // product at scales where the table was declined (identical bits
        // either way; see the module docs).
        let mut total = 0.0;
        let weight_row = weight_block.map(|block| &block[slot_idx * v..(slot_idx + 1) * v]);
        for i in 0..scratch.candidates.len() {
            let j = scratch.candidates[i];
            let w = match weight_row {
                Some(row) => row[j as usize],
                None => {
                    pheromone.get_pow(slot_idx as u32, j)
                        * cache.heuristic(c, j as usize).powf(params.beta)
                }
            };
            let w = if w.is_finite() { w } else { 0.0 };
            total += w;
            scratch.weights.push(w);
        }
        // ACS pseudo-random-proportional rule: exploit the best edge with
        // probability q0, otherwise spin the roulette.
        let pick = if params.q0 > 0.0 && rng.gen_range(0.0..1.0) < params.q0 {
            scratch
                .weights
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("candidates are non-empty")
        } else {
            roulette(&mut rng, &scratch.weights, total)
        };
        let j = scratch.candidates[pick];
        scratch.make_tabu(j);
        tour.push(j);
        length += cache.exec_ms(c, j as usize);
    }
    (tour, length)
}

/// Roulette-wheel selection; degenerates to uniform if all weights vanish.
fn roulette(rng: &mut StdRng, weights: &[f64], total: f64) -> usize {
    debug_assert!(!weights.is_empty());
    if !(total.is_finite() && total > 0.0) {
        return rng.gen_range(0..weights.len());
    }
    let mut spin = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        spin -= w;
        if spin <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

impl Scheduler for AntColony {
    fn name(&self) -> &'static str {
        "ant-colony"
    }

    fn schedule(&mut self, problem: &SchedulingProblem) -> Assignment {
        self.run(problem, &EvalCache::new(problem), false).0
    }

    fn schedule_with_cache(
        &mut self,
        problem: &SchedulingProblem,
        cache: &EvalCache,
    ) -> Assignment {
        self.run(problem, cache, false).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcloud::characteristics::CostModel;
    use simcloud::cloudlet::CloudletSpec;
    use simcloud::vm::VmSpec;

    fn hetero_problem(vms: usize, cloudlets: usize) -> SchedulingProblem {
        // Alternating slow/fast VMs, uniform cloudlets.
        let vm_specs: Vec<VmSpec> = (0..vms)
            .map(|i| {
                let mips = if i % 2 == 0 { 500.0 } else { 4_000.0 };
                VmSpec::new(mips, 5_000.0, 512.0, 500.0, 1)
            })
            .collect();
        let cl = CloudletSpec::new(10_000.0, 0.0, 0.0, 1);
        SchedulingProblem::single_datacenter(vm_specs, vec![cl; cloudlets], CostModel::default())
    }

    #[test]
    fn produces_complete_valid_assignment() {
        let p = hetero_problem(10, 37);
        let a = AntColony::new(AcoParams::fast(), 1).schedule(&p);
        assert!(a.validate(&p).is_ok());
        assert_eq!(a.len(), 37);
    }

    #[test]
    fn tabu_forbids_vm_reuse_within_batch() {
        let p = hetero_problem(16, 16);
        let params = AcoParams {
            batch_size: 16,
            max_vm_fraction: 1.0,
            ..AcoParams::fast()
        };
        let a = AntColony::new(params, 2).schedule(&p);
        let mut seen = std::collections::HashSet::new();
        for vm in a.as_slice() {
            assert!(seen.insert(*vm), "VM {vm} reused within a single batch");
        }
    }

    #[test]
    fn batch_clamped_to_fleet_fraction() {
        // 10 VMs, fraction 0.5 -> batches of 5: within any window of 5
        // consecutive cloudlets every VM is distinct.
        let p = hetero_problem(10, 20);
        let params = AcoParams {
            batch_size: 128,
            max_vm_fraction: 0.5,
            ..AcoParams::fast()
        };
        let a = AntColony::new(params, 11).schedule(&p);
        for chunk in a.as_slice().chunks(5) {
            let distinct: std::collections::HashSet<_> = chunk.iter().collect();
            assert_eq!(distinct.len(), chunk.len());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = hetero_problem(8, 40);
        let a = AntColony::new(AcoParams::fast(), 9).schedule(&p);
        let b = AntColony::new(AcoParams::fast(), 9).schedule(&p);
        assert_eq!(a, b);
        let c = AntColony::new(AcoParams::fast(), 10).schedule(&p);
        // Different seeds almost surely differ on 40 choices.
        assert_ne!(a, c);
    }

    #[test]
    fn favors_fast_vms() {
        // β=0.99 makes ants strongly heuristic-driven: fast VMs must
        // receive clearly more cloudlets than slow ones.
        let p = hetero_problem(10, 200);
        let a = AntColony::new(AcoParams::paper(), 3).schedule(&p);
        let counts = a.counts_per_vm(10);
        let slow: usize = counts.iter().step_by(2).sum();
        let fast: usize = counts.iter().skip(1).step_by(2).sum();
        assert!(
            fast > slow * 2,
            "fast VMs should dominate: fast={fast} slow={slow}"
        );
    }

    #[test]
    fn beats_round_robin_on_estimated_makespan() {
        use crate::round_robin::RoundRobin;
        let p = hetero_problem(10, 100);
        let aco = AntColony::new(AcoParams::paper(), 4).schedule(&p);
        let rr = RoundRobin::new().schedule(&p);
        assert!(
            aco.estimated_makespan_ms(&p) < rr.estimated_makespan_ms(&p),
            "ACO {} should beat RR {}",
            aco.estimated_makespan_ms(&p),
            rr.estimated_makespan_ms(&p)
        );
    }

    #[test]
    fn trace_is_monotone_and_harmless() {
        let p = hetero_problem(12, 24);
        let (plan, trace) = AntColony::new(AcoParams::fast(), 13).schedule_traced(&p);
        assert_eq!(trace.len(), AcoParams::fast().iterations);
        // The global best tour length never regresses.
        assert!(trace.windows(2).all(|w| w[1] <= w[0] + 1e-12));
        // Tracing does not change the schedule.
        let untraced = AntColony::new(AcoParams::fast(), 13).schedule(&p);
        assert_eq!(plan, untraced);
    }

    #[test]
    fn single_vm_degenerates_gracefully() {
        let p = hetero_problem(1, 5);
        let a = AntColony::new(AcoParams::fast(), 5).schedule(&p);
        assert!(a.as_slice().iter().all(|v| v.index() == 0));
    }

    #[test]
    fn acs_exploitation_is_valid_and_greedier() {
        let p = hetero_problem(10, 100);
        let acs = AntColony::new(
            AcoParams {
                q0: 0.9,
                ..AcoParams::fast()
            },
            30,
        )
        .schedule(&p);
        assert!(acs.validate(&p).is_ok());
        // Full exploitation (q0=1) is near-deterministic given the
        // pheromone trajectory and must still cover everything.
        let greedy = AntColony::new(
            AcoParams {
                q0: 1.0,
                ..AcoParams::fast()
            },
            30,
        )
        .schedule(&p);
        assert_eq!(greedy.len(), 100);
    }

    #[test]
    fn exhaustive_candidates_work() {
        // candidates = None examines every VM per choice.
        let p = hetero_problem(6, 12);
        let params = AcoParams {
            candidates: None,
            ..AcoParams::fast()
        };
        let a = AntColony::new(params, 20).schedule(&p);
        assert!(a.validate(&p).is_ok());
    }

    #[test]
    fn more_cloudlets_than_vms_by_far() {
        // 3 VMs, 50 cloudlets: many tiny batches of ceil(3*0.5)=2.
        let p = hetero_problem(3, 50);
        let a = AntColony::new(AcoParams::fast(), 21).schedule(&p);
        assert_eq!(a.len(), 50);
        let counts = a.counts_per_vm(3);
        assert!(
            counts.iter().all(|c| *c > 0),
            "all VMs see work: {counts:?}"
        );
    }

    #[test]
    fn repeated_rounds_advance_rng_state() {
        // Two consecutive schedule() calls on one colony instance draw
        // fresh ant seeds — rounds differ (statistically certain here).
        let p = hetero_problem(10, 30);
        let mut colony = AntColony::new(AcoParams::fast(), 22);
        let first = colony.schedule(&p);
        let second = colony.schedule(&p);
        assert_ne!(first, second);
    }

    #[test]
    fn roulette_respects_weights() {
        let mut rng = StdRng::seed_from_u64(0);
        let weights = [0.0, 0.0, 10.0];
        for _ in 0..32 {
            assert_eq!(roulette(&mut rng, &weights, 10.0), 2);
        }
        // Degenerate: all-zero weights fall back to uniform.
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(roulette(&mut rng, &[0.0, 0.0], 0.0));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn matches_reference_implementation() {
        // The optimized hot path must pick byte-identical tours. (The
        // cross-thread-count matrix lives in tests/scheduler_equivalence.)
        for seed in [9u64, 77, 1234] {
            let p = hetero_problem(14, 90);
            let new = AntColony::new(AcoParams::fast(), seed).schedule(&p);
            let old = reference::schedule_reference(&AcoParams::fast(), seed, &p);
            assert_eq!(new, old, "seed {seed} diverged from the reference");
        }
    }

    #[test]
    fn matches_reference_with_alpha_one_fast_path() {
        // α = 1 takes the powf-free identity path; the reference calls
        // powf(τ, 1.0). Both must agree bit for bit.
        let params = AcoParams {
            alpha: 1.0,
            ..AcoParams::fast()
        };
        let p = hetero_problem(12, 60);
        let new = AntColony::new(params.clone(), 5).schedule(&p);
        let old = reference::schedule_reference(&params, 5, &p);
        assert_eq!(new, old);
    }

    #[test]
    fn matches_reference_when_eta_block_declined() {
        // One ant × one iteration makes the η^β block unprofitable, so
        // construct_tour exercises the inline powf fallback.
        let params = AcoParams {
            ants: 1,
            iterations: 1,
            ..AcoParams::fast()
        };
        let p = hetero_problem(20, 55);
        let new = AntColony::new(params.clone(), 31).schedule(&p);
        let old = reference::schedule_reference(&params, 31, &p);
        assert_eq!(new, old);
    }
}
