//! Ant Colony Optimization scheduler (Section IV of the paper).
//!
//! Ants construct cloudlet→VM tours guided by pheromone trails τ and the
//! heuristic desirability η = 1/d of Eq. 6. The transition rule is Eq. 5,
//! pheromone updates follow Eqs. 7–11, and each ant's tabu list forbids
//! reusing a VM within a tour (the paper's constraint-satisfaction rule).
//!
//! Cloudlets are scheduled in *batches* of at most `batch_size` (clamped to
//! the VM count, since a tour cannot revisit VMs). Each batch runs a full
//! colony: `iterations` rounds of `ants` tour constructions followed by
//! local evaporation + deposit (Eqs. 9–10) and a global best-tour
//! reinforcement (Eq. 11). The best tour ever seen becomes the batch's
//! assignment.
//!
//! A tour's length `L_k` is the sum of Eq. 6 expected execution times of
//! its (cloudlet, VM) pairs — the scheduling analog of the TSP tour length
//! the original ACO minimizes (the paper's Eq. 8 rendering is garbled; the
//! sum interpretation preserves "shorter tour = better schedule").

//!
//! ```
//! use biosched_core::aco::{AcoParams, AntColony};
//! use biosched_core::problem::SchedulingProblem;
//! use biosched_core::scheduler::Scheduler;
//! use simcloud::prelude::*;
//!
//! let problem = SchedulingProblem::single_datacenter(
//!     vec![VmSpec::new(500.0, 5000.0, 512.0, 500.0, 1),
//!          VmSpec::new(4000.0, 5000.0, 512.0, 500.0, 1)],
//!     vec![CloudletSpec::new(10_000.0, 300.0, 300.0, 1); 6],
//!     CostModel::default(),
//! );
//! let mut aco = AntColony::new(AcoParams::fast(), 42);
//! let plan = aco.schedule(&problem);
//! assert!(plan.validate(&problem).is_ok());
//! ```
mod params;
mod pheromone;

pub use params::AcoParams;
pub use pheromone::PheromoneMatrix;

use std::collections::HashSet;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simcloud::ids::VmId;
use simcloud::rng::stream;

use crate::assignment::Assignment;
use crate::eval::{self, EvalCache};
use crate::problem::SchedulingProblem;
use crate::scheduler::Scheduler;

/// The ACO scheduler.
pub struct AntColony {
    params: AcoParams,
    rng: StdRng,
}

impl AntColony {
    /// Creates a colony with the given parameters and seed.
    pub fn new(params: AcoParams, seed: u64) -> Self {
        params.validate().expect("invalid AcoParams");
        AntColony {
            params,
            rng: stream(seed, "aco"),
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &AcoParams {
        &self.params
    }

    /// Like [`Scheduler::schedule`], but also returns the best tour
    /// length after each iteration of the *first* colony — ACO's
    /// convergence curve (subsequent batches behave statistically alike).
    pub fn schedule_traced(&mut self, problem: &SchedulingProblem) -> (Assignment, Vec<f64>) {
        self.run(problem, true)
    }

    fn run(&mut self, problem: &SchedulingProblem, traced: bool) -> (Assignment, Vec<f64>) {
        let c = problem.cloudlet_count();
        let v = problem.vm_count();
        let cache = EvalCache::new(problem);
        // Clamp: a tour may not revisit VMs, and a tour covering the whole
        // fleet is a bare permutation with no room for preference.
        let fleet_cap = ((v as f64 * self.params.max_vm_fraction).ceil() as usize).max(1);
        let batch = self.params.batch_size.min(fleet_cap).max(1);
        let mut map = Vec::with_capacity(c);
        let mut trace = Vec::new();
        let mut start = 0;
        while start < c {
            let end = (start + batch).min(c);
            let trace_slot = (traced && start == 0).then_some(&mut trace);
            map.extend(self.run_colony(&cache, start..end, trace_slot));
            start = end;
        }
        (Assignment::new(map), trace)
    }

    /// Runs one colony over `slots` (global cloudlet indices) and returns
    /// the best tour found.
    fn run_colony(
        &mut self,
        cache: &EvalCache,
        slots: Range<usize>,
        mut trace: Option<&mut Vec<f64>>,
    ) -> Vec<VmId> {
        let mut pheromone = PheromoneMatrix::new(self.params.initial_pheromone);
        let mut best: Option<(Vec<u32>, f64)> = None;

        for _ in 0..self.params.iterations {
            let seeds: Vec<u64> = (0..self.params.ants).map(|_| self.rng.gen()).collect();
            let tours = construct_tours(cache, &slots, &pheromone, &self.params, &seeds);

            // Local update (Eqs. 9–10): evaporate once, then every ant
            // deposits Q/L_k along its tour.
            pheromone.evaporate(self.params.rho);
            for (tour, len) in &tours {
                let dq = self.params.q / len.max(f64::MIN_POSITIVE);
                for (i, vm) in tour.iter().enumerate() {
                    pheromone.deposit(i as u32, *vm, dq);
                }
            }

            // Track the global best and reinforce it (Eq. 11).
            for (tour, len) in tours {
                if best.as_ref().is_none_or(|(_, b)| len < *b) {
                    best = Some((tour, len));
                }
            }
            let (bt, bl) = best.as_ref().expect("ants always produce tours");
            let dq = self.params.q / bl.max(f64::MIN_POSITIVE);
            for (i, vm) in bt.iter().enumerate() {
                pheromone.deposit(i as u32, *vm, dq);
            }
            if let Some(trace) = trace.as_deref_mut() {
                trace.push(*bl);
            }
        }

        best.expect("ants always produce tours")
            .0
            .into_iter()
            .map(VmId)
            .collect()
    }
}

/// Builds all ant tours for one iteration through the evaluation kernel's
/// shared fan-out ([`eval::par_map_if`]): parallel over ants when the
/// `parallel` feature is on and the batch is big enough to amortize the
/// fork; order-preserving either way, so runs are deterministic.
fn construct_tours(
    cache: &EvalCache,
    slots: &Range<usize>,
    pheromone: &PheromoneMatrix,
    params: &AcoParams,
    seeds: &[u64],
) -> Vec<(Vec<u32>, f64)> {
    eval::par_map_if(slots.len() >= 32, seeds, |&seed| {
        construct_tour(cache, slots.clone(), pheromone, params, seed)
    })
}

/// One ant's tour: for each slot, pick a VM by the Eq. 5 roulette over the
/// candidate list, respecting the tabu set.
fn construct_tour(
    cache: &EvalCache,
    slots: Range<usize>,
    pheromone: &PheromoneMatrix,
    params: &AcoParams,
    seed: u64,
) -> (Vec<u32>, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let v = cache.vm_count();
    let b = slots.len();
    debug_assert!(b <= v, "batch must be clamped to the VM count");

    let mut tabu: HashSet<u32> = HashSet::with_capacity(b);
    let mut tour = Vec::with_capacity(b);
    let mut length = 0.0;
    let mut candidates: Vec<u32> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();

    for (slot_idx, c) in slots.enumerate() {
        candidates.clear();
        weights.clear();
        let free = v - tabu.len();
        let k = params.candidates.unwrap_or(v).min(v);

        if k >= free {
            // Few VMs left: enumerate all allowed ones.
            candidates.extend((0..v as u32).filter(|j| !tabu.contains(j)));
        } else {
            // Sample k distinct allowed VMs.
            let mut attempts = 0;
            let max_attempts = 6 * k;
            while candidates.len() < k && attempts < max_attempts {
                attempts += 1;
                let j = rng.gen_range(0..v) as u32;
                if !tabu.contains(&j) && !candidates.contains(&j) {
                    candidates.push(j);
                }
            }
            if candidates.is_empty() {
                // Rejection sampling got unlucky; take the first free VM
                // scanning from a random start.
                let start = rng.gen_range(0..v);
                for off in 0..v {
                    let j = ((start + off) % v) as u32;
                    if !tabu.contains(&j) {
                        candidates.push(j);
                        break;
                    }
                }
            }
        }
        debug_assert!(!candidates.is_empty(), "tabu cannot exhaust all VMs");

        // Eq. 5: p(j) ∝ τ(i,j)^α · η(i,j)^β over allowed candidates.
        let mut total = 0.0;
        for &j in &candidates {
            let tau = pheromone.get(slot_idx as u32, j);
            let eta = cache.heuristic(c, j as usize);
            let w = tau.powf(params.alpha) * eta.powf(params.beta);
            let w = if w.is_finite() { w } else { 0.0 };
            total += w;
            weights.push(w);
        }
        // ACS pseudo-random-proportional rule: exploit the best edge with
        // probability q0, otherwise spin the roulette.
        let pick = if params.q0 > 0.0 && rng.gen_range(0.0..1.0) < params.q0 {
            weights
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("candidates are non-empty")
        } else {
            roulette(&mut rng, &weights, total)
        };
        let j = candidates[pick];
        tabu.insert(j);
        tour.push(j);
        length += cache.exec_ms(c, j as usize);
    }
    (tour, length)
}

/// Roulette-wheel selection; degenerates to uniform if all weights vanish.
fn roulette(rng: &mut StdRng, weights: &[f64], total: f64) -> usize {
    debug_assert!(!weights.is_empty());
    if !(total.is_finite() && total > 0.0) {
        return rng.gen_range(0..weights.len());
    }
    let mut spin = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        spin -= w;
        if spin <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

impl Scheduler for AntColony {
    fn name(&self) -> &'static str {
        "ant-colony"
    }

    fn schedule(&mut self, problem: &SchedulingProblem) -> Assignment {
        self.run(problem, false).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcloud::characteristics::CostModel;
    use simcloud::cloudlet::CloudletSpec;
    use simcloud::vm::VmSpec;

    fn hetero_problem(vms: usize, cloudlets: usize) -> SchedulingProblem {
        // Alternating slow/fast VMs, uniform cloudlets.
        let vm_specs: Vec<VmSpec> = (0..vms)
            .map(|i| {
                let mips = if i % 2 == 0 { 500.0 } else { 4_000.0 };
                VmSpec::new(mips, 5_000.0, 512.0, 500.0, 1)
            })
            .collect();
        let cl = CloudletSpec::new(10_000.0, 0.0, 0.0, 1);
        SchedulingProblem::single_datacenter(vm_specs, vec![cl; cloudlets], CostModel::default())
    }

    #[test]
    fn produces_complete_valid_assignment() {
        let p = hetero_problem(10, 37);
        let a = AntColony::new(AcoParams::fast(), 1).schedule(&p);
        assert!(a.validate(&p).is_ok());
        assert_eq!(a.len(), 37);
    }

    #[test]
    fn tabu_forbids_vm_reuse_within_batch() {
        let p = hetero_problem(16, 16);
        let params = AcoParams {
            batch_size: 16,
            max_vm_fraction: 1.0,
            ..AcoParams::fast()
        };
        let a = AntColony::new(params, 2).schedule(&p);
        let mut seen = std::collections::HashSet::new();
        for vm in a.as_slice() {
            assert!(seen.insert(*vm), "VM {vm} reused within a single batch");
        }
    }

    #[test]
    fn batch_clamped_to_fleet_fraction() {
        // 10 VMs, fraction 0.5 -> batches of 5: within any window of 5
        // consecutive cloudlets every VM is distinct.
        let p = hetero_problem(10, 20);
        let params = AcoParams {
            batch_size: 128,
            max_vm_fraction: 0.5,
            ..AcoParams::fast()
        };
        let a = AntColony::new(params, 11).schedule(&p);
        for chunk in a.as_slice().chunks(5) {
            let distinct: std::collections::HashSet<_> = chunk.iter().collect();
            assert_eq!(distinct.len(), chunk.len());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = hetero_problem(8, 40);
        let a = AntColony::new(AcoParams::fast(), 9).schedule(&p);
        let b = AntColony::new(AcoParams::fast(), 9).schedule(&p);
        assert_eq!(a, b);
        let c = AntColony::new(AcoParams::fast(), 10).schedule(&p);
        // Different seeds almost surely differ on 40 choices.
        assert_ne!(a, c);
    }

    #[test]
    fn favors_fast_vms() {
        // β=0.99 makes ants strongly heuristic-driven: fast VMs must
        // receive clearly more cloudlets than slow ones.
        let p = hetero_problem(10, 200);
        let a = AntColony::new(AcoParams::paper(), 3).schedule(&p);
        let counts = a.counts_per_vm(10);
        let slow: usize = counts.iter().step_by(2).sum();
        let fast: usize = counts.iter().skip(1).step_by(2).sum();
        assert!(
            fast > slow * 2,
            "fast VMs should dominate: fast={fast} slow={slow}"
        );
    }

    #[test]
    fn beats_round_robin_on_estimated_makespan() {
        use crate::round_robin::RoundRobin;
        let p = hetero_problem(10, 100);
        let aco = AntColony::new(AcoParams::paper(), 4).schedule(&p);
        let rr = RoundRobin::new().schedule(&p);
        assert!(
            aco.estimated_makespan_ms(&p) < rr.estimated_makespan_ms(&p),
            "ACO {} should beat RR {}",
            aco.estimated_makespan_ms(&p),
            rr.estimated_makespan_ms(&p)
        );
    }

    #[test]
    fn trace_is_monotone_and_harmless() {
        let p = hetero_problem(12, 24);
        let (plan, trace) = AntColony::new(AcoParams::fast(), 13).schedule_traced(&p);
        assert_eq!(trace.len(), AcoParams::fast().iterations);
        // The global best tour length never regresses.
        assert!(trace.windows(2).all(|w| w[1] <= w[0] + 1e-12));
        // Tracing does not change the schedule.
        let untraced = AntColony::new(AcoParams::fast(), 13).schedule(&p);
        assert_eq!(plan, untraced);
    }

    #[test]
    fn single_vm_degenerates_gracefully() {
        let p = hetero_problem(1, 5);
        let a = AntColony::new(AcoParams::fast(), 5).schedule(&p);
        assert!(a.as_slice().iter().all(|v| v.index() == 0));
    }

    #[test]
    fn acs_exploitation_is_valid_and_greedier() {
        let p = hetero_problem(10, 100);
        let acs = AntColony::new(
            AcoParams {
                q0: 0.9,
                ..AcoParams::fast()
            },
            30,
        )
        .schedule(&p);
        assert!(acs.validate(&p).is_ok());
        // Full exploitation (q0=1) is near-deterministic given the
        // pheromone trajectory and must still cover everything.
        let greedy = AntColony::new(
            AcoParams {
                q0: 1.0,
                ..AcoParams::fast()
            },
            30,
        )
        .schedule(&p);
        assert_eq!(greedy.len(), 100);
    }

    #[test]
    fn exhaustive_candidates_work() {
        // candidates = None examines every VM per choice.
        let p = hetero_problem(6, 12);
        let params = AcoParams {
            candidates: None,
            ..AcoParams::fast()
        };
        let a = AntColony::new(params, 20).schedule(&p);
        assert!(a.validate(&p).is_ok());
    }

    #[test]
    fn more_cloudlets_than_vms_by_far() {
        // 3 VMs, 50 cloudlets: many tiny batches of ceil(3*0.5)=2.
        let p = hetero_problem(3, 50);
        let a = AntColony::new(AcoParams::fast(), 21).schedule(&p);
        assert_eq!(a.len(), 50);
        let counts = a.counts_per_vm(3);
        assert!(
            counts.iter().all(|c| *c > 0),
            "all VMs see work: {counts:?}"
        );
    }

    #[test]
    fn repeated_rounds_advance_rng_state() {
        // Two consecutive schedule() calls on one colony instance draw
        // fresh ant seeds — rounds differ (statistically certain here).
        let p = hetero_problem(10, 30);
        let mut colony = AntColony::new(AcoParams::fast(), 22);
        let first = colony.schedule(&p);
        let second = colony.schedule(&p);
        assert_ne!(first, second);
    }

    #[test]
    fn roulette_respects_weights() {
        let mut rng = StdRng::seed_from_u64(0);
        let weights = [0.0, 0.0, 10.0];
        for _ in 0..32 {
            assert_eq!(roulette(&mut rng, &weights, 10.0), 2);
        }
        // Degenerate: all-zero weights fall back to uniform.
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(roulette(&mut rng, &[0.0, 0.0], 0.0));
        }
        assert_eq!(seen.len(), 2);
    }
}
