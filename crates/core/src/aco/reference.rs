//! Frozen pre-overhaul ACO implementation — the equivalence baseline.
//!
//! This module is a verbatim snapshot of the colony construction loop as
//! it existed before the scheduler hot-path overhaul (sequential colonies,
//! per-candidate `powf`, `HashSet` tabu, `HashMap` pheromone storage). It
//! exists for two reasons:
//!
//! 1. **Equivalence testing** — the optimized [`super::AntColony`] must
//!    produce byte-identical assignments per seed; the
//!    `scheduler_equivalence` integration test compares the two paths
//!    across thread counts. Do not "optimize" this module: its value is
//!    that it stays exactly as the pre-overhaul commit left it.
//! 2. **Benchmark baseline** — `schedbench` and the `scheduling_time`
//!    criterion bench time it next to the optimized path so the speedup
//!    is measured against the real former implementation, not a guess.

use std::collections::{HashMap, HashSet};
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simcloud::ids::VmId;
use simcloud::rng::stream;

use crate::assignment::Assignment;
use crate::eval::{self, EvalCache};
use crate::problem::SchedulingProblem;

use super::AcoParams;

/// Floor below which pheromone cannot decay (mirrors the live matrix).
const MIN_PHEROMONE: f64 = 1e-12;

/// The pre-overhaul sparse pheromone store: base + `HashMap` deposits.
struct RefPheromone {
    base: f64,
    deposits: HashMap<(u32, u32), f64>,
    scale: f64,
}

impl RefPheromone {
    fn new(initial: f64) -> Self {
        assert!(initial > 0.0 && initial.is_finite());
        RefPheromone {
            base: initial,
            deposits: HashMap::new(),
            scale: 1.0,
        }
    }

    #[inline]
    fn get(&self, slot: u32, vm: u32) -> f64 {
        let extra = self
            .deposits
            .get(&(slot, vm))
            .map_or(0.0, |raw| raw * self.scale);
        (self.base + extra).max(MIN_PHEROMONE)
    }

    fn evaporate(&mut self, rho: f64) {
        let keep = 1.0 - rho;
        self.base = (self.base * keep).max(MIN_PHEROMONE);
        self.scale *= keep;
        if self.scale < 1e-100 {
            for raw in self.deposits.values_mut() {
                *raw *= self.scale;
            }
            self.scale = 1.0;
        }
    }

    fn deposit(&mut self, slot: u32, vm: u32, amount: f64) {
        *self.deposits.entry((slot, vm)).or_insert(0.0) += amount / self.scale;
    }
}

/// Schedules `problem` with the pre-overhaul ACO loop. Byte-identical to
/// [`super::AntColony::schedule`] for any parameters and seed.
pub fn schedule_reference(
    params: &AcoParams,
    seed: u64,
    problem: &SchedulingProblem,
) -> Assignment {
    params.validate().expect("invalid AcoParams");
    let mut rng = stream(seed, "aco");
    let c = problem.cloudlet_count();
    let v = problem.vm_count();
    let cache = EvalCache::new(problem);
    let fleet_cap = ((v as f64 * params.max_vm_fraction).ceil() as usize).max(1);
    let batch = params.batch_size.min(fleet_cap).max(1);
    let mut map = Vec::with_capacity(c);
    let mut start = 0;
    while start < c {
        let end = (start + batch).min(c);
        map.extend(run_colony(&cache, start..end, params, &mut rng));
        start = end;
    }
    Assignment::new(map)
}

fn run_colony(
    cache: &EvalCache,
    slots: Range<usize>,
    params: &AcoParams,
    rng: &mut StdRng,
) -> Vec<VmId> {
    let mut pheromone = RefPheromone::new(params.initial_pheromone);
    let mut best: Option<(Vec<u32>, f64)> = None;

    for _ in 0..params.iterations {
        let seeds: Vec<u64> = (0..params.ants).map(|_| rng.gen()).collect();
        let tours = eval::par_map_if(slots.len() >= 32, &seeds, |&seed| {
            construct_tour(cache, slots.clone(), &pheromone, params, seed)
        });

        pheromone.evaporate(params.rho);
        for (tour, len) in &tours {
            let dq = params.q / len.max(f64::MIN_POSITIVE);
            for (i, vm) in tour.iter().enumerate() {
                pheromone.deposit(i as u32, *vm, dq);
            }
        }

        for (tour, len) in tours {
            if best.as_ref().is_none_or(|(_, b)| len < *b) {
                best = Some((tour, len));
            }
        }
        let (bt, bl) = best.as_ref().expect("ants always produce tours");
        let dq = params.q / bl.max(f64::MIN_POSITIVE);
        for (i, vm) in bt.iter().enumerate() {
            pheromone.deposit(i as u32, *vm, dq);
        }
    }

    best.expect("ants always produce tours")
        .0
        .into_iter()
        .map(VmId)
        .collect()
}

fn construct_tour(
    cache: &EvalCache,
    slots: Range<usize>,
    pheromone: &RefPheromone,
    params: &AcoParams,
    seed: u64,
) -> (Vec<u32>, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let v = cache.vm_count();
    let b = slots.len();

    let mut tabu: HashSet<u32> = HashSet::with_capacity(b);
    let mut tour = Vec::with_capacity(b);
    let mut length = 0.0;
    let mut candidates: Vec<u32> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();

    for (slot_idx, c) in slots.enumerate() {
        candidates.clear();
        weights.clear();
        let free = v - tabu.len();
        let k = params.candidates.unwrap_or(v).min(v);

        if k >= free {
            candidates.extend((0..v as u32).filter(|j| !tabu.contains(j)));
        } else {
            let mut attempts = 0;
            let max_attempts = 6 * k;
            while candidates.len() < k && attempts < max_attempts {
                attempts += 1;
                let j = rng.gen_range(0..v) as u32;
                if !tabu.contains(&j) && !candidates.contains(&j) {
                    candidates.push(j);
                }
            }
            if candidates.is_empty() {
                let start = rng.gen_range(0..v);
                for off in 0..v {
                    let j = ((start + off) % v) as u32;
                    if !tabu.contains(&j) {
                        candidates.push(j);
                        break;
                    }
                }
            }
        }

        let mut total = 0.0;
        for &j in &candidates {
            let tau = pheromone.get(slot_idx as u32, j);
            let eta = cache.heuristic(c, j as usize);
            let w = tau.powf(params.alpha) * eta.powf(params.beta);
            let w = if w.is_finite() { w } else { 0.0 };
            total += w;
            weights.push(w);
        }
        let pick = if params.q0 > 0.0 && rng.gen_range(0.0..1.0) < params.q0 {
            weights
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("candidates are non-empty")
        } else {
            roulette(&mut rng, &weights, total)
        };
        let j = candidates[pick];
        tabu.insert(j);
        tour.push(j);
        length += cache.exec_ms(c, j as usize);
    }
    (tour, length)
}

fn roulette(rng: &mut StdRng, weights: &[f64], total: f64) -> usize {
    if !(total.is_finite() && total > 0.0) {
        return rng.gen_range(0..weights.len());
    }
    let mut spin = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        spin -= w;
        if spin <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcloud::characteristics::CostModel;
    use simcloud::cloudlet::CloudletSpec;
    use simcloud::vm::VmSpec;

    #[test]
    fn reference_is_valid_and_deterministic() {
        let vms: Vec<VmSpec> = (0..10)
            .map(|i| {
                let mips = if i % 2 == 0 { 500.0 } else { 4_000.0 };
                VmSpec::new(mips, 5_000.0, 512.0, 500.0, 1)
            })
            .collect();
        let p = SchedulingProblem::single_datacenter(
            vms,
            vec![CloudletSpec::new(10_000.0, 0.0, 0.0, 1); 37],
            CostModel::default(),
        );
        let a = schedule_reference(&AcoParams::fast(), 1, &p);
        assert!(a.validate(&p).is_ok());
        assert_eq!(a, schedule_reference(&AcoParams::fast(), 1, &p));
    }
}
