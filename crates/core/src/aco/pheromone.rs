//! Sparse pheromone storage.
//!
//! The pheromone matrix τ(i, j) spans (batch slot × VM). At paper scale a
//! dense matrix would be 128 × 100 000 doubles per batch, yet ants only
//! ever deposit on the edges they walk — a few thousand per batch — so we
//! store *deviations* from a shared base value sparsely.
//!
//! Evaporation (Eq. 9's `(1-ρ)τ` term) applies uniformly to both the base
//! and every deposit, which we implement with a global scale factor instead
//! of touching every entry.

use std::collections::HashMap;

/// Floor below which pheromone cannot decay, keeping probabilities sane.
const MIN_PHEROMONE: f64 = 1e-12;

/// τ(i, j) over (slot, VM) edges, stored as base + sparse deposits.
#[derive(Debug, Clone)]
pub struct PheromoneMatrix {
    /// Evaporated initial level shared by all never-deposited edges.
    base: f64,
    /// Raw deposited amounts; the effective deposit is `raw * scale`.
    deposits: HashMap<(u32, u32), f64>,
    /// Global evaporation accumulator applied to deposits.
    scale: f64,
}

impl PheromoneMatrix {
    /// Creates a matrix where every edge starts at `initial` (τ(0) = C in
    /// Algorithm 2).
    pub fn new(initial: f64) -> Self {
        assert!(initial > 0.0 && initial.is_finite());
        PheromoneMatrix {
            base: initial,
            deposits: HashMap::new(),
            scale: 1.0,
        }
    }

    /// Current pheromone on edge (slot, vm).
    #[inline]
    pub fn get(&self, slot: u32, vm: u32) -> f64 {
        let extra = self
            .deposits
            .get(&(slot, vm))
            .map_or(0.0, |raw| raw * self.scale);
        (self.base + extra).max(MIN_PHEROMONE)
    }

    /// Eq. 9 evaporation: τ ← (1-ρ)τ for every edge.
    pub fn evaporate(&mut self, rho: f64) {
        debug_assert!((0.0..1.0).contains(&rho));
        let keep = 1.0 - rho;
        self.base = (self.base * keep).max(MIN_PHEROMONE);
        self.scale *= keep;
        // Renormalize before the scale underflows.
        if self.scale < 1e-100 {
            for raw in self.deposits.values_mut() {
                *raw *= self.scale;
            }
            self.scale = 1.0;
        }
    }

    /// Eq. 7/10 deposit: τ(slot, vm) ← τ(slot, vm) + amount.
    pub fn deposit(&mut self, slot: u32, vm: u32, amount: f64) {
        debug_assert!(amount >= 0.0 && amount.is_finite());
        *self.deposits.entry((slot, vm)).or_insert(0.0) += amount / self.scale;
    }

    /// Number of edges carrying explicit deposits (diagnostics).
    pub fn deposited_edges(&self) -> usize {
        self.deposits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_uniform() {
        let m = PheromoneMatrix::new(2.0);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(99, 12345), 2.0);
        assert_eq!(m.deposited_edges(), 0);
    }

    #[test]
    fn deposit_then_read() {
        let mut m = PheromoneMatrix::new(1.0);
        m.deposit(3, 7, 0.5);
        assert!((m.get(3, 7) - 1.5).abs() < 1e-12);
        assert_eq!(m.get(3, 8), 1.0);
        assert_eq!(m.deposited_edges(), 1);
    }

    #[test]
    fn evaporation_applies_to_all_edges() {
        let mut m = PheromoneMatrix::new(1.0);
        m.deposit(0, 0, 1.0); // edge at 2.0
        m.evaporate(0.4);
        assert!((m.get(0, 0) - 1.2).abs() < 1e-12);
        assert!((m.get(5, 5) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn eq9_shape_local_update() {
        // τ' = (1-ρ)τ + Δτ : evaporate then deposit.
        let mut m = PheromoneMatrix::new(1.0);
        m.evaporate(0.4);
        m.deposit(1, 2, 0.25);
        assert!((m.get(1, 2) - 0.85).abs() < 1e-12);
    }

    #[test]
    fn pheromone_never_hits_zero() {
        let mut m = PheromoneMatrix::new(1.0);
        for _ in 0..10_000 {
            m.evaporate(0.9);
        }
        assert!(m.get(0, 0) >= MIN_PHEROMONE);
        // Deposits after heavy evaporation still register.
        m.deposit(0, 0, 1.0);
        assert!(m.get(0, 0) >= 1.0);
    }

    #[test]
    fn repeated_deposits_accumulate() {
        let mut m = PheromoneMatrix::new(1.0);
        m.deposit(0, 1, 0.1);
        m.deposit(0, 1, 0.1);
        assert!((m.get(0, 1) - 1.2).abs() < 1e-12);
    }
}
