//! Sparse pheromone storage, slot-major.
//!
//! The pheromone matrix τ(i, j) spans (batch slot × VM). At paper scale a
//! dense matrix would be 128 × 100 000 doubles per batch, yet ants only
//! ever deposit on the edges they walk — a few thousand per batch — so we
//! store *deviations* from a shared base value sparsely.
//!
//! Deposits live in per-slot lanes (a `Vec` of small VM-sorted vectors)
//! rather than a `HashMap` keyed by (slot, vm): a lane holds at most
//! ants × iterations entries, so a lookup is a binary probe into a tiny
//! contiguous slab instead of a hash + bucket walk per candidate. The
//! lanes also carry a τ^α snapshot ([`PheromoneMatrix::prepare_pow`]),
//! refreshed once per iteration, so tour construction never calls `powf`
//! on the hot path: non-deposited edges share one `base^α` scalar and
//! deposit-touched edges read their cached power.
//!
//! Evaporation (Eq. 9's `(1-ρ)τ` term) applies uniformly to both the base
//! and every deposit, which we implement with a global scale factor instead
//! of touching every entry.

/// Floor below which pheromone cannot decay, keeping probabilities sane.
const MIN_PHEROMONE: f64 = 1e-12;

/// One slot's deposit lane: parallel arrays sorted by VM id.
#[derive(Debug, Clone, Default)]
struct Lane {
    vms: Vec<u32>,
    /// Raw deposited amounts; the effective deposit is `raw * scale`.
    raw: Vec<f64>,
    /// τ^α snapshot of each entry (valid after [`PheromoneMatrix::prepare_pow`]).
    pow: Vec<f64>,
}

/// τ(i, j) over (slot, VM) edges, stored as base + slot-major sparse lanes.
#[derive(Debug, Clone)]
pub struct PheromoneMatrix {
    /// Evaporated initial level shared by all never-deposited edges.
    base: f64,
    /// Global evaporation accumulator applied to deposits.
    scale: f64,
    /// Per-slot deposit lanes.
    lanes: Vec<Lane>,
    /// `base^α` snapshot shared by all never-deposited edges.
    base_pow: f64,
    /// Product of the `(1-ρ)` keep factors applied since the last power
    /// snapshot. Evaporation rescales every edge uniformly, so under a
    /// fixed α the snapshot of a clean entry can be advanced with one
    /// multiply by `keep_accum^α` instead of a fresh `powf` — see
    /// [`Self::prepare_pow_incremental`].
    keep_accum: f64,
    /// α of the last snapshot; an α change invalidates incremental reuse.
    snap_alpha: f64,
    /// Set when evaporation clamps the base at [`MIN_PHEROMONE`]: the
    /// rescale is no longer uniform, so the next incremental snapshot
    /// falls back to the exact sweep.
    force_exact: bool,
}

impl PheromoneMatrix {
    /// Creates a matrix where every edge starts at `initial` (τ(0) = C in
    /// Algorithm 2).
    pub fn new(initial: f64) -> Self {
        assert!(initial > 0.0 && initial.is_finite());
        PheromoneMatrix {
            base: initial,
            scale: 1.0,
            lanes: Vec::new(),
            base_pow: f64::NAN,
            keep_accum: 1.0,
            snap_alpha: f64::NAN,
            force_exact: false,
        }
    }

    /// Effective τ of a lane entry, replicating the expression the old
    /// `HashMap`-backed `get` evaluated — bit-identical per edge.
    #[inline]
    fn effective(&self, raw: f64) -> f64 {
        (self.base + raw * self.scale).max(MIN_PHEROMONE)
    }

    /// Current pheromone on edge (slot, vm).
    #[inline]
    pub fn get(&self, slot: u32, vm: u32) -> f64 {
        match self.lanes.get(slot as usize) {
            Some(lane) => match lane.vms.binary_search(&vm) {
                Ok(i) => self.effective(lane.raw[i]),
                Err(_) => self.base.max(MIN_PHEROMONE),
            },
            None => self.base.max(MIN_PHEROMONE),
        }
    }

    /// τ(slot, vm)^α from the last [`Self::prepare_pow`] snapshot. Must not
    /// be called before the first snapshot.
    #[inline]
    pub fn get_pow(&self, slot: u32, vm: u32) -> f64 {
        debug_assert!(!self.base_pow.is_nan(), "prepare_pow must run first");
        match self.lanes.get(slot as usize) {
            Some(lane) => match lane.vms.binary_search(&vm) {
                Ok(i) => lane.pow[i],
                Err(_) => self.base_pow,
            },
            None => self.base_pow,
        }
    }

    /// Writes one slot's dense Eq. 5 weight row into `out`:
    /// `out[j] = τ(slot, j)^α · η^β(j)`, with `eta_row[j]` holding the
    /// η^β factor. Every product is the same two-factor multiply the
    /// per-candidate expression evaluates, so the row is bit-identical to
    /// computing `get_pow(slot, j) * eta_row[j]` — but the never-deposited
    /// majority of columns becomes one vectorized scalar-times-slice pass,
    /// and the tour hot loop shrinks to a single indexed read. Must be
    /// called after [`Self::prepare_pow`].
    pub fn fill_weight_row(&self, slot: usize, eta_row: &[f64], out: &mut [f64]) {
        debug_assert!(!self.base_pow.is_nan(), "prepare_pow must run first");
        debug_assert_eq!(eta_row.len(), out.len());
        for (o, &e) in out.iter_mut().zip(eta_row) {
            *o = self.base_pow * e;
        }
        if let Some(lane) = self.lanes.get(slot) {
            for (i, &vm) in lane.vms.iter().enumerate() {
                out[vm as usize] = lane.pow[i] * eta_row[vm as usize];
            }
        }
    }

    /// Snapshots τ^α for the base level and every deposit-touched edge.
    /// Called once per colony iteration, before tour construction, so the
    /// per-candidate hot path reads cached powers instead of calling
    /// `powf`. With α = 1 (a common setting) the snapshot is a plain copy.
    pub fn prepare_pow(&mut self, alpha: f64) {
        let base_eff = self.base.max(MIN_PHEROMONE);
        let pow_of = |tau: f64| if alpha == 1.0 { tau } else { tau.powf(alpha) };
        self.base_pow = pow_of(base_eff);
        for slot in 0..self.lanes.len() {
            for i in 0..self.lanes[slot].raw.len() {
                let tau = self.effective(self.lanes[slot].raw[i]);
                self.lanes[slot].pow[i] = pow_of(tau);
            }
        }
        self.keep_accum = 1.0;
        self.snap_alpha = alpha;
        self.force_exact = false;
    }

    /// Incrementally advances the τ^α snapshot to the matrix's current
    /// state: evaporation rescales every edge by the same accumulated
    /// `keep` product, so for a fixed α a *clean* entry's power advances
    /// with one multiply by `keep_accum^α` (one `powf` per call, shared by
    /// every lane) instead of a `powf` per touched edge. Entries deposited
    /// on since the last snapshot are marked dirty (`NaN` power) and
    /// recomputed exactly, as is the shared base power.
    ///
    /// The first call, an α change, and a base clamped at the
    /// [`MIN_PHEROMONE`] floor (where the rescale stops being uniform) all
    /// fall back to the exact [`Self::prepare_pow`] sweep. Clean entries
    /// drift from the exact power only by rounding (`(keep·τ)^α` vs
    /// `keep^α·τ^α`), so this feeds the candidate-list fast path — which
    /// makes no bitwise claims — while the reference-equivalent full-row
    /// path stays on the exact sweep.
    pub fn prepare_pow_incremental(&mut self, alpha: f64) {
        if self.base_pow.is_nan()
            || self.force_exact
            || !(self.snap_alpha == alpha)
            || !(self.keep_accum > 0.0 && self.keep_accum.is_finite())
        {
            self.prepare_pow(alpha);
            return;
        }
        let pow_of = |tau: f64| if alpha == 1.0 { tau } else { tau.powf(alpha) };
        // The shared base power is one powf — keep it exact so the
        // never-deposited majority of edges never drifts at all.
        self.base_pow = pow_of(self.base.max(MIN_PHEROMONE));
        let factor = pow_of(self.keep_accum);
        for slot in 0..self.lanes.len() {
            for i in 0..self.lanes[slot].raw.len() {
                let p = self.lanes[slot].pow[i];
                self.lanes[slot].pow[i] = if p.is_nan() {
                    pow_of(self.effective(self.lanes[slot].raw[i]))
                } else {
                    p * factor
                };
            }
        }
        self.keep_accum = 1.0;
    }

    /// Eq. 9 evaporation: τ ← (1-ρ)τ for every edge.
    pub fn evaporate(&mut self, rho: f64) {
        debug_assert!((0.0..1.0).contains(&rho));
        let keep = 1.0 - rho;
        let scaled = self.base * keep;
        if scaled < MIN_PHEROMONE {
            // The floor breaks the uniform-rescale invariant the
            // incremental snapshot relies on.
            self.force_exact = true;
        }
        self.base = scaled.max(MIN_PHEROMONE);
        self.scale *= keep;
        self.keep_accum *= keep;
        // Renormalize before the scale underflows.
        if self.scale < 1e-100 {
            for lane in &mut self.lanes {
                for raw in &mut lane.raw {
                    *raw *= self.scale;
                }
            }
            self.scale = 1.0;
        }
    }

    /// Eq. 7/10 deposit: τ(slot, vm) ← τ(slot, vm) + amount.
    pub fn deposit(&mut self, slot: u32, vm: u32, amount: f64) {
        debug_assert!(amount >= 0.0 && amount.is_finite());
        let slot = slot as usize;
        if slot >= self.lanes.len() {
            self.lanes.resize_with(slot + 1, Lane::default);
        }
        let lane = &mut self.lanes[slot];
        let delta = amount / self.scale;
        match lane.vms.binary_search(&vm) {
            Ok(i) => {
                lane.raw[i] += delta;
                // Dirty-mark for the incremental snapshot; the exact sweep
                // overwrites unconditionally.
                lane.pow[i] = f64::NAN;
            }
            Err(i) => {
                lane.vms.insert(i, vm);
                lane.raw.insert(i, delta);
                lane.pow.insert(i, f64::NAN);
            }
        }
    }

    /// Keeps only each lane's `per_lane` strongest deposits (by raw
    /// amount, ties to the lower VM id); dropped edges revert to the
    /// shared base level. Evaporation rescales base and deposits
    /// uniformly, so old trails never fade *relative to* the base — a
    /// warm-started broker re-seeding wave after wave would otherwise
    /// grow every lane without bound and pay for the dead entries in
    /// every clone, snapshot and lookup. Entries that survive keep their
    /// raw value and τ^α snapshot, so compaction composes with
    /// [`Self::prepare_pow_incremental`].
    pub fn compact_top(&mut self, per_lane: usize) {
        for lane in &mut self.lanes {
            if lane.vms.len() <= per_lane {
                continue;
            }
            let mut idx: Vec<usize> = (0..lane.vms.len()).collect();
            idx.sort_by(|&a, &b| {
                lane.raw[b]
                    .total_cmp(&lane.raw[a])
                    .then(lane.vms[a].cmp(&lane.vms[b]))
            });
            idx.truncate(per_lane);
            idx.sort_unstable();
            lane.vms = idx.iter().map(|&i| lane.vms[i]).collect();
            lane.raw = idx.iter().map(|&i| lane.raw[i]).collect();
            lane.pow = idx.iter().map(|&i| lane.pow[i]).collect();
        }
    }

    /// Number of edges carrying explicit deposits (diagnostics).
    pub fn deposited_edges(&self) -> usize {
        self.lanes.iter().map(|lane| lane.vms.len()).sum()
    }

    /// `base^α` from the last [`Self::prepare_pow`] snapshot — the τ^α every
    /// never-deposited edge shares. Must not be called before the first
    /// snapshot.
    #[inline]
    pub fn base_pow(&self) -> f64 {
        debug_assert!(!self.base_pow.is_nan(), "prepare_pow must run first");
        self.base_pow
    }

    /// Visits every deposit-touched edge as `(slot, vm, τ^α)` using the
    /// last [`Self::prepare_pow`] snapshot, in (slot asc, vm asc) order.
    /// The alias-sampling fast path extracts its sparse τ-delta lists from
    /// this walk instead of probing lanes per candidate.
    pub fn for_each_deposited_pow(&self, mut f: impl FnMut(usize, u32, f64)) {
        debug_assert!(!self.base_pow.is_nan(), "prepare_pow must run first");
        for (slot, lane) in self.lanes.iter().enumerate() {
            for (i, &vm) in lane.vms.iter().enumerate() {
                f(slot, vm, lane.pow[i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_uniform() {
        let m = PheromoneMatrix::new(2.0);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(99, 12345), 2.0);
        assert_eq!(m.deposited_edges(), 0);
    }

    #[test]
    fn deposit_then_read() {
        let mut m = PheromoneMatrix::new(1.0);
        m.deposit(3, 7, 0.5);
        assert!((m.get(3, 7) - 1.5).abs() < 1e-12);
        assert_eq!(m.get(3, 8), 1.0);
        assert_eq!(m.deposited_edges(), 1);
    }

    #[test]
    fn evaporation_applies_to_all_edges() {
        let mut m = PheromoneMatrix::new(1.0);
        m.deposit(0, 0, 1.0); // edge at 2.0
        m.evaporate(0.4);
        assert!((m.get(0, 0) - 1.2).abs() < 1e-12);
        assert!((m.get(5, 5) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn eq9_shape_local_update() {
        // τ' = (1-ρ)τ + Δτ : evaporate then deposit.
        let mut m = PheromoneMatrix::new(1.0);
        m.evaporate(0.4);
        m.deposit(1, 2, 0.25);
        assert!((m.get(1, 2) - 0.85).abs() < 1e-12);
    }

    #[test]
    fn pheromone_never_hits_zero() {
        let mut m = PheromoneMatrix::new(1.0);
        for _ in 0..10_000 {
            m.evaporate(0.9);
        }
        assert!(m.get(0, 0) >= MIN_PHEROMONE);
        // Deposits after heavy evaporation still register.
        m.deposit(0, 0, 1.0);
        assert!(m.get(0, 0) >= 1.0);
    }

    #[test]
    fn repeated_deposits_accumulate() {
        let mut m = PheromoneMatrix::new(1.0);
        m.deposit(0, 1, 0.1);
        m.deposit(0, 1, 0.1);
        assert!((m.get(0, 1) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn pow_snapshot_matches_powf_of_get() {
        let mut m = PheromoneMatrix::new(1.0);
        m.deposit(0, 3, 0.7);
        m.deposit(2, 5, 0.2);
        m.evaporate(0.4);
        m.deposit(0, 3, 0.1);
        for alpha in [0.01, 0.5, 2.0] {
            m.prepare_pow(alpha);
            for (slot, vm) in [(0u32, 3u32), (0, 4), (2, 5), (7, 7)] {
                assert_eq!(
                    m.get_pow(slot, vm).to_bits(),
                    m.get(slot, vm).powf(alpha).to_bits(),
                    "α={alpha} edge ({slot},{vm})"
                );
            }
        }
    }

    #[test]
    fn pow_snapshot_alpha_one_is_identity() {
        let mut m = PheromoneMatrix::new(1.3);
        m.deposit(1, 1, 0.9);
        m.prepare_pow(1.0);
        assert_eq!(m.get_pow(1, 1).to_bits(), m.get(1, 1).to_bits());
        assert_eq!(m.get_pow(1, 2).to_bits(), m.get(1, 2).to_bits());
    }

    #[test]
    fn weight_row_matches_per_candidate_products_bitwise() {
        let mut m = PheromoneMatrix::new(1.0);
        m.deposit(0, 3, 0.7);
        m.deposit(2, 5, 0.2);
        m.evaporate(0.4);
        m.deposit(3, 7, 0.1);
        m.prepare_pow(0.01);
        let eta_row: Vec<f64> = (0..8).map(|j| 1.0 / (1.0 + j as f64)).collect();
        let mut out = vec![0.0; 8];
        for slot in 0..4u32 {
            m.fill_weight_row(slot as usize, &eta_row, &mut out);
            for vm in 0..8u32 {
                let expected = m.get_pow(slot, vm) * eta_row[vm as usize];
                assert_eq!(
                    out[vm as usize].to_bits(),
                    expected.to_bits(),
                    "edge ({slot},{vm})"
                );
            }
        }
    }

    #[test]
    fn incremental_first_call_is_the_exact_sweep() {
        let mut exact = PheromoneMatrix::new(1.0);
        let mut inc = PheromoneMatrix::new(1.0);
        for m in [&mut exact, &mut inc] {
            m.deposit(0, 3, 0.7);
            m.evaporate(0.4);
        }
        exact.prepare_pow(0.01);
        inc.prepare_pow_incremental(0.01);
        for (slot, vm) in [(0u32, 3u32), (0, 4), (5, 5)] {
            assert_eq!(
                inc.get_pow(slot, vm).to_bits(),
                exact.get_pow(slot, vm).to_bits()
            );
        }
    }

    #[test]
    fn incremental_snapshot_tracks_exact_within_rounding() {
        let alpha = 0.01;
        let mut exact = PheromoneMatrix::new(1.0);
        let mut inc = PheromoneMatrix::new(1.0);
        exact.prepare_pow(alpha);
        inc.prepare_pow_incremental(alpha);
        for round in 0..64u32 {
            for m in [&mut exact, &mut inc] {
                m.evaporate(0.4);
                m.deposit(round % 4, round % 7, 0.3);
            }
            exact.prepare_pow(alpha);
            inc.prepare_pow_incremental(alpha);
            for slot in 0..5u32 {
                for vm in 0..8u32 {
                    let e = exact.get_pow(slot, vm);
                    let i = inc.get_pow(slot, vm);
                    assert!(
                        (i - e).abs() <= 1e-12 * e.abs(),
                        "round {round} edge ({slot},{vm}): incremental {i} vs exact {e}"
                    );
                }
            }
        }
    }

    #[test]
    fn incremental_recomputes_dirty_entries_exactly() {
        let alpha = 0.5;
        let mut m = PheromoneMatrix::new(1.0);
        m.prepare_pow(alpha);
        m.evaporate(0.4);
        m.deposit(1, 2, 0.25); // dirty: deposited since the snapshot
        m.prepare_pow_incremental(alpha);
        // A dirty entry and the base come out of the exact powf, bitwise.
        assert_eq!(m.get_pow(1, 2).to_bits(), m.get(1, 2).powf(alpha).to_bits());
        assert_eq!(m.get_pow(9, 9).to_bits(), m.get(9, 9).powf(alpha).to_bits());
    }

    #[test]
    fn incremental_falls_back_when_the_floor_clamps() {
        let alpha = 0.7;
        let mut m = PheromoneMatrix::new(1.0);
        m.deposit(0, 1, 5.0);
        m.prepare_pow_incremental(alpha);
        // Evaporate until the base hits MIN_PHEROMONE: uniform rescale no
        // longer holds, so the next incremental call must be exact.
        for _ in 0..200 {
            m.evaporate(0.9);
        }
        m.prepare_pow_incremental(alpha);
        for (slot, vm) in [(0u32, 1u32), (0, 2), (3, 3)] {
            assert_eq!(
                m.get_pow(slot, vm).to_bits(),
                m.get(slot, vm).powf(alpha).to_bits(),
                "post-clamp snapshot must be the exact sweep"
            );
        }
    }

    #[test]
    fn incremental_handles_alpha_changes() {
        let mut m = PheromoneMatrix::new(1.0);
        m.deposit(0, 1, 0.5);
        m.prepare_pow_incremental(0.01);
        m.evaporate(0.4);
        m.prepare_pow_incremental(2.0); // α changed → exact sweep
        assert_eq!(m.get_pow(0, 1).to_bits(), m.get(0, 1).powf(2.0).to_bits());
    }

    #[test]
    fn lanes_stay_sorted_under_out_of_order_deposits() {
        let mut m = PheromoneMatrix::new(1.0);
        for vm in [9u32, 1, 5, 3, 7, 1, 9] {
            m.deposit(0, vm, 0.1);
        }
        assert_eq!(m.deposited_edges(), 5);
        assert!((m.get(0, 1) - 1.2).abs() < 1e-12);
        assert!((m.get(0, 9) - 1.2).abs() < 1e-12);
        assert_eq!(m.get(0, 2), 1.0);
    }
}
