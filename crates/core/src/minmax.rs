//! Min-Min and Max-Min greedy baselines.
//!
//! These are the classic list-scheduling heuristics the paper's related
//! work compares against (an improved Max-Min is proposed in [4]). Both
//! track per-VM ready times and repeatedly pick the cloudlet whose best
//! completion time is smallest (Min-Min) or largest (Max-Min), assigning
//! it to its best VM.
//!
//! Complexity is O(C·V) per step with the standard incremental trick
//! (only cloudlets whose cached best VM was just loaded need rescoring),
//! so they are practical for the heterogeneous scenario's sizes and used
//! in the ablation benches; they are not part of the paper's figure set.

use simcloud::ids::VmId;

use crate::assignment::Assignment;
use crate::eval::{EvalCache, LoadTracker};
use crate::problem::SchedulingProblem;
use crate::scheduler::Scheduler;

/// Which extreme the heuristic selects each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Min,
    Max,
}

fn schedule_greedy(cache: &EvalCache, mode: Mode) -> Assignment {
    let c = cache.cloudlet_count();
    let mut map = vec![VmId(0); c];
    // A VM's ready time is exactly its tracked estimated load: assignments
    // only ever append work, so completion = load + d.
    let mut tracker = LoadTracker::new(cache);

    // Cached best (completion, vm) per unassigned cloudlet.
    let mut best: Vec<(f64, usize)> = (0..c)
        .map(|cl| best_vm(cache, cl, tracker.loads()))
        .collect();
    let mut unassigned: Vec<usize> = (0..c).collect();

    while !unassigned.is_empty() {
        // Select the extreme cloudlet by cached best completion.
        let sel_pos = match mode {
            Mode::Min => unassigned
                .iter()
                .enumerate()
                .min_by(|a, b| best[*a.1].0.total_cmp(&best[*b.1].0))
                .map(|(pos, _)| pos)
                .expect("unassigned is non-empty"),
            Mode::Max => unassigned
                .iter()
                .enumerate()
                .max_by(|a, b| best[*a.1].0.total_cmp(&best[*b.1].0))
                .map(|(pos, _)| pos)
                .expect("unassigned is non-empty"),
        };
        let cl = unassigned.swap_remove(sel_pos);
        let (_, vm) = best[cl];
        map[cl] = VmId::from_index(vm);
        tracker.assign(cache, cl, vm);

        // Only cloudlets whose cached best used `vm` can have changed —
        // every other VM's ready time is untouched and `vm` only got
        // worse, so their cached optimum still stands.
        for &other in &unassigned {
            if best[other].1 == vm {
                best[other] = best_vm(cache, other, tracker.loads());
            }
        }
    }
    Assignment::new(map)
}

/// Best (completion time, vm) for a cloudlet given current ready times.
fn best_vm(cache: &EvalCache, cl: usize, ready: &[f64]) -> (f64, usize) {
    let mut best = (f64::INFINITY, 0usize);
    for (vm, r) in ready.iter().enumerate() {
        let completion = r + cache.exec_ms(cl, vm);
        if completion < best.0 {
            best = (completion, vm);
        }
    }
    best
}

/// The Min-Min heuristic: shortest tasks first, each on its fastest VM.
#[derive(Debug, Default, Clone)]
pub struct MinMin;

impl MinMin {
    /// Creates the scheduler.
    pub fn new() -> Self {
        MinMin
    }
}

impl Scheduler for MinMin {
    fn name(&self) -> &'static str {
        "min-min"
    }

    fn schedule(&mut self, problem: &SchedulingProblem) -> Assignment {
        schedule_greedy(&EvalCache::new(problem), Mode::Min)
    }

    fn schedule_with_cache(
        &mut self,
        _problem: &SchedulingProblem,
        cache: &EvalCache,
    ) -> Assignment {
        schedule_greedy(cache, Mode::Min)
    }
}

/// The Max-Min heuristic: longest tasks first, each on its fastest VM.
#[derive(Debug, Default, Clone)]
pub struct MaxMin;

impl MaxMin {
    /// Creates the scheduler.
    pub fn new() -> Self {
        MaxMin
    }
}

impl Scheduler for MaxMin {
    fn name(&self) -> &'static str {
        "max-min"
    }

    fn schedule(&mut self, problem: &SchedulingProblem) -> Assignment {
        schedule_greedy(&EvalCache::new(problem), Mode::Max)
    }

    fn schedule_with_cache(
        &mut self,
        _problem: &SchedulingProblem,
        cache: &EvalCache,
    ) -> Assignment {
        schedule_greedy(cache, Mode::Max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcloud::characteristics::CostModel;
    use simcloud::cloudlet::CloudletSpec;
    use simcloud::vm::VmSpec;

    fn mixed_problem() -> SchedulingProblem {
        let vms = vec![
            VmSpec::new(500.0, 100.0, 100.0, 500.0, 1),
            VmSpec::new(2_000.0, 100.0, 100.0, 500.0, 1),
        ];
        let cloudlets = vec![
            CloudletSpec::new(1_000.0, 0.0, 0.0, 1),
            CloudletSpec::new(8_000.0, 0.0, 0.0, 1),
            CloudletSpec::new(2_000.0, 0.0, 0.0, 1),
            CloudletSpec::new(4_000.0, 0.0, 0.0, 1),
        ];
        SchedulingProblem::single_datacenter(vms, cloudlets, CostModel::free())
    }

    #[test]
    fn both_produce_valid_assignments() {
        let p = mixed_problem();
        for a in [MinMin::new().schedule(&p), MaxMin::new().schedule(&p)] {
            assert!(a.validate(&p).is_ok());
        }
    }

    #[test]
    fn maxmin_handles_long_tasks_first() {
        let p = mixed_problem();
        let a = MaxMin::new().schedule(&p);
        // The longest task (8000 MI) must land on the fast VM: it was
        // selected first, when the fast VM was idle.
        assert_eq!(a.vm_for(1), VmId(1));
    }

    #[test]
    fn minmin_first_pick_is_shortest_on_fastest() {
        let p = mixed_problem();
        let a = MinMin::new().schedule(&p);
        // The 1000 MI task has the globally smallest completion (0.5s on
        // the fast VM) so Min-Min assigns it there first.
        assert_eq!(a.vm_for(0), VmId(1));
    }

    #[test]
    fn both_beat_the_degenerate_single_vm_plan() {
        // Greedy heuristics are not optimal (Min-Min famously hoards the
        // fastest VM), but both must beat piling everything on one VM.
        let p = mixed_problem();
        let total_mi = 15_000.0;
        let worst = total_mi / 500.0 * 1_000.0; // everything on the slow VM
        let mn = MinMin::new().schedule(&p).estimated_makespan_ms(&p);
        let mx = MaxMin::new().schedule(&p).estimated_makespan_ms(&p);
        assert!(mn < worst, "min-min {mn} vs worst {worst}");
        assert!(mx < worst, "max-min {mx} vs worst {worst}");
    }

    #[test]
    fn deterministic() {
        let p = mixed_problem();
        assert_eq!(MinMin::new().schedule(&p), MinMin::new().schedule(&p));
        assert_eq!(MaxMin::new().schedule(&p), MaxMin::new().schedule(&p));
    }

    #[test]
    fn single_vm_everything_serializes() {
        let p = SchedulingProblem::single_datacenter(
            vec![VmSpec::homogeneous_default()],
            vec![CloudletSpec::homogeneous_default(); 6],
            CostModel::free(),
        );
        let a = MinMin::new().schedule(&p);
        assert!(a.as_slice().iter().all(|v| v.index() == 0));
    }
}
