//! Anytime racing meta-scheduler.
//!
//! The paper's future-work proposal is "pick the right bio-inspired
//! algorithm per workload". [`crate::portfolio::Portfolio`] does that by
//! running every candidate to completion — decision time is the *sum* of
//! the members. The racer gets the same answer-quality contract at a
//! fraction of the cost by slicing every metaheuristic into its native
//! iterations (the [`AnytimeScheduler`] interface) and running a
//! successive-halving elimination race over the pool:
//!
//! 1. Every member is funded one **quantum** of budget per round; budget
//!    is counted in *deterministic evaluation units* — full-assignment
//!    evaluations through [`EvalCache`], never wall clock — so races are
//!    bit-identical across thread counts and engines.
//! 2. After each round the active members are ranked by incumbent score
//!    and the bottom half is eliminated.
//! 3. The last survivor runs to completion on its unchanged RNG path, so
//!    the racer's plan is never worse than the survivor's standalone
//!    full-budget plan *exactly*; eliminated members are covered by the
//!    pruning guarantee (their partial incumbents already lost every
//!    head-to-head ranking they were funded for).
//!
//! The racer also keeps a cross-sweep memory, the [`RaceBook`]: a
//! per-workload-family posterior over member ranks (families are coarse
//! log₂ buckets of fleet size and cloudlets-per-VM pressure). The book
//! orders the roster — historically strong families are funded first and
//! win score ties — and persists inside the scheduler instance, so it is
//! carried across the points of a sweep and across the waves of a stream
//! (the broker keeps warm scheduler instances resident). Everything it
//! does is a deterministic function of race history.
//!
//! ```
//! use biosched_core::racing::{RaceParams, RacingScheduler};
//! use biosched_core::objective::Objective;
//! use biosched_core::problem::SchedulingProblem;
//! use biosched_core::scheduler::Scheduler;
//! use simcloud::prelude::*;
//!
//! let problem = SchedulingProblem::single_datacenter(
//!     vec![VmSpec::new(1000.0, 5000.0, 512.0, 500.0, 1); 4],
//!     vec![CloudletSpec::new(2_000.0, 0.0, 0.0, 1); 16],
//!     CostModel::default(),
//! );
//! let mut racer = RacingScheduler::new(RaceParams::new(Objective::Makespan), 42);
//! let plan = racer.schedule(&problem);
//! assert!(plan.validate(&problem).is_ok());
//! assert!(racer.last_report().is_some());
//! ```
use std::collections::BTreeMap;

use simcloud::ids::VmId;

use crate::aco::{AcoParams, AcoRun};
use crate::assignment::Assignment;
use crate::cuckoo_sos::{CsosParams, CsosRun};
use crate::eval::EvalCache;
use crate::ga::{GaParams, GaRun};
use crate::gsa::{GsaParams, GsaRun};
use crate::hbo::{HboParams, HoneyBee};
use crate::objective::Objective;
use crate::problem::SchedulingProblem;
use crate::pso::{PsoParams, PsoRun};
use crate::scheduler::{MetaProvenance, Scheduler};

/// What one [`AnytimeScheduler::step`] call reports back to the driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepReport {
    /// Deterministic evaluation units this step charged (full-assignment
    /// evaluations through [`EvalCache`]).
    pub units: u64,
    /// The member's best objective score so far (lower is better).
    pub incumbent_score: f64,
    /// True once the member has exhausted its own iteration budget.
    pub done: bool,
}

/// A scheduler that can be advanced one native iteration at a time and
/// interrogated for its best plan so far. Metaheuristics implement it by
/// iteration slicing over their `*Run` steppers; one-shot heuristics race
/// as a single step. All scoring must go through the shared [`EvalCache`]
/// under a common objective, so incumbents are comparable across members.
pub trait AnytimeScheduler: Send {
    /// Stable member name (provenance key).
    fn name(&self) -> &'static str;
    /// Advances one native iteration and reports cost + incumbent score.
    fn step(&mut self, cache: &EvalCache) -> StepReport;
    /// The best plan found so far (cloudlet→VM genes).
    fn incumbent(&self) -> Vec<u32>;
    /// Total evaluation units a standalone run to completion costs.
    fn full_cost(&self) -> u64;
}

/// Racing-driver tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct RaceParams {
    /// The objective every member races under.
    pub objective: Objective,
    /// Per-member full-run budget in evaluation units; `None` picks a
    /// scale-aware default (smaller above the ACO scale cutover).
    pub target_units: Option<u64>,
    /// Units each active member is funded per elimination round; `None`
    /// defaults to 1/16 of the largest member's full cost.
    pub quantum: Option<u64>,
    /// Hard total-budget cap; `None` defaults to the sum of all members'
    /// full costs (i.e. never binds before the race finishes).
    pub budget: Option<u64>,
}

impl RaceParams {
    /// Default racing configuration for an objective.
    pub fn new(objective: Objective) -> Self {
        RaceParams {
            objective,
            target_units: None,
            quantum: None,
            budget: None,
        }
    }

    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.target_units == Some(0) {
            return Err("target_units must be at least 1".into());
        }
        if self.quantum == Some(0) {
            return Err("quantum must be at least 1".into());
        }
        if self.budget == Some(0) {
            return Err("budget must be at least 1".into());
        }
        Ok(())
    }

    /// The per-member full-run budget for a workload size.
    fn resolved_target(&self, cloudlets: usize) -> u64 {
        self.target_units.unwrap_or({
            if cloudlets > AcoParams::SCALE_CUTOVER {
                384
            } else {
                1536
            }
        })
    }
}

impl Default for RaceParams {
    fn default() -> Self {
        Self::new(Objective::Makespan)
    }
}

/// Provenance of one finished race.
#[derive(Debug, Clone, PartialEq)]
pub struct RaceReport {
    /// The member whose incumbent won (produced the returned plan).
    pub winner: &'static str,
    /// The winning objective score.
    pub best_score: f64,
    /// Total evaluation units the race spent.
    pub total_units: u64,
    /// Sum of all members' standalone full costs (what the run-everyone
    /// portfolio would have spent).
    pub portfolio_units: u64,
    /// Units spent per member, roster order.
    pub spent: Vec<(&'static str, u64)>,
}

// ---------------------------------------------------------------------------
// Members
// ---------------------------------------------------------------------------

/// ACO member: steps [`AcoRun`] one iteration (all colonies in lockstep)
/// at a time. The run reports tour lengths; the racer re-scores the
/// incumbent through the shared cache so members stay comparable (that
/// bookkeeping evaluation is not charged — it exists only for ranking).
struct AcoMember {
    run: AcoRun,
    objective: Objective,
    full: u64,
}

impl AnytimeScheduler for AcoMember {
    fn name(&self) -> &'static str {
        "ant-colony"
    }

    fn step(&mut self, cache: &EvalCache) -> StepReport {
        let units = self.run.step_units();
        self.run.step(cache);
        let genes = self.run.incumbent().unwrap_or_default();
        StepReport {
            units,
            incumbent_score: cache.score_genes(&genes, self.objective),
            done: self.run.done(),
        }
    }

    fn incumbent(&self) -> Vec<u32> {
        self.run.incumbent().unwrap_or_default()
    }

    fn full_cost(&self) -> u64 {
        self.full
    }
}

/// Macro-free generic wrapper for the population steppers that share the
/// `init_units/step_units/step/done/best_*` shape (GA, cuckoo-SOS, GSA).
macro_rules! evolving_member {
    ($member:ident, $run:ty, $name:literal, owned) => {
        struct $member {
            run: $run,
            charged_init: bool,
            full: u64,
        }

        impl AnytimeScheduler for $member {
            fn name(&self) -> &'static str {
                $name
            }

            fn step(&mut self, cache: &EvalCache) -> StepReport {
                let mut units = 0;
                if !self.charged_init {
                    self.charged_init = true;
                    units += self.run.init_units();
                }
                units += self.run.step_units();
                let score = self.run.step(cache);
                StepReport {
                    units,
                    incumbent_score: score,
                    done: self.run.done(),
                }
            }

            fn incumbent(&self) -> Vec<u32> {
                self.run.best_genes().to_vec()
            }

            fn full_cost(&self) -> u64 {
                self.full
            }
        }
    };
}

evolving_member!(GaMember, GaRun, "ga", owned);
evolving_member!(CsosMember, CsosRun, "cuckoo-sos", owned);
evolving_member!(GsaMember, GsaRun, "gsa", owned);

/// PSO member (separate from the macro: `best_genes` returns an owned
/// decode of the continuous swarm best).
struct PsoMember {
    run: PsoRun,
    charged_init: bool,
    full: u64,
}

impl AnytimeScheduler for PsoMember {
    fn name(&self) -> &'static str {
        "pso"
    }

    fn step(&mut self, cache: &EvalCache) -> StepReport {
        let mut units = 0;
        if !self.charged_init {
            self.charged_init = true;
            units += self.run.init_units();
        }
        units += self.run.step_units();
        let score = self.run.step(cache);
        StepReport {
            units,
            incumbent_score: score,
            done: self.run.done(),
        }
    }

    fn incumbent(&self) -> Vec<u32> {
        self.run.best_genes()
    }

    fn full_cost(&self) -> u64 {
        self.full
    }
}

/// One-shot heuristic member: the plan is computed at roster-build time
/// (where the problem snapshot is available) and the race charges its
/// single evaluation unit on the first step.
struct OneShotMember {
    name: &'static str,
    genes: Vec<u32>,
    score: f64,
    stepped: bool,
}

impl AnytimeScheduler for OneShotMember {
    fn name(&self) -> &'static str {
        self.name
    }

    fn step(&mut self, _cache: &EvalCache) -> StepReport {
        let units = u64::from(!self.stepped);
        self.stepped = true;
        StepReport {
            units,
            incumbent_score: self.score,
            done: true,
        }
    }

    fn incumbent(&self) -> Vec<u32> {
        self.genes.clone()
    }

    fn full_cost(&self) -> u64 {
        1
    }
}

/// Number of members in the canonical roster.
pub const ROSTER_SIZE: usize = 6;

/// Canonical roster member names, in canonical order.
pub const ROSTER_NAMES: [&str; ROSTER_SIZE] =
    ["ant-colony", "ga", "pso", "cuckoo-sos", "gsa", "honey-bee"];

/// Builds the canonical roster with every member's iteration budget
/// normalized to `target` evaluation units, warm state applied (ACO gets
/// the pheromone prior, population members the incumbent plan).
fn build_roster(
    seed: u64,
    objective: Objective,
    target: u64,
    problem: &SchedulingProblem,
    cache: &EvalCache,
    warm: Option<&crate::warm::WarmState>,
) -> Vec<Box<dyn AnytimeScheduler>> {
    let pheromone = warm.and_then(|w| w.pheromone.as_ref());

    // The one-shot heuristic runs first and doubles as the population
    // members' shared warm start (unless a stream wave carries its own
    // incumbent): every evolving member refines the same strong plan, so
    // early race scores are predictive of full-run quality instead of
    // measuring how fast each family escapes a random init — the
    // late-bloomer pathology that makes halving races prune the eventual
    // winner.
    let mut hbo = HoneyBee::new(HboParams::paper(), seed);
    let hbo_plan = hbo.schedule_with_cache(problem, cache);
    let hbo_genes: Vec<u32> = hbo_plan.as_slice().iter().map(|vm| vm.0).collect();
    let hbo_score = cache.score_genes(&hbo_genes, objective);
    let incumbent: Option<&[u32]> = warm
        .and_then(|w| w.incumbent.as_deref())
        .or(Some(&hbo_genes));

    let aco_params = AcoParams {
        iterations: (target / AcoParams::fast().ants as u64).max(1) as usize,
        ..AcoParams::fast()
    };
    let aco_full = (aco_params.ants * aco_params.iterations) as u64;
    let aco = AcoRun::cold(aco_params, seed, cache, pheromone);

    let ga_params = GaParams {
        population: 16,
        generations: ((target.saturating_sub(16)) / 14).max(1) as usize,
        objective,
        ..GaParams::standard()
    };
    let ga_full = (ga_params.population
        + ga_params.generations * (ga_params.population - ga_params.elites))
        as u64;
    let ga = GaRun::cold(ga_params, seed, cache, incumbent);

    let pso_params = PsoParams {
        particles: 24,
        iterations: ((target.saturating_sub(24)) / 24).max(1) as usize,
        objective,
        ..PsoParams::standard()
    };
    let pso_full = (pso_params.particles * (pso_params.iterations + 1)) as u64;
    let pso = PsoRun::cold(pso_params, seed, cache, incumbent);

    let csos_params = CsosParams {
        population: 16,
        iterations: ((target.saturating_sub(16)) / 48).max(1) as usize,
        objective,
        ..CsosParams::standard()
    };
    let csos_full =
        (csos_params.population + 3 * csos_params.population * csos_params.iterations) as u64;
    let csos = CsosRun::cold(csos_params, seed, cache, incumbent);

    let gsa_params = GsaParams {
        population: 24,
        iterations: ((target.saturating_sub(24)) / 24).max(1) as usize,
        objective,
        ..GsaParams::standard()
    };
    let gsa_full = (gsa_params.population * (gsa_params.iterations + 1)) as u64;
    let gsa = GsaRun::cold(gsa_params, seed, cache, incumbent);

    vec![
        Box::new(AcoMember {
            run: aco,
            objective,
            full: aco_full,
        }),
        Box::new(GaMember {
            run: ga,
            charged_init: false,
            full: ga_full,
        }),
        Box::new(PsoMember {
            run: pso,
            charged_init: false,
            full: pso_full,
        }),
        Box::new(CsosMember {
            run: csos,
            charged_init: false,
            full: csos_full,
        }),
        Box::new(GsaMember {
            run: gsa,
            charged_init: false,
            full: gsa_full,
        }),
        Box::new(OneShotMember {
            name: "honey-bee",
            genes: hbo_genes,
            score: hbo_score,
            stepped: false,
        }),
    ]
}

/// Runs every canonical roster member standalone to its full racing
/// budget and returns `(name, best score)` per member — the comparison
/// baseline for the racer's never-worse property (tests and racebench).
/// Uses the same member seeds a fresh racer's first race would, so the
/// winner's standalone run is the racer's own survivor path.
pub fn standalone_scores(
    seed: u64,
    params: &RaceParams,
    problem: &SchedulingProblem,
    cache: &EvalCache,
) -> Vec<(&'static str, f64)> {
    let target = params.resolved_target(cache.cloudlet_count());
    let mut members = build_roster(seed, params.objective, target, problem, cache, None);
    members
        .iter_mut()
        .map(|member| {
            let mut score = f64::INFINITY;
            loop {
                let rep = member.step(cache);
                score = score.min(rep.incumbent_score);
                if rep.done {
                    break;
                }
            }
            (member.name(), score)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// RaceBook
// ---------------------------------------------------------------------------

/// Per-member running rank statistics inside one workload family.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct MemberStat {
    rank_sum: u64,
    races: u64,
}

/// Cross-sweep racing memory: a per-workload-family posterior over member
/// final ranks. Families are coarse log₂ buckets of fleet size and
/// cloudlets-per-VM pressure, so nearby sweep points and stream waves
/// share a family. The book orders the roster (historically strong
/// members are funded first and win score ties); every update is a
/// deterministic function of the finished race's final standings.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RaceBook {
    stats: BTreeMap<String, [MemberStat; ROSTER_SIZE]>,
}

impl RaceBook {
    /// An empty book (canonical roster order everywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// The workload-family key of a problem snapshot: log₂ buckets of the
    /// fleet size and of the cloudlets-per-VM ratio.
    pub fn family_key(cache: &EvalCache) -> String {
        let v = cache.vm_count().max(1);
        let ratio = (cache.cloudlet_count() / v).max(1);
        format!("v{}:r{}", v.ilog2(), ratio.ilog2())
    }

    /// Funding order for a family: canonical roster indices sorted by
    /// historical mean final rank (ascending; unraced families keep
    /// canonical order; ties break canonically).
    pub fn order(&self, key: &str) -> [usize; ROSTER_SIZE] {
        let mut order = [0usize; ROSTER_SIZE];
        for (i, slot) in order.iter_mut().enumerate() {
            *slot = i;
        }
        if let Some(stats) = self.stats.get(key) {
            // Integer cross-multiplication: mean_a < mean_b ⇔
            // sum_a·races_b < sum_b·races_a (unraced members sort last).
            order.sort_by(|&a, &b| {
                let (sa, sb) = (stats[a], stats[b]);
                match (sa.races, sb.races) {
                    (0, 0) => a.cmp(&b),
                    (0, _) => std::cmp::Ordering::Greater,
                    (_, 0) => std::cmp::Ordering::Less,
                    _ => (sa.rank_sum * sb.races)
                        .cmp(&(sb.rank_sum * sa.races))
                        .then(a.cmp(&b)),
                }
            });
        }
        order
    }

    /// Records a finished race's final standings (`ranks[i]` = canonical
    /// member `i`'s final rank, 0 = winner).
    pub fn record(&mut self, key: &str, ranks: &[usize; ROSTER_SIZE]) {
        let stats = self.stats.entry(key.to_string()).or_default();
        for (stat, &rank) in stats.iter_mut().zip(ranks.iter()) {
            stat.rank_sum += rank as u64;
            stat.races += 1;
        }
    }

    /// Number of races recorded for a family.
    pub fn races(&self, key: &str) -> u64 {
        self.stats.get(key).map_or(0, |s| s[0].races)
    }
}

// ---------------------------------------------------------------------------
// Racing driver
// ---------------------------------------------------------------------------

/// The budget-aware racing meta-scheduler (see the module docs).
pub struct RacingScheduler {
    params: RaceParams,
    seed: u64,
    rounds: u64,
    book: RaceBook,
    last_report: Option<RaceReport>,
}

impl RacingScheduler {
    /// Creates a racer with the given parameters and seed.
    pub fn new(params: RaceParams, seed: u64) -> Self {
        params.validate().expect("invalid RaceParams");
        RacingScheduler {
            params,
            seed,
            rounds: 0,
            book: RaceBook::new(),
            last_report: None,
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &RaceParams {
        &self.params
    }

    /// Provenance of the most recent race.
    pub fn last_report(&self) -> Option<&RaceReport> {
        self.last_report.as_ref()
    }

    /// The cross-sweep memory.
    pub fn book(&self) -> &RaceBook {
        &self.book
    }

    /// Per-round run seed (successive `schedule` calls draw fresh member
    /// streams, like the other stochastic kinds).
    fn round_seed(&mut self) -> u64 {
        let round = self.rounds;
        self.rounds += 1;
        self.seed
            .wrapping_add(round.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Runs one elimination race and returns the winning plan.
    fn race(
        &mut self,
        problem: &SchedulingProblem,
        cache: &EvalCache,
        warm: Option<&crate::warm::WarmState>,
    ) -> Assignment {
        let seed = self.round_seed();
        if cache.cloudlet_count() == 0 {
            self.last_report = Some(RaceReport {
                winner: "none",
                best_score: 0.0,
                total_units: 0,
                portfolio_units: 0,
                spent: Vec::new(),
            });
            return Assignment::new(Vec::new());
        }
        let key = RaceBook::family_key(cache);
        let target = self.params.resolved_target(cache.cloudlet_count());
        let mut members = build_roster(seed, self.params.objective, target, problem, cache, warm);
        let n = members.len();
        let full: Vec<u64> = members.iter().map(|m| m.full_cost()).collect();
        let portfolio_units: u64 = full.iter().sum();
        let max_full = full.iter().copied().max().unwrap_or(1);
        let quantum = self.params.quantum.unwrap_or((max_full / 16).max(1));
        let budget = self.params.budget.unwrap_or(portfolio_units);

        // Funding order & tie-break priority from the book.
        let order = self.book.order(&key);
        let mut priority = [0usize; ROSTER_SIZE];
        for (pos, &idx) in order.iter().enumerate() {
            priority[idx] = pos;
        }

        let mut active: Vec<usize> = order.to_vec();
        let mut spent = vec![0u64; n];
        let mut scores = vec![f64::INFINITY; n];
        let mut done = vec![false; n];
        let mut total: u64 = 0;
        let mut best: Option<(f64, Vec<u32>, usize)> = None;

        let fund = |i: usize,
                    cap: u64,
                    members: &mut Vec<Box<dyn AnytimeScheduler>>,
                    spent: &mut Vec<u64>,
                    scores: &mut Vec<f64>,
                    done: &mut Vec<bool>,
                    total: &mut u64,
                    best: &mut Option<(f64, Vec<u32>, usize)>| {
            // At least one step per funding call; after that, stop before
            // a step that would overshoot the cap (estimated by the
            // previous step's cost — steps are constant-cost per member
            // except the first, which also carries the init charge).
            let mut used = 0u64;
            let mut last = 0u64;
            while !done[i] && *total < budget {
                if used > 0 && used.saturating_add(last) > cap {
                    break;
                }
                let rep = members[i].step(cache);
                used += rep.units;
                last = rep.units;
                spent[i] += rep.units;
                *total += rep.units;
                scores[i] = rep.incumbent_score;
                done[i] = rep.done;
                if best
                    .as_ref()
                    .is_none_or(|(b, _, _)| rep.incumbent_score < *b)
                {
                    *best = Some((rep.incumbent_score, members[i].incumbent(), i));
                }
                if used >= cap {
                    break;
                }
            }
        };

        // Successive-halving rounds. The quantum doubles after the first
        // cut and then holds: later cuts compare members at meaningfully
        // deeper run fractions — shallow-cut races are what prune
        // late-converging families (GA) in favor of fast starters — while
        // the cap keeps the runner-up's sunk cost bounded so the whole
        // race stays well under the run-everyone portfolio cost.
        let mut round_quantum = quantum;
        while active.len() > 1 && total < budget && active.iter().any(|&i| !done[i]) {
            for &i in &active.clone() {
                fund(
                    i,
                    round_quantum,
                    &mut members,
                    &mut spent,
                    &mut scores,
                    &mut done,
                    &mut total,
                    &mut best,
                );
            }
            round_quantum = round_quantum
                .saturating_mul(2)
                .min(quantum.saturating_mul(2));
            let keep = active.len().div_ceil(2);
            active.sort_by(|&a, &b| {
                scores[a]
                    .total_cmp(&scores[b])
                    .then(priority[a].cmp(&priority[b]))
            });
            active.truncate(keep);
        }
        // The survivor completes its standalone run on its unchanged RNG
        // path — the exact never-worse anchor.
        if let [survivor] = active[..] {
            fund(
                survivor,
                u64::MAX,
                &mut members,
                &mut spent,
                &mut scores,
                &mut done,
                &mut total,
                &mut best,
            );
        }

        let (best_score, genes, winner_idx) = best.expect("every member stepped at least once");
        // Final standings by observed score (ties break by funding
        // priority) feed the book.
        let mut standing: Vec<usize> = (0..n).collect();
        standing.sort_by(|&a, &b| {
            scores[a]
                .total_cmp(&scores[b])
                .then(priority[a].cmp(&priority[b]))
        });
        let mut ranks = [0usize; ROSTER_SIZE];
        for (rank, &idx) in standing.iter().enumerate() {
            ranks[idx] = rank;
        }
        self.book.record(&key, &ranks);

        self.last_report = Some(RaceReport {
            winner: members[winner_idx].name(),
            best_score,
            total_units: total,
            portfolio_units,
            spent: members
                .iter()
                .zip(spent.iter())
                .map(|(m, &u)| (m.name(), u))
                .collect(),
        });
        Assignment::new(genes.into_iter().map(VmId).collect())
    }
}

impl Scheduler for RacingScheduler {
    fn name(&self) -> &'static str {
        "racing"
    }

    fn schedule(&mut self, problem: &SchedulingProblem) -> Assignment {
        self.schedule_with_cache(problem, &EvalCache::new(problem))
    }

    fn schedule_with_cache(
        &mut self,
        problem: &SchedulingProblem,
        cache: &EvalCache,
    ) -> Assignment {
        self.race(problem, cache, None)
    }

    fn schedule_warm(
        &mut self,
        problem: &SchedulingProblem,
        cache: &EvalCache,
        warm: &mut crate::warm::WarmState,
    ) -> Assignment {
        let plan = self.race(problem, cache, Some(warm));
        warm.note_plan(&plan);
        plan
    }

    fn last_meta(&self) -> Option<MetaProvenance> {
        self.last_report.as_ref().map(|r| MetaProvenance {
            winner: r.winner.to_string(),
            spent: r
                .spent
                .iter()
                .map(|(name, units)| (name.to_string(), *units))
                .collect(),
            total_units: r.total_units,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warm::WarmState;
    use simcloud::characteristics::CostModel;
    use simcloud::cloudlet::CloudletSpec;
    use simcloud::vm::VmSpec;

    fn hetero_problem(vms: usize, cloudlets: usize) -> SchedulingProblem {
        let vm_specs: Vec<VmSpec> = (0..vms)
            .map(|i| VmSpec::new(500.0 + 650.0 * (i % 4) as f64, 5_000.0, 512.0, 500.0, 1))
            .collect();
        let cls: Vec<CloudletSpec> = (0..cloudlets)
            .map(|i| CloudletSpec::new(1_100.0 + 850.0 * (i % 6) as f64, 300.0, 300.0, 1))
            .collect();
        SchedulingProblem::single_datacenter(vm_specs, cls, CostModel::default())
    }

    fn small_params() -> RaceParams {
        RaceParams {
            target_units: Some(240),
            ..RaceParams::new(Objective::Makespan)
        }
    }

    #[test]
    fn produces_valid_plans_with_provenance() {
        let p = hetero_problem(6, 40);
        let mut racer = RacingScheduler::new(small_params(), 3);
        let plan = racer.schedule(&p);
        assert!(plan.validate(&p).is_ok());
        assert_eq!(plan.len(), 40);
        let report = racer.last_report().expect("race ran");
        assert!(ROSTER_NAMES.contains(&report.winner));
        assert!(report.total_units > 0);
        assert_eq!(report.spent.len(), ROSTER_SIZE);
        assert!(
            report.spent.iter().all(|(_, u)| *u > 0),
            "{:?}",
            report.spent
        );
        let meta = racer.last_meta().expect("provenance exported");
        assert_eq!(meta.winner, report.winner);
        assert_eq!(meta.total_units, report.total_units);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = hetero_problem(5, 30);
        let run = |seed| {
            let mut racer = RacingScheduler::new(small_params(), seed);
            let plan = racer.schedule(&p);
            let report = racer.last_report().cloned().expect("race ran");
            (plan, report)
        };
        let (a, ra) = run(9);
        let (b, rb) = run(9);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
        let (c, _) = run(10);
        assert_ne!(a, c);
    }

    #[test]
    fn racer_spends_well_under_the_portfolio_budget() {
        let p = hetero_problem(8, 64);
        let mut racer = RacingScheduler::new(RaceParams::new(Objective::Makespan), 5);
        racer.schedule(&p);
        let report = racer.last_report().expect("race ran");
        assert!(
            (report.total_units as f64) <= 0.35 * report.portfolio_units as f64,
            "race spent {} of portfolio {}",
            report.total_units,
            report.portfolio_units
        );
    }

    #[test]
    fn never_worse_than_any_member_standalone() {
        // Each member standalone at its full racing budget vs the racer:
        // the racer's plan must score at least as well (the survivor
        // anchor makes this exact for the winner; deterministic seeds
        // make it stable for the eliminated members).
        let p = hetero_problem(6, 48);
        let cache = EvalCache::new(&p);
        let objective = Objective::Makespan;
        let params = small_params();
        let seed = 7;
        let mut racer = RacingScheduler::new(params.clone(), seed);
        let plan = racer.schedule_with_cache(&p, &cache);
        let raced = cache.score(plan.as_slice(), objective);
        let target = params.resolved_target(p.cloudlet_count());
        // round_seed(0) == seed: members standalone see the same streams.
        let mut members = build_roster(seed, objective, target, &p, &cache, None);
        for member in members.iter_mut() {
            loop {
                let rep = member.step(&cache);
                if rep.done {
                    assert!(
                        raced <= rep.incumbent_score + 1e-9,
                        "racer {raced} lost to standalone {} at {}",
                        member.name(),
                        rep.incumbent_score
                    );
                    break;
                }
            }
        }
    }

    #[test]
    fn budget_cap_binds() {
        let p = hetero_problem(6, 40);
        let params = RaceParams {
            budget: Some(100),
            ..small_params()
        };
        let mut racer = RacingScheduler::new(params, 11);
        let plan = racer.schedule(&p);
        assert!(plan.validate(&p).is_ok());
        let report = racer.last_report().expect("race ran");
        // The cap is checked between steps, so the overshoot is at most
        // one step of the member that crossed it — the largest being
        // cuckoo-SOS's init-carrying first step (population + 3×population
        // units).
        assert!(
            report.total_units <= 100 + 64,
            "spent {}",
            report.total_units
        );
    }

    #[test]
    fn book_learns_and_reorders() {
        let mut book = RaceBook::new();
        let key = "v3:r2";
        assert_eq!(book.order(key), [0, 1, 2, 3, 4, 5]);
        // Member 4 keeps winning, member 0 keeps losing.
        book.record(key, &[5, 1, 2, 3, 0, 4]);
        book.record(key, &[5, 2, 1, 3, 0, 4]);
        let order = book.order(key);
        assert_eq!(order[0], 4);
        assert_eq!(order[5], 0);
        assert_eq!(book.races(key), 2);
    }

    #[test]
    fn book_persists_across_rounds_on_one_instance() {
        let p = hetero_problem(6, 40);
        let mut racer = RacingScheduler::new(small_params(), 13);
        let key = RaceBook::family_key(&EvalCache::lite(&p));
        racer.schedule(&p);
        assert_eq!(racer.book().races(&key), 1);
        racer.schedule(&p);
        assert_eq!(racer.book().races(&key), 2);
    }

    #[test]
    fn warm_race_is_deterministic_and_notes_plan() {
        let p = hetero_problem(6, 36);
        let cache = EvalCache::new(&p);
        let run = || {
            let mut warm = WarmState::default();
            let mut racer = RacingScheduler::new(small_params(), 17);
            let first = racer.schedule_warm(&p, &cache, &mut warm);
            assert!(warm.incumbent.is_some(), "plan noted for the next wave");
            let second = racer.schedule_warm(&p, &cache, &mut warm);
            (first, second)
        };
        let (a1, a2) = run();
        let (b1, b2) = run();
        assert_eq!(a1, b1);
        assert_eq!(a2, b2);
    }

    #[test]
    fn family_key_buckets_scale() {
        let small = EvalCache::lite(&hetero_problem(8, 32));
        let big = EvalCache::lite(&hetero_problem(8, 1024));
        assert_eq!(RaceBook::family_key(&small), "v3:r2");
        assert_ne!(RaceBook::family_key(&small), RaceBook::family_key(&big));
    }

    #[test]
    fn empty_workload_short_circuits() {
        let p = SchedulingProblem::single_datacenter(
            vec![VmSpec::homogeneous_default()],
            vec![],
            CostModel::free(),
        );
        let mut racer = RacingScheduler::new(RaceParams::default(), 1);
        assert!(racer.schedule(&p).is_empty());
        assert_eq!(racer.last_report().unwrap().total_units, 0);
    }

    #[test]
    fn params_validation() {
        assert!(RaceParams {
            quantum: Some(0),
            ..RaceParams::default()
        }
        .validate()
        .is_err());
        assert!(RaceParams {
            target_units: Some(0),
            ..RaceParams::default()
        }
        .validate()
        .is_err());
        assert!(RaceParams::default().validate().is_ok());
    }
}
