//! Honey Bee Optimization scheduler (Section III of the paper).
//!
//! Cloudlets form food sources split into groups; forager bees (one per
//! datacenter) evaluate the Eq. 1 cost of each datacenter, and scout bees
//! place each cloudlet on the least-loaded VM of the most profitable
//! (cheapest) datacenter. The `facLB` load-balance factor caps how much of
//! the total load the best datacenter may absorb before bees spill to the
//! next one (Algorithm 1, lines 10–14).
//!
//! Interpretation notes (the paper's Algorithm 1 is informal):
//!
//! * "The DC with the highest fitness value … receives a percentage of the
//!   tasks" — we bound the best DC's share of assigned cloudlets by
//!   `fac_lb`; overflow goes to the next-cheapest DC, recursively.
//! * "assign(Cloudlet, Datacenter(VM_leastLoad))" — within a datacenter the
//!   scout picks the VM with the smallest accumulated expected execution
//!   time (Eq. 6), which is HBO's only makespan awareness.
//! * Groups are processed largest-first (Algorithm 1 line 6's `max`),
//!   which matters when several scheduling rounds interleave.

//!
//! ```
//! use biosched_core::hbo::{HboParams, HoneyBee};
//! use biosched_core::problem::{DatacenterView, SchedulingProblem};
//! use biosched_core::scheduler::Scheduler;
//! use simcloud::ids::DatacenterId;
//! use simcloud::prelude::*;
//!
//! // Two datacenters, the second far cheaper.
//! let problem = SchedulingProblem::new(
//!     vec![VmSpec::homogeneous_default(); 4],
//!     vec![CloudletSpec::new(5_000.0, 300.0, 300.0, 1); 12],
//!     vec![
//!         DatacenterView { id: DatacenterId(0), cost: CostModel::new(0.05, 0.004, 0.05, 3.0) },
//!         DatacenterView { id: DatacenterId(1), cost: CostModel::new(0.01, 0.001, 0.01, 3.0) },
//!     ],
//!     vec![DatacenterId(0), DatacenterId(0), DatacenterId(1), DatacenterId(1)],
//! ).unwrap();
//! let plan = HoneyBee::new(HboParams::paper(), 42).schedule(&problem);
//! // The cheap datacenter (VMs 2 and 3) receives the majority of the work.
//! let cheap = plan.as_slice().iter().filter(|vm| vm.index() >= 2).count();
//! assert!(cheap > 6);
//! ```
mod fitness;

pub use fitness::{best_rate_in_dc, dc_cost, fitness};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use simcloud::ids::VmId;
use simcloud::rng::stream;

use crate::assignment::Assignment;
use crate::eval::{EvalCache, MinLoadHeap};
use crate::problem::SchedulingProblem;
use crate::scheduler::Scheduler;

/// HBO tuning parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct HboParams {
    /// Number of cloudlet groups (foragers). `None` uses one per
    /// datacenter, the paper's rule ("n equals the number of DCs").
    pub groups: Option<usize>,
    /// Load-balance factor `facLB`: the maximum share of cloudlets the
    /// current best datacenter may hold before scouts spill over.
    pub fac_lb: f64,
    /// Shuffle cloudlet order inside groups (scout randomness). Off keeps
    /// the algorithm fully order-deterministic.
    pub shuffle: bool,
}

impl HboParams {
    /// Study defaults: per-DC foragers, 70% spill threshold, shuffling on.
    pub fn paper() -> Self {
        HboParams {
            groups: None,
            fac_lb: 0.7,
            shuffle: true,
        }
    }

    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.fac_lb > 0.0 && self.fac_lb <= 1.0) {
            return Err(format!("fac_lb must be in (0,1], got {}", self.fac_lb));
        }
        if self.groups == Some(0) {
            return Err("groups must be at least 1".into());
        }
        Ok(())
    }
}

impl Default for HboParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// The HBO scheduler.
pub struct HoneyBee {
    params: HboParams,
    rng: StdRng,
}

impl HoneyBee {
    /// Creates an HBO scheduler with the given parameters and seed.
    pub fn new(params: HboParams, seed: u64) -> Self {
        params.validate().expect("invalid HboParams");
        HoneyBee {
            params,
            rng: stream(seed, "hbo"),
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &HboParams {
        &self.params
    }

    fn run(&mut self, problem: &SchedulingProblem, cache: &EvalCache) -> Assignment {
        let dc_count = problem.datacenters.len();
        let c = problem.cloudlet_count();

        // Forager ranking: datacenters ordered by their cheapest Eq. 1
        // rate. TCL_j scales all datacenters identically, so the ranking
        // is cloudlet-independent and computed once per round.
        let mut dc_order: Vec<usize> = (0..dc_count).collect();
        let rates: Vec<f64> = (0..dc_count)
            .map(|d| {
                let dc = &problem.datacenters[d];
                best_rate_in_dc(
                    &dc.cost,
                    problem
                        .vm_placement
                        .iter()
                        .enumerate()
                        .filter(|(_, placed)| placed.index() == d)
                        .map(|(v, _)| &problem.vms[v]),
                )
            })
            .collect();
        dc_order.sort_by(|a, b| rates[*a].total_cmp(&rates[*b]));
        // Datacenters with no VMs can never take work.
        dc_order.retain(|d| rates[*d].is_finite());
        assert!(
            !dc_order.is_empty(),
            "every datacenter is empty — nothing can host cloudlets"
        );

        // Scout state: per-DC least-loaded heap of (load, vm).
        let mut heaps: Vec<MinLoadHeap> = vec![MinLoadHeap::new(); dc_count];
        for (v, dc) in problem.vm_placement.iter().enumerate() {
            heaps[dc.index()].push(0.0, v as u32);
        }

        // Cloudlet groups: q foragers, largest total length first.
        let q = self.params.groups.unwrap_or(dc_count).max(1).min(c.max(1));
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); q];
        for i in 0..c {
            groups[i % q].push(i);
        }
        // Hoist the per-group length sums out of the comparator: the old
        // closure recomputed both sums on every comparison (O(C log q)
        // additions). Same summation order, stable sort — the resulting
        // permutation is byte-identical.
        let mut keyed: Vec<(f64, Vec<usize>)> = groups
            .into_iter()
            .map(|g| (g.iter().map(|i| cache.cloudlet_len_mi(*i)).sum(), g))
            .collect();
        keyed.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut groups: Vec<Vec<usize>> = keyed.into_iter().map(|(_, g)| g).collect();
        if self.params.shuffle {
            for g in &mut groups {
                g.shuffle(&mut self.rng);
            }
        }

        let mut map = vec![VmId(0); c];
        let mut assigned_per_dc = vec![0usize; dc_count];
        let mut assigned_total = 0usize;

        for group in groups {
            for cl_idx in group {
                // Forager choice: cheapest DC whose share is under facLB.
                let chosen = dc_order
                    .iter()
                    .copied()
                    .find(|d| {
                        // Share the DC would hold *after* taking this
                        // cloudlet must stay within facLB.
                        let share = (assigned_per_dc[*d] + 1) as f64 / (assigned_total + 1) as f64;
                        share <= self.params.fac_lb
                    })
                    .unwrap_or_else(|| {
                        // All shares at the cap (possible with many DCs):
                        // take the least-utilized one.
                        dc_order
                            .iter()
                            .copied()
                            .min_by_key(|d| assigned_per_dc[*d])
                            .expect("dc_order is non-empty")
                    });

                // Scout choice: least-loaded VM inside the chosen DC.
                let (load, vm) = heaps[chosen].pop().expect("chosen DC has VMs");
                map[cl_idx] = VmId(vm);
                let new_load = load + cache.exec_ms(cl_idx, vm as usize);
                heaps[chosen].push(new_load, vm);
                assigned_per_dc[chosen] += 1;
                assigned_total += 1;
            }
        }
        Assignment::new(map)
    }
}

impl Scheduler for HoneyBee {
    fn name(&self) -> &'static str {
        "honey-bee"
    }

    fn schedule(&mut self, problem: &SchedulingProblem) -> Assignment {
        self.run(problem, &EvalCache::new(problem))
    }

    fn schedule_with_cache(
        &mut self,
        problem: &SchedulingProblem,
        cache: &EvalCache,
    ) -> Assignment {
        self.run(problem, cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{score_assignment, Objective};
    use crate::problem::DatacenterView;
    use crate::round_robin::RoundRobin;
    use simcloud::characteristics::CostModel;
    use simcloud::cloudlet::CloudletSpec;
    use simcloud::ids::DatacenterId;
    use simcloud::vm::VmSpec;

    /// Two datacenters: dc0 expensive, dc1 cheap; 4 VMs in each.
    fn two_dc_problem(cloudlets: usize) -> SchedulingProblem {
        let vms = vec![VmSpec::homogeneous_default(); 8];
        let placement: Vec<DatacenterId> =
            (0..8).map(|i| DatacenterId(u32::from(i >= 4))).collect();
        SchedulingProblem::new(
            vms,
            vec![CloudletSpec::new(5_000.0, 300.0, 300.0, 1); cloudlets],
            vec![
                DatacenterView {
                    id: DatacenterId(0),
                    cost: CostModel::new(0.05, 0.004, 0.05, 3.0),
                },
                DatacenterView {
                    id: DatacenterId(1),
                    cost: CostModel::new(0.01, 0.001, 0.01, 3.0),
                },
            ],
            placement,
        )
        .unwrap()
    }

    #[test]
    fn prefers_cheap_datacenter_up_to_fac_lb() {
        let p = two_dc_problem(100);
        let a = HoneyBee::new(HboParams::paper(), 1).schedule(&p);
        let counts = a.counts_per_vm(8);
        let dc0: usize = counts[..4].iter().sum();
        let dc1: usize = counts[4..].iter().sum();
        // dc1 (cheap) should hold about fac_lb = 70% of the load.
        assert!(dc1 > dc0, "cheap DC must dominate: dc0={dc0} dc1={dc1}");
        assert!(
            (dc1 as f64 / 100.0 - 0.7).abs() < 0.1,
            "cheap DC share should hover near facLB, got {dc1}"
        );
    }

    #[test]
    fn beats_round_robin_on_cost() {
        let p = two_dc_problem(60);
        let hbo = HoneyBee::new(HboParams::paper(), 2).schedule(&p);
        let rr = RoundRobin::new().schedule(&p);
        let hbo_cost = score_assignment(&p, &hbo, Objective::Cost);
        let rr_cost = score_assignment(&p, &rr, Objective::Cost);
        assert!(
            hbo_cost < rr_cost,
            "HBO cost {hbo_cost} must beat RR cost {rr_cost}"
        );
    }

    #[test]
    fn balances_within_datacenter() {
        let p = two_dc_problem(80);
        let a = HoneyBee::new(HboParams::paper(), 3).schedule(&p);
        let counts = a.counts_per_vm(8);
        // Within the cheap DC the least-loaded heap spreads evenly.
        let dc1 = &counts[4..];
        let min = dc1.iter().min().unwrap();
        let max = dc1.iter().max().unwrap();
        assert!(max - min <= 1, "uneven spread in cheap DC: {dc1:?}");
    }

    #[test]
    fn fac_lb_one_sends_everything_to_cheapest() {
        let p = two_dc_problem(40);
        let params = HboParams {
            fac_lb: 1.0,
            shuffle: false,
            ..HboParams::paper()
        };
        let a = HoneyBee::new(params, 4).schedule(&p);
        let counts = a.counts_per_vm(8);
        let dc0: usize = counts[..4].iter().sum();
        assert_eq!(dc0, 0, "with facLB=1 nothing should spill to dc0");
    }

    #[test]
    fn single_dc_degenerates_to_least_loaded() {
        let p = SchedulingProblem::single_datacenter(
            vec![VmSpec::homogeneous_default(); 4],
            vec![CloudletSpec::homogeneous_default(); 40],
            CostModel::default(),
        );
        let a = HoneyBee::new(HboParams::paper(), 5).schedule(&p);
        let counts = a.counts_per_vm(4);
        assert_eq!(counts, vec![10, 10, 10, 10]);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = two_dc_problem(30);
        let a = HoneyBee::new(HboParams::paper(), 6).schedule(&p);
        let b = HoneyBee::new(HboParams::paper(), 6).schedule(&p);
        assert_eq!(a, b);
    }

    #[test]
    fn explicit_group_count_overrides_dc_rule() {
        let p = two_dc_problem(24);
        let params = HboParams {
            groups: Some(6),
            shuffle: false,
            ..HboParams::paper()
        };
        let a = HoneyBee::new(params, 8).schedule(&p);
        assert!(a.validate(&p).is_ok());
        assert_eq!(a.len(), 24);
    }

    #[test]
    fn more_groups_than_cloudlets_clamps() {
        let p = two_dc_problem(2);
        let params = HboParams {
            groups: Some(50),
            ..HboParams::paper()
        };
        let a = HoneyBee::new(params, 9).schedule(&p);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn params_validation() {
        assert!(HboParams {
            fac_lb: 0.0,
            ..HboParams::paper()
        }
        .validate()
        .is_err());
        assert!(HboParams {
            fac_lb: 1.5,
            ..HboParams::paper()
        }
        .validate()
        .is_err());
        assert!(HboParams {
            groups: Some(0),
            ..HboParams::paper()
        }
        .validate()
        .is_err());
        assert!(HboParams::paper().validate().is_ok());
    }
}
