//! HBO's fitness function — Eqs. 1–4 of the paper.
//!
//! Table I glossary (paper symbols → this module):
//!
//! | Symbol      | Meaning                                        | Here |
//! |-------------|------------------------------------------------|------|
//! | `TCLj`      | length of cloudlet *j*                         | `cloudlet.length_mi` |
//! | `dchCPS`    | datacenter cost per storage                    | `cost.per_storage` |
//! | `sizeVMi`   | storage required by VM *i*                     | `vm.size_mb` |
//! | `dchCPR`    | datacenter cost per RAM                        | `cost.per_memory` |
//! | `RAMVMi`    | RAM required by VM *i*                         | `vm.ram_mb` |
//! | `dchCPB`    | datacenter cost per bandwidth                  | `cost.per_bandwidth` |
//! | `BwVMi`     | bandwidth consumed by VM *i*                   | `vm.bw_mbps` |
//!
//! Eq. 1: `DCCost(i,j) = (Size_i + M_i + Bw_i) × TCL_j`, where
//! Eq. 2 `Size_i = dchCPS × sizeVM_i`, Eq. 3 `M_i = dchCPR × RAMVM_i`,
//! Eq. 4 `Bw_i = dchCPB × BwVM_i`. The bees pick the datacenter with the
//! lowest cost (equivalently, the highest fitness = 1/cost).

use simcloud::characteristics::CostModel;
use simcloud::cloudlet::CloudletSpec;
use simcloud::cost::{resource_rate, LENGTH_NORM_MI};
use simcloud::vm::VmSpec;

/// Eq. 1 — the cost of running cloudlet `cl` on VM `vm` in a datacenter
/// priced by `cost`. Length is normalized like the simulator's cost model
/// so HBO optimizes exactly the metric Fig. 6d reports.
pub fn dc_cost(cost: &CostModel, vm: &VmSpec, cl: &CloudletSpec) -> f64 {
    resource_rate(cost, vm) * (cl.length_mi / LENGTH_NORM_MI)
}

/// Fitness = inverse cost; higher is better. Infinite for free DCs.
pub fn fitness(cost: &CostModel, vm: &VmSpec, cl: &CloudletSpec) -> f64 {
    let c = dc_cost(cost, vm, cl);
    if c <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / c
    }
}

/// The cheapest Eq. 1 rate a datacenter can offer across a set of VM
/// specs (used to rank datacenters once per scheduling round, since the
/// `TCL_j` factor scales every datacenter identically).
pub fn best_rate_in_dc<'a>(cost: &CostModel, vms: impl Iterator<Item = &'a VmSpec>) -> f64 {
    vms.map(|vm| resource_rate(cost, vm))
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_composition() {
        let cost = CostModel::new(0.05, 0.004, 0.05, 3.0);
        let vm = VmSpec::new(1_000.0, 5_000.0, 512.0, 500.0, 1);
        let cl = CloudletSpec::new(2_000.0, 300.0, 300.0, 1);
        // rate = 0.004*5000 + 0.05*512 + 0.05*500 = 70.6; × (2000/1000) = 141.2
        assert!((dc_cost(&cost, &vm, &cl) - 141.2).abs() < 1e-9);
    }

    #[test]
    fn fitness_is_inverse_cost() {
        let cost = CostModel::new(0.01, 0.001, 0.01, 3.0);
        let vm = VmSpec::default();
        let cl = CloudletSpec::default();
        let f = fitness(&cost, &vm, &cl);
        assert!((f * dc_cost(&cost, &vm, &cl) - 1.0).abs() < 1e-12);
        assert_eq!(fitness(&CostModel::free(), &vm, &cl), f64::INFINITY);
    }

    #[test]
    fn cheaper_dc_has_higher_fitness() {
        let cheap = CostModel::new(0.01, 0.001, 0.01, 3.0);
        let dear = CostModel::new(0.05, 0.004, 0.05, 3.0);
        let vm = VmSpec::default();
        let cl = CloudletSpec::default();
        assert!(fitness(&cheap, &vm, &cl) > fitness(&dear, &vm, &cl));
    }

    #[test]
    fn best_rate_scans_vm_specs() {
        let cost = CostModel::new(0.0, 0.001, 0.0, 3.0);
        let small = VmSpec::new(1.0, 100.0, 1.0, 1.0, 1);
        let big = VmSpec::new(1.0, 10_000.0, 1.0, 1.0, 1);
        let rate = best_rate_in_dc(&cost, [&small, &big].into_iter());
        assert!((rate - 0.1).abs() < 1e-12);
        assert_eq!(best_rate_in_dc(&cost, std::iter::empty()), f64::INFINITY);
    }
}
