//! Gravitational Search Algorithm (GSA) scheduler.
//!
//! Related-work family (arXiv 2311.07004): candidate assignments are
//! *agents* in a continuous search space (one dimension per cloudlet,
//! positions decoded to VM indices exactly like the PSO decoder). Each
//! iteration, agents are weighted by fitness-derived **masses** — the
//! ecosystem best gets mass 1, the worst mass 0 — and every agent is
//! pulled toward the `Kbest` heaviest agents with force
//! `G(t) · M_j · (x_j − x_i) / (R_ij + ε)`, where the gravitational
//! constant `G(t) = G₀·e^(−α·t/T)` decays over time and `Kbest` shrinks
//! linearly from the whole population to a single agent — exploration
//! early, exploitation late.
//!
//! All fitness goes through the batch evaluation kernel
//! ([`evaluate_population`]), which is RNG-free and thread-invariant, and
//! the force loop is plain sequential arithmetic, so plans are
//! bit-identical per seed at any thread count.
//!
//! [`GsaRun`] is the native anytime stepper ([`GsaRun::step`] = one full
//! swarm iteration, `population` evaluation units); [`Gsa`] runs it to
//! completion behind the [`Scheduler`] interface, so one-shot and stepped
//! plans are the same bits by construction.
//!
//! ```
//! use biosched_core::gsa::{Gsa, GsaParams};
//! use biosched_core::problem::SchedulingProblem;
//! use biosched_core::scheduler::Scheduler;
//! use simcloud::prelude::*;
//!
//! let problem = SchedulingProblem::single_datacenter(
//!     vec![VmSpec::new(1000.0, 5000.0, 512.0, 500.0, 1); 4],
//!     vec![CloudletSpec::new(2_000.0, 0.0, 0.0, 1); 16],
//!     CostModel::default(),
//! );
//! let plan = Gsa::new(GsaParams::fast(), 42).schedule(&problem);
//! assert!(plan.validate(&problem).is_ok());
//! ```
use rand::rngs::StdRng;
use rand::Rng;
use simcloud::ids::VmId;
use simcloud::rng::stream;

use crate::assignment::Assignment;
use crate::eval::{evaluate_population, EvalCache};
use crate::objective::Objective;
use crate::problem::SchedulingProblem;
use crate::scheduler::Scheduler;

/// Softening constant keeping the force finite at zero distance.
const EPS: f64 = 1e-9;

/// GSA tuning parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GsaParams {
    /// Number of agents.
    pub population: usize,
    /// Swarm iterations.
    pub iterations: usize,
    /// Initial gravitational constant `G₀`.
    pub g0: f64,
    /// Gravitational decay exponent `α` in `G(t) = G₀·e^(−α·t/T)`.
    pub alpha: f64,
    /// What the swarm optimizes.
    pub objective: Objective,
}

impl GsaParams {
    /// Literature-standard configuration.
    pub fn standard() -> Self {
        GsaParams {
            population: 20,
            iterations: 40,
            g0: 100.0,
            alpha: 20.0,
            objective: Objective::Makespan,
        }
    }

    /// A cheaper configuration for sweeps and debug-mode tests.
    pub fn fast() -> Self {
        GsaParams {
            population: 8,
            iterations: 10,
            ..Self::standard()
        }
    }

    /// Iteration-count scaling law: the standard profile up to
    /// [`crate::aco::AcoParams::SCALE_CUTOVER`] cloudlets, a reduced
    /// profile above it (the force loop is O(population² · cloudlets)
    /// per iteration, so both knobs must shrink at 10⁶ scale).
    pub fn for_scale(cloudlets: usize) -> Self {
        if cloudlets > crate::aco::AcoParams::SCALE_CUTOVER {
            GsaParams {
                population: 8,
                iterations: 6,
                ..Self::standard()
            }
        } else {
            Self::standard()
        }
    }

    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.population < 2 {
            return Err("population must be at least 2 (forces need a peer)".into());
        }
        if self.iterations == 0 {
            return Err("iterations must be at least 1".into());
        }
        if self.g0 <= 0.0 || !self.g0.is_finite() {
            return Err(format!("g0 must be positive and finite, got {}", self.g0));
        }
        if self.alpha < 0.0 || !self.alpha.is_finite() {
            return Err(format!(
                "alpha must be non-negative and finite, got {}",
                self.alpha
            ));
        }
        Ok(())
    }
}

impl Default for GsaParams {
    fn default() -> Self {
        Self::standard()
    }
}

/// Normalized masses from raw objective scores (lower score = heavier):
/// `m_i = (worst − f_i)/(worst − best)`, then `M_i = m_i / Σm`. The best
/// agent always carries the largest mass; the worst carries zero (all
/// agents weigh the same when scores are tied).
fn masses(scores: &[f64]) -> Vec<f64> {
    let best = scores.iter().copied().fold(f64::INFINITY, f64::min);
    let worst = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = worst - best;
    let raw: Vec<f64> = if span <= 0.0 || !span.is_finite() {
        vec![1.0; scores.len()]
    } else {
        scores.iter().map(|f| (worst - f) / span).collect()
    };
    let total: f64 = raw.iter().sum();
    raw.iter().map(|m| m / total.max(EPS)).collect()
}

/// `G(t) = G₀·e^(−α·t/T)` — monotone decay over the run.
fn gravity(g0: f64, alpha: f64, iter: usize, iterations: usize) -> f64 {
    g0 * (-alpha * iter as f64 / iterations.max(1) as f64).exp()
}

/// `Kbest` attractor-count law: shrinks linearly from the full
/// population at iteration 0 to a single agent on the last iteration.
fn kbest(population: usize, iter: usize, iterations: usize) -> usize {
    if population == 0 {
        return 0;
    }
    let shrink = (population - 1) * iter / iterations.saturating_sub(1).max(1);
    (population - shrink).max(1)
}

/// Decodes a continuous position vector to VM indices (same wrap rule as
/// the PSO decoder: `rem_euclid` then floor, clamped to the fleet).
fn decode(position: &[f64], v: u32) -> Vec<u32> {
    position
        .iter()
        .map(|x| {
            let wrapped = x.rem_euclid(f64::from(v));
            (wrapped.floor() as u32).min(v - 1)
        })
        .collect()
}

/// The anytime GSA run: agent positions, velocities and scores plus an
/// iteration cursor. One [`GsaRun::step`] is one synchronous swarm
/// update (`population` full-assignment evaluations). Running a fresh
/// `GsaRun` to completion is bit-identical to [`Gsa::schedule`] with the
/// same params and seed.
pub struct GsaRun {
    params: GsaParams,
    rng: StdRng,
    positions: Vec<Vec<f64>>,
    velocities: Vec<Vec<f64>>,
    scores: Vec<f64>,
    best_genes: Vec<u32>,
    best_score: f64,
    v: u32,
    iter: usize,
}

impl GsaRun {
    /// Starts a run from a cold seed: agents uniform over the fleet
    /// (agent 0 optionally warm-started on the `incumbent` plan's cell
    /// midpoints), batch-scored (`population` evaluation units).
    pub fn cold(
        params: GsaParams,
        seed: u64,
        cache: &EvalCache,
        incumbent: Option<&[u32]>,
    ) -> Self {
        params.validate().expect("invalid GsaParams");
        let mut rng = stream(seed, "gsa");
        let dims = cache.cloudlet_count();
        let v = (cache.vm_count() as u32).max(1);
        let n = if dims == 0 { 0 } else { params.population };
        let mut positions: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                (0..dims)
                    .map(|_| rng.gen_range(0.0..f64::from(v)))
                    .collect()
            })
            .collect();
        if let (Some(inc), Some(first)) = (
            incumbent.filter(|inc| !inc.is_empty()),
            positions.first_mut(),
        ) {
            for (i, x) in first.iter_mut().enumerate() {
                *x = f64::from(inc[i % inc.len()].min(v - 1)) + 0.5;
            }
        }
        let genomes: Vec<Vec<u32>> = positions.iter().map(|p| decode(p, v)).collect();
        let scores = evaluate_population(cache, &genomes, params.objective);
        let (best_genes, best_score) = genomes
            .into_iter()
            .zip(scores.iter().copied())
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap_or((Vec::new(), 0.0));
        GsaRun {
            velocities: vec![vec![0.0; dims]; n],
            params,
            rng,
            positions,
            scores,
            best_genes,
            best_score,
            v,
            iter: 0,
        }
    }

    /// Evaluation units charged by swarm initialization.
    pub fn init_units(&self) -> u64 {
        self.positions.len() as u64
    }

    /// Evaluation units one [`GsaRun::step`] charges.
    pub fn step_units(&self) -> u64 {
        self.positions.len() as u64
    }

    /// True once every planned iteration has run (or the workload is
    /// empty).
    pub fn done(&self) -> bool {
        self.iter >= self.params.iterations || self.positions.is_empty()
    }

    /// Best-ever decoded plan.
    pub fn best_genes(&self) -> &[u32] {
        &self.best_genes
    }

    /// Best-ever objective score.
    pub fn best_score(&self) -> f64 {
        self.best_score
    }

    /// One synchronous swarm iteration: masses from current fitness,
    /// forces from the `Kbest` heaviest agents at decayed `G(t)`,
    /// velocity/position update, batch re-score. Returns the best-ever
    /// score (monotone non-increasing across steps).
    pub fn step(&mut self, cache: &EvalCache) -> f64 {
        if self.done() {
            return self.best_score;
        }
        let n = self.positions.len();
        let dims = self.positions[0].len();
        let m = masses(&self.scores);
        let g = gravity(
            self.params.g0,
            self.params.alpha,
            self.iter,
            self.params.iterations,
        );
        let k = kbest(n, self.iter, self.params.iterations);
        // The k heaviest agents, deterministic tie-break by index.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| m[b].total_cmp(&m[a]).then(a.cmp(&b)));
        let attractors = &order[..k];
        // Synchronous update: all forces read the iteration-start
        // snapshot of positions.
        let mut accels: Vec<Vec<f64>> = Vec::with_capacity(n);
        for i in 0..n {
            let mut accel = vec![0.0; dims];
            for &j in attractors {
                if j == i {
                    continue;
                }
                let r: f64 = self.rng.gen();
                let dist = self.positions[i]
                    .iter()
                    .zip(&self.positions[j])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                let coef = r * g * m[j] / (dist + EPS);
                for (a, (pj, pi)) in accel
                    .iter_mut()
                    .zip(self.positions[j].iter().zip(&self.positions[i]))
                {
                    *a += coef * (pj - pi);
                }
            }
            accels.push(accel);
        }
        let rng = &mut self.rng;
        for ((velocity, position), accel) in self
            .velocities
            .iter_mut()
            .zip(self.positions.iter_mut())
            .zip(&accels)
        {
            let inertia: f64 = rng.gen();
            for ((v, p), a) in velocity.iter_mut().zip(position.iter_mut()).zip(accel) {
                *v = inertia * *v + a;
                *p += *v;
            }
        }
        let genomes: Vec<Vec<u32>> = self.positions.iter().map(|p| decode(p, self.v)).collect();
        self.scores = evaluate_population(cache, &genomes, self.params.objective);
        for (genome, score) in genomes.into_iter().zip(self.scores.iter().copied()) {
            if score < self.best_score {
                self.best_genes = genome;
                self.best_score = score;
            }
        }
        self.iter += 1;
        self.best_score
    }

    /// Runs the remaining iterations and returns the best plan.
    fn finish(mut self, cache: &EvalCache) -> Assignment {
        while !self.done() {
            self.step(cache);
        }
        Assignment::new(self.best_genes.iter().map(|g| VmId(*g)).collect())
    }
}

/// The gravitational search scheduler (one-shot façade over [`GsaRun`]).
pub struct Gsa {
    params: GsaParams,
    seed: u64,
    rounds: u64,
}

impl Gsa {
    /// Creates a scheduler with the given parameters and seed.
    pub fn new(params: GsaParams, seed: u64) -> Self {
        params.validate().expect("invalid GsaParams");
        Gsa {
            params,
            seed,
            rounds: 0,
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &GsaParams {
        &self.params
    }

    /// Per-round run seed: successive `schedule` calls on one instance
    /// draw fresh streams, like the other stochastic kinds.
    fn round_seed(&mut self) -> u64 {
        let round = self.rounds;
        self.rounds += 1;
        self.seed
            .wrapping_add(round.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

impl Scheduler for Gsa {
    fn name(&self) -> &'static str {
        "gsa"
    }

    fn schedule(&mut self, problem: &SchedulingProblem) -> Assignment {
        self.schedule_with_cache(problem, &EvalCache::new(problem))
    }

    fn schedule_with_cache(
        &mut self,
        problem: &SchedulingProblem,
        cache: &EvalCache,
    ) -> Assignment {
        let _ = problem;
        let seed = self.round_seed();
        GsaRun::cold(self.params.clone(), seed, cache, None).finish(cache)
    }

    fn schedule_warm(
        &mut self,
        problem: &SchedulingProblem,
        cache: &EvalCache,
        warm: &mut crate::warm::WarmState,
    ) -> Assignment {
        let _ = problem;
        let seed = self.round_seed();
        let run = GsaRun::cold(self.params.clone(), seed, cache, warm.incumbent.as_deref());
        let plan = run.finish(cache);
        warm.note_plan(&plan);
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcloud::characteristics::CostModel;
    use simcloud::cloudlet::CloudletSpec;
    use simcloud::vm::VmSpec;

    fn hetero_problem(vms: usize, cloudlets: usize) -> SchedulingProblem {
        let vm_specs: Vec<VmSpec> = (0..vms)
            .map(|i| VmSpec::new(500.0 + 700.0 * (i % 4) as f64, 5_000.0, 512.0, 500.0, 1))
            .collect();
        let cls: Vec<CloudletSpec> = (0..cloudlets)
            .map(|i| CloudletSpec::new(1_200.0 + 800.0 * (i % 7) as f64, 300.0, 300.0, 1))
            .collect();
        SchedulingProblem::single_datacenter(vm_specs, cls, CostModel::default())
    }

    #[test]
    fn produces_valid_assignments() {
        let p = hetero_problem(6, 30);
        let a = Gsa::new(GsaParams::fast(), 1).schedule(&p);
        assert!(a.validate(&p).is_ok());
        assert_eq!(a.len(), 30);
    }

    #[test]
    fn deterministic_per_seed_and_rounds_advance() {
        let p = hetero_problem(5, 20);
        let a = Gsa::new(GsaParams::fast(), 9).schedule(&p);
        let b = Gsa::new(GsaParams::fast(), 9).schedule(&p);
        assert_eq!(a, b);
        let mut s = Gsa::new(GsaParams::fast(), 9);
        let first = s.schedule(&p);
        let second = s.schedule(&p);
        assert_eq!(first, a);
        assert_ne!(first, second);
    }

    #[test]
    fn masses_rank_by_fitness() {
        // The distinct GSA rule: best agent heaviest, worst weightless.
        let m = masses(&[1.0, 2.0, 3.0]);
        assert!((m[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((m[1] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(m[2], 0.0);
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Tied scores weigh the same.
        let tied = masses(&[5.0, 5.0]);
        assert_eq!(tied[0], tied[1]);
    }

    #[test]
    fn gravity_decays_monotonically() {
        let mut last = f64::INFINITY;
        for t in 0..10 {
            let g = gravity(100.0, 20.0, t, 10);
            assert!(g > 0.0 && g < last);
            last = g;
        }
        assert_eq!(gravity(100.0, 20.0, 0, 10), 100.0);
    }

    #[test]
    fn kbest_shrinks_linearly_to_one() {
        assert_eq!(kbest(20, 0, 40), 20);
        assert_eq!(kbest(20, 39, 40), 1);
        let mut last = usize::MAX;
        for t in 0..40 {
            let k = kbest(20, t, 40);
            assert!(k >= 1 && k <= last);
            last = k;
        }
    }

    #[test]
    fn lighter_agents_fall_toward_heavier_ones() {
        // Two agents on a line: the worse (massless) one must accelerate
        // toward the better one; the better one feels no pull from a
        // massless peer. Drive one full step and check the motion.
        let p = hetero_problem(4, 6);
        let cache = EvalCache::new(&p);
        let mut run = GsaRun::cold(
            GsaParams {
                population: 2,
                iterations: 1,
                ..GsaParams::standard()
            },
            5,
            &cache,
            None,
        );
        run.positions[0] = vec![0.5; 6];
        run.positions[1] = vec![3.5; 6];
        run.scores = vec![1.0, 2.0]; // agent 0 fitter → mass 1, agent 1 → mass 0
        let before = run.positions.clone();
        run.step(&cache);
        // Massless agent 1 moved toward agent 0 (every coordinate down).
        assert!(run.positions[1]
            .iter()
            .zip(&before[1])
            .all(|(now, was)| now < was));
        // Agent 0 felt no force from the massless peer.
        assert_eq!(run.positions[0], before[0]);
    }

    #[test]
    fn stepped_best_is_monotone_and_matches_one_shot() {
        let p = hetero_problem(6, 24);
        let cache = EvalCache::new(&p);
        let mut run = GsaRun::cold(GsaParams::fast(), 3, &cache, None);
        let mut last = f64::INFINITY;
        while !run.done() {
            let best = run.step(&cache);
            assert!(best <= last + 1e-12, "best-ever cannot regress");
            last = best;
        }
        let stepped = Assignment::new(run.best_genes().iter().map(|g| VmId(*g)).collect());
        let one_shot = Gsa::new(GsaParams::fast(), 3).schedule(&p);
        assert_eq!(stepped, one_shot);
    }

    #[test]
    fn warm_incumbent_seeds_agent_zero() {
        let p = hetero_problem(4, 8);
        let cache = EvalCache::new(&p);
        let inc: Vec<u32> = vec![2; 8];
        let run = GsaRun::cold(GsaParams::fast(), 7, &cache, Some(&inc));
        assert!(run.positions[0].iter().all(|x| (*x - 2.5).abs() < 1e-12));
    }

    #[test]
    fn params_validation() {
        assert!(GsaParams {
            population: 1,
            ..GsaParams::standard()
        }
        .validate()
        .is_err());
        assert!(GsaParams {
            g0: 0.0,
            ..GsaParams::standard()
        }
        .validate()
        .is_err());
        assert!(GsaParams {
            alpha: -1.0,
            ..GsaParams::standard()
        }
        .validate()
        .is_err());
        assert!(GsaParams::standard().validate().is_ok());
    }

    #[test]
    fn for_scale_reduces_effort_above_cutover() {
        assert_eq!(GsaParams::for_scale(10_000), GsaParams::standard());
        let big = GsaParams::for_scale(1_000_000);
        assert!(big.population < GsaParams::standard().population);
        assert!(big.iterations < GsaParams::standard().iterations);
        assert!(big.validate().is_ok());
    }

    #[test]
    fn empty_workload_is_empty_plan() {
        let p = SchedulingProblem::single_datacenter(
            vec![VmSpec::homogeneous_default()],
            vec![],
            CostModel::free(),
        );
        assert!(Gsa::new(GsaParams::fast(), 1).schedule(&p).is_empty());
    }
}
