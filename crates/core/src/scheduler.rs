//! The `Scheduler` trait and the algorithm registry.

use crate::aco::{AcoParams, AntColony};
use crate::assignment::Assignment;
use crate::baselines::{BestFit, LeastConnection, ShortestJobFirst, WeightedRoundRobin};
use crate::cuckoo_sos::{CsosParams, CuckooSos};
use crate::eval::EvalCache;
use crate::ga::{GaParams, Genetic};
use crate::gsa::{Gsa, GsaParams};
use crate::hbo::{HboParams, HoneyBee};
use crate::hybrid::Hybrid;
use crate::minmax::{MaxMin, MinMin};
use crate::objective::Objective;
use crate::portfolio::Portfolio;
use crate::problem::SchedulingProblem;
use crate::pso::{ParticleSwarm, PsoParams};
use crate::racing::{RaceParams, RacingScheduler};
use crate::rbs::{RandomBiasedSampling, RbsParams};
use crate::round_robin::RoundRobin;
use crate::warm::WarmState;

/// Provenance exported by meta-schedulers (portfolio, racer): which
/// member's plan was returned and what each member cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaProvenance {
    /// Name of the member whose plan won.
    pub winner: String,
    /// Per-member budget spent, in deterministic evaluation units
    /// (full-assignment evaluations; 1 for one-shot heuristics).
    pub spent: Vec<(String, u64)>,
    /// Total units spent across all members.
    pub total_units: u64,
}

/// A cloudlet→VM scheduling algorithm.
///
/// Implementations are deterministic for a fixed construction seed; calling
/// [`Scheduler::schedule`] twice on the same problem may advance internal
/// RNG state (matching how the paper's schedulers run round after round).
pub trait Scheduler: Send {
    /// Algorithm name for reports.
    fn name(&self) -> &'static str;

    /// Computes a complete assignment for `problem`.
    fn schedule(&mut self, problem: &SchedulingProblem) -> Assignment;

    /// Computes a complete assignment reusing a prebuilt [`EvalCache`].
    ///
    /// `cache` must have been built from this exact `problem`. The sweep
    /// pipeline builds one cache per scenario point and shares it across
    /// every algorithm and repetition at that point; the assignment must be
    /// byte-identical to what [`Scheduler::schedule`] produces, because
    /// `EvalCache` construction is deterministic. The default ignores the
    /// cache and calls `schedule`, so external implementations keep working
    /// unchanged (they just rebuild their own state as before).
    fn schedule_with_cache(
        &mut self,
        problem: &SchedulingProblem,
        cache: &EvalCache,
    ) -> Assignment {
        let _ = cache;
        self.schedule(problem)
    }

    /// Computes an assignment for one wave of the streaming broker,
    /// reading and updating the [`WarmState`] carried between waves.
    ///
    /// The default delegates to [`Scheduler::schedule_with_cache`] and
    /// records the plan as the next wave's incumbent — correct for every
    /// kind whose cross-round state already lives inside the instance
    /// (round-robin's cursor, least-connection's load vector). ACO, GA
    /// and PSO override this to consume the warm state (pheromone
    /// matrix, incumbent-seeded population). Warm plans are *not*
    /// claimed equal to cold plans; each mode is separately
    /// deterministic per seed at any thread count.
    fn schedule_warm(
        &mut self,
        problem: &SchedulingProblem,
        cache: &EvalCache,
        warm: &mut WarmState,
    ) -> Assignment {
        let plan = self.schedule_with_cache(problem, cache);
        warm.note_plan(&plan);
        plan
    }

    /// Provenance of the most recent scheduling decision, for
    /// meta-schedulers that pick among members (portfolio, racer).
    /// Single-algorithm schedulers keep the `None` default.
    fn last_meta(&self) -> Option<MetaProvenance> {
        None
    }
}

/// Every algorithm in the study, constructible by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmKind {
    /// CloudSim's default cyclic binder — the paper's Base Test.
    BaseTest,
    /// Ant Colony Optimization (Section IV).
    AntColony,
    /// Honey Bee Optimization (Section III).
    HoneyBee,
    /// Random Biased Sampling (Section V).
    Rbs,
    /// Min-Min greedy baseline (related work, [4]).
    MinMin,
    /// Max-Min greedy baseline (related work, [4]).
    MaxMin,
    /// Discrete Particle Swarm Optimization (related work, [18]/[23]).
    Pso,
    /// Genetic Algorithm (related work, [6]/[31]).
    Ga,
    /// The paper's future-work adaptive hybrid, fixed to an objective.
    Hybrid(Objective),
    /// Least-connection balancer (production baseline, streaming PR).
    LeastConnection,
    /// Weighted round-robin balancer (production baseline, streaming PR).
    WeightedRoundRobin,
    /// Shortest-job-first greedy baseline (related-work survey staple).
    Sjf,
    /// Best-fit greedy baseline: min estimated finish per cloudlet.
    BestFit,
    /// Discrete cuckoo search / symbiotic organisms search hybrid
    /// (related work, arXiv 2311.15358).
    CuckooSos,
    /// Discrete gravitational search (related work, arXiv 2311.07004).
    Gsa,
    /// Run-everyone portfolio over the paper set, fixed to an objective.
    Portfolio(Objective),
    /// Anytime racing meta-scheduler, fixed to an objective.
    Racing(Objective),
}

impl AlgorithmKind {
    /// The four algorithms the paper's figures compare.
    pub const PAPER_SET: [AlgorithmKind; 4] = [
        AlgorithmKind::AntColony,
        AlgorithmKind::BaseTest,
        AlgorithmKind::HoneyBee,
        AlgorithmKind::Rbs,
    ];

    /// Display label (matches the paper's figure legends).
    pub fn label(self) -> &'static str {
        match self {
            AlgorithmKind::BaseTest => "Base Test",
            AlgorithmKind::AntColony => "AntColony",
            AlgorithmKind::HoneyBee => "HoneyBee",
            AlgorithmKind::Rbs => "RBS",
            AlgorithmKind::MinMin => "MinMin",
            AlgorithmKind::MaxMin => "MaxMin",
            AlgorithmKind::Pso => "PSO",
            AlgorithmKind::Ga => "GA",
            AlgorithmKind::Hybrid(_) => "Hybrid",
            AlgorithmKind::LeastConnection => "LeastConn",
            AlgorithmKind::WeightedRoundRobin => "WeightedRR",
            AlgorithmKind::Sjf => "SJF",
            AlgorithmKind::BestFit => "BestFit",
            AlgorithmKind::CuckooSos => "CuckooSOS",
            AlgorithmKind::Gsa => "GSA",
            AlgorithmKind::Portfolio(_) => "Portfolio",
            AlgorithmKind::Racing(_) => "Racing",
        }
    }

    /// Instantiates the scheduler with default parameters and `seed`.
    pub fn build(self, seed: u64) -> Box<dyn Scheduler> {
        match self {
            AlgorithmKind::BaseTest => Box::new(RoundRobin::new()),
            AlgorithmKind::AntColony => Box::new(AntColony::new(AcoParams::default(), seed)),
            AlgorithmKind::HoneyBee => Box::new(HoneyBee::new(HboParams::default(), seed)),
            AlgorithmKind::Rbs => Box::new(RandomBiasedSampling::new(RbsParams::default(), seed)),
            AlgorithmKind::MinMin => Box::new(MinMin::new()),
            AlgorithmKind::MaxMin => Box::new(MaxMin::new()),
            AlgorithmKind::Pso => Box::new(ParticleSwarm::new(PsoParams::standard(), seed)),
            AlgorithmKind::Ga => Box::new(Genetic::new(GaParams::standard(), seed)),
            AlgorithmKind::Hybrid(objective) => Box::new(Hybrid::new(objective, seed)),
            AlgorithmKind::LeastConnection => Box::new(LeastConnection::new()),
            AlgorithmKind::WeightedRoundRobin => Box::new(WeightedRoundRobin::new()),
            AlgorithmKind::Sjf => Box::new(ShortestJobFirst::new()),
            AlgorithmKind::BestFit => Box::new(BestFit::new()),
            AlgorithmKind::CuckooSos => Box::new(CuckooSos::new(CsosParams::standard(), seed)),
            AlgorithmKind::Gsa => Box::new(Gsa::new(GsaParams::standard(), seed)),
            AlgorithmKind::Portfolio(objective) => Box::new(Portfolio::paper_set(objective, seed)),
            AlgorithmKind::Racing(objective) => {
                Box::new(RacingScheduler::new(RaceParams::new(objective), seed))
            }
        }
    }
}

impl std::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcloud::characteristics::CostModel;
    use simcloud::cloudlet::CloudletSpec;
    use simcloud::vm::VmSpec;

    fn small_problem() -> SchedulingProblem {
        SchedulingProblem::single_datacenter(
            vec![VmSpec::homogeneous_default(); 3],
            vec![CloudletSpec::homogeneous_default(); 10],
            CostModel::default(),
        )
    }

    #[test]
    fn every_kind_builds_and_schedules() {
        let p = small_problem();
        let kinds = [
            AlgorithmKind::BaseTest,
            AlgorithmKind::AntColony,
            AlgorithmKind::HoneyBee,
            AlgorithmKind::Rbs,
            AlgorithmKind::MinMin,
            AlgorithmKind::MaxMin,
            AlgorithmKind::Pso,
            AlgorithmKind::Ga,
            AlgorithmKind::Hybrid(Objective::Makespan),
            AlgorithmKind::LeastConnection,
            AlgorithmKind::WeightedRoundRobin,
            AlgorithmKind::Sjf,
            AlgorithmKind::BestFit,
            AlgorithmKind::CuckooSos,
            AlgorithmKind::Gsa,
            AlgorithmKind::Portfolio(Objective::Makespan),
            AlgorithmKind::Racing(Objective::Makespan),
        ];
        for kind in kinds {
            let mut s = kind.build(42);
            let a = s.schedule(&p);
            a.validate(&p)
                .unwrap_or_else(|e| panic!("{} produced invalid assignment: {e}", s.name()));
        }
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let p = small_problem();
        for kind in AlgorithmKind::PAPER_SET {
            let a = kind.build(7).schedule(&p);
            let b = kind.build(7).schedule(&p);
            assert_eq!(a, b, "{kind} must be deterministic for a fixed seed");
        }
    }

    #[test]
    fn shared_cache_matches_private_cache_for_every_kind() {
        let p = small_problem();
        let cache = EvalCache::new(&p);
        let kinds = [
            AlgorithmKind::BaseTest,
            AlgorithmKind::AntColony,
            AlgorithmKind::HoneyBee,
            AlgorithmKind::Rbs,
            AlgorithmKind::MinMin,
            AlgorithmKind::MaxMin,
            AlgorithmKind::Pso,
            AlgorithmKind::Ga,
            AlgorithmKind::Hybrid(Objective::Makespan),
            AlgorithmKind::Hybrid(Objective::Cost),
            AlgorithmKind::Hybrid(Objective::Balance),
            AlgorithmKind::LeastConnection,
            AlgorithmKind::WeightedRoundRobin,
            AlgorithmKind::Sjf,
            AlgorithmKind::BestFit,
            AlgorithmKind::CuckooSos,
            AlgorithmKind::Gsa,
            AlgorithmKind::Portfolio(Objective::Makespan),
            AlgorithmKind::Racing(Objective::Makespan),
        ];
        for kind in kinds {
            for seed in [7u64, 42, 1_234] {
                let private = kind.build(seed).schedule(&p);
                let shared = kind.build(seed).schedule_with_cache(&p, &cache);
                assert_eq!(
                    private, shared,
                    "{kind} seed {seed}: shared-cache path must be byte-identical"
                );
            }
        }
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(AlgorithmKind::BaseTest.label(), "Base Test");
        assert_eq!(AlgorithmKind::AntColony.to_string(), "AntColony");
        assert_eq!(AlgorithmKind::PAPER_SET.len(), 4);
    }
}
