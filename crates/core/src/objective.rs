//! Scheduling objectives.
//!
//! The paper's central observation is that no single bio-inspired scheduler
//! wins on every axis: ACO wins when *computation power* is the objective,
//! HBO when *cost* is. [`Objective`] names the axes, and
//! [`score_assignment`] evaluates an assignment against one — used by the
//! adaptive hybrid scheduler (the paper's future-work proposal) and by
//! tests that verify each algorithm actually optimizes its own objective.

use crate::assignment::Assignment;
use crate::eval::EvalCache;
use crate::problem::SchedulingProblem;

/// What a scheduler should optimize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Objective {
    /// Minimize total completion time (the paper's "computation power").
    #[default]
    Makespan,
    /// Minimize processing cost (Section VI-C-4).
    Cost,
    /// Minimize the degree of time imbalance (Eq. 13).
    Balance,
}

impl Objective {
    /// All objectives, for exhaustive sweeps.
    pub const ALL: [Objective; 3] = [Objective::Makespan, Objective::Cost, Objective::Balance];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Objective::Makespan => "makespan",
            Objective::Cost => "cost",
            Objective::Balance => "balance",
        }
    }
}

/// Predicted score of an assignment under an objective — *lower is better*.
///
/// These are analytic estimates from Eq. 6 (no simulation), suitable for
/// comparing candidate assignments quickly:
///
/// * `Makespan` — the largest per-VM estimated busy time.
/// * `Cost` — total Eq. 1-style processing cost using estimated CPU time.
/// * `Balance` — the Eq. 13 imbalance over per-cloudlet estimated times.
///
/// This is the one-shot convenience wrapper over the evaluation kernel: it
/// builds a factor-only [`EvalCache`] per call. Callers that score many
/// assignments against the same problem (every population-based scheduler)
/// should build the cache once and use [`EvalCache::score`] /
/// [`crate::eval::evaluate_population`] directly — the results are
/// bit-identical.
pub fn score_assignment(
    problem: &SchedulingProblem,
    assignment: &Assignment,
    objective: Objective,
) -> f64 {
    EvalCache::lite(problem).score(assignment.as_slice(), objective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcloud::characteristics::CostModel;
    use simcloud::cloudlet::CloudletSpec;
    use simcloud::ids::VmId;
    use simcloud::vm::VmSpec;

    fn problem() -> SchedulingProblem {
        SchedulingProblem::single_datacenter(
            vec![
                VmSpec::new(1_000.0, 100.0, 100.0, 500.0, 1),
                VmSpec::new(2_000.0, 100.0, 100.0, 500.0, 1),
            ],
            vec![CloudletSpec::new(1_000.0, 0.0, 0.0, 1); 4],
            CostModel::new(0.01, 0.001, 0.01, 3.0),
        )
    }

    #[test]
    fn makespan_score_prefers_balanced_fast_usage() {
        let p = problem();
        // All four on the slow VM: 4 x 1000ms = 4000ms makespan.
        let all_slow = Assignment::new(vec![VmId(0); 4]);
        // Spread 2/2: slow does 2000ms, fast does 1000ms.
        let spread = Assignment::new(vec![VmId(0), VmId(1), VmId(0), VmId(1)]);
        let s_slow = score_assignment(&p, &all_slow, Objective::Makespan);
        let s_spread = score_assignment(&p, &spread, Objective::Makespan);
        assert!(s_spread < s_slow);
        assert!((s_spread - 2_000.0).abs() < 1e-9);
    }

    #[test]
    fn balance_score_zero_for_identical_times() {
        let p = problem();
        // All on the same VM -> identical estimated per-cloudlet times.
        let a = Assignment::new(vec![VmId(1); 4]);
        assert_eq!(score_assignment(&p, &a, Objective::Balance), 0.0);
        // Mixed VMs -> imbalance > 0 (times 1000 vs 500).
        let b = Assignment::new(vec![VmId(0), VmId(1), VmId(0), VmId(1)]);
        assert!(score_assignment(&p, &b, Objective::Balance) > 0.0);
    }

    #[test]
    fn cost_score_sums_cloudlet_costs() {
        let p = problem();
        let a = Assignment::new(vec![VmId(0); 4]);
        let s = score_assignment(&p, &a, Objective::Cost);
        assert!(s > 0.0);
        // Doubling the workload doubles the cost estimate.
        let p2 = SchedulingProblem::single_datacenter(
            p.vms.clone(),
            vec![CloudletSpec::new(1_000.0, 0.0, 0.0, 1); 8],
            CostModel::new(0.01, 0.001, 0.01, 3.0),
        );
        let a2 = Assignment::new(vec![VmId(0); 8]);
        let s2 = score_assignment(&p2, &a2, Objective::Cost);
        assert!((s2 - 2.0 * s).abs() < 1e-9);
    }

    #[test]
    fn labels() {
        assert_eq!(Objective::Makespan.label(), "makespan");
        assert_eq!(Objective::ALL.len(), 3);
    }
}
