//! # biosched-core — bio-inspired cloud task schedulers
//!
//! Faithful Rust implementations of the algorithms studied in
//! *"Performance Analysis of Bio-Inspired Scheduling Algorithms for Cloud
//! Environments"* (Al Buhussain, De Grande, Boukerche; IPDPS-W 2016):
//!
//! * [`aco::AntColony`] — Ant Colony Optimization (Section IV, Table II),
//! * [`hbo::HoneyBee`] — Honey Bee Optimization (Section III, Eqs. 1–4),
//! * [`rbs::RandomBiasedSampling`] — Random Biased Sampling (Section V),
//! * [`round_robin::RoundRobin`] — the Base Test (CloudSim's cyclic
//!   binder, Section VI-A),
//!
//! plus two related-work baselines ([`minmax::MinMin`] /
//! [`minmax::MaxMin`]) and the paper's future-work proposal, an
//! objective-driven adaptive [`hybrid::Hybrid`].
//!
//! All schedulers are pure: they map a [`problem::SchedulingProblem`]
//! snapshot to an [`assignment::Assignment`] (a cloudlet→VM vector) that
//! the `simcloud` broker plays back. Every stochastic scheduler takes a
//! seed and is fully deterministic for it.
//!
//! ```
//! use biosched_core::prelude::*;
//! use simcloud::prelude::*;
//!
//! let problem = SchedulingProblem::single_datacenter(
//!     vec![VmSpec::homogeneous_default(); 4],
//!     vec![CloudletSpec::homogeneous_default(); 16],
//!     CostModel::default(),
//! );
//! let mut scheduler = AlgorithmKind::AntColony.build(42);
//! let assignment = scheduler.schedule(&problem);
//! assert!(assignment.validate(&problem).is_ok());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aco;
pub mod assignment;
pub mod baselines;
pub mod cuckoo_sos;
pub mod dnc;
pub mod eval;
pub mod ga;
pub mod gsa;
pub mod hbo;
pub mod hybrid;
pub mod minmax;
pub mod objective;
pub mod portfolio;
pub mod problem;
pub mod pso;
pub mod racing;
pub mod rbs;
pub mod round_robin;
pub mod scheduler;
pub mod tuning;
pub mod warm;
pub mod workflow;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::aco::{AcoParams, AntColony};
    pub use crate::assignment::Assignment;
    pub use crate::baselines::{LeastConnection, WeightedRoundRobin};
    pub use crate::cuckoo_sos::{CsosParams, CuckooSos};
    pub use crate::dnc::{DivideAndConquer, ShardSpec};
    pub use crate::eval::{evaluate_population, EvalCache, LoadTracker};
    pub use crate::ga::{GaParams, Genetic};
    pub use crate::gsa::{Gsa, GsaParams};
    pub use crate::hbo::{HboParams, HoneyBee};
    pub use crate::hybrid::Hybrid;
    pub use crate::minmax::{MaxMin, MinMin};
    pub use crate::objective::{score_assignment, Objective};
    pub use crate::portfolio::Portfolio;
    pub use crate::problem::{DatacenterView, SchedulingProblem};
    pub use crate::pso::{ParticleSwarm, PsoParams};
    pub use crate::racing::{RaceBook, RaceParams, RacingScheduler};
    pub use crate::rbs::{RandomBiasedSampling, RbsParams};
    pub use crate::round_robin::RoundRobin;
    pub use crate::scheduler::{AlgorithmKind, Scheduler};
    pub use crate::tuning::SchedTuning;
    pub use crate::warm::WarmState;
    pub use crate::workflow::{heft, heft_estimate_ms, upward_ranks};
}
