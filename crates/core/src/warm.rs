//! Warm state carried between waves by the streaming broker.
//!
//! A one-shot scheduler pays from-scratch construction on every call; a
//! long-running broker replanning at wave boundaries should not. This
//! module defines the per-scheduler-family warm state the stream driver
//! threads between waves, and the [`crate::scheduler::Scheduler`] trait's
//! `schedule_warm` entry point consumes it:
//!
//! * **ACO** keeps the pheromone matrix of the previous wave's last
//!   colony — aged by one evaporation, its slot-position preferences
//!   ("which VMs are good") seed every colony of the next wave.
//! * **GA / PSO** seed one chromosome / particle from the surviving
//!   incumbent plan, so the population starts at the previous optimum
//!   instead of uniform noise.
//! * **Greedy / baseline kinds** persist their own cursor or load vector
//!   inside the scheduler instance (e.g. [`crate::round_robin::RoundRobin`]'s
//!   cursor, [`crate::baselines::LeastConnection`]'s load), so for them
//!   warm state is simply "keep the instance alive"; the default
//!   `schedule_warm` records the incumbent and delegates.
//!
//! The warm contract: the *fleet* must be unchanged between waves (the
//! incumbent's VM indices and the pheromone columns refer to it); the
//! cloudlet side changes freely. Warm plans are not claimed equal to
//! cold plans — each mode is separately deterministic per seed at any
//! thread count.

use crate::aco::PheromoneMatrix;
use crate::assignment::Assignment;

/// Warm state one scheduler instance carries across wave boundaries.
#[derive(Default)]
pub struct WarmState {
    /// ACO pheromone trails captured from the previous wave.
    pub pheromone: Option<PheromoneMatrix>,
    /// The previous wave's plan as raw VM indices; GA/PSO map position
    /// `i` of the next wave onto `incumbent[i % len]` (wraparound), so a
    /// differently-sized wave still inherits the incumbent's VM mix.
    pub incumbent: Option<Vec<u32>>,
}

impl WarmState {
    /// Empty warm state — the first wave runs cold.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `plan` as the incumbent for the next wave.
    pub fn note_plan(&mut self, plan: &Assignment) {
        self.incumbent = Some(plan.as_slice().iter().map(|vm| vm.0).collect());
    }

    /// True when no wave has been recorded yet.
    pub fn is_cold(&self) -> bool {
        self.pheromone.is_none() && self.incumbent.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcloud::ids::VmId;

    #[test]
    fn note_plan_records_raw_indices() {
        let mut warm = WarmState::new();
        assert!(warm.is_cold());
        warm.note_plan(&Assignment::new(vec![VmId(3), VmId(0), VmId(7)]));
        assert!(!warm.is_cold());
        assert_eq!(warm.incumbent.as_deref(), Some(&[3u32, 0, 7][..]));
    }
}
