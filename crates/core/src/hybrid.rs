//! The adaptive hybrid scheduler — the paper's future-work proposal.
//!
//! Section VII: *"we will propose a hybrid scheduling algorithm in which
//! the conditions of the system and environment against pre-selected
//! requirements function as key elements to select a specific behavior of
//! the scheduling algorithm … a modular solution"*. This module implements
//! that design: given an [`Objective`], the hybrid inspects the problem and
//! delegates to the algorithm the study found best for it:
//!
//! * homogeneous problem, any objective → Base Test (provably optimal and
//!   the cheapest decision, per the homogeneous scenario's conclusion);
//! * `Makespan` → ACO (Fig. 6a's winner);
//! * `Cost` → HBO (Fig. 6d's winner);
//! * `Balance` → a spread-equalizing greedy: each cloudlet goes to the VM
//!   whose Eq. 6 time lies closest to the running median, tie-broken by
//!   load, which directly minimizes the Eq. 13 numerator.

use simcloud::ids::VmId;

use crate::aco::{AcoParams, AntColony};
use crate::assignment::Assignment;
use crate::eval::{EvalCache, LoadTracker};
use crate::hbo::{HboParams, HoneyBee};
use crate::objective::Objective;
use crate::problem::SchedulingProblem;
use crate::round_robin::RoundRobin;
use crate::scheduler::Scheduler;

/// Objective-driven adaptive scheduler.
pub struct Hybrid {
    objective: Objective,
    aco: AntColony,
    hbo: HoneyBee,
    base: RoundRobin,
}

impl Hybrid {
    /// Creates a hybrid optimizing `objective`.
    pub fn new(objective: Objective, seed: u64) -> Self {
        Hybrid {
            objective,
            aco: AntColony::new(AcoParams::paper(), seed),
            hbo: HoneyBee::new(HboParams::paper(), seed),
            base: RoundRobin::new(),
        }
    }

    /// The objective this instance optimizes.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// Balance-first greedy: place each cloudlet on the VM whose expected
    /// execution time is closest to a global target (the median expected
    /// time over a sample of (cloudlet, VM) pairs), tie-breaking toward
    /// the least-loaded of the qualifying VMs.
    fn schedule_balance(cache: &EvalCache) -> Assignment {
        let v = cache.vm_count();
        let c = cache.cloudlet_count();

        // Target: median Eq. 6 time over a bounded sample.
        let mut sample = Vec::new();
        let cl_step = (c / 64).max(1);
        let vm_step = (v / 64).max(1);
        for cl in (0..c).step_by(cl_step) {
            for vm in (0..v).step_by(vm_step) {
                sample.push(cache.exec_ms(cl, vm));
            }
        }
        if sample.is_empty() {
            return Assignment::new(Vec::new());
        }
        sample.sort_by(f64::total_cmp);
        let target = sample[sample.len() / 2];

        let mut tracker = LoadTracker::new(cache);
        let mut map = Vec::with_capacity(c);
        for cl in 0..c {
            let mut best_vm = 0usize;
            let mut best_key = (f64::INFINITY, f64::INFINITY);
            for (vm, vm_load) in tracker.loads().iter().enumerate() {
                let d = cache.exec_ms(cl, vm);
                let key = ((d - target).abs(), *vm_load);
                if key < best_key {
                    best_key = key;
                    best_vm = vm;
                }
            }
            tracker.assign(cache, cl, best_vm);
            map.push(VmId::from_index(best_vm));
        }
        Assignment::new(map)
    }
}

impl Scheduler for Hybrid {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn schedule(&mut self, problem: &SchedulingProblem) -> Assignment {
        // Condition check: homogeneous setups need no advanced decision
        // making (Section VI-D-1's conclusion) — cyclic binding is optimal
        // for every objective there.
        if problem.is_homogeneous() && problem.datacenters.len() == 1 {
            return self.base.schedule(problem);
        }
        match self.objective {
            Objective::Makespan => self.aco.schedule(problem),
            Objective::Cost => self.hbo.schedule(problem),
            Objective::Balance => Self::schedule_balance(&EvalCache::new(problem)),
        }
    }

    fn schedule_with_cache(
        &mut self,
        problem: &SchedulingProblem,
        cache: &EvalCache,
    ) -> Assignment {
        if problem.is_homogeneous() && problem.datacenters.len() == 1 {
            return self.base.schedule(problem);
        }
        match self.objective {
            Objective::Makespan => self.aco.schedule_with_cache(problem, cache),
            Objective::Cost => self.hbo.schedule_with_cache(problem, cache),
            Objective::Balance => Self::schedule_balance(cache),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::score_assignment;
    use simcloud::characteristics::CostModel;
    use simcloud::cloudlet::CloudletSpec;
    use simcloud::vm::VmSpec;

    fn hetero_problem() -> SchedulingProblem {
        let vms: Vec<VmSpec> = (0..10)
            .map(|i| VmSpec::new(500.0 + 350.0 * i as f64, 5_000.0, 512.0, 500.0, 1))
            .collect();
        let cloudlets: Vec<CloudletSpec> = (0..60)
            .map(|i| CloudletSpec::new(1_000.0 + 300.0 * i as f64, 300.0, 300.0, 1))
            .collect();
        SchedulingProblem::single_datacenter(vms, cloudlets, CostModel::default())
    }

    #[test]
    fn homogeneous_fast_path_is_cyclic() {
        let p = SchedulingProblem::single_datacenter(
            vec![VmSpec::homogeneous_default(); 4],
            vec![CloudletSpec::homogeneous_default(); 8],
            CostModel::default(),
        );
        for obj in Objective::ALL {
            let a = Hybrid::new(obj, 1).schedule(&p);
            let rr = RoundRobin::new().schedule(&p);
            assert_eq!(a, rr, "objective {obj:?} should take the fast path");
        }
    }

    #[test]
    fn balance_mode_minimizes_spread_vs_others() {
        let p = hetero_problem();
        let balance = Hybrid::new(Objective::Balance, 2).schedule(&p);
        let makespan = Hybrid::new(Objective::Makespan, 2).schedule(&p);
        let b_spread = score_assignment(&p, &balance, Objective::Balance);
        let m_spread = score_assignment(&p, &makespan, Objective::Balance);
        assert!(
            b_spread <= m_spread,
            "balance hybrid {b_spread} should not exceed makespan hybrid {m_spread}"
        );
    }

    #[test]
    fn makespan_mode_delegates_to_aco() {
        let p = hetero_problem();
        let hybrid = Hybrid::new(Objective::Makespan, 3).schedule(&p);
        let aco = AntColony::new(AcoParams::paper(), 3).schedule(&p);
        assert_eq!(hybrid, aco);
    }

    #[test]
    fn cost_mode_delegates_to_hbo() {
        let p = hetero_problem();
        let hybrid = Hybrid::new(Objective::Cost, 4).schedule(&p);
        let hbo = HoneyBee::new(HboParams::paper(), 4).schedule(&p);
        assert_eq!(hybrid, hbo);
    }

    #[test]
    fn all_objectives_produce_valid_assignments() {
        let p = hetero_problem();
        for obj in Objective::ALL {
            let a = Hybrid::new(obj, 5).schedule(&p);
            assert!(a.validate(&p).is_ok(), "objective {obj:?}");
            assert_eq!(Hybrid::new(obj, 5).objective(), obj);
        }
    }
}
