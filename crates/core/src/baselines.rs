//! Cheap production baselines: least-connection, weighted round-robin,
//! shortest-job-first and best-fit.
//!
//! The load balancers real brokers (nginx, HAProxy, LVS) ship as
//! defaults, plus the two classic greedy schedulers every cloud
//! survey compares against. They cost O(C log V) or O(C·V) per round,
//! carry their state across scheduling rounds (like
//! [`crate::round_robin::RoundRobin`]'s cursor), and give the
//! metaheuristics a realistic "what production does today" reference
//! line. All are fully deterministic — no seed — so their wave plans
//! are byte-identical at any thread count by construction.

use simcloud::ids::VmId;

use crate::assignment::Assignment;
use crate::eval::{EvalCache, MinLoadHeap};
use crate::problem::SchedulingProblem;
use crate::scheduler::Scheduler;

/// Least-connection balancer: each cloudlet goes to the VM with the
/// smallest *estimated busy time* (Eq. 6 load scored through
/// [`EvalCache`]), ties broken by the lower VM id. The per-VM load
/// vector persists across scheduling rounds, so under the streaming
/// broker each wave sees the backlog the previous waves created —
/// the connection-count analog of the classic balancer.
#[derive(Debug, Default, Clone)]
pub struct LeastConnection {
    /// Estimated busy ms per VM, accumulated across rounds. Reset when
    /// the fleet size changes.
    load: Vec<f64>,
}

impl LeastConnection {
    /// A balancer with an idle fleet.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for LeastConnection {
    fn name(&self) -> &'static str {
        "least-connection"
    }

    fn schedule(&mut self, problem: &SchedulingProblem) -> Assignment {
        self.schedule_with_cache(problem, &EvalCache::lite(problem))
    }

    fn schedule_with_cache(
        &mut self,
        problem: &SchedulingProblem,
        cache: &EvalCache,
    ) -> Assignment {
        let v = problem.vm_count();
        if self.load.len() != v {
            self.load = vec![0.0; v];
        }
        let mut heap = MinLoadHeap::new();
        for (vm, &load) in self.load.iter().enumerate() {
            heap.push(load, vm as u32);
        }
        let mut map = Vec::with_capacity(problem.cloudlet_count());
        for c in 0..problem.cloudlet_count() {
            let (load, vm) = heap.pop().expect("fleet is non-empty");
            let updated = load + cache.exec_ms(c, vm as usize);
            self.load[vm as usize] = updated;
            heap.push(updated, vm);
            map.push(VmId(vm));
        }
        Assignment::new(map)
    }
}

/// Weighted round-robin via virtual finish times (the weighted-fair-
/// queueing formulation): VM `v` with weight `w_v = mips·pes` is picked
/// at virtual times `1/w_v, 2/w_v, …`, so over any long window VMs
/// receive cloudlets proportionally to capacity while picks stay
/// interleaved (no bursts onto one VM, unlike naive credit schemes).
/// O(log V) per cloudlet through [`MinLoadHeap`]; the virtual clock
/// persists across rounds so waves continue the cycle where the last
/// one stopped.
#[derive(Debug, Default, Clone)]
pub struct WeightedRoundRobin {
    /// Next virtual finish time per VM. Reset when the fleet changes.
    vtime: Vec<f64>,
}

impl WeightedRoundRobin {
    /// A balancer at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Capacity weights; a degenerate all-zero fleet falls back to
    /// uniform weights (plain round-robin order).
    fn weights(problem: &SchedulingProblem) -> Vec<f64> {
        let mut w: Vec<f64> = problem
            .vms
            .iter()
            .map(|vm| {
                let cap = vm.mips * f64::from(vm.pes);
                if cap.is_finite() && cap > 0.0 {
                    cap
                } else {
                    0.0
                }
            })
            .collect();
        if w.iter().all(|&x| x == 0.0) {
            w.iter_mut().for_each(|x| *x = 1.0);
        }
        w
    }
}

impl Scheduler for WeightedRoundRobin {
    fn name(&self) -> &'static str {
        "weighted-round-robin"
    }

    fn schedule(&mut self, problem: &SchedulingProblem) -> Assignment {
        let v = problem.vm_count();
        let weights = Self::weights(problem);
        if self.vtime.len() != v {
            self.vtime = weights
                .iter()
                .map(|&w| if w > 0.0 { 1.0 / w } else { f64::INFINITY })
                .collect();
        }
        let mut heap = MinLoadHeap::new();
        for (vm, &t) in self.vtime.iter().enumerate() {
            heap.push(t, vm as u32);
        }
        let mut map = Vec::with_capacity(problem.cloudlet_count());
        for _ in 0..problem.cloudlet_count() {
            let (t, vm) = heap.pop().expect("fleet is non-empty");
            let next = t + 1.0 / weights[vm as usize];
            self.vtime[vm as usize] = next;
            heap.push(next, vm);
            map.push(VmId(vm));
        }
        Assignment::new(map)
    }
}

/// Shortest-job-first: cloudlets are considered in ascending
/// `length_mi` order (ties by the lower cloudlet id) and each goes to
/// the VM with the smallest estimated busy time, exactly like
/// [`LeastConnection`]'s placement rule. Only the *visit order*
/// differs — short jobs grab the idle VMs first, which minimises mean
/// flow time on uniform fleets (the classic SJF guarantee). The
/// assignment is still emitted in original cloudlet order. O(C log C)
/// for the sort plus O(C log V) through [`MinLoadHeap`]; the load
/// vector persists across rounds like the other balancers.
#[derive(Debug, Default, Clone)]
pub struct ShortestJobFirst {
    /// Estimated busy ms per VM, accumulated across rounds. Reset when
    /// the fleet size changes.
    load: Vec<f64>,
}

impl ShortestJobFirst {
    /// A scheduler with an idle fleet.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for ShortestJobFirst {
    fn name(&self) -> &'static str {
        "shortest-job-first"
    }

    fn schedule(&mut self, problem: &SchedulingProblem) -> Assignment {
        self.schedule_with_cache(problem, &EvalCache::lite(problem))
    }

    fn schedule_with_cache(
        &mut self,
        problem: &SchedulingProblem,
        cache: &EvalCache,
    ) -> Assignment {
        let v = problem.vm_count();
        if self.load.len() != v {
            self.load = vec![0.0; v];
        }
        let mut order: Vec<usize> = (0..problem.cloudlet_count()).collect();
        order.sort_by(|&a, &b| {
            problem.cloudlets[a]
                .length_mi
                .total_cmp(&problem.cloudlets[b].length_mi)
                .then(a.cmp(&b))
        });
        let mut heap = MinLoadHeap::new();
        for (vm, &load) in self.load.iter().enumerate() {
            heap.push(load, vm as u32);
        }
        let mut map = vec![VmId(0); problem.cloudlet_count()];
        for c in order {
            let (load, vm) = heap.pop().expect("fleet is non-empty");
            let updated = load + cache.exec_ms(c, vm as usize);
            self.load[vm as usize] = updated;
            heap.push(updated, vm);
            map[c] = VmId(vm);
        }
        Assignment::new(map)
    }
}

/// Best-fit: each cloudlet (in arrival order) goes to the VM that
/// minimises its *estimated finish time* `load[v] + exec_ms(c, v)` —
/// the bin-packing "tightest fit" transplanted to heterogeneous
/// fleets. Unlike [`LeastConnection`], which picks the least-loaded VM
/// and only then pays the execution cost, best-fit folds the per-VM
/// execution speed into the choice, so a busy fast VM can beat an idle
/// slow one. O(C·V) — the finish time depends on the (cloudlet, VM)
/// pair, so no heap applies. Load persists across rounds.
#[derive(Debug, Default, Clone)]
pub struct BestFit {
    /// Estimated busy ms per VM, accumulated across rounds. Reset when
    /// the fleet size changes.
    load: Vec<f64>,
}

impl BestFit {
    /// A scheduler with an idle fleet.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for BestFit {
    fn name(&self) -> &'static str {
        "best-fit"
    }

    fn schedule(&mut self, problem: &SchedulingProblem) -> Assignment {
        self.schedule_with_cache(problem, &EvalCache::lite(problem))
    }

    fn schedule_with_cache(
        &mut self,
        problem: &SchedulingProblem,
        cache: &EvalCache,
    ) -> Assignment {
        let v = problem.vm_count();
        if self.load.len() != v {
            self.load = vec![0.0; v];
        }
        let mut map = Vec::with_capacity(problem.cloudlet_count());
        for c in 0..problem.cloudlet_count() {
            let mut best_vm = 0usize;
            let mut best_finish = f64::INFINITY;
            for (vm, &load) in self.load.iter().enumerate() {
                let finish = load + cache.exec_ms(c, vm);
                if finish.total_cmp(&best_finish).is_lt() {
                    best_finish = finish;
                    best_vm = vm;
                }
            }
            self.load[best_vm] = best_finish;
            map.push(VmId(best_vm as u32));
        }
        Assignment::new(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{score_assignment, Objective};
    use crate::round_robin::RoundRobin;
    use simcloud::characteristics::CostModel;
    use simcloud::cloudlet::CloudletSpec;
    use simcloud::vm::VmSpec;

    fn hetero_problem(vms: usize, cloudlets: usize) -> SchedulingProblem {
        let vm_specs: Vec<VmSpec> = (0..vms)
            .map(|i| {
                let mips = if i % 2 == 0 { 500.0 } else { 2_000.0 };
                VmSpec::new(mips, 5_000.0, 512.0, 500.0, 1)
            })
            .collect();
        let cls: Vec<CloudletSpec> = (0..cloudlets)
            .map(|i| CloudletSpec::new(1_000.0 + 500.0 * (i % 5) as f64, 100.0, 100.0, 1))
            .collect();
        SchedulingProblem::single_datacenter(vm_specs, cls, CostModel::default())
    }

    fn uniform_problem(vms: usize, cloudlets: usize) -> SchedulingProblem {
        SchedulingProblem::single_datacenter(
            vec![VmSpec::homogeneous_default(); vms],
            vec![CloudletSpec::homogeneous_default(); cloudlets],
            CostModel::free(),
        )
    }

    #[test]
    fn least_connection_is_valid_and_deterministic() {
        let p = hetero_problem(6, 40);
        let a = LeastConnection::new().schedule(&p);
        let b = LeastConnection::new().schedule(&p);
        assert!(a.validate(&p).is_ok());
        assert_eq!(a, b);
    }

    #[test]
    fn least_connection_beats_round_robin_on_hetero_makespan() {
        let p = hetero_problem(8, 80);
        let lc = LeastConnection::new().schedule(&p);
        let rr = RoundRobin::new().schedule(&p);
        let lc_score = score_assignment(&p, &lc, Objective::Makespan);
        let rr_score = score_assignment(&p, &rr, Objective::Makespan);
        assert!(lc_score <= rr_score, "LC {lc_score} vs RR {rr_score}");
    }

    #[test]
    fn least_connection_load_persists_across_rounds() {
        // Round 1 loads VM 0 heavily; round 2 must remember that and
        // route elsewhere first.
        let p1 = uniform_problem(3, 1);
        let mut lc = LeastConnection::new();
        let first = lc.schedule(&p1);
        assert_eq!(first.as_slice(), &[VmId(0)]);
        let second = lc.schedule(&p1);
        assert_eq!(second.as_slice(), &[VmId(1)], "VM 0 already busy");
        // A fresh instance would have gone back to VM 0.
        assert_eq!(LeastConnection::new().schedule(&p1).as_slice(), &[VmId(0)]);
    }

    #[test]
    fn least_connection_shared_cache_matches_private() {
        let p = hetero_problem(5, 30);
        let cache = EvalCache::new(&p);
        let private = LeastConnection::new().schedule(&p);
        let shared = LeastConnection::new().schedule_with_cache(&p, &cache);
        assert_eq!(private, shared);
    }

    #[test]
    fn wrr_allocates_proportionally_to_capacity() {
        // VMs at 500 vs 2000 MIPS: the fast ones should receive ~4× the
        // cloudlets over a long window.
        let p = hetero_problem(2, 100);
        let a = WeightedRoundRobin::new().schedule(&p);
        let counts = a.counts_per_vm(2);
        assert!(a.validate(&p).is_ok());
        assert_eq!(counts[0] + counts[1], 100);
        assert!(
            counts[1] >= 3 * counts[0] && counts[0] > 0,
            "expected ~1:4 split, got {counts:?}"
        );
    }

    #[test]
    fn wrr_on_uniform_fleet_is_fair() {
        let p = uniform_problem(5, 100);
        let a = WeightedRoundRobin::new().schedule(&p);
        let counts = a.counts_per_vm(5);
        assert!(counts.iter().all(|&c| c == 20), "{counts:?}");
    }

    #[test]
    fn wrr_virtual_clock_persists_across_rounds() {
        let p = uniform_problem(3, 2);
        let mut wrr = WeightedRoundRobin::new();
        let first = wrr.schedule(&p);
        let second = wrr.schedule(&p);
        // Uniform weights degenerate to cyclic order that resumes.
        assert_eq!(first.as_slice(), &[VmId(0), VmId(1)]);
        assert_eq!(second.as_slice(), &[VmId(2), VmId(0)]);
    }

    #[test]
    fn wrr_is_deterministic() {
        let p = hetero_problem(7, 50);
        assert_eq!(
            WeightedRoundRobin::new().schedule(&p),
            WeightedRoundRobin::new().schedule(&p)
        );
    }

    #[test]
    fn sjf_visits_shortest_cloudlets_first() {
        // Lengths 3000/1000/2000 on three idle uniform VMs: sorted
        // order is c1, c2, c0, and the heap hands out VMs 0, 1, 2 in
        // that visit order — so the emitted map reveals the sort.
        let vms = vec![VmSpec::homogeneous_default(); 3];
        let cls = vec![
            CloudletSpec::new(3_000.0, 0.0, 0.0, 1),
            CloudletSpec::new(1_000.0, 0.0, 0.0, 1),
            CloudletSpec::new(2_000.0, 0.0, 0.0, 1),
        ];
        let p = SchedulingProblem::single_datacenter(vms, cls, CostModel::free());
        let a = ShortestJobFirst::new().schedule(&p);
        assert_eq!(a.as_slice(), &[VmId(2), VmId(0), VmId(1)]);
    }

    #[test]
    fn sjf_is_valid_deterministic_and_cache_agnostic() {
        let p = hetero_problem(6, 40);
        let cache = EvalCache::new(&p);
        let a = ShortestJobFirst::new().schedule(&p);
        let b = ShortestJobFirst::new().schedule(&p);
        let shared = ShortestJobFirst::new().schedule_with_cache(&p, &cache);
        assert!(a.validate(&p).is_ok());
        assert_eq!(a, b);
        assert_eq!(a, shared);
    }

    #[test]
    fn sjf_load_persists_across_rounds() {
        let p = uniform_problem(3, 1);
        let mut sjf = ShortestJobFirst::new();
        assert_eq!(sjf.schedule(&p).as_slice(), &[VmId(0)]);
        assert_eq!(sjf.schedule(&p).as_slice(), &[VmId(1)], "VM 0 already busy");
        assert_eq!(ShortestJobFirst::new().schedule(&p).as_slice(), &[VmId(0)]);
    }

    #[test]
    fn best_fit_prefers_fast_busy_vm_over_slow_idle_one() {
        // VM 0 at 500 MIPS (slow), VM 1 at 2000 MIPS (fast), no input
        // staging. Every job finishes sooner on the fast VM even after
        // it absorbs the whole backlog (2.25 s vs 4.0 s for the last
        // one), so best-fit piles all three onto it. Least-connection,
        // blind to speed until after the pick, sends the first job to
        // the idle slow VM (tie on load, lower id).
        let vms = vec![
            VmSpec::new(500.0, 5_000.0, 512.0, 500.0, 1),
            VmSpec::new(2_000.0, 5_000.0, 512.0, 500.0, 1),
        ];
        let cls: Vec<CloudletSpec> = [1_000.0, 1_500.0, 2_000.0]
            .iter()
            .map(|&len| CloudletSpec::new(len, 0.0, 0.0, 1))
            .collect();
        let p = SchedulingProblem::single_datacenter(vms, cls, CostModel::free());
        let bf = BestFit::new().schedule(&p);
        assert!(
            bf.as_slice().iter().all(|&vm| vm == VmId(1)),
            "all jobs should pile onto the fast VM: {:?}",
            bf.as_slice()
        );
        let lc = LeastConnection::new().schedule(&p);
        assert_eq!(
            lc.as_slice()[0],
            VmId(0),
            "LC sends job 0 to the idle slow VM"
        );
    }

    #[test]
    fn best_fit_never_loses_to_least_connection_on_hetero_makespan() {
        let p = hetero_problem(8, 80);
        let bf = BestFit::new().schedule(&p);
        let lc = LeastConnection::new().schedule(&p);
        assert!(bf.validate(&p).is_ok());
        let bf_score = score_assignment(&p, &bf, Objective::Makespan);
        let lc_score = score_assignment(&p, &lc, Objective::Makespan);
        assert!(bf_score <= lc_score, "BF {bf_score} vs LC {lc_score}");
    }

    #[test]
    fn best_fit_is_deterministic_and_cache_agnostic() {
        let p = hetero_problem(5, 30);
        let cache = EvalCache::new(&p);
        let a = BestFit::new().schedule(&p);
        let b = BestFit::new().schedule(&p);
        let shared = BestFit::new().schedule_with_cache(&p, &cache);
        assert_eq!(a, b);
        assert_eq!(a, shared);
    }

    #[test]
    fn best_fit_load_persists_across_rounds() {
        let p = uniform_problem(3, 1);
        let mut bf = BestFit::new();
        assert_eq!(bf.schedule(&p).as_slice(), &[VmId(0)]);
        assert_eq!(bf.schedule(&p).as_slice(), &[VmId(1)], "VM 0 already busy");
        assert_eq!(BestFit::new().schedule(&p).as_slice(), &[VmId(0)]);
    }
}
