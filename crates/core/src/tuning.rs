//! `--sched-params` mini-language: key=value overrides for scheduler knobs.
//!
//! The CLI accepts a comma-separated list like
//! `candidates=32,sampling=prefix,shards=4` and turns it into a
//! [`SchedTuning`], which then builds a scheduler for an
//! [`AlgorithmKind`]. Unknown keys and incoherent combinations are
//! **errors**, never silently clamped — the sweep scripts must fail loudly
//! when a knob is misspelled, or a night of benchmarks measures the wrong
//! configuration.
//!
//! Keys:
//!
//! | key | values | applies to |
//! |---|---|---|
//! | `candidates` | positive integer or `full` | AntColony |
//! | `strategy` | `random` \| `topeta` | AntColony |
//! | `sampling` | `linear` \| `prefix` \| `alias` | AntColony |
//! | `ants` | positive integer | AntColony |
//! | `iterations` | positive integer | AntColony |
//! | `batch` | positive integer | AntColony |
//! | `q0` | float in \[0,1\] | AntColony |
//! | `population` | positive integer | CuckooSos, Gsa |
//! | `rounds` | positive integer | CuckooSos, Gsa |
//! | `budget` | positive integer (evaluation units) | Racing |
//! | `quantum` | positive integer (evaluation units) | Racing |
//! | `shards` | positive integer or `dc` | any kind (wraps in [`DivideAndConquer`]) |
//!
//! When `strategy=random` is given without an explicit `sampling`, the
//! sampling follows the strategy to `linear` (random candidate subsets
//! have no stable row for prefix/alias indexing).

use crate::aco::{AcoParams, AntColony, CandidateStrategy, SamplingMode};
use crate::cuckoo_sos::{CsosParams, CuckooSos};
use crate::dnc::{DivideAndConquer, ShardSpec};
use crate::gsa::{Gsa, GsaParams};
use crate::racing::{RaceParams, RacingScheduler};
use crate::scheduler::{AlgorithmKind, Scheduler};

/// Parsed `--sched-params` overrides. Every field is optional; `None`
/// keeps the algorithm's default.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchedTuning {
    /// Candidate-list size: `Some(None)` forces full rows (`full`),
    /// `Some(Some(k))` forces k candidates.
    pub candidates: Option<Option<usize>>,
    /// Candidate-list formation strategy.
    pub strategy: Option<CandidateStrategy>,
    /// Weight-row sampling mode.
    pub sampling: Option<SamplingMode>,
    /// Ants per iteration.
    pub ants: Option<usize>,
    /// Construction/update iterations per batch.
    pub iterations: Option<usize>,
    /// Cloudlets per colony batch.
    pub batch: Option<usize>,
    /// ACS exploitation probability.
    pub q0: Option<f64>,
    /// Divide-and-conquer sharding (`N` balanced ranges or `dc`).
    pub shards: Option<ShardSpec>,
    /// Population size (cuckoo-SOS organisms / GSA agents).
    pub population: Option<usize>,
    /// Search rounds for the population families (their `iterations`).
    pub rounds: Option<usize>,
    /// Racing total-budget cap in evaluation units.
    pub budget: Option<u64>,
    /// Racing per-round funding quantum in evaluation units.
    pub quantum: Option<u64>,
}

const VALID_KEYS: &str = "candidates, strategy, sampling, ants, iterations, batch, q0, shards, \
                          population, rounds, budget, quantum";

fn parse_count(key: &str, value: &str) -> Result<usize, String> {
    let n: usize = value
        .parse()
        .map_err(|_| format!("{key} expects a positive integer, got '{value}'"))?;
    if n == 0 {
        return Err(format!("{key} must be at least 1"));
    }
    Ok(n)
}

impl SchedTuning {
    /// Parses the comma-separated `key=value` list. Empty input is the
    /// all-defaults tuning.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut tuning = SchedTuning::default();
        for item in spec.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got '{item}'"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "candidates" => {
                    tuning.candidates = Some(if value == "full" {
                        None
                    } else {
                        Some(parse_count(key, value)?)
                    });
                }
                "strategy" => {
                    tuning.strategy = Some(match value {
                        "random" => CandidateStrategy::Random,
                        "topeta" => CandidateStrategy::TopEta,
                        _ => {
                            return Err(format!(
                                "strategy must be 'random' or 'topeta', got '{value}'"
                            ))
                        }
                    });
                }
                "sampling" => {
                    tuning.sampling = Some(match value {
                        "linear" => SamplingMode::Linear,
                        "prefix" => SamplingMode::PrefixSum,
                        "alias" => SamplingMode::Alias,
                        _ => {
                            return Err(format!(
                                "sampling must be 'linear', 'prefix' or 'alias', got '{value}'"
                            ))
                        }
                    });
                }
                "ants" => tuning.ants = Some(parse_count(key, value)?),
                "iterations" => tuning.iterations = Some(parse_count(key, value)?),
                "batch" => tuning.batch = Some(parse_count(key, value)?),
                "q0" => {
                    let q0: f64 = value
                        .parse()
                        .map_err(|_| format!("q0 expects a float, got '{value}'"))?;
                    tuning.q0 = Some(q0);
                }
                "population" => tuning.population = Some(parse_count(key, value)?),
                "rounds" => tuning.rounds = Some(parse_count(key, value)?),
                "budget" => tuning.budget = Some(parse_count(key, value)? as u64),
                "quantum" => tuning.quantum = Some(parse_count(key, value)? as u64),
                "shards" => {
                    tuning.shards = Some(if value == "dc" {
                        ShardSpec::ByDatacenter
                    } else {
                        ShardSpec::Count(parse_count(key, value)?)
                    });
                }
                _ => {
                    return Err(format!(
                        "unknown scheduler parameter '{key}' (valid: {VALID_KEYS})"
                    ))
                }
            }
        }
        Ok(tuning)
    }

    /// True when any ACO-specific knob is set.
    fn touches_aco(&self) -> bool {
        self.candidates.is_some()
            || self.strategy.is_some()
            || self.sampling.is_some()
            || self.ants.is_some()
            || self.iterations.is_some()
            || self.batch.is_some()
            || self.q0.is_some()
    }

    /// Applies the ACO overrides on top of `base` and validates the result.
    pub fn apply_aco(&self, base: AcoParams) -> Result<AcoParams, String> {
        let mut p = base;
        if let Some(c) = self.candidates {
            p.candidates = c;
        }
        if let Some(s) = self.strategy {
            p.strategy = s;
            // The sampling mode follows the strategy unless pinned
            // explicitly: random subsets only support the linear roulette.
            if self.sampling.is_none() && s == CandidateStrategy::Random {
                p.sampling = SamplingMode::Linear;
            }
        }
        if let Some(s) = self.sampling {
            p.sampling = s;
        }
        if let Some(a) = self.ants {
            p.ants = a;
        }
        if let Some(i) = self.iterations {
            p.iterations = i;
        }
        if let Some(b) = self.batch {
            p.batch_size = b;
        }
        if let Some(q0) = self.q0 {
            p.q0 = q0;
        }
        p.validate()?;
        Ok(p)
    }

    /// True when a population-family knob is set.
    fn touches_population(&self) -> bool {
        self.population.is_some() || self.rounds.is_some()
    }

    /// True when a racing knob is set.
    fn touches_racing(&self) -> bool {
        self.budget.is_some() || self.quantum.is_some()
    }

    /// Builds the tuned scheduler for `kind`, wrapping it in
    /// [`DivideAndConquer`] when `shards` is set.
    pub fn build(&self, kind: AlgorithmKind, seed: u64) -> Result<Box<dyn Scheduler>, String> {
        if self.touches_aco() && kind != AlgorithmKind::AntColony {
            return Err(format!(
                "ACO parameters (candidates/strategy/sampling/ants/iterations/\
                 batch/q0) only apply to AntColony, not {kind}"
            ));
        }
        let population_kind = matches!(kind, AlgorithmKind::CuckooSos | AlgorithmKind::Gsa);
        if self.touches_population() && !population_kind {
            return Err(format!(
                "population/rounds only apply to CuckooSOS and GSA, not {kind}"
            ));
        }
        if self.touches_racing() && !matches!(kind, AlgorithmKind::Racing(_)) {
            return Err(format!("budget/quantum only apply to Racing, not {kind}"));
        }
        let inner: ShardBuilder = match kind {
            AlgorithmKind::AntColony => {
                let params = self.apply_aco(AcoParams::paper())?;
                Box::new(move |s| Box::new(AntColony::new(params.clone(), s)))
            }
            AlgorithmKind::CuckooSos => {
                let mut params = CsosParams::standard();
                if let Some(p) = self.population {
                    params.population = p;
                }
                if let Some(r) = self.rounds {
                    params.iterations = r;
                }
                params.validate()?;
                Box::new(move |s| Box::new(CuckooSos::new(params.clone(), s)))
            }
            AlgorithmKind::Gsa => {
                let mut params = GsaParams::standard();
                if let Some(p) = self.population {
                    params.population = p;
                }
                if let Some(r) = self.rounds {
                    params.iterations = r;
                }
                params.validate()?;
                Box::new(move |s| Box::new(Gsa::new(params.clone(), s)))
            }
            AlgorithmKind::Racing(objective) => {
                let params = RaceParams {
                    objective,
                    target_units: None,
                    quantum: self.quantum,
                    budget: self.budget,
                };
                params.validate()?;
                Box::new(move |s| Box::new(RacingScheduler::new(params.clone(), s)))
            }
            _ => Box::new(move |s| kind.build(s)),
        };
        match self.shards {
            Some(spec) => Ok(Box::new(DivideAndConquer::new(spec, seed, inner)?)),
            None => Ok(inner(seed)),
        }
    }
}

type ShardBuilder = Box<dyn Fn(u64) -> Box<dyn Scheduler> + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::SchedulingProblem;
    use simcloud::characteristics::CostModel;
    use simcloud::cloudlet::CloudletSpec;
    use simcloud::vm::VmSpec;

    #[test]
    fn parses_the_full_vocabulary() {
        let t = SchedTuning::parse(
            "candidates=16, strategy=topeta, sampling=alias, ants=10, \
             iterations=3, batch=64, q0=0, shards=4",
        )
        .unwrap();
        assert_eq!(t.candidates, Some(Some(16)));
        assert_eq!(t.strategy, Some(CandidateStrategy::TopEta));
        assert_eq!(t.sampling, Some(SamplingMode::Alias));
        assert_eq!(t.ants, Some(10));
        assert_eq!(t.iterations, Some(3));
        assert_eq!(t.batch, Some(64));
        assert_eq!(t.q0, Some(0.0));
        assert_eq!(t.shards, Some(ShardSpec::Count(4)));
        assert_eq!(
            SchedTuning::parse("candidates=full,shards=dc")
                .unwrap()
                .shards,
            Some(ShardSpec::ByDatacenter)
        );
        assert_eq!(SchedTuning::parse("").unwrap(), SchedTuning::default());
    }

    #[test]
    fn rejects_unknown_keys_and_bad_values() {
        assert!(SchedTuning::parse("candidat=32")
            .unwrap_err()
            .contains("unknown scheduler parameter"));
        assert!(SchedTuning::parse("candidates=zero").is_err());
        assert!(SchedTuning::parse("candidates=0").is_err());
        assert!(SchedTuning::parse("strategy=best").is_err());
        assert!(SchedTuning::parse("sampling=magic").is_err());
        assert!(SchedTuning::parse("shards=0").is_err());
        assert!(SchedTuning::parse("ants").is_err(), "missing '='");
    }

    #[test]
    fn incoherent_combos_surface_aco_validation_errors() {
        // random strategy + explicit prefix sampling: invalid, not clamped.
        let t = SchedTuning::parse("strategy=random,sampling=prefix").unwrap();
        assert!(t.apply_aco(AcoParams::paper()).is_err());
        // q0>0 with alias sampling: invalid.
        let t = SchedTuning::parse("sampling=alias,q0=0.5").unwrap();
        assert!(t.apply_aco(AcoParams::paper()).is_err());
        // out-of-range q0 rejected by AcoParams::validate.
        let t = SchedTuning::parse("q0=1.5").unwrap();
        assert!(t.apply_aco(AcoParams::paper()).is_err());
    }

    #[test]
    fn sampling_follows_strategy_when_unpinned() {
        let t = SchedTuning::parse("strategy=random").unwrap();
        let p = t.apply_aco(AcoParams::paper()).unwrap();
        assert_eq!(p.strategy, CandidateStrategy::Random);
        assert_eq!(p.sampling, SamplingMode::Linear);
    }

    #[test]
    fn aco_keys_rejected_for_other_kinds() {
        let t = SchedTuning::parse("ants=5").unwrap();
        assert!(t.build(AlgorithmKind::Ga, 1).is_err());
        assert!(t.build(AlgorithmKind::AntColony, 1).is_ok());
        // shards alone applies to any kind.
        let t = SchedTuning::parse("shards=2").unwrap();
        assert!(t.build(AlgorithmKind::Ga, 1).is_ok());
    }

    #[test]
    fn population_and_racing_keys_are_kind_gated() {
        use crate::objective::Objective;
        let t = SchedTuning::parse("population=8,rounds=5").unwrap();
        assert_eq!(t.population, Some(8));
        assert_eq!(t.rounds, Some(5));
        assert!(t.build(AlgorithmKind::CuckooSos, 1).is_ok());
        assert!(t.build(AlgorithmKind::Gsa, 1).is_ok());
        assert!(matches!(
            t.build(AlgorithmKind::AntColony, 1),
            Err(e) if e.contains("population/rounds")
        ));
        let t = SchedTuning::parse("budget=500,quantum=50").unwrap();
        assert_eq!(t.budget, Some(500));
        assert_eq!(t.quantum, Some(50));
        assert!(t
            .build(AlgorithmKind::Racing(Objective::Makespan), 1)
            .is_ok());
        assert!(matches!(
            t.build(AlgorithmKind::CuckooSos, 1),
            Err(e) if e.contains("budget/quantum")
        ));
        assert!(SchedTuning::parse("population=0").is_err());
        assert!(SchedTuning::parse("budget=0").is_err());
    }

    #[test]
    fn built_scheduler_honors_overrides() {
        let problem = SchedulingProblem::single_datacenter(
            vec![VmSpec::homogeneous_default(); 6],
            vec![CloudletSpec::homogeneous_default(); 24],
            CostModel::default(),
        );
        let t = SchedTuning::parse("shards=3,iterations=2,ants=4").unwrap();
        let mut s = t.build(AlgorithmKind::AntColony, 42).unwrap();
        let a = s.schedule(&problem);
        assert!(a.validate(&problem).is_ok());
    }
}
