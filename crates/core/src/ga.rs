//! Genetic Algorithm scheduler — related-work baseline.
//!
//! Section II's first family of heuristics: GA schedulers ([6] Ge & Wei,
//! [10] Jang et al., [31] Zhao et al.). The paper repeats the survey
//! verdict that "GA scheduling algorithms are slow for Cloud due [to] the
//! time to converge" [17] — this implementation exists to make that
//! comparison measurable (see the `ablation` bench).
//!
//! Standard generational GA over assignment chromosomes:
//! tournament selection, uniform crossover, per-gene mutation, elitism.

//!
//! ```
//! use biosched_core::ga::{GaParams, Genetic};
//! use biosched_core::problem::SchedulingProblem;
//! use biosched_core::scheduler::Scheduler;
//! use simcloud::prelude::*;
//!
//! let problem = SchedulingProblem::single_datacenter(
//!     vec![VmSpec::new(1000.0, 5000.0, 512.0, 500.0, 1); 4],
//!     vec![CloudletSpec::new(2_000.0, 0.0, 0.0, 1); 16],
//!     CostModel::default(),
//! );
//! let plan = Genetic::new(GaParams::fast(), 42).schedule(&problem);
//! assert!(plan.validate(&problem).is_ok());
//! ```
use rand::rngs::StdRng;
use rand::Rng;
use simcloud::ids::VmId;
use simcloud::rng::stream;

use crate::assignment::Assignment;
use crate::eval::{evaluate_population, EvalCache};
use crate::objective::Objective;
use crate::problem::SchedulingProblem;
use crate::scheduler::Scheduler;

/// GA tuning parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GaParams {
    /// Population size.
    pub population: usize,
    /// Generations.
    pub generations: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Probability a child gene comes from parent B (uniform crossover).
    pub crossover_mix: f64,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Chromosomes carried over unchanged each generation.
    pub elites: usize,
    /// What the population optimizes.
    pub objective: Objective,
}

impl GaParams {
    /// Literature-standard configuration.
    pub fn standard() -> Self {
        GaParams {
            population: 40,
            generations: 60,
            tournament: 3,
            crossover_mix: 0.5,
            mutation_rate: 0.02,
            elites: 2,
            objective: Objective::Makespan,
        }
    }

    /// A cheaper configuration for sweeps and debug-mode tests.
    pub fn fast() -> Self {
        GaParams {
            population: 16,
            generations: 20,
            ..Self::standard()
        }
    }

    /// Iteration-count scaling law: the standard profile up to
    /// [`crate::aco::AcoParams::SCALE_CUTOVER`] cloudlets, a reduced
    /// profile above it (chromosomes are cloudlet-length vectors, so at
    /// 10⁶ genes the per-generation cost is what must shrink).
    pub fn for_scale(cloudlets: usize) -> Self {
        if cloudlets > crate::aco::AcoParams::SCALE_CUTOVER {
            GaParams {
                population: 12,
                generations: 8,
                ..Self::standard()
            }
        } else {
            Self::standard()
        }
    }

    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.population < 2 {
            return Err("population must be at least 2".into());
        }
        if self.generations == 0 {
            return Err("generations must be at least 1".into());
        }
        if self.tournament == 0 || self.tournament > self.population {
            return Err(format!(
                "tournament must be in [1, population], got {}",
                self.tournament
            ));
        }
        if !(0.0..=1.0).contains(&self.crossover_mix) {
            return Err("crossover_mix must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.mutation_rate) {
            return Err("mutation_rate must be in [0,1]".into());
        }
        if self.elites >= self.population {
            return Err("elites must be smaller than the population".into());
        }
        Ok(())
    }
}

impl Default for GaParams {
    fn default() -> Self {
        Self::standard()
    }
}

/// The GA scheduler.
pub struct Genetic {
    params: GaParams,
    rng: StdRng,
}

impl Genetic {
    /// Creates a GA with the given parameters and seed.
    pub fn new(params: GaParams, seed: u64) -> Self {
        params.validate().expect("invalid GaParams");
        Genetic {
            params,
            rng: stream(seed, "ga"),
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &GaParams {
        &self.params
    }
}

fn to_assignment(genes: &[u32]) -> Assignment {
    Assignment::new(genes.iter().map(|g| VmId(*g)).collect())
}

/// The anytime GA run: scored population plus a generation cursor.
///
/// One [`GaRun::step`] call breeds and scores one generation
/// (`population − elites` full-assignment evaluations, the run's
/// deterministic budget unit). [`Genetic`] drives a `GaRun` to
/// completion, so a fresh run stepped to done is bit-identical to
/// [`Genetic::schedule`] with the same params and seed.
pub struct GaRun {
    params: GaParams,
    rng: StdRng,
    population: Vec<(Vec<u32>, f64)>,
    dims: usize,
    v: u32,
    generation: usize,
}

impl GaRun {
    /// Starts a run from a cold seed.
    pub fn cold(params: GaParams, seed: u64, cache: &EvalCache, incumbent: Option<&[u32]>) -> Self {
        params.validate().expect("invalid GaParams");
        let rng = stream(seed, "ga");
        Self::with_rng(params, rng, cache, incumbent)
    }

    /// Starts a run from an already-positioned RNG stream (how
    /// [`Genetic`] keeps successive `schedule` rounds on one instance
    /// drawing fresh randomness).
    fn with_rng(
        params: GaParams,
        mut rng: StdRng,
        cache: &EvalCache,
        incumbent: Option<&[u32]>,
    ) -> Self {
        let dims = cache.cloudlet_count();
        let v = (cache.vm_count() as u32).max(1);
        // Seed the population with random chromosomes plus one cyclic
        // chromosome — a common warm start that also guarantees the GA
        // never ends worse than the Base Test on homogeneous setups.
        // Chromosomes are bred sequentially (the RNG stream defines the
        // schedule) and scored as one batch through the evaluation kernel;
        // scoring draws no randomness, so results are seed-stable at any
        // thread count.
        let mut genomes: Vec<Vec<u32>> = Vec::with_capacity(params.population);
        if dims > 0 {
            genomes.push((0..dims).map(|i| (i as u32) % v).collect());
            // Warm start (streaming broker): one chromosome inherits the
            // previous wave's plan positionally (wraparound when sizes
            // differ), so the search resumes near the surviving optimum.
            if let Some(inc) = incumbent.filter(|inc| !inc.is_empty()) {
                if genomes.len() < params.population {
                    genomes.push((0..dims).map(|i| inc[i % inc.len()].min(v - 1)).collect());
                }
            }
            while genomes.len() < params.population {
                genomes.push((0..dims).map(|_| rng.gen_range(0..v)).collect());
            }
        }
        let scores = evaluate_population(cache, &genomes, params.objective);
        GaRun {
            params,
            rng,
            population: genomes.into_iter().zip(scores).collect(),
            dims,
            v,
            generation: 0,
        }
    }

    /// Evaluation units charged by population initialization.
    pub fn init_units(&self) -> u64 {
        self.population.len() as u64
    }

    /// Evaluation units one [`GaRun::step`] charges (children scored;
    /// elites carry their scores over).
    pub fn step_units(&self) -> u64 {
        (self.params.population - self.params.elites) as u64
    }

    /// True once every planned generation has run (or the workload is
    /// empty).
    pub fn done(&self) -> bool {
        self.generation >= self.params.generations || self.population.is_empty()
    }

    /// First fittest chromosome in current population order — the same
    /// pick a stable ascending sort followed by `population[0]` makes.
    fn best_index(&self) -> usize {
        let mut best = 0;
        for i in 1..self.population.len() {
            if self.population[i].1 < self.population[best].1 {
                best = i;
            }
        }
        best
    }

    /// The fittest chromosome (empty for an empty workload).
    pub fn best_genes(&self) -> &[u32] {
        if self.population.is_empty() {
            &[]
        } else {
            &self.population[self.best_index()].0
        }
    }

    /// The fittest chromosome's objective score.
    pub fn best_score(&self) -> f64 {
        if self.population.is_empty() {
            0.0
        } else {
            self.population[self.best_index()].1
        }
    }

    /// Tournament selection by index: draws the same RNG stream as
    /// picking references would, without ever cloning a chromosome (at
    /// 10⁶-gene chromosomes a per-parent clone dominates the breeding
    /// loop).
    fn tournament_pick(&mut self) -> usize {
        let mut best: Option<(usize, f64)> = None;
        for _ in 0..self.params.tournament {
            let i = self.rng.gen_range(0..self.population.len());
            let score = self.population[i].1;
            if best.is_none_or(|(_, b)| score < b) {
                best = Some((i, score));
            }
        }
        best.expect("tournament >= 1").0
    }

    /// Geometric-skip gap to the next mutated gene: `floor(ln(1-u)/ln(1-p))`
    /// for `u ~ U[0,1)` is the number of unmutated genes before the next
    /// hit, so a chromosome costs `O(dims·p)` draws instead of one
    /// Bernoulli per gene. `P(skip = 0) = p`, identical in distribution to
    /// the per-gene coin (the RNG stream differs, which only reshuffles
    /// which random plan a seed maps to).
    fn mutation_skip(&mut self, p: f64) -> usize {
        if p >= 1.0 {
            return 0;
        }
        let u: f64 = self.rng.gen();
        let skip = ((1.0 - u).ln() / (1.0 - p).ln()).floor();
        if skip.is_finite() && skip >= 0.0 {
            skip as usize
        } else {
            usize::MAX
        }
    }

    /// One generation: sort, keep elites, breed children by tournament +
    /// uniform crossover + geometric-skip mutation, batch-score. Returns
    /// the best score after the generation (monotone via elitism).
    pub fn step(&mut self, cache: &EvalCache) -> f64 {
        if self.done() {
            return self.best_score();
        }
        let dims = self.dims;
        let v = self.v;
        self.population.sort_by(|a, b| a.1.total_cmp(&b.1));
        let mut next: Vec<(Vec<u32>, f64)> = self.population[..self.params.elites].to_vec();
        let mut children: Vec<Vec<u32>> = Vec::with_capacity(self.params.population - next.len());
        let mutation = self.params.mutation_rate;
        while next.len() + children.len() < self.params.population {
            let pa = self.tournament_pick();
            let pb = self.tournament_pick();
            let mut child = Vec::with_capacity(dims);
            for d in 0..dims {
                let from_b = self.rng.gen_bool(self.params.crossover_mix);
                let (parent_a, parent_b) = (&self.population[pa].0, &self.population[pb].0);
                child.push(if from_b { parent_b[d] } else { parent_a[d] });
            }
            if mutation > 0.0 {
                let mut d = self.mutation_skip(mutation);
                while d < dims {
                    child[d] = self.rng.gen_range(0..v);
                    d = d
                        .saturating_add(1)
                        .saturating_add(self.mutation_skip(mutation));
                }
            }
            children.push(child);
        }
        let scores = evaluate_population(cache, &children, self.params.objective);
        next.extend(children.into_iter().zip(scores));
        self.population = next;
        self.generation += 1;
        self.population
            .iter()
            .map(|(_, s)| *s)
            .fold(f64::INFINITY, f64::min)
    }
}

impl Genetic {
    /// Like [`Scheduler::schedule`], but also returns the best objective
    /// score after every generation — the GA's convergence curve (the
    /// survey [17] calls GA "slow … due to the time to converge"; this
    /// makes that measurable).
    pub fn schedule_traced(&mut self, problem: &SchedulingProblem) -> (Assignment, Vec<f64>) {
        self.run(problem, &EvalCache::new(problem), true, None)
    }

    fn run(
        &mut self,
        problem: &SchedulingProblem,
        cache: &EvalCache,
        traced: bool,
        incumbent: Option<&[u32]>,
    ) -> (Assignment, Vec<f64>) {
        let _ = problem;
        let mut run = GaRun::with_rng(self.params.clone(), self.rng.clone(), cache, incumbent);
        let mut trace = Vec::new();
        while !run.done() {
            let best = run.step(cache);
            if traced {
                trace.push(best);
            }
        }
        let plan = to_assignment(run.best_genes());
        // Carry the advanced stream back so repeated rounds on one
        // instance keep drawing fresh randomness.
        self.rng = run.rng;
        (plan, trace)
    }
}

impl Scheduler for Genetic {
    fn name(&self) -> &'static str {
        "ga"
    }

    fn schedule(&mut self, problem: &SchedulingProblem) -> Assignment {
        self.run(problem, &EvalCache::new(problem), false, None).0
    }

    fn schedule_with_cache(
        &mut self,
        problem: &SchedulingProblem,
        cache: &EvalCache,
    ) -> Assignment {
        self.run(problem, cache, false, None).0
    }

    fn schedule_warm(
        &mut self,
        problem: &SchedulingProblem,
        cache: &EvalCache,
        warm: &mut crate::warm::WarmState,
    ) -> Assignment {
        let plan = self.run(problem, cache, false, warm.incumbent.as_deref()).0;
        warm.note_plan(&plan);
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::score_assignment;
    use crate::round_robin::RoundRobin;
    use simcloud::characteristics::CostModel;
    use simcloud::cloudlet::CloudletSpec;
    use simcloud::vm::VmSpec;

    fn hetero_problem(vms: usize, cloudlets: usize) -> SchedulingProblem {
        let vm_specs: Vec<VmSpec> = (0..vms)
            .map(|i| VmSpec::new(500.0 + 600.0 * (i % 5) as f64, 5_000.0, 512.0, 500.0, 1))
            .collect();
        let cls: Vec<CloudletSpec> = (0..cloudlets)
            .map(|i| CloudletSpec::new(1_500.0 + 900.0 * (i % 9) as f64, 300.0, 300.0, 1))
            .collect();
        SchedulingProblem::single_datacenter(vm_specs, cls, CostModel::default())
    }

    #[test]
    fn produces_valid_assignments() {
        let p = hetero_problem(7, 25);
        let a = Genetic::new(GaParams::fast(), 1).schedule(&p);
        assert!(a.validate(&p).is_ok());
        assert_eq!(a.len(), 25);
    }

    #[test]
    fn never_loses_to_its_cyclic_seed() {
        // The cyclic chromosome is in the initial population and elitism
        // preserves the best, so GA can only match or improve on it.
        let p = hetero_problem(6, 36);
        let ga = Genetic::new(GaParams::fast(), 2).schedule(&p);
        let rr = RoundRobin::new().schedule(&p);
        let ga_score = score_assignment(&p, &ga, Objective::Makespan);
        let rr_score = score_assignment(&p, &rr, Objective::Makespan);
        assert!(ga_score <= rr_score, "GA {ga_score} vs RR {rr_score}");
    }

    #[test]
    fn more_generations_never_hurt() {
        let p = hetero_problem(6, 30);
        let short = Genetic::new(
            GaParams {
                generations: 2,
                ..GaParams::fast()
            },
            3,
        )
        .schedule(&p);
        let long = Genetic::new(
            GaParams {
                generations: 80,
                ..GaParams::fast()
            },
            3,
        )
        .schedule(&p);
        let s_short = score_assignment(&p, &short, Objective::Makespan);
        let s_long = score_assignment(&p, &long, Objective::Makespan);
        assert!(s_long <= s_short);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = hetero_problem(5, 20);
        assert_eq!(
            Genetic::new(GaParams::fast(), 9).schedule(&p),
            Genetic::new(GaParams::fast(), 9).schedule(&p)
        );
    }

    #[test]
    fn trace_is_monotone_via_elitism() {
        let p = hetero_problem(6, 30);
        let (plan, trace) = Genetic::new(GaParams::fast(), 10).schedule_traced(&p);
        assert_eq!(trace.len(), GaParams::fast().generations);
        // Elitism guarantees the best never regresses.
        assert!(trace.windows(2).all(|w| w[1] <= w[0] + 1e-12));
        let final_score = score_assignment(&p, &plan, Objective::Makespan);
        assert!((trace.last().unwrap() - final_score).abs() < 1e-9);
        // Tracing does not change the result.
        assert_eq!(plan, Genetic::new(GaParams::fast(), 10).schedule(&p));
    }

    #[test]
    fn stepped_run_matches_one_shot_bitwise() {
        // The anytime contract the racing driver relies on: a cold GaRun
        // stepped to completion is the one-shot schedule, same bits.
        let p = hetero_problem(6, 28);
        let cache = EvalCache::new(&p);
        let mut run = GaRun::cold(GaParams::fast(), 21, &cache, None);
        let mut steps = 0;
        while !run.done() {
            run.step(&cache);
            steps += 1;
        }
        assert_eq!(steps, GaParams::fast().generations);
        let stepped = to_assignment(run.best_genes());
        let one_shot = Genetic::new(GaParams::fast(), 21).schedule(&p);
        assert_eq!(stepped, one_shot);
        assert_eq!(
            run.step_units(),
            (GaParams::fast().population - GaParams::fast().elites) as u64
        );
    }

    #[test]
    fn params_validation() {
        assert!(GaParams {
            population: 1,
            ..GaParams::standard()
        }
        .validate()
        .is_err());
        assert!(GaParams {
            tournament: 0,
            ..GaParams::standard()
        }
        .validate()
        .is_err());
        assert!(GaParams {
            mutation_rate: 1.5,
            ..GaParams::standard()
        }
        .validate()
        .is_err());
        assert!(GaParams {
            elites: 40,
            ..GaParams::standard()
        }
        .validate()
        .is_err());
        assert!(GaParams::standard().validate().is_ok());
    }

    #[test]
    fn for_scale_reduces_effort_above_cutover() {
        assert_eq!(GaParams::for_scale(10_000), GaParams::standard());
        let big = GaParams::for_scale(1_000_000);
        assert!(big.population < GaParams::standard().population);
        assert!(big.generations < GaParams::standard().generations);
        assert!(big.validate().is_ok());
    }

    #[test]
    fn extreme_mutation_rates_stay_valid() {
        // The geometric-skip sampler must handle both degenerate rates:
        // p=1 mutates every gene, p=0 skips the mutation pass entirely.
        let p = hetero_problem(5, 24);
        for rate in [0.0, 1.0] {
            let a = Genetic::new(
                GaParams {
                    mutation_rate: rate,
                    ..GaParams::fast()
                },
                4,
            )
            .schedule(&p);
            assert!(a.validate(&p).is_ok(), "mutation_rate={rate}");
        }
    }

    #[test]
    fn empty_workload_is_empty_plan() {
        let p = SchedulingProblem::single_datacenter(
            vec![VmSpec::homogeneous_default()],
            vec![],
            CostModel::free(),
        );
        assert!(Genetic::new(GaParams::fast(), 1).schedule(&p).is_empty());
    }
}
