//! The scheduling problem handed to every algorithm.
//!
//! A [`SchedulingProblem`] is an immutable snapshot of what a CloudSim
//! broker knows before binding cloudlets: the VM fleet, the cloudlet batch,
//! and the datacenters (with their cost models) each VM lives in. All of
//! the paper's algorithms are pure functions from this snapshot to an
//! [`crate::assignment::Assignment`].

use simcloud::characteristics::CostModel;
use simcloud::cloudlet::CloudletSpec;
use simcloud::ids::{DatacenterId, VmId};
use simcloud::network::transfer_time;
use simcloud::vm::VmSpec;

/// What a scheduler can see of one datacenter.
#[derive(Debug, Clone)]
pub struct DatacenterView {
    /// The datacenter's identity.
    pub id: DatacenterId,
    /// Its resource prices (drives HBO's fitness, Eq. 1).
    pub cost: CostModel,
}

/// Immutable scheduling input.
#[derive(Debug, Clone)]
pub struct SchedulingProblem {
    /// VM fleet specs, indexed by [`VmId`].
    pub vms: Vec<VmSpec>,
    /// Cloudlet batch specs, indexed by [`simcloud::ids::CloudletId`].
    pub cloudlets: Vec<CloudletSpec>,
    /// Datacenters visible to the scheduler.
    pub datacenters: Vec<DatacenterView>,
    /// Which datacenter each VM lives in (`vm_placement[vm] = dc`).
    pub vm_placement: Vec<DatacenterId>,
}

impl SchedulingProblem {
    /// Builds and validates a problem.
    pub fn new(
        vms: Vec<VmSpec>,
        cloudlets: Vec<CloudletSpec>,
        datacenters: Vec<DatacenterView>,
        vm_placement: Vec<DatacenterId>,
    ) -> Result<Self, String> {
        let p = SchedulingProblem {
            vms,
            cloudlets,
            datacenters,
            vm_placement,
        };
        p.validate()?;
        Ok(p)
    }

    /// A problem where every VM lives in one datacenter with the given
    /// cost model — the homogeneous-scenario shape.
    pub fn single_datacenter(
        vms: Vec<VmSpec>,
        cloudlets: Vec<CloudletSpec>,
        cost: CostModel,
    ) -> Self {
        let placement = vec![DatacenterId(0); vms.len()];
        SchedulingProblem::new(
            vms,
            cloudlets,
            vec![DatacenterView {
                id: DatacenterId(0),
                cost,
            }],
            placement,
        )
        .expect("single-datacenter construction is always consistent")
    }

    /// Consistency checks shared by all constructors.
    pub fn validate(&self) -> Result<(), String> {
        if self.vms.is_empty() {
            return Err("problem has no VMs".into());
        }
        if self.datacenters.is_empty() {
            return Err("problem has no datacenters".into());
        }
        if self.vm_placement.len() != self.vms.len() {
            return Err(format!(
                "vm_placement covers {} VMs, expected {}",
                self.vm_placement.len(),
                self.vms.len()
            ));
        }
        for (i, dc) in self.vm_placement.iter().enumerate() {
            if dc.index() >= self.datacenters.len() {
                return Err(format!("vm {i} placed in unknown datacenter {dc}"));
            }
        }
        for (i, vm) in self.vms.iter().enumerate() {
            vm.validate().map_err(|e| format!("vm {i}: {e}"))?;
        }
        for (i, cl) in self.cloudlets.iter().enumerate() {
            cl.validate().map_err(|e| format!("cloudlet {i}: {e}"))?;
        }
        Ok(())
    }

    /// Number of VMs.
    #[inline]
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Number of cloudlets.
    #[inline]
    pub fn cloudlet_count(&self) -> usize {
        self.cloudlets.len()
    }

    /// The paper's Eq. 6 — expected execution time of cloudlet `c` on VM
    /// `v`, in milliseconds:
    ///
    /// `d(c, v) = TL / (peNum × peMips) + InFileSize / VMbw`
    ///
    /// The first term is pure compute; the second is input staging over the
    /// VM's bandwidth (same model the simulator charges).
    pub fn expected_exec_ms(&self, c: usize, v: usize) -> f64 {
        let cl = &self.cloudlets[c];
        let vm = &self.vms[v];
        let effective_pes = cl.pes.min(vm.pes);
        let compute_ms = cl.length_mi / (f64::from(effective_pes) * vm.mips) * 1_000.0;
        let staging_ms = transfer_time(cl.file_size_mb, vm.bw_mbps).as_millis();
        compute_ms + staging_ms
    }

    /// Eq. 6's heuristic desirability `η = 1 / d`.
    #[inline]
    pub fn heuristic(&self, c: usize, v: usize) -> f64 {
        1.0 / self.expected_exec_ms(c, v)
    }

    /// Cost model of the datacenter hosting VM `v`.
    pub fn cost_of_vm(&self, v: usize) -> &CostModel {
        let dc = self.vm_placement[v];
        &self.datacenters[dc.index()].cost
    }

    /// Ids of VMs hosted in datacenter `dc`.
    pub fn vms_in_datacenter(&self, dc: DatacenterId) -> Vec<VmId> {
        self.vm_placement
            .iter()
            .enumerate()
            .filter(|(_, d)| **d == dc)
            .map(|(i, _)| VmId::from_index(i))
            .collect()
    }

    /// True if every VM has an identical spec and every cloudlet an
    /// identical spec — the paper's homogeneous scenario. Schedulers can
    /// use this to detect the degenerate case where cyclic assignment is
    /// provably optimal.
    pub fn is_homogeneous(&self) -> bool {
        let vm_uniform = self.vms.windows(2).all(|w| w[0] == w[1]);
        let cl_uniform = self.cloudlets.windows(2).all(|w| w[0] == w[1]);
        vm_uniform && cl_uniform
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hetero_problem() -> SchedulingProblem {
        let vms = vec![
            VmSpec::new(500.0, 5_000.0, 512.0, 500.0, 1),
            VmSpec::new(4_000.0, 5_000.0, 512.0, 500.0, 1),
        ];
        let cloudlets = vec![
            CloudletSpec::new(1_000.0, 300.0, 300.0, 1),
            CloudletSpec::new(20_000.0, 300.0, 300.0, 1),
        ];
        let dcs = vec![
            DatacenterView {
                id: DatacenterId(0),
                cost: CostModel::new(0.05, 0.004, 0.05, 3.0),
            },
            DatacenterView {
                id: DatacenterId(1),
                cost: CostModel::new(0.01, 0.001, 0.01, 3.0),
            },
        ];
        SchedulingProblem::new(vms, cloudlets, dcs, vec![DatacenterId(0), DatacenterId(1)]).unwrap()
    }

    #[test]
    fn eq6_expected_exec() {
        let p = hetero_problem();
        // c0 on v0: 1000/(1*500)*1000 = 2000ms + 300MB over 500Mbps = 4800ms.
        let d = p.expected_exec_ms(0, 0);
        assert!((d - 6_800.0).abs() < 1e-9, "got {d}");
        // Faster VM yields smaller d.
        assert!(p.expected_exec_ms(0, 1) < d);
        // Heuristic is the inverse.
        assert!((p.heuristic(0, 0) - 1.0 / 6_800.0).abs() < 1e-15);
    }

    #[test]
    fn eq6_clamps_pe_demand() {
        let vms = vec![VmSpec::new(1_000.0, 1.0, 1.0, 500.0, 1)];
        let cls = vec![CloudletSpec::new(1_000.0, 0.0, 0.0, 4)];
        let p = SchedulingProblem::single_datacenter(vms, cls, CostModel::free());
        // Cloudlet wants 4 PEs but the VM has 1 -> compute on 1 PE.
        assert!((p.expected_exec_ms(0, 0) - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn datacenter_lookup() {
        let p = hetero_problem();
        assert_eq!(p.cost_of_vm(1).per_memory, 0.01);
        assert_eq!(p.vms_in_datacenter(DatacenterId(0)), vec![VmId(0)]);
        assert_eq!(p.vms_in_datacenter(DatacenterId(1)), vec![VmId(1)]);
    }

    #[test]
    fn homogeneity_detection() {
        let p = hetero_problem();
        assert!(!p.is_homogeneous());
        let h = SchedulingProblem::single_datacenter(
            vec![VmSpec::homogeneous_default(); 3],
            vec![CloudletSpec::homogeneous_default(); 5],
            CostModel::free(),
        );
        assert!(h.is_homogeneous());
    }

    #[test]
    fn validation_catches_inconsistency() {
        assert!(SchedulingProblem::new(
            vec![],
            vec![],
            vec![DatacenterView {
                id: DatacenterId(0),
                cost: CostModel::free()
            }],
            vec![],
        )
        .is_err());
        assert!(SchedulingProblem::new(
            vec![VmSpec::homogeneous_default()],
            vec![],
            vec![DatacenterView {
                id: DatacenterId(0),
                cost: CostModel::free()
            }],
            vec![DatacenterId(7)],
        )
        .is_err());
    }
}
