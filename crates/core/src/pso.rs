//! Particle Swarm Optimization scheduler — related-work baseline.
//!
//! Section II surveys PSO-based cloud schedulers at length ([18] Pandey et
//! al., [23] Rodriguez & Buyya, [12]/[11] renumbering PSO) and notes that
//! "PSO is the algorithm with the fastest convergence when compared to GA
//! and ACO" [30]. This module implements the discrete PSO those works use:
//!
//! * **Encoding** — one dimension per cloudlet; the continuous position is
//!   discretized by rounding into a VM index ([23]'s "rounded integer
//!   specifying the index of the resource assigned to each task").
//! * **Dynamics** — the classic inertia-weight update
//!   `v ← w·v + c1·r1·(pbest − x) + c2·r2·(gbest − x)`, with `w` decaying
//!   linearly over the run and velocity clamped to ±`v_max`.
//! * **Fitness** — selectable [`Objective`]; [18] optimizes cost, most
//!   others makespan.

//!
//! ```
//! use biosched_core::pso::{ParticleSwarm, PsoParams};
//! use biosched_core::problem::SchedulingProblem;
//! use biosched_core::scheduler::Scheduler;
//! use simcloud::prelude::*;
//!
//! let problem = SchedulingProblem::single_datacenter(
//!     vec![VmSpec::new(1000.0, 5000.0, 512.0, 500.0, 1); 4],
//!     vec![CloudletSpec::new(2_000.0, 0.0, 0.0, 1); 16],
//!     CostModel::default(),
//! );
//! let plan = ParticleSwarm::new(PsoParams::fast(), 42).schedule(&problem);
//! assert_eq!(plan.len(), 16);
//! ```
use rand::rngs::StdRng;
use rand::Rng;
use simcloud::ids::VmId;
use simcloud::rng::stream;

use crate::assignment::Assignment;
use crate::eval::{evaluate_population, EvalCache};
use crate::objective::Objective;
use crate::problem::SchedulingProblem;
use crate::scheduler::Scheduler;

/// PSO tuning parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PsoParams {
    /// Swarm size.
    pub particles: usize,
    /// Iterations.
    pub iterations: usize,
    /// Inertia weight at the first iteration.
    pub inertia_start: f64,
    /// Inertia weight at the last iteration.
    pub inertia_end: f64,
    /// Cognitive coefficient c1 (pull toward the particle's best).
    pub cognitive: f64,
    /// Social coefficient c2 (pull toward the swarm's best).
    pub social: f64,
    /// Velocity clamp as a fraction of the VM count.
    pub v_max_fraction: f64,
    /// What the swarm optimizes.
    pub objective: Objective,
}

impl PsoParams {
    /// Literature-standard configuration (w 0.9→0.4, c1=c2=2).
    pub fn standard() -> Self {
        PsoParams {
            particles: 30,
            iterations: 50,
            inertia_start: 0.9,
            inertia_end: 0.4,
            cognitive: 2.0,
            social: 2.0,
            v_max_fraction: 0.25,
            objective: Objective::Makespan,
        }
    }

    /// A cheaper configuration for sweeps and debug-mode tests.
    pub fn fast() -> Self {
        PsoParams {
            particles: 12,
            iterations: 15,
            ..Self::standard()
        }
    }

    /// Iteration-count scaling law: the standard profile up to
    /// [`crate::aco::AcoParams::SCALE_CUTOVER`] cloudlets, a reduced
    /// profile above it (positions/velocities are cloudlet-length
    /// vectors, so swarm × iterations is what must shrink at 10⁶ scale).
    pub fn for_scale(cloudlets: usize) -> Self {
        if cloudlets > crate::aco::AcoParams::SCALE_CUTOVER {
            PsoParams {
                particles: 10,
                iterations: 8,
                ..Self::standard()
            }
        } else {
            Self::standard()
        }
    }

    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.particles == 0 {
            return Err("particles must be at least 1".into());
        }
        if self.iterations == 0 {
            return Err("iterations must be at least 1".into());
        }
        for (name, v) in [
            ("inertia_start", self.inertia_start),
            ("inertia_end", self.inertia_end),
            ("cognitive", self.cognitive),
            ("social", self.social),
            ("v_max_fraction", self.v_max_fraction),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{name} must be positive, got {v}"));
            }
        }
        Ok(())
    }
}

impl Default for PsoParams {
    fn default() -> Self {
        Self::standard()
    }
}

/// One particle of the swarm.
struct Particle {
    position: Vec<f64>,
    velocity: Vec<f64>,
    best_position: Vec<f64>,
    best_score: f64,
}

/// The PSO scheduler.
pub struct ParticleSwarm {
    params: PsoParams,
    rng: StdRng,
}

impl ParticleSwarm {
    /// Creates a swarm with the given parameters and seed.
    pub fn new(params: PsoParams, seed: u64) -> Self {
        params.validate().expect("invalid PsoParams");
        ParticleSwarm {
            params,
            rng: stream(seed, "pso"),
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &PsoParams {
        &self.params
    }

    /// Discretizes a continuous position into an assignment.
    fn decode(position: &[f64], vm_count: usize) -> Assignment {
        let v = vm_count as f64;
        Assignment::new(
            position
                .iter()
                .map(|x| {
                    // Wrap into [0, v) then floor to a valid index.
                    let wrapped = x.rem_euclid(v);
                    VmId::from_index((wrapped as usize).min(vm_count - 1))
                })
                .collect(),
        )
    }
}

/// The anytime PSO run: swarm state plus an iteration cursor.
///
/// One [`PsoRun::step`] call is one asynchronous swarm iteration
/// (`particles` full-assignment evaluations, the run's deterministic
/// budget unit). [`ParticleSwarm`] drives a `PsoRun` to completion, so a
/// fresh run stepped to done is bit-identical to
/// [`ParticleSwarm::schedule`] with the same params and seed.
pub struct PsoRun {
    params: PsoParams,
    rng: StdRng,
    swarm: Vec<Particle>,
    global_best: (Vec<f64>, f64),
    vm_count: usize,
    dims: usize,
    v_max: f64,
    iter: usize,
}

impl PsoRun {
    /// Starts a run from a cold seed.
    pub fn cold(
        params: PsoParams,
        seed: u64,
        cache: &EvalCache,
        incumbent: Option<&[u32]>,
    ) -> Self {
        params.validate().expect("invalid PsoParams");
        let rng = stream(seed, "pso");
        Self::with_rng(params, rng, cache, incumbent)
    }

    /// Starts a run from an already-positioned RNG stream (how
    /// [`ParticleSwarm`] keeps successive `schedule` rounds on one
    /// instance drawing fresh randomness).
    fn with_rng(
        params: PsoParams,
        mut rng: StdRng,
        cache: &EvalCache,
        incumbent: Option<&[u32]>,
    ) -> Self {
        let dims = cache.cloudlet_count();
        let vm_count = cache.vm_count();
        let v = vm_count as f64;
        let v_max = (v * params.v_max_fraction).max(1.0);
        // Initialize the swarm uniformly over the VM range.
        let n = if dims == 0 { 0 } else { params.particles };
        let mut swarm: Vec<Particle> = (0..n)
            .map(|_| {
                let position: Vec<f64> = (0..dims).map(|_| rng.gen_range(0.0..v)).collect();
                let velocity: Vec<f64> = (0..dims).map(|_| rng.gen_range(-v_max..v_max)).collect();
                Particle {
                    best_position: position.clone(),
                    best_score: f64::INFINITY,
                    position,
                    velocity,
                }
            })
            .collect();
        // Warm start (streaming broker): particle 0 sits at the center of
        // the previous wave's plan (decode cell midpoints, wraparound when
        // sizes differ), so the swarm's social pull starts from the
        // surviving optimum instead of uniform noise.
        if let Some((inc, p0)) = incumbent
            .filter(|inc| !inc.is_empty())
            .zip(swarm.first_mut())
        {
            let vm_cap = (vm_count as u32).max(1) - 1;
            for d in 0..dims {
                p0.position[d] = f64::from(inc[d % inc.len()].min(vm_cap)) + 0.5;
            }
            p0.best_position.clone_from(&p0.position);
        }
        // The initial sweep is order-independent (no RNG in scoring, no
        // gbest yet), so it batches through the evaluation kernel. The
        // step loop below must stay sequential: gbest updates inside the
        // particle loop (asynchronous PSO), so particle k sees the best
        // found by particles 0..k of the same iteration.
        let decoded: Vec<Assignment> = swarm
            .iter()
            .map(|p| ParticleSwarm::decode(&p.position, vm_count))
            .collect();
        let scores = evaluate_population(cache, &decoded, params.objective);
        for (p, score) in swarm.iter_mut().zip(scores) {
            p.best_score = score;
        }
        let global_best = swarm
            .iter()
            .min_by(|a, b| a.best_score.total_cmp(&b.best_score))
            .map(|p| (p.best_position.clone(), p.best_score))
            .unwrap_or((Vec::new(), 0.0));
        PsoRun {
            params,
            rng,
            swarm,
            global_best,
            vm_count,
            dims,
            v_max,
            iter: 0,
        }
    }

    /// Evaluation units charged by swarm initialization.
    pub fn init_units(&self) -> u64 {
        self.swarm.len() as u64
    }

    /// Evaluation units one [`PsoRun::step`] charges.
    pub fn step_units(&self) -> u64 {
        self.swarm.len() as u64
    }

    /// True once every planned iteration has run (or the workload is
    /// empty).
    pub fn done(&self) -> bool {
        self.iter >= self.params.iterations || self.swarm.is_empty()
    }

    /// The swarm-best decoded plan.
    pub fn best_genes(&self) -> Vec<u32> {
        if self.swarm.is_empty() {
            return Vec::new();
        }
        ParticleSwarm::decode(&self.global_best.0, self.vm_count)
            .as_slice()
            .iter()
            .map(|vm| vm.0)
            .collect()
    }

    /// The swarm-best objective score.
    pub fn best_score(&self) -> f64 {
        self.global_best.1
    }

    /// One asynchronous swarm iteration (inertia interpolated by the
    /// iteration cursor). Returns the swarm-best score after the
    /// iteration (monotone non-increasing across steps).
    pub fn step(&mut self, cache: &EvalCache) -> f64 {
        if self.done() {
            return self.global_best.1;
        }
        let dims = self.dims;
        let progress = self.iter as f64 / self.params.iterations.max(1) as f64;
        let w = self.params.inertia_start
            + (self.params.inertia_end - self.params.inertia_start) * progress;
        for p in &mut self.swarm {
            for d in 0..dims {
                let r1: f64 = self.rng.gen_range(0.0..1.0);
                let r2: f64 = self.rng.gen_range(0.0..1.0);
                let vel = w * p.velocity[d]
                    + self.params.cognitive * r1 * (p.best_position[d] - p.position[d])
                    + self.params.social * r2 * (self.global_best.0[d] - p.position[d]);
                p.velocity[d] = vel.clamp(-self.v_max, self.v_max);
                p.position[d] += p.velocity[d];
            }
            let score = {
                let assignment = ParticleSwarm::decode(&p.position, self.vm_count);
                cache.score(assignment.as_slice(), self.params.objective)
            };
            if score < p.best_score {
                p.best_score = score;
                p.best_position.clone_from(&p.position);
            }
            if score < self.global_best.1 {
                self.global_best = (p.position.clone(), score);
            }
        }
        self.iter += 1;
        self.global_best.1
    }
}

impl ParticleSwarm {
    /// Like [`Scheduler::schedule`], but also returns the best objective
    /// score after every iteration — the swarm's convergence curve (the
    /// property the survey [30] credits PSO with: fastest convergence).
    pub fn schedule_traced(&mut self, problem: &SchedulingProblem) -> (Assignment, Vec<f64>) {
        self.run(problem, &EvalCache::new(problem), true, None)
    }

    fn run(
        &mut self,
        problem: &SchedulingProblem,
        cache: &EvalCache,
        traced: bool,
        incumbent: Option<&[u32]>,
    ) -> (Assignment, Vec<f64>) {
        let _ = problem;
        let mut run = PsoRun::with_rng(self.params.clone(), self.rng.clone(), cache, incumbent);
        let mut trace = Vec::new();
        while !run.done() {
            let best = run.step(cache);
            if traced {
                trace.push(best);
            }
        }
        let plan = if run.swarm.is_empty() {
            Assignment::new(Vec::new())
        } else {
            Self::decode(&run.global_best.0, run.vm_count)
        };
        // Carry the advanced stream back so repeated rounds on one
        // instance keep drawing fresh randomness.
        self.rng = run.rng;
        (plan, trace)
    }
}

impl Scheduler for ParticleSwarm {
    fn name(&self) -> &'static str {
        "pso"
    }

    fn schedule(&mut self, problem: &SchedulingProblem) -> Assignment {
        self.run(problem, &EvalCache::new(problem), false, None).0
    }

    fn schedule_with_cache(
        &mut self,
        problem: &SchedulingProblem,
        cache: &EvalCache,
    ) -> Assignment {
        self.run(problem, cache, false, None).0
    }

    fn schedule_warm(
        &mut self,
        problem: &SchedulingProblem,
        cache: &EvalCache,
        warm: &mut crate::warm::WarmState,
    ) -> Assignment {
        let plan = self.run(problem, cache, false, warm.incumbent.as_deref()).0;
        warm.note_plan(&plan);
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::score_assignment;
    use crate::round_robin::RoundRobin;
    use simcloud::characteristics::CostModel;
    use simcloud::cloudlet::CloudletSpec;
    use simcloud::vm::VmSpec;

    fn hetero_problem(vms: usize, cloudlets: usize) -> SchedulingProblem {
        let vm_specs: Vec<VmSpec> = (0..vms)
            .map(|i| VmSpec::new(500.0 + 500.0 * (i % 7) as f64, 5_000.0, 512.0, 500.0, 1))
            .collect();
        let cls: Vec<CloudletSpec> = (0..cloudlets)
            .map(|i| CloudletSpec::new(1_000.0 + 750.0 * (i % 11) as f64, 300.0, 300.0, 1))
            .collect();
        SchedulingProblem::single_datacenter(vm_specs, cls, CostModel::default())
    }

    #[test]
    fn produces_valid_assignments() {
        let p = hetero_problem(8, 30);
        let a = ParticleSwarm::new(PsoParams::fast(), 1).schedule(&p);
        assert!(a.validate(&p).is_ok());
        assert_eq!(a.len(), 30);
    }

    #[test]
    fn decode_wraps_out_of_range_positions() {
        let a = ParticleSwarm::decode(&[-0.5, 3.99, 12.3, 4.0], 4);
        assert!(a.as_slice().iter().all(|v| v.index() < 4));
        // -0.5 wraps to 3.5 -> vm3; 4.0 wraps to 0.0 -> vm0.
        assert_eq!(a.vm_for(0), VmId(3));
        assert_eq!(a.vm_for(3), VmId(0));
    }

    #[test]
    fn beats_round_robin_on_its_objective() {
        let p = hetero_problem(6, 40);
        let pso = ParticleSwarm::new(PsoParams::standard(), 2).schedule(&p);
        let rr = RoundRobin::new().schedule(&p);
        let pso_score = score_assignment(&p, &pso, Objective::Makespan);
        let rr_score = score_assignment(&p, &rr, Objective::Makespan);
        assert!(
            pso_score <= rr_score,
            "PSO {pso_score} should not lose to RR {rr_score} on makespan"
        );
    }

    #[test]
    fn cost_objective_steers_the_swarm() {
        use crate::problem::DatacenterView;
        use simcloud::ids::DatacenterId;
        // Two DCs, one much cheaper.
        let vms = vec![VmSpec::homogeneous_default(); 6];
        let placement: Vec<DatacenterId> =
            (0..6).map(|i| DatacenterId(u32::from(i >= 3))).collect();
        let p = SchedulingProblem::new(
            vms,
            vec![CloudletSpec::new(5_000.0, 300.0, 300.0, 1); 24],
            vec![
                DatacenterView {
                    id: DatacenterId(0),
                    cost: CostModel::new(0.05, 0.004, 0.05, 3.0),
                },
                DatacenterView {
                    id: DatacenterId(1),
                    cost: CostModel::new(0.01, 0.001, 0.01, 3.0),
                },
            ],
            placement,
        )
        .unwrap();
        let params = PsoParams {
            objective: Objective::Cost,
            ..PsoParams::standard()
        };
        let a = ParticleSwarm::new(params, 3).schedule(&p);
        let cheap_share =
            a.as_slice().iter().filter(|vm| vm.index() >= 3).count() as f64 / a.len() as f64;
        assert!(
            cheap_share > 0.6,
            "cost-driven swarm should favor the cheap DC, got {cheap_share}"
        );
    }

    #[test]
    fn more_iterations_never_hurt() {
        let p = hetero_problem(8, 30);
        let short = ParticleSwarm::new(
            PsoParams {
                iterations: 2,
                ..PsoParams::fast()
            },
            4,
        )
        .schedule(&p);
        let long = ParticleSwarm::new(
            PsoParams {
                iterations: 60,
                ..PsoParams::fast()
            },
            4,
        )
        .schedule(&p);
        let s_short = score_assignment(&p, &short, Objective::Makespan);
        let s_long = score_assignment(&p, &long, Objective::Makespan);
        assert!(
            s_long <= s_short,
            "long run {s_long} vs short run {s_short}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let p = hetero_problem(5, 20);
        let a = ParticleSwarm::new(PsoParams::fast(), 6).schedule(&p);
        let b = ParticleSwarm::new(PsoParams::fast(), 6).schedule(&p);
        assert_eq!(a, b);
    }

    #[test]
    fn trace_is_monotone_nonincreasing() {
        let p = hetero_problem(8, 40);
        let (plan, trace) = ParticleSwarm::new(PsoParams::fast(), 8).schedule_traced(&p);
        assert_eq!(trace.len(), PsoParams::fast().iterations);
        assert!(trace.windows(2).all(|w| w[1] <= w[0] + 1e-12));
        // The final trace point is the returned plan's score.
        let final_score = score_assignment(&p, &plan, Objective::Makespan);
        assert!((trace.last().unwrap() - final_score).abs() < 1e-9);
        // Tracing does not change the result.
        let untraced = ParticleSwarm::new(PsoParams::fast(), 8).schedule(&p);
        assert_eq!(plan, untraced);
    }

    #[test]
    fn stepped_run_matches_one_shot_bitwise() {
        // The anytime contract the racing driver relies on: a cold PsoRun
        // stepped to completion is the one-shot schedule, same bits.
        let p = hetero_problem(6, 24);
        let cache = EvalCache::new(&p);
        let mut run = PsoRun::cold(PsoParams::fast(), 21, &cache, None);
        let mut steps = 0;
        let mut last = f64::INFINITY;
        while !run.done() {
            let best = run.step(&cache);
            assert!(best <= last + 1e-12, "swarm best cannot regress");
            last = best;
            steps += 1;
        }
        assert_eq!(steps, PsoParams::fast().iterations);
        let stepped = Assignment::new(run.best_genes().iter().map(|g| VmId(*g)).collect());
        let one_shot = ParticleSwarm::new(PsoParams::fast(), 21).schedule(&p);
        assert_eq!(stepped, one_shot);
        assert_eq!(run.step_units(), PsoParams::fast().particles as u64);
    }

    #[test]
    fn params_validation() {
        assert!(PsoParams {
            particles: 0,
            ..PsoParams::standard()
        }
        .validate()
        .is_err());
        assert!(PsoParams {
            inertia_start: -1.0,
            ..PsoParams::standard()
        }
        .validate()
        .is_err());
        assert!(PsoParams::standard().validate().is_ok());
    }

    #[test]
    fn for_scale_reduces_effort_above_cutover() {
        assert_eq!(PsoParams::for_scale(10_000), PsoParams::standard());
        let big = PsoParams::for_scale(1_000_000);
        assert!(big.particles < PsoParams::standard().particles);
        assert!(big.iterations < PsoParams::standard().iterations);
        assert!(big.validate().is_ok());
    }

    #[test]
    fn empty_workload_is_empty_plan() {
        let p = SchedulingProblem::single_datacenter(
            vec![VmSpec::homogeneous_default()],
            vec![],
            CostModel::free(),
        );
        let a = ParticleSwarm::new(PsoParams::fast(), 7).schedule(&p);
        assert!(a.is_empty());
    }
}
