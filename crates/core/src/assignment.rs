//! Scheduler output: the cloudlet→VM binding.

use simcloud::ids::VmId;

use crate::eval::EvalCache;
use crate::problem::SchedulingProblem;

/// A complete cloudlet→VM map, in cloudlet-id order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    map: Vec<VmId>,
}

impl Assignment {
    /// Wraps a raw map.
    pub fn new(map: Vec<VmId>) -> Self {
        Assignment { map }
    }

    /// The VM bound to cloudlet `c`.
    #[inline]
    pub fn vm_for(&self, c: usize) -> VmId {
        self.map[c]
    }

    /// Number of cloudlets covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no cloudlets are covered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Borrows the raw map.
    pub fn as_slice(&self) -> &[VmId] {
        &self.map
    }

    /// Consumes into the raw map (what the simulator's broker takes).
    pub fn into_vec(self) -> Vec<VmId> {
        self.map
    }

    /// Checks the assignment covers exactly `problem`'s cloudlets and
    /// references only existing VMs.
    pub fn validate(&self, problem: &SchedulingProblem) -> Result<(), String> {
        if self.map.len() != problem.cloudlet_count() {
            return Err(format!(
                "assignment covers {} cloudlets, problem has {}",
                self.map.len(),
                problem.cloudlet_count()
            ));
        }
        if let Some((c, vm)) = self
            .map
            .iter()
            .enumerate()
            .find(|(_, vm)| vm.index() >= problem.vm_count())
        {
            return Err(format!("cloudlet {c} assigned to unknown VM {vm}"));
        }
        Ok(())
    }

    /// How many cloudlets each VM received.
    pub fn counts_per_vm(&self, vm_count: usize) -> Vec<usize> {
        let mut counts = vec![0usize; vm_count];
        for vm in &self.map {
            counts[vm.index()] += 1;
        }
        counts
    }

    /// Estimated busy time per VM in ms under Eq. 6, i.e. the sum of
    /// `expected_exec_ms` of every cloudlet bound to that VM. This is the
    /// quantity greedy/load-aware schedulers balance. One-shot convenience
    /// over [`EvalCache::load_vector`]; repeated callers should build the
    /// cache themselves.
    pub fn estimated_load_ms(&self, problem: &SchedulingProblem) -> Vec<f64> {
        EvalCache::lite(problem).load_vector(&self.map)
    }

    /// Estimated makespan: the max of [`Assignment::estimated_load_ms`].
    pub fn estimated_makespan_ms(&self, problem: &SchedulingProblem) -> f64 {
        self.estimated_load_ms(problem)
            .into_iter()
            .fold(0.0, f64::max)
    }
}

impl From<Vec<VmId>> for Assignment {
    fn from(map: Vec<VmId>) -> Self {
        Assignment::new(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcloud::characteristics::CostModel;
    use simcloud::cloudlet::CloudletSpec;
    use simcloud::vm::VmSpec;

    fn problem() -> SchedulingProblem {
        SchedulingProblem::single_datacenter(
            vec![VmSpec::homogeneous_default(); 2],
            vec![CloudletSpec::new(1_000.0, 0.0, 0.0, 1); 3],
            CostModel::free(),
        )
    }

    #[test]
    fn accessors() {
        let a = Assignment::new(vec![VmId(0), VmId(1), VmId(0)]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert_eq!(a.vm_for(1), VmId(1));
        assert_eq!(a.as_slice(), &[VmId(0), VmId(1), VmId(0)]);
        assert_eq!(a.counts_per_vm(2), vec![2, 1]);
    }

    #[test]
    fn validation() {
        let p = problem();
        assert!(Assignment::new(vec![VmId(0); 3]).validate(&p).is_ok());
        assert!(Assignment::new(vec![VmId(0); 2]).validate(&p).is_err());
        assert!(Assignment::new(vec![VmId(0), VmId(0), VmId(9)])
            .validate(&p)
            .is_err());
    }

    #[test]
    fn load_estimation() {
        let p = problem();
        // 1000 MI on 1000 MIPS = 1000 ms each.
        let a = Assignment::new(vec![VmId(0), VmId(0), VmId(1)]);
        let load = a.estimated_load_ms(&p);
        assert!((load[0] - 2_000.0).abs() < 1e-9);
        assert!((load[1] - 1_000.0).abs() < 1e-9);
        assert!((a.estimated_makespan_ms(&p) - 2_000.0).abs() < 1e-9);
    }

    #[test]
    fn conversion_roundtrip() {
        let raw = vec![VmId(1), VmId(0)];
        let a: Assignment = raw.clone().into();
        assert_eq!(a.into_vec(), raw);
    }
}
