//! The Base Test: CloudSim's default cyclic binder.
//!
//! Section VI-A: *"a simple scheduler that assigns Cloudlets to VMs in a
//! cyclic matter […] vm1 to c1, vm2 to c2, vm1 to c3 and so forth"*. In a
//! homogeneous setup this is provably optimal, which is why the paper uses
//! it as the reference line in every figure.

use simcloud::ids::VmId;

use crate::assignment::Assignment;
use crate::problem::SchedulingProblem;
use crate::scheduler::Scheduler;

/// Cyclic cloudlet→VM binder.
#[derive(Debug, Default, Clone)]
pub struct RoundRobin {
    /// Where the cycle resumes on the next scheduling round.
    cursor: usize,
}

impl RoundRobin {
    /// Creates a binder starting at VM 0.
    pub fn new() -> Self {
        RoundRobin { cursor: 0 }
    }
}

impl Scheduler for RoundRobin {
    fn name(&self) -> &'static str {
        "base-test"
    }

    fn schedule(&mut self, problem: &SchedulingProblem) -> Assignment {
        let n = problem.vm_count();
        let map = (0..problem.cloudlet_count())
            .map(|i| VmId::from_index((self.cursor + i) % n))
            .collect();
        self.cursor = (self.cursor + problem.cloudlet_count()) % n;
        Assignment::new(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcloud::characteristics::CostModel;
    use simcloud::cloudlet::CloudletSpec;
    use simcloud::vm::VmSpec;

    fn problem(vms: usize, cloudlets: usize) -> SchedulingProblem {
        SchedulingProblem::single_datacenter(
            vec![VmSpec::homogeneous_default(); vms],
            vec![CloudletSpec::homogeneous_default(); cloudlets],
            CostModel::free(),
        )
    }

    #[test]
    fn assigns_cyclically() {
        let p = problem(2, 5);
        let a = RoundRobin::new().schedule(&p);
        assert_eq!(a.as_slice(), &[VmId(0), VmId(1), VmId(0), VmId(1), VmId(0)]);
    }

    #[test]
    fn counts_differ_by_at_most_one() {
        let p = problem(7, 100);
        let a = RoundRobin::new().schedule(&p);
        let counts = a.counts_per_vm(7);
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn cursor_persists_across_rounds() {
        let mut rr = RoundRobin::new();
        let p = problem(3, 2);
        let first = rr.schedule(&p);
        let second = rr.schedule(&p);
        assert_eq!(first.as_slice(), &[VmId(0), VmId(1)]);
        assert_eq!(second.as_slice(), &[VmId(2), VmId(0)]);
    }

    #[test]
    fn single_vm_gets_everything() {
        let p = problem(1, 4);
        let a = RoundRobin::new().schedule(&p);
        assert!(a.as_slice().iter().all(|v| *v == VmId(0)));
    }
}
