//! Divide-and-conquer meta-scheduler: shard the fleet, schedule shards in
//! parallel, merge the assignments.
//!
//! The metaheuristics in this crate optimize one global batch at a time.
//! At paper scale (1M cloudlets × 100k VMs) even the candidate-list fast
//! path leaves a long serial colony sweep; this wrapper gives the
//! schedulers the same parallel scaling the sharded sim engine already
//! has. VMs are partitioned into shards (per datacenter, or balanced
//! contiguous ranges), cloudlets are distributed to shards proportionally
//! to shard MIPS capacity by a deterministic largest-remainder
//! accumulator, every shard becomes an independent [`SchedulingProblem`]
//! scheduled through [`eval::par_map_if`], and the local assignments are
//! mapped back to global [`VmId`]s.
//!
//! Sharding changes results versus the global run (pheromone and tabu
//! state never cross shards), so this is an explicit opt-in mode —
//! quality deltas are recorded in `BENCH_schedulers.json`, not promised
//! bitwise. Determinism is preserved: shard seeds are derived from the
//! wrapper's seed, the shard index and an internal round counter, so the
//! same construction always yields the same merged plan at any thread
//! count (the fan-out is order-preserving).

use std::ops::Range;

use simcloud::ids::VmId;

use crate::assignment::Assignment;
use crate::eval;
use crate::problem::SchedulingProblem;
use crate::scheduler::{AlgorithmKind, Scheduler};

/// How [`DivideAndConquer`] partitions the VM fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardSpec {
    /// Balanced contiguous VM ranges (clamped to the fleet size so every
    /// shard holds at least one VM).
    Count(usize),
    /// One shard per datacenter that hosts at least one VM.
    ByDatacenter,
}

impl ShardSpec {
    /// Validates the spec independent of any problem.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ShardSpec::Count(0) => Err("shards must be at least 1".into()),
            _ => Ok(()),
        }
    }
}

/// Builds a fresh inner scheduler per shard; the `u64` is the shard seed.
pub type ShardSchedulerBuilder = Box<dyn Fn(u64) -> Box<dyn Scheduler> + Send + Sync>;

/// The divide-and-conquer wrapper. See the module docs.
pub struct DivideAndConquer {
    spec: ShardSpec,
    seed: u64,
    round: u64,
    builder: ShardSchedulerBuilder,
}

impl DivideAndConquer {
    /// Wraps an arbitrary scheduler constructor.
    pub fn new(spec: ShardSpec, seed: u64, builder: ShardSchedulerBuilder) -> Result<Self, String> {
        spec.validate()?;
        Ok(DivideAndConquer {
            spec,
            seed,
            round: 0,
            builder,
        })
    }

    /// Wraps one of the stock algorithm kinds.
    pub fn of_kind(kind: AlgorithmKind, spec: ShardSpec, seed: u64) -> Result<Self, String> {
        Self::new(
            spec,
            seed,
            Box::new(move |shard_seed| kind.build(shard_seed)),
        )
    }

    /// VM index groups for `problem` under the spec. Every group is
    /// non-empty and ascending; together they cover the fleet exactly.
    fn shard_vms(&self, problem: &SchedulingProblem) -> Vec<Vec<usize>> {
        let v = problem.vm_count();
        match self.spec {
            ShardSpec::Count(n) => {
                let n = n.min(v).max(1);
                split_ranges(v, n)
                    .into_iter()
                    .map(|r| r.collect())
                    .collect()
            }
            ShardSpec::ByDatacenter => {
                let mut groups: Vec<Vec<usize>> = vec![Vec::new(); problem.datacenters.len()];
                for (vm, dc) in problem.vm_placement.iter().enumerate() {
                    groups[dc.index()].push(vm);
                }
                groups.retain(|g| !g.is_empty());
                groups
            }
        }
    }

    fn run(&mut self, problem: &SchedulingProblem) -> Assignment {
        let shards = self.shard_vms(problem);
        if shards.len() <= 1 {
            let mut inner = (self.builder)(shard_seed(self.seed, self.round, 0));
            self.round += 1;
            return inner.schedule(problem);
        }

        // Cloudlets per shard, proportional to shard MIPS×PEs capacity:
        // a deterministic credit accumulator (each cloudlet goes to the
        // shard with the largest outstanding quota) keeps the split exact
        // for any fraction without floating-point drift ever skipping or
        // double-assigning a cloudlet.
        let capacity: Vec<f64> = shards
            .iter()
            .map(|vms| {
                vms.iter()
                    .map(|&vm| problem.vms[vm].mips * f64::from(problem.vms[vm].pes))
                    .sum::<f64>()
            })
            .collect();
        let total_capacity: f64 = capacity.iter().sum();
        let share: Vec<f64> = if total_capacity.is_finite() && total_capacity > 0.0 {
            capacity.iter().map(|c| c / total_capacity).collect()
        } else {
            vec![1.0 / shards.len() as f64; shards.len()]
        };

        let c = problem.cloudlet_count();
        // cloudlet_shard[c] = (shard, local index within the shard).
        let mut cloudlet_shard: Vec<(u32, u32)> = Vec::with_capacity(c);
        let mut shard_cloudlets: Vec<Vec<usize>> = vec![Vec::new(); shards.len()];
        let mut credit = vec![0.0f64; shards.len()];
        for cl in 0..c {
            let mut pick = 0;
            for s in 0..shards.len() {
                credit[s] += share[s];
                if credit[s] > credit[pick] {
                    pick = s;
                }
            }
            credit[pick] -= 1.0;
            cloudlet_shard.push((pick as u32, shard_cloudlets[pick].len() as u32));
            shard_cloudlets[pick].push(cl);
        }

        // Independent subproblems: the shard's VMs/cloudlets with the full
        // datacenter list (placement indices stay valid unchanged).
        let subproblems: Vec<SchedulingProblem> = shards
            .iter()
            .zip(&shard_cloudlets)
            .map(|(vms, cls)| SchedulingProblem {
                vms: vms.iter().map(|&vm| problem.vms[vm].clone()).collect(),
                cloudlets: cls
                    .iter()
                    .map(|&cl| problem.cloudlets[cl].clone())
                    .collect(),
                datacenters: problem.datacenters.clone(),
                vm_placement: vms.iter().map(|&vm| problem.vm_placement[vm]).collect(),
            })
            .collect();

        let seeds: Vec<u64> = (0..shards.len() as u64)
            .map(|s| shard_seed(self.seed, self.round, s))
            .collect();
        self.round += 1;

        let builder = &self.builder;
        let indexed: Vec<usize> = (0..subproblems.len()).collect();
        let locals: Vec<Assignment> = eval::par_map_if(subproblems.len() >= 2, &indexed, |&s| {
            let mut inner = builder(seeds[s]);
            inner.schedule(&subproblems[s])
        });

        // Merge: map each shard-local VM index back to the global fleet.
        let mut map = vec![VmId(0); c];
        for (cl, &(shard, local_cl)) in cloudlet_shard.iter().enumerate() {
            let local_vm = locals[shard as usize].as_slice()[local_cl as usize];
            map[cl] = VmId(shards[shard as usize][local_vm.index()] as u32);
        }
        Assignment::new(map)
    }
}

/// Derives a shard's seed from the wrapper seed, the scheduling round and
/// the shard index — distinct, deterministic streams per shard and round.
fn shard_seed(seed: u64, round: u64, shard: u64) -> u64 {
    simcloud::rng::mix(
        seed ^ round.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        &format!("dnc-shard-{shard}"),
    )
}

/// Splits `0..total` into `parts` contiguous near-equal ranges.
fn split_ranges(total: usize, parts: usize) -> Vec<Range<usize>> {
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

impl Scheduler for DivideAndConquer {
    fn name(&self) -> &'static str {
        "divide-and-conquer"
    }

    fn schedule(&mut self, problem: &SchedulingProblem) -> Assignment {
        self.run(problem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcloud::characteristics::CostModel;
    use simcloud::cloudlet::CloudletSpec;
    use simcloud::ids::DatacenterId;
    use simcloud::vm::VmSpec;

    fn problem(vms: usize, cloudlets: usize) -> SchedulingProblem {
        let vm_specs: Vec<VmSpec> = (0..vms)
            .map(|i| {
                let mips = if i % 2 == 0 { 500.0 } else { 4_000.0 };
                VmSpec::new(mips, 5_000.0, 512.0, 500.0, 1)
            })
            .collect();
        let cl = CloudletSpec::new(10_000.0, 0.0, 0.0, 1);
        SchedulingProblem::single_datacenter(vm_specs, vec![cl; cloudlets], CostModel::default())
    }

    fn two_dc_problem() -> SchedulingProblem {
        let vms: Vec<VmSpec> = (0..12)
            .map(|_| VmSpec::new(1_000.0, 5_000.0, 512.0, 500.0, 1))
            .collect();
        let cloudlets = vec![CloudletSpec::new(5_000.0, 0.0, 0.0, 1); 60];
        let dcs = vec![
            crate::problem::DatacenterView {
                id: DatacenterId(0),
                cost: CostModel::default(),
            },
            crate::problem::DatacenterView {
                id: DatacenterId(1),
                cost: CostModel::default(),
            },
        ];
        // VMs 0..8 in DC 0, VMs 8..12 in DC 1.
        let placement = (0..12).map(|i| DatacenterId(u32::from(i >= 8))).collect();
        SchedulingProblem::new(vms, cloudlets, dcs, placement).unwrap()
    }

    #[test]
    fn merges_into_a_complete_valid_assignment() {
        let p = problem(16, 100);
        let mut dnc =
            DivideAndConquer::of_kind(AlgorithmKind::AntColony, ShardSpec::Count(4), 42).unwrap();
        let a = dnc.schedule(&p);
        assert!(a.validate(&p).is_ok());
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn deterministic_per_seed_and_advances_per_round() {
        let p = problem(16, 60);
        let mut a1 =
            DivideAndConquer::of_kind(AlgorithmKind::AntColony, ShardSpec::Count(4), 7).unwrap();
        let mut a2 =
            DivideAndConquer::of_kind(AlgorithmKind::AntColony, ShardSpec::Count(4), 7).unwrap();
        let first = a1.schedule(&p);
        assert_eq!(first, a2.schedule(&p), "same seed, same plan");
        assert_ne!(first, a1.schedule(&p), "rounds draw fresh shard seeds");
        let mut b =
            DivideAndConquer::of_kind(AlgorithmKind::AntColony, ShardSpec::Count(4), 8).unwrap();
        assert_ne!(first, b.schedule(&p), "different seed, different plan");
    }

    #[test]
    fn contiguous_shards_respect_vm_ranges() {
        // 16 VMs in 4 shards of 4: a cloudlet routed to shard s must land
        // on a VM in [4s, 4s+4).
        let p = problem(16, 80);
        let mut dnc =
            DivideAndConquer::of_kind(AlgorithmKind::BaseTest, ShardSpec::Count(4), 1).unwrap();
        let a = dnc.schedule(&p);
        // Every VM range receives some work under a balanced split.
        let counts = a.counts_per_vm(16);
        for shard in 0..4 {
            let total: usize = counts[shard * 4..(shard + 1) * 4].iter().sum();
            assert!(total > 0, "shard {shard} received no cloudlets");
        }
    }

    #[test]
    fn by_datacenter_keeps_cloudlets_inside_their_shard_dc() {
        let p = two_dc_problem();
        let mut dnc =
            DivideAndConquer::of_kind(AlgorithmKind::AntColony, ShardSpec::ByDatacenter, 3)
                .unwrap();
        let a = dnc.schedule(&p);
        assert!(a.validate(&p).is_ok());
        // Both DCs host VMs, so both receive work (2/3 vs 1/3 capacity).
        let counts = a.counts_per_vm(12);
        let dc0: usize = counts[..8].iter().sum();
        let dc1: usize = counts[8..].iter().sum();
        assert!(dc0 > 0 && dc1 > 0);
        // Capacity-proportional split: DC0 has 2× the capacity of DC1.
        assert!(
            dc0 > dc1,
            "larger DC should receive more cloudlets: {dc0} vs {dc1}"
        );
    }

    #[test]
    fn capacity_proportional_cloudlet_split() {
        // One shard 3× the capacity: it must receive ~3× the cloudlets.
        let mut vms: Vec<VmSpec> = (0..4)
            .map(|_| VmSpec::new(1_000.0, 5_000.0, 512.0, 500.0, 1))
            .collect();
        vms[0] = VmSpec::new(3_000.0, 5_000.0, 512.0, 500.0, 1);
        vms[1] = VmSpec::new(3_000.0, 5_000.0, 512.0, 500.0, 1);
        let p = SchedulingProblem::single_datacenter(
            vms,
            vec![CloudletSpec::new(5_000.0, 0.0, 0.0, 1); 80],
            CostModel::default(),
        );
        let mut dnc =
            DivideAndConquer::of_kind(AlgorithmKind::BaseTest, ShardSpec::Count(2), 5).unwrap();
        let a = dnc.schedule(&p);
        let counts = a.counts_per_vm(4);
        let big: usize = counts[..2].iter().sum();
        let small: usize = counts[2..].iter().sum();
        assert_eq!(big + small, 80);
        assert_eq!(big, 60, "3:1 capacity split of 80 cloudlets");
    }

    #[test]
    fn single_shard_degenerates_to_inner_scheduler() {
        let p = problem(8, 30);
        let mut dnc =
            DivideAndConquer::of_kind(AlgorithmKind::AntColony, ShardSpec::Count(1), 9).unwrap();
        let a = dnc.schedule(&p);
        assert!(a.validate(&p).is_ok());
    }

    #[test]
    fn shard_count_clamps_to_fleet() {
        let p = problem(3, 12);
        let mut dnc =
            DivideAndConquer::of_kind(AlgorithmKind::BaseTest, ShardSpec::Count(64), 2).unwrap();
        let a = dnc.schedule(&p);
        assert!(a.validate(&p).is_ok());
    }

    #[test]
    fn zero_shards_is_a_validation_error() {
        assert!(
            DivideAndConquer::of_kind(AlgorithmKind::BaseTest, ShardSpec::Count(0), 1).is_err()
        );
        assert!(ShardSpec::Count(0).validate().is_err());
        assert!(ShardSpec::ByDatacenter.validate().is_ok());
    }
}
