//! Portfolio meta-scheduler.
//!
//! A second reading of the paper's future-work proposal: instead of
//! *predicting* which algorithm suits the declared objective (the
//! [`crate::hybrid::Hybrid`] approach), run a portfolio of candidates and
//! *measure* which assignment scores best under the objective's analytic
//! estimate. Decision time is the sum of the candidates'; quality is, by
//! construction, the best of them — the classic algorithm-portfolio
//! trade-off.

//!
//! ```
//! use biosched_core::objective::Objective;
//! use biosched_core::portfolio::Portfolio;
//! use biosched_core::problem::SchedulingProblem;
//! use biosched_core::scheduler::Scheduler;
//! use simcloud::prelude::*;
//!
//! let problem = SchedulingProblem::single_datacenter(
//!     vec![VmSpec::new(500.0, 5000.0, 512.0, 500.0, 1),
//!          VmSpec::new(2000.0, 5000.0, 512.0, 500.0, 1)],
//!     vec![CloudletSpec::new(4_000.0, 300.0, 300.0, 1); 8],
//!     CostModel::default(),
//! );
//! let mut portfolio = Portfolio::paper_set(Objective::Makespan, 42);
//! let plan = portfolio.schedule(&problem);
//! assert!(plan.validate(&problem).is_ok());
//! assert!(portfolio.last_winner_name().is_some());
//! ```
use crate::assignment::Assignment;
use crate::eval::EvalCache;
use crate::objective::Objective;
use crate::problem::SchedulingProblem;
use crate::scheduler::{AlgorithmKind, MetaProvenance, Scheduler};

/// Runs every candidate and keeps the best-scoring assignment.
pub struct Portfolio {
    candidates: Vec<Box<dyn Scheduler>>,
    objective: Objective,
    /// Which candidate won the most recent round (diagnostics).
    last_winner: Option<usize>,
}

impl Portfolio {
    /// Builds a portfolio from explicit candidates.
    ///
    /// Panics on an empty candidate list.
    pub fn new(candidates: Vec<Box<dyn Scheduler>>, objective: Objective) -> Self {
        assert!(!candidates.is_empty(), "portfolio needs candidates");
        Portfolio {
            candidates,
            objective,
            last_winner: None,
        }
    }

    /// The paper's four studied algorithms as a portfolio.
    pub fn paper_set(objective: Objective, seed: u64) -> Self {
        Portfolio::new(
            AlgorithmKind::PAPER_SET
                .iter()
                .map(|k| k.build(seed))
                .collect(),
            objective,
        )
    }

    /// Name of the candidate that produced the last returned assignment.
    pub fn last_winner_name(&self) -> Option<&'static str> {
        self.last_winner.map(|i| self.candidates[i].name())
    }

    /// The objective candidates compete on.
    pub fn objective(&self) -> Objective {
        self.objective
    }
}

impl Scheduler for Portfolio {
    fn name(&self) -> &'static str {
        "portfolio"
    }

    fn schedule(&mut self, problem: &SchedulingProblem) -> Assignment {
        // One cache runs and scores every candidate's plan this round.
        self.schedule_with_cache(problem, &EvalCache::new(problem))
    }

    fn schedule_with_cache(
        &mut self,
        problem: &SchedulingProblem,
        cache: &EvalCache,
    ) -> Assignment {
        let mut best: Option<(usize, f64, Assignment)> = None;
        for (i, candidate) in self.candidates.iter_mut().enumerate() {
            let assignment = candidate.schedule_with_cache(problem, cache);
            debug_assert!(assignment.validate(problem).is_ok());
            let score = cache.score(assignment.as_slice(), self.objective);
            if best.as_ref().is_none_or(|(_, s, _)| score < *s) {
                best = Some((i, score, assignment));
            }
        }
        let (winner, _, assignment) = best.expect("portfolio has candidates");
        self.last_winner = Some(winner);
        assignment
    }

    fn last_meta(&self) -> Option<MetaProvenance> {
        // Every candidate runs to completion each round; in the racer's
        // evaluation-unit currency that is one full decision per member.
        self.last_winner.map(|i| MetaProvenance {
            winner: self.candidates[i].name().to_string(),
            spent: self
                .candidates
                .iter()
                .map(|c| (c.name().to_string(), 1))
                .collect(),
            total_units: self.candidates.len() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aco::{AcoParams, AntColony};
    use crate::hbo::{HboParams, HoneyBee};
    use crate::objective::score_assignment;
    use crate::round_robin::RoundRobin;
    use simcloud::characteristics::CostModel;
    use simcloud::cloudlet::CloudletSpec;
    use simcloud::vm::VmSpec;

    fn problem() -> SchedulingProblem {
        let vms: Vec<VmSpec> = (0..8)
            .map(|i| VmSpec::new(500.0 + 450.0 * i as f64, 5_000.0, 512.0, 500.0, 1))
            .collect();
        let cls: Vec<CloudletSpec> = (0..40)
            .map(|i| CloudletSpec::new(1_000.0 + 480.0 * i as f64, 300.0, 300.0, 1))
            .collect();
        SchedulingProblem::single_datacenter(vms, cls, CostModel::default())
    }

    fn fast_portfolio(objective: Objective) -> Portfolio {
        Portfolio::new(
            vec![
                Box::new(RoundRobin::new()),
                Box::new(AntColony::new(AcoParams::fast(), 1)),
                Box::new(HoneyBee::new(HboParams::paper(), 1)),
            ],
            objective,
        )
    }

    #[test]
    fn never_worse_than_any_candidate() {
        let p = problem();
        let portfolio_score = {
            let mut portfolio = fast_portfolio(Objective::Makespan);
            let a = portfolio.schedule(&p);
            score_assignment(&p, &a, Objective::Makespan)
        };
        for mut candidate in [
            Box::new(RoundRobin::new()) as Box<dyn Scheduler>,
            Box::new(AntColony::new(AcoParams::fast(), 1)),
            Box::new(HoneyBee::new(HboParams::paper(), 1)),
        ] {
            let s = score_assignment(&p, &candidate.schedule(&p), Objective::Makespan);
            assert!(
                portfolio_score <= s + 1e-9,
                "portfolio {portfolio_score} lost to {} ({s})",
                candidate.name()
            );
        }
    }

    #[test]
    fn reports_the_winner() {
        let p = problem();
        let mut portfolio = fast_portfolio(Objective::Makespan);
        assert!(portfolio.last_winner_name().is_none());
        let _ = portfolio.schedule(&p);
        let winner = portfolio.last_winner_name().expect("a round was run");
        assert!(["base-test", "ant-colony", "honey-bee"].contains(&winner));
    }

    #[test]
    fn objective_steers_the_winner() {
        // On a strongly heterogeneous problem the makespan portfolio picks
        // a load/speed-aware candidate, not the blind cycle.
        let p = problem();
        let mut portfolio = fast_portfolio(Objective::Makespan);
        let _ = portfolio.schedule(&p);
        assert_ne!(portfolio.last_winner_name(), Some("base-test"));
        assert_eq!(portfolio.objective(), Objective::Makespan);
    }

    #[test]
    fn paper_set_portfolio_schedules_validly() {
        let p = problem();
        let mut portfolio = Portfolio::paper_set(Objective::Cost, 5);
        let a = portfolio.schedule(&p);
        assert!(a.validate(&p).is_ok());
    }

    #[test]
    #[should_panic(expected = "candidates")]
    fn empty_portfolio_rejected() {
        let _ = Portfolio::new(vec![], Objective::Makespan);
    }
}
