//! Discrete cuckoo-flavored Symbiotic Organisms Search scheduler.
//!
//! Related-work family (arXiv 2311.15358): SOS evolves an *ecosystem* of
//! candidate assignments through three interaction phases per iteration,
//! here discretized over cloudlet→VM gene vectors and hybridized with a
//! cuckoo-style brood-parasitism jump:
//!
//! * **Mutualism** — organism `i` and a random partner `j` exchange genes
//!   with a pull toward the ecosystem's best: every child gene comes from
//!   `{xᵢ[d], xⱼ[d], best[d]}` (the discrete analog of
//!   `xᵢ + rand·(best − mutual_vector)`). Greedy acceptance.
//! * **Commensalism** — organism `i` copies a sparse random subset of a
//!   partner's genes (the partner is unaffected, as in the metaphor).
//!   Greedy acceptance.
//! * **Parasitism (cuckoo)** — a parasite clone of `i` re-rolls a
//!   [`CsosParams::pa`] fraction of its genes uniformly (the cuckoo's
//!   egg), then is laid into a random *other* nest: it replaces that
//!   victim only if strictly fitter.
//!
//! Greedy acceptance in every phase makes the ecosystem's best score
//! monotone non-increasing — the property the racing driver's incumbent
//! contract relies on. All scoring goes through [`EvalCache`]; the phase
//! loop is sequential per organism (organism `i` sees the ecosystem as
//! already updated by organisms `0..i` of the same iteration), so plans
//! are bit-identical per seed at any thread count.
//!
//! [`CsosRun`] is the native anytime stepper ([`CsosRun::step`] = one full
//! ecosystem iteration); [`CuckooSos`] runs it to completion behind the
//! ordinary [`Scheduler`] interface, so the one-shot plan and the stepped
//! plan are the same bits by construction.
//!
//! ```
//! use biosched_core::cuckoo_sos::{CsosParams, CuckooSos};
//! use biosched_core::problem::SchedulingProblem;
//! use biosched_core::scheduler::Scheduler;
//! use simcloud::prelude::*;
//!
//! let problem = SchedulingProblem::single_datacenter(
//!     vec![VmSpec::new(1000.0, 5000.0, 512.0, 500.0, 1); 4],
//!     vec![CloudletSpec::new(2_000.0, 0.0, 0.0, 1); 16],
//!     CostModel::default(),
//! );
//! let plan = CuckooSos::new(CsosParams::fast(), 42).schedule(&problem);
//! assert!(plan.validate(&problem).is_ok());
//! ```
use rand::rngs::StdRng;
use rand::Rng;
use simcloud::ids::VmId;
use simcloud::rng::stream;

use crate::assignment::Assignment;
use crate::eval::{evaluate_population, EvalCache};
use crate::objective::Objective;
use crate::problem::SchedulingProblem;
use crate::scheduler::Scheduler;

/// Cuckoo-SOS tuning parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CsosParams {
    /// Ecosystem size (number of organisms).
    pub population: usize,
    /// Ecosystem iterations (each runs all three phases per organism).
    pub iterations: usize,
    /// Fraction of genes the cuckoo parasite re-rolls uniformly.
    pub pa: f64,
    /// Probability a commensalism gene is copied from the partner.
    pub commensal_rate: f64,
    /// What the ecosystem optimizes.
    pub objective: Objective,
}

impl CsosParams {
    /// Literature-standard configuration.
    pub fn standard() -> Self {
        CsosParams {
            population: 20,
            iterations: 30,
            pa: 0.25,
            commensal_rate: 0.25,
            objective: Objective::Makespan,
        }
    }

    /// A cheaper configuration for sweeps and debug-mode tests.
    pub fn fast() -> Self {
        CsosParams {
            population: 8,
            iterations: 10,
            ..Self::standard()
        }
    }

    /// Iteration-count scaling law: the standard profile up to
    /// [`crate::aco::AcoParams::SCALE_CUTOVER`] cloudlets, a reduced
    /// profile above it (organisms are cloudlet-length gene vectors, so
    /// ecosystem × iterations is what must shrink at 10⁶ scale).
    pub fn for_scale(cloudlets: usize) -> Self {
        if cloudlets > crate::aco::AcoParams::SCALE_CUTOVER {
            CsosParams {
                population: 8,
                iterations: 6,
                ..Self::standard()
            }
        } else {
            Self::standard()
        }
    }

    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.population < 2 {
            return Err("population must be at least 2 (phases need a partner)".into());
        }
        if self.iterations == 0 {
            return Err("iterations must be at least 1".into());
        }
        if !(0.0..=1.0).contains(&self.pa) {
            return Err(format!("pa must be in [0,1], got {}", self.pa));
        }
        if !(0.0..=1.0).contains(&self.commensal_rate) {
            return Err(format!(
                "commensal_rate must be in [0,1], got {}",
                self.commensal_rate
            ));
        }
        Ok(())
    }
}

impl Default for CsosParams {
    fn default() -> Self {
        Self::standard()
    }
}

/// Geometric-skip gap to the next selected gene for a per-gene Bernoulli
/// with probability `p` (same distribution as one coin per gene, O(dims·p)
/// draws instead of O(dims); see `ga::mutation_skip`).
fn bernoulli_skip(rng: &mut StdRng, p: f64) -> usize {
    if p >= 1.0 {
        return 0;
    }
    if p <= 0.0 {
        return usize::MAX;
    }
    let u: f64 = rng.gen();
    let skip = ((1.0 - u).ln() / (1.0 - p).ln()).floor();
    if skip.is_finite() && skip >= 0.0 {
        skip as usize
    } else {
        usize::MAX
    }
}

/// Mutualism move rule: every child gene comes from the organism itself
/// (probability 1/2), the partner (1/4) or the ecosystem's best (1/4) —
/// the discrete rendering of "step toward best minus the mutual vector".
fn mutualism_child(rng: &mut StdRng, xi: &[u32], xj: &[u32], best: &[u32]) -> Vec<u32> {
    (0..xi.len())
        .map(|d| {
            let u: f64 = rng.gen();
            if u < 0.5 {
                xi[d]
            } else if u < 0.75 {
                xj[d]
            } else {
                best[d]
            }
        })
        .collect()
}

/// Commensalism move rule: the child is the organism with a sparse
/// `rate`-fraction of genes copied from the (unaffected) partner.
fn commensalism_child(rng: &mut StdRng, xi: &[u32], xk: &[u32], rate: f64) -> Vec<u32> {
    let mut child = xi.to_vec();
    let mut d = bernoulli_skip(rng, rate);
    while d < child.len() {
        child[d] = xk[d];
        d = d
            .saturating_add(1)
            .saturating_add(bernoulli_skip(rng, rate));
    }
    child
}

/// Cuckoo parasitism move rule: a clone of the host with a `pa`-fraction
/// of genes re-rolled uniformly over the fleet — the cuckoo's egg.
fn parasite_egg(rng: &mut StdRng, host: &[u32], v: u32, pa: f64) -> Vec<u32> {
    let mut egg = host.to_vec();
    let mut d = bernoulli_skip(rng, pa);
    while d < egg.len() {
        egg[d] = rng.gen_range(0..v);
        d = d.saturating_add(1).saturating_add(bernoulli_skip(rng, pa));
    }
    egg
}

/// The anytime cuckoo-SOS run: ecosystem state plus an iteration cursor.
///
/// One [`CsosRun::step`] call runs all three phases over every organism —
/// `3 × population` full-assignment evaluations, the run's deterministic
/// budget unit. Running a fresh `CsosRun` to completion is bit-identical
/// to [`CuckooSos::schedule`] with the same params and seed.
pub struct CsosRun {
    params: CsosParams,
    rng: StdRng,
    organisms: Vec<(Vec<u32>, f64)>,
    v: u32,
    iter: usize,
}

impl CsosRun {
    /// Starts a run from a cold seed: ecosystem of one cyclic organism,
    /// an optional warm `incumbent` clone, and random fill, batch-scored
    /// through the evaluation kernel (`population` evaluation units).
    pub fn cold(
        params: CsosParams,
        seed: u64,
        cache: &EvalCache,
        incumbent: Option<&[u32]>,
    ) -> Self {
        params.validate().expect("invalid CsosParams");
        let mut rng = stream(seed, "cuckoo-sos");
        let dims = cache.cloudlet_count();
        let v = (cache.vm_count() as u32).max(1);
        let mut genomes: Vec<Vec<u32>> = Vec::with_capacity(params.population);
        if dims > 0 {
            genomes.push((0..dims).map(|i| (i as u32) % v).collect());
            if let Some(inc) = incumbent.filter(|inc| !inc.is_empty()) {
                genomes.push((0..dims).map(|i| inc[i % inc.len()].min(v - 1)).collect());
            }
            while genomes.len() < params.population {
                genomes.push((0..dims).map(|_| rng.gen_range(0..v)).collect());
            }
        }
        let scores = evaluate_population(cache, &genomes, params.objective);
        CsosRun {
            params,
            rng,
            organisms: genomes.into_iter().zip(scores).collect(),
            v,
            iter: 0,
        }
    }

    /// Evaluation units charged by ecosystem initialization.
    pub fn init_units(&self) -> u64 {
        self.organisms.len() as u64
    }

    /// Evaluation units one [`CsosRun::step`] charges.
    pub fn step_units(&self) -> u64 {
        3 * self.organisms.len() as u64
    }

    /// True once every planned iteration has run (or the workload is
    /// empty).
    pub fn done(&self) -> bool {
        self.iter >= self.params.iterations || self.organisms.is_empty()
    }

    /// Index of the fittest organism.
    fn best_index(&self) -> usize {
        self.organisms
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// The fittest organism's genes (empty for an empty workload).
    pub fn best_genes(&self) -> &[u32] {
        if self.organisms.is_empty() {
            &[]
        } else {
            &self.organisms[self.best_index()].0
        }
    }

    /// The fittest organism's objective score.
    pub fn best_score(&self) -> f64 {
        if self.organisms.is_empty() {
            0.0
        } else {
            self.organisms[self.best_index()].1
        }
    }

    /// Draws a partner index distinct from `i`.
    fn partner(&mut self, i: usize) -> usize {
        let n = self.organisms.len();
        let j = self.rng.gen_range(0..n - 1);
        if j >= i {
            j + 1
        } else {
            j
        }
    }

    /// One ecosystem iteration: mutualism, commensalism and cuckoo
    /// parasitism for every organism, in index order. Returns the best
    /// score after the iteration (monotone non-increasing across steps).
    pub fn step(&mut self, cache: &EvalCache) -> f64 {
        if self.done() {
            return self.best_score();
        }
        let objective = self.params.objective;
        for i in 0..self.organisms.len() {
            let best = self.best_index();
            // Mutualism with a random partner, pulled toward the best.
            let j = self.partner(i);
            let child = {
                let xi = &self.organisms[i].0;
                let xj = &self.organisms[j].0;
                let xb = &self.organisms[best].0;
                mutualism_child(&mut self.rng, xi, xj, xb)
            };
            let score = cache.score_genes(&child, objective);
            if score < self.organisms[i].1 {
                self.organisms[i] = (child, score);
            }
            // Commensalism: benefit from a partner that stays unchanged.
            let k = self.partner(i);
            let child = {
                let xi = &self.organisms[i].0;
                let xk = &self.organisms[k].0;
                commensalism_child(&mut self.rng, xi, xk, self.params.commensal_rate)
            };
            let score = cache.score_genes(&child, objective);
            if score < self.organisms[i].1 {
                self.organisms[i] = (child, score);
            }
            // Cuckoo parasitism: lay a mutated egg in another nest.
            let egg = parasite_egg(&mut self.rng, &self.organisms[i].0, self.v, self.params.pa);
            let score = cache.score_genes(&egg, objective);
            let m = self.partner(i);
            if score < self.organisms[m].1 {
                self.organisms[m] = (egg, score);
            }
        }
        self.iter += 1;
        self.best_score()
    }

    /// Runs the remaining iterations and returns the best plan.
    fn finish(mut self, cache: &EvalCache) -> Assignment {
        while !self.done() {
            self.step(cache);
        }
        Assignment::new(self.best_genes().iter().map(|g| VmId(*g)).collect())
    }
}

/// The cuckoo-SOS scheduler (one-shot façade over [`CsosRun`]).
pub struct CuckooSos {
    params: CsosParams,
    seed: u64,
    rounds: u64,
}

impl CuckooSos {
    /// Creates a scheduler with the given parameters and seed.
    pub fn new(params: CsosParams, seed: u64) -> Self {
        params.validate().expect("invalid CsosParams");
        CuckooSos {
            params,
            seed,
            rounds: 0,
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &CsosParams {
        &self.params
    }

    /// Per-round run seed: successive `schedule` calls on one instance
    /// draw fresh streams, like the other stochastic kinds.
    fn round_seed(&mut self) -> u64 {
        let round = self.rounds;
        self.rounds += 1;
        self.seed
            .wrapping_add(round.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

impl Scheduler for CuckooSos {
    fn name(&self) -> &'static str {
        "cuckoo-sos"
    }

    fn schedule(&mut self, problem: &SchedulingProblem) -> Assignment {
        self.schedule_with_cache(problem, &EvalCache::new(problem))
    }

    fn schedule_with_cache(
        &mut self,
        problem: &SchedulingProblem,
        cache: &EvalCache,
    ) -> Assignment {
        let _ = problem;
        let seed = self.round_seed();
        CsosRun::cold(self.params.clone(), seed, cache, None).finish(cache)
    }

    fn schedule_warm(
        &mut self,
        problem: &SchedulingProblem,
        cache: &EvalCache,
        warm: &mut crate::warm::WarmState,
    ) -> Assignment {
        let _ = problem;
        let seed = self.round_seed();
        let run = CsosRun::cold(self.params.clone(), seed, cache, warm.incumbent.as_deref());
        let plan = run.finish(cache);
        warm.note_plan(&plan);
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::score_assignment;
    use crate::round_robin::RoundRobin;
    use simcloud::characteristics::CostModel;
    use simcloud::cloudlet::CloudletSpec;
    use simcloud::vm::VmSpec;

    fn hetero_problem(vms: usize, cloudlets: usize) -> SchedulingProblem {
        let vm_specs: Vec<VmSpec> = (0..vms)
            .map(|i| VmSpec::new(500.0 + 700.0 * (i % 4) as f64, 5_000.0, 512.0, 500.0, 1))
            .collect();
        let cls: Vec<CloudletSpec> = (0..cloudlets)
            .map(|i| CloudletSpec::new(1_200.0 + 800.0 * (i % 7) as f64, 300.0, 300.0, 1))
            .collect();
        SchedulingProblem::single_datacenter(vm_specs, cls, CostModel::default())
    }

    #[test]
    fn produces_valid_assignments() {
        let p = hetero_problem(6, 30);
        let a = CuckooSos::new(CsosParams::fast(), 1).schedule(&p);
        assert!(a.validate(&p).is_ok());
        assert_eq!(a.len(), 30);
    }

    #[test]
    fn deterministic_per_seed_and_rounds_advance() {
        let p = hetero_problem(5, 20);
        let a = CuckooSos::new(CsosParams::fast(), 9).schedule(&p);
        let b = CuckooSos::new(CsosParams::fast(), 9).schedule(&p);
        assert_eq!(a, b);
        // A second round on the same instance draws a fresh stream.
        let mut s = CuckooSos::new(CsosParams::fast(), 9);
        let first = s.schedule(&p);
        let second = s.schedule(&p);
        assert_eq!(first, a);
        assert_ne!(first, second);
    }

    #[test]
    fn mutualism_genes_come_only_from_participants() {
        // The distinct SOS move rule: no gene value outside
        // {xi[d], xj[d], best[d]} can appear in a mutualism child.
        let mut rng = stream(7, "test");
        let xi = vec![1u32; 64];
        let xj = vec![2u32; 64];
        let best = vec![3u32; 64];
        let child = mutualism_child(&mut rng, &xi, &xj, &best);
        assert!(child.iter().all(|g| [1, 2, 3].contains(g)));
        // All three sources are actually used at these lengths.
        for wanted in [1u32, 2, 3] {
            assert!(child.contains(&wanted), "source {wanted} never drawn");
        }
    }

    #[test]
    fn commensalism_partner_is_untouched_and_sparse() {
        let mut rng = stream(11, "test");
        let xi = vec![0u32; 200];
        let xk = vec![5u32; 200];
        let child = commensalism_child(&mut rng, &xi, &xk, 0.25);
        let copied = child.iter().filter(|g| **g == 5).count();
        assert!(copied > 0, "rate 0.25 over 200 genes must copy something");
        assert!(copied < 200, "commensalism must stay sparse");
        // Degenerate rates.
        assert_eq!(commensalism_child(&mut rng, &xi, &xk, 0.0), xi);
        assert_eq!(commensalism_child(&mut rng, &xi, &xk, 1.0), xk);
    }

    #[test]
    fn parasite_egg_rerolls_only_a_fraction() {
        let mut rng = stream(13, "test");
        let host = vec![9u32; 300];
        let egg = parasite_egg(&mut rng, &host, 10, 0.2);
        let changed = egg.iter().filter(|g| **g != 9).count();
        assert!(changed > 0);
        assert!(changed < 150, "pa=0.2 should not re-roll half the genome");
        assert!(egg.iter().all(|g| *g < 10));
    }

    #[test]
    fn stepped_best_is_monotone_and_matches_one_shot() {
        let p = hetero_problem(6, 24);
        let cache = EvalCache::new(&p);
        let mut run = CsosRun::cold(CsosParams::fast(), 3, &cache, None);
        let mut last = f64::INFINITY;
        while !run.done() {
            let best = run.step(&cache);
            assert!(best <= last + 1e-12, "greedy phases cannot regress");
            last = best;
        }
        let stepped = Assignment::new(run.best_genes().iter().map(|g| VmId(*g)).collect());
        let one_shot = CuckooSos::new(CsosParams::fast(), 3).schedule(&p);
        assert_eq!(stepped, one_shot);
    }

    #[test]
    fn never_loses_to_its_cyclic_seed() {
        let p = hetero_problem(5, 25);
        let sos = CuckooSos::new(CsosParams::fast(), 2).schedule(&p);
        let rr = RoundRobin::new().schedule(&p);
        let sos_score = score_assignment(&p, &sos, Objective::Makespan);
        let rr_score = score_assignment(&p, &rr, Objective::Makespan);
        assert!(sos_score <= rr_score, "SOS {sos_score} vs RR {rr_score}");
    }

    #[test]
    fn params_validation() {
        assert!(CsosParams {
            population: 1,
            ..CsosParams::standard()
        }
        .validate()
        .is_err());
        assert!(CsosParams {
            pa: 1.5,
            ..CsosParams::standard()
        }
        .validate()
        .is_err());
        assert!(CsosParams {
            iterations: 0,
            ..CsosParams::standard()
        }
        .validate()
        .is_err());
        assert!(CsosParams::standard().validate().is_ok());
    }

    #[test]
    fn for_scale_reduces_effort_above_cutover() {
        assert_eq!(CsosParams::for_scale(10_000), CsosParams::standard());
        let big = CsosParams::for_scale(1_000_000);
        assert!(big.population < CsosParams::standard().population);
        assert!(big.iterations < CsosParams::standard().iterations);
        assert!(big.validate().is_ok());
    }

    #[test]
    fn empty_workload_is_empty_plan() {
        let p = SchedulingProblem::single_datacenter(
            vec![VmSpec::homogeneous_default()],
            vec![],
            CostModel::free(),
        );
        assert!(CuckooSos::new(CsosParams::fast(), 1)
            .schedule(&p)
            .is_empty());
    }
}
