//! Random Biased Sampling scheduler (Section V of the paper).
//!
//! RBS organizes VMs into a network of groups. Each group carries a
//! walk-in-length threshold υ (1…q, ascending — Algorithm 3 line 5) and a
//! node-in-degree NID equal to the number of free VMs in the group. Every
//! incoming cloudlet draws a random walk-in-length ω; the *execution test*
//! admits the cloudlet into a group when `ω ≥ υ` and the group still has
//! free VMs. A failed test increments ω by one and forwards the cloudlet to
//! the next group (Algorithm 3 lines 10–16). Inside a group, VMs are used
//! cyclically (Step 6 of Section V).
//!
//! When every group's NID reaches zero the network "re-advertises" all VMs
//! as free again — each group's NID is reset in place (the group topology
//! and cyclic cursors are preserved; nothing is rebuilt), mirroring the
//! dynamic re-sampling of the original biased random sampling load
//! balancer [20]. A running free-VM counter detects exhaustion in O(1)
//! instead of scanning every group per walk step. The bias of low-υ groups
//! plus the randomness of ω is what produces the fluctuating balance the
//! paper observes in Figs. 4 and 6.

//!
//! ```
//! use biosched_core::rbs::{RandomBiasedSampling, RbsParams};
//! use biosched_core::problem::SchedulingProblem;
//! use biosched_core::scheduler::Scheduler;
//! use simcloud::prelude::*;
//!
//! let problem = SchedulingProblem::single_datacenter(
//!     vec![VmSpec::homogeneous_default(); 20],
//!     vec![CloudletSpec::homogeneous_default(); 100],
//!     CostModel::free(),
//! );
//! let plan = RandomBiasedSampling::new(RbsParams::paper(), 42).schedule(&problem);
//! // NID-bounded rounds keep counts near-even.
//! let counts = plan.counts_per_vm(20);
//! assert!(counts.iter().max().unwrap() - counts.iter().min().unwrap() <= 1);
//! ```
use rand::rngs::StdRng;
use rand::Rng;
use simcloud::ids::VmId;
use simcloud::rng::stream;

use crate::assignment::Assignment;
use crate::eval::EvalCache;
use crate::problem::SchedulingProblem;
use crate::scheduler::Scheduler;

/// RBS tuning parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RbsParams {
    /// Number of VMs per group (the paper's `groupSize(number(r))`).
    pub group_size: usize,
}

impl RbsParams {
    /// Study default: groups of 10 VMs.
    pub fn paper() -> Self {
        RbsParams { group_size: 10 }
    }

    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.group_size == 0 {
            return Err("group_size must be at least 1".into());
        }
        Ok(())
    }
}

impl Default for RbsParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// One VM group in the RBS resource network.
#[derive(Debug, Clone)]
struct Group {
    /// Walk-in-length threshold υ (1-based).
    threshold: u32,
    /// Member VMs.
    vms: Vec<u32>,
    /// Free VMs remaining in this advertisement round (the NID).
    nid: usize,
    /// Cyclic cursor for Step 6's within-group assignment.
    cursor: usize,
}

/// The RBS scheduler.
pub struct RandomBiasedSampling {
    params: RbsParams,
    rng: StdRng,
}

impl RandomBiasedSampling {
    /// Creates an RBS scheduler with the given parameters and seed.
    pub fn new(params: RbsParams, seed: u64) -> Self {
        params.validate().expect("invalid RbsParams");
        RandomBiasedSampling {
            params,
            rng: stream(seed, "rbs"),
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &RbsParams {
        &self.params
    }

    fn build_groups(&self, vm_count: usize) -> Vec<Group> {
        let size = self.params.group_size.min(vm_count).max(1);
        let mut groups = Vec::with_capacity(vm_count.div_ceil(size));
        let mut start = 0u32;
        let mut threshold = 1u32;
        while (start as usize) < vm_count {
            let end = ((start as usize + size).min(vm_count)) as u32;
            let vms: Vec<u32> = (start..end).collect();
            groups.push(Group {
                threshold,
                nid: vms.len(),
                cursor: 0,
                vms,
            });
            start = end;
            threshold += 1;
        }
        groups
    }
}

impl Scheduler for RandomBiasedSampling {
    fn name(&self) -> &'static str {
        "rbs"
    }

    fn schedule(&mut self, problem: &SchedulingProblem) -> Assignment {
        let v = problem.vm_count();
        let mut groups = self.build_groups(v);
        let q = groups.len() as u32;
        let mut map = Vec::with_capacity(problem.cloudlet_count());
        // Where the walk resumes scanning the group ring.
        let mut ring = 0usize;
        // Free VMs across all groups this advertisement round (Σ NID),
        // kept incrementally so exhaustion is an O(1) check per walk step.
        let mut free: usize = groups.iter().map(|g| g.nid).sum();

        for _ in 0..problem.cloudlet_count() {
            // Step 3: the cloudlet draws a random walk-in-length.
            let mut omega: u32 = self.rng.gen_range(1..=q);
            // Walk the ring until a group passes the execution test. The
            // walk terminates: ω only grows, and once ω ≥ q every non-empty
            // group passes; if all NIDs are zero we re-advertise.
            loop {
                if free == 0 {
                    for g in &mut groups {
                        g.nid = g.vms.len();
                        free += g.nid;
                    }
                }
                let group_count = groups.len();
                let group = &mut groups[ring];
                ring = (ring + 1) % group_count;
                if group.nid > 0 && omega >= group.threshold {
                    // Step 5-6: take the group's next VM cyclically.
                    let vm = group.vms[group.cursor % group.vms.len()];
                    group.cursor = (group.cursor + 1) % group.vms.len();
                    group.nid -= 1;
                    free -= 1;
                    map.push(VmId(vm));
                    break;
                }
                // Execution test failed: ω is incremented and the cloudlet
                // moves on (Algorithm 3 line 14).
                omega = omega.saturating_add(1);
            }
        }
        Assignment::new(map)
    }

    /// RBS never evaluates execution times or costs — the biased random
    /// walk looks only at group occupancy and the RNG stream — so a shared
    /// cache changes nothing. The explicit override documents that the
    /// pass-through is intentional (not an unported scheduler) for the
    /// sweep's shared-cache path.
    fn schedule_with_cache(
        &mut self,
        problem: &SchedulingProblem,
        _cache: &EvalCache,
    ) -> Assignment {
        self.schedule(problem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcloud::characteristics::CostModel;
    use simcloud::cloudlet::CloudletSpec;
    use simcloud::vm::VmSpec;

    fn problem(vms: usize, cloudlets: usize) -> SchedulingProblem {
        SchedulingProblem::single_datacenter(
            vec![VmSpec::homogeneous_default(); vms],
            vec![CloudletSpec::homogeneous_default(); cloudlets],
            CostModel::free(),
        )
    }

    #[test]
    fn covers_all_cloudlets_with_valid_vms() {
        let p = problem(25, 100);
        let a = RandomBiasedSampling::new(RbsParams::paper(), 1).schedule(&p);
        assert!(a.validate(&p).is_ok());
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn group_structure_partitions_vms() {
        let rbs = RandomBiasedSampling::new(RbsParams { group_size: 10 }, 0);
        let groups = rbs.build_groups(25);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].vms.len(), 10);
        assert_eq!(groups[2].vms.len(), 5);
        assert_eq!(groups[0].threshold, 1);
        assert_eq!(groups[2].threshold, 3);
        let all: Vec<u32> = groups.iter().flat_map(|g| g.vms.clone()).collect();
        assert_eq!(all, (0..25).collect::<Vec<_>>());
    }

    #[test]
    fn nid_limits_one_round_then_readvertises() {
        // 4 VMs in one group: first 4 cloudlets exhaust the NID, the 5th
        // forces a re-advertisement and assignment proceeds.
        let p = problem(4, 9);
        let a = RandomBiasedSampling::new(RbsParams { group_size: 4 }, 2).schedule(&p);
        let counts = a.counts_per_vm(4);
        assert_eq!(counts.iter().sum::<usize>(), 9);
        // Cyclic within-group use keeps counts within 1 of each other.
        assert!(counts.iter().max().unwrap() - counts.iter().min().unwrap() <= 1);
    }

    #[test]
    fn spread_is_roughly_balanced_but_noisy() {
        let p = problem(50, 500);
        let a = RandomBiasedSampling::new(RbsParams::paper(), 3).schedule(&p);
        let counts = a.counts_per_vm(50);
        assert!(counts.iter().all(|c| *c > 0), "every VM should see work");
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        // Noisy but bounded: nothing starves, nothing hoards.
        assert!(
            max <= 3 * min.max(1),
            "spread too skewed: max={max} min={min}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let p = problem(20, 60);
        let a = RandomBiasedSampling::new(RbsParams::paper(), 7).schedule(&p);
        let b = RandomBiasedSampling::new(RbsParams::paper(), 7).schedule(&p);
        assert_eq!(a, b);
        let c = RandomBiasedSampling::new(RbsParams::paper(), 8).schedule(&p);
        assert_ne!(a, c);
    }

    #[test]
    fn single_group_single_vm() {
        let p = problem(1, 5);
        let a = RandomBiasedSampling::new(RbsParams::paper(), 4).schedule(&p);
        assert!(a.as_slice().iter().all(|v| v.index() == 0));
    }

    #[test]
    fn group_size_larger_than_fleet_is_one_group() {
        let p = problem(3, 12);
        let a = RandomBiasedSampling::new(RbsParams { group_size: 100 }, 5).schedule(&p);
        assert!(a.validate(&p).is_ok());
        // One group -> pure cyclic within it.
        let counts = a.counts_per_vm(3);
        assert_eq!(counts, vec![4, 4, 4]);
    }

    #[test]
    fn group_size_one_still_covers_everyone() {
        let p = problem(7, 70);
        let a = RandomBiasedSampling::new(RbsParams { group_size: 1 }, 6).schedule(&p);
        let counts = a.counts_per_vm(7);
        assert!(counts.iter().all(|c| *c > 0), "{counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 70);
    }

    #[test]
    fn params_validation() {
        assert!(RbsParams { group_size: 0 }.validate().is_err());
        assert!(RbsParams::paper().validate().is_ok());
    }
}
