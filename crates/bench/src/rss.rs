//! Peak resident-set-size measurement for the benchmark binaries.
//!
//! Linux exposes the high-water mark of a process's resident set as
//! `VmHWM` in `/proc/self/status`. The counter is monotonic for the
//! lifetime of the process, so comparing two configurations (e.g.
//! [`RecordMode::Full`](simcloud::stats::RecordMode) vs
//! [`RecordMode::Aggregate`](simcloud::stats::RecordMode)) requires one
//! *child process per configuration* — `reprobench` re-executes its own
//! binary for exactly that reason. On non-Linux targets the probe
//! returns `None` and benchmarks report `null`.

/// Peak resident set size of the current process in kilobytes, read from
/// `VmHWM` in `/proc/self/status`. `None` when the file or field is
/// unavailable (non-Linux, hardened procfs).
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm_kb(&status)
}

/// Extracts the `VmHWM` value (kB) from `/proc/<pid>/status` content.
fn parse_vm_hwm_kb(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vm_hwm_line() {
        let status = "Name:\tcat\nVmPeak:\t  123 kB\nVmHWM:\t  4568 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm_kb(status), Some(4_568));
    }

    #[test]
    fn missing_field_yields_none() {
        assert_eq!(parse_vm_hwm_kb("Name:\tcat\nThreads:\t1\n"), None);
    }

    #[test]
    fn live_probe_reports_nonzero_on_linux() {
        if !std::path::Path::new("/proc/self/status").exists() {
            return;
        }
        // Any running process has touched at least a few pages.
        assert!(peak_rss_kb().expect("procfs present") > 0);
    }

    #[test]
    fn probe_is_monotone_under_allocation() {
        let Some(before) = peak_rss_kb() else { return };
        let big = vec![1u8; 64 << 20];
        std::hint::black_box(&big);
        let after = peak_rss_kb().expect("probe still works");
        assert!(after >= before);
    }
}
