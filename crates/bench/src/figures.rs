//! Regeneration of every figure in the paper's evaluation section.
//!
//! Each function runs the corresponding experiment sweep and returns
//! [`FigureSeries`] data ready for CSV export or terminal rendering. The
//! mapping to the paper:
//!
//! | Function | Paper figure | Metric |
//! |---|---|---|
//! | [`homogeneous_sweep`] (small axis) | Fig. 4a + Fig. 5a | simulation & scheduling time |
//! | [`homogeneous_sweep`] (large axis) | Fig. 4b + Fig. 5b | simulation & scheduling time |
//! | [`heterogeneous_sweep`] | Fig. 6a–6d | all four metrics |

use biosched_core::scheduler::AlgorithmKind;
use biosched_metrics::series::FigureSeries;
use biosched_workload::heterogeneous::HeterogeneousScenario;
use biosched_workload::homogeneous::HomogeneousScenario;
use biosched_workload::sweep::{sweep_on, PointResult};
use simcloud::simulation::EngineKind;

/// Which metric of a [`PointResult`] a figure plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Eq. 12 simulated makespan (Figs. 4, 6a).
    SimulationTime,
    /// Scheduler wall-clock (Figs. 5, 6b).
    SchedulingTime,
    /// Eq. 13 degree of time imbalance (Fig. 6c).
    Imbalance,
    /// Total processing cost (Fig. 6d).
    ProcessingCost,
}

impl Metric {
    /// Extracts this metric from a point result.
    pub fn of(self, r: &PointResult) -> f64 {
        match self {
            Metric::SimulationTime => r.simulation_time_ms,
            Metric::SchedulingTime => r.scheduling_time_ms,
            Metric::Imbalance => r.imbalance,
            Metric::ProcessingCost => r.total_cost,
        }
    }

    /// Axis label.
    pub fn label(self) -> &'static str {
        match self {
            Metric::SimulationTime => "Simulation Time of Cloudlets (ms)",
            Metric::SchedulingTime => "Scheduling Time (wall ms)",
            Metric::Imbalance => "Time Degree of Imbalance",
            Metric::ProcessingCost => "Processing Cost",
        }
    }
}

/// Builds one figure from sweep results.
pub fn figure_from_results(
    title: &str,
    points: &[usize],
    results: &[Vec<PointResult>],
    metric: Metric,
) -> FigureSeries {
    let mut fig = FigureSeries::new(
        title,
        "Number of Virtual Machines (VMs)",
        metric.label(),
        points.iter().map(|p| *p as f64).collect(),
    );
    if results.is_empty() {
        return fig;
    }
    let algorithms: Vec<AlgorithmKind> = results[0].iter().map(|r| r.algorithm).collect();
    for (ai, alg) in algorithms.iter().enumerate() {
        let values: Vec<f64> = results.iter().map(|row| metric.of(&row[ai])).collect();
        fig.push_series(alg.label(), values);
    }
    fig
}

/// Runs the homogeneous sweep behind Figs. 4 and 5.
///
/// `scale` divides the paper's sizes (see
/// [`HomogeneousScenario::scaled`]); 1 reproduces the paper exactly.
/// Returns the raw results for the given VM-count points.
pub fn homogeneous_sweep(points: &[usize], scale: usize, seed: u64) -> Vec<Vec<PointResult>> {
    homogeneous_sweep_on(points, scale, seed, EngineKind::Sequential)
}

/// [`homogeneous_sweep`] simulated on a chosen engine.
pub fn homogeneous_sweep_on(
    points: &[usize],
    scale: usize,
    seed: u64,
    engine: EngineKind,
) -> Vec<Vec<PointResult>> {
    sweep_on(points, &AlgorithmKind::PAPER_SET, seed, engine, |vms| {
        HomogeneousScenario::scaled(vms, scale).build()
    })
}

/// Runs the heterogeneous sweep behind Figs. 6a–6d.
pub fn heterogeneous_sweep(points: &[usize], cloudlets: usize, seed: u64) -> Vec<Vec<PointResult>> {
    heterogeneous_sweep_on(points, cloudlets, seed, EngineKind::Sequential)
}

/// [`heterogeneous_sweep`] simulated on a chosen engine.
pub fn heterogeneous_sweep_on(
    points: &[usize],
    cloudlets: usize,
    seed: u64,
    engine: EngineKind,
) -> Vec<Vec<PointResult>> {
    sweep_on(points, &AlgorithmKind::PAPER_SET, seed, engine, |vms| {
        HeterogeneousScenario {
            vm_count: vms,
            cloudlet_count: cloudlets,
            datacenter_count: biosched_workload::heterogeneous::DEFAULT_DATACENTERS,
            seed,
        }
        .build()
    })
}

/// Fig. 6 with error bars: every point aggregated over `reps` seeds
/// (workload *and* scheduler seed vary together). Returns, per VM point,
/// one [`RepeatedPointResult`](biosched_workload::sweep::RepeatedPointResult)
/// per paper algorithm.
pub fn heterogeneous_sweep_repeated(
    points: &[usize],
    cloudlets: usize,
    base_seed: u64,
    reps: usize,
) -> Vec<Vec<biosched_workload::sweep::RepeatedPointResult>> {
    heterogeneous_sweep_repeated_on(points, cloudlets, base_seed, reps, EngineKind::Sequential)
}

/// [`heterogeneous_sweep_repeated`] with every repetition simulated on a
/// chosen engine.
pub fn heterogeneous_sweep_repeated_on(
    points: &[usize],
    cloudlets: usize,
    base_seed: u64,
    reps: usize,
    engine: EngineKind,
) -> Vec<Vec<biosched_workload::sweep::RepeatedPointResult>> {
    biosched_workload::sweep::sweep_repeated_on(
        points,
        &AlgorithmKind::PAPER_SET,
        base_seed,
        reps,
        engine,
        |vms, seed| {
            HeterogeneousScenario {
                vm_count: vms,
                cloudlet_count: cloudlets,
                datacenter_count: biosched_workload::heterogeneous::DEFAULT_DATACENTERS,
                seed,
            }
            .build()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_extraction_orders_series_like_algorithms() {
        let points = [4usize, 8];
        let results = homogeneous_sweep(&points, 1_000, 0);
        let fig = figure_from_results("t", &points, &results, Metric::SimulationTime);
        assert_eq!(fig.series.len(), 4);
        assert_eq!(fig.series[0].0, "AntColony");
        assert_eq!(fig.series[1].0, "Base Test");
        assert_eq!(fig.x, vec![4.0, 8.0]);
    }

    #[test]
    fn metrics_extract_expected_fields() {
        let points = [6usize];
        let results = heterogeneous_sweep(&points, 30, 1);
        let r = &results[0][0];
        assert_eq!(Metric::SimulationTime.of(r), r.simulation_time_ms);
        assert_eq!(Metric::SchedulingTime.of(r), r.scheduling_time_ms);
        assert_eq!(Metric::Imbalance.of(r), r.imbalance);
        assert_eq!(Metric::ProcessingCost.of(r), r.total_cost);
    }

    #[test]
    fn empty_results_build_empty_figure() {
        let fig = figure_from_results("t", &[], &[], Metric::Imbalance);
        assert!(fig.series.is_empty());
    }
}
