//! # biosched-bench — experiment harness
//!
//! Everything needed to regenerate the paper's evaluation section:
//!
//! * [`figures`] — sweep runners + figure extraction for Figs. 4, 5, 6a–d.
//! * [`tables`] — Tables I–VII printed from the implementation's defaults.
//! * [`rss`] — peak-RSS probe (`VmHWM`) shared by `schedbench` and
//!   `reprobench`.
//!
//! The `repro` binary drives these; the `benches/` directory holds the
//! criterion micro-benchmarks (scheduling time, simulator throughput, and
//! parameter ablations).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod convergence;
pub mod extended;
pub mod figures;
pub mod rss;
pub mod tables;
