//! Convergence curves for the population heuristics.
//!
//! The paper justifies its algorithm choices with convergence-speed
//! claims ("HBO was also chosen because of the speed in which it
//! converges", "PSO is the algorithm with the fastest convergence when
//! compared to GA and ACO" [30], "GA … slow … due to the time to
//! converge" [17]). This module produces the measurement those claims
//! call for: per-iteration best scores for ACO, PSO and GA on the same
//! problem, normalized to each algorithm's starting point so the units
//! (tour length vs makespan estimate) compare fairly.

use biosched_core::aco::{AcoParams, AntColony};
use biosched_core::ga::{GaParams, Genetic};
use biosched_core::pso::{ParticleSwarm, PsoParams};
use biosched_metrics::series::FigureSeries;
use biosched_workload::heterogeneous::HeterogeneousScenario;

/// Shape of the convergence experiment.
#[derive(Debug, Clone, Copy)]
pub struct ConvergenceConfig {
    /// Fleet size.
    pub vms: usize,
    /// Workload size.
    pub cloudlets: usize,
    /// Iterations/generations every algorithm runs.
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ConvergenceConfig {
    fn default() -> Self {
        ConvergenceConfig {
            vms: 60,
            cloudlets: 120,
            iterations: 40,
            seed: 42,
        }
    }
}

/// Normalizes a trace to its first value (1.0 = starting quality).
fn normalize(trace: &[f64]) -> Vec<f64> {
    let first = trace.first().copied().unwrap_or(1.0);
    if first == 0.0 {
        return trace.to_vec();
    }
    trace.iter().map(|v| v / first).collect()
}

/// Pads a trace to `len` by repeating its last value (an algorithm that
/// stops early has converged; its curve stays flat).
fn pad(mut trace: Vec<f64>, len: usize) -> Vec<f64> {
    let last = trace.last().copied().unwrap_or(1.0);
    trace.resize(len, last);
    trace
}

/// Runs the three traced heuristics and returns the convergence figure.
pub fn convergence_figure(config: ConvergenceConfig) -> FigureSeries {
    let problem = HeterogeneousScenario {
        vm_count: config.vms,
        cloudlet_count: config.cloudlets,
        datacenter_count: 4,
        seed: config.seed,
    }
    .build()
    .problem();

    let iterations = config.iterations.max(1);
    let (_, aco_trace) = AntColony::new(
        AcoParams {
            iterations,
            ..AcoParams::paper()
        },
        config.seed,
    )
    .schedule_traced(&problem);
    let (_, pso_trace) = ParticleSwarm::new(
        PsoParams {
            iterations,
            ..PsoParams::standard()
        },
        config.seed,
    )
    .schedule_traced(&problem);
    let (_, ga_trace) = Genetic::new(
        GaParams {
            generations: iterations,
            ..GaParams::standard()
        },
        config.seed,
    )
    .schedule_traced(&problem);

    let mut fig = FigureSeries::new(
        "Convergence — best score relative to iteration 1",
        "iteration",
        "best score / initial best score",
        (1..=iterations).map(|i| i as f64).collect(),
    );
    fig.push_series("ACO", pad(normalize(&aco_trace), iterations));
    fig.push_series("PSO", pad(normalize(&pso_trace), iterations));
    fig.push_series("GA", pad(normalize(&ga_trace), iterations));
    fig
}

/// Iterations needed to reach `target` (fraction of the initial score).
/// `None` if the trace never gets there.
pub fn iterations_to_reach(trace: &[f64], target: f64) -> Option<usize> {
    normalize(trace)
        .iter()
        .position(|v| *v <= target)
        .map(|i| i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_has_three_full_series() {
        let fig = convergence_figure(ConvergenceConfig {
            vms: 10,
            cloudlets: 20,
            iterations: 6,
            seed: 1,
        });
        assert_eq!(fig.series.len(), 3);
        for (name, values) in &fig.series {
            assert_eq!(values.len(), 6, "{name} trace length");
            assert!((values[0] - 1.0).abs() < 1e-9, "{name} starts at 1.0");
            assert!(
                values.windows(2).all(|w| w[1] <= w[0] + 1e-9),
                "{name} must be non-increasing"
            );
        }
    }

    #[test]
    fn iterations_to_reach_positions() {
        let trace = vec![100.0, 90.0, 80.0, 79.0];
        assert_eq!(iterations_to_reach(&trace, 0.9), Some(2));
        assert_eq!(iterations_to_reach(&trace, 0.5), None);
        assert_eq!(iterations_to_reach(&trace, 1.0), Some(1));
    }

    #[test]
    fn normalize_and_pad() {
        assert_eq!(normalize(&[4.0, 2.0]), vec![1.0, 0.5]);
        assert_eq!(pad(vec![1.0, 0.5], 4), vec![1.0, 0.5, 0.5, 0.5]);
        assert_eq!(normalize(&[]), Vec::<f64>::new());
    }
}
