//! Extended comparison beyond the paper's four algorithms.
//!
//! One representative heterogeneous point, every scheduler in the
//! workspace (the paper set, the related-work baselines, and the two
//! future-work meta-schedulers), and the full metric set: the paper's
//! four plus SLA attainment and energy.

use std::time::Instant;

use biosched_core::hybrid::Hybrid;
use biosched_core::objective::Objective;
use biosched_core::portfolio::Portfolio;
use biosched_core::scheduler::{AlgorithmKind, Scheduler};
use biosched_metrics::report::{fmt_value, Table};
use biosched_workload::heterogeneous::HeterogeneousScenario;
use biosched_workload::traces::attach_deadlines;
use simcloud::energy::{estimate_energy, PowerModel};

/// Shape of the extended-comparison experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExtendedConfig {
    /// Fleet size.
    pub vms: usize,
    /// Workload size.
    pub cloudlets: usize,
    /// RNG seed.
    pub seed: u64,
    /// SLA slack factor (deadline = slack × solo runtime at 2000 MIPS).
    pub sla_slack: f64,
}

impl Default for ExtendedConfig {
    fn default() -> Self {
        ExtendedConfig {
            vms: 100,
            cloudlets: 400,
            seed: 42,
            sla_slack: 8.0,
        }
    }
}

/// Runs the extended comparison and renders it as a table.
pub fn extended_comparison(config: ExtendedConfig) -> Table {
    let mut scenario = HeterogeneousScenario {
        vm_count: config.vms,
        cloudlet_count: config.cloudlets,
        datacenter_count: 4,
        seed: config.seed,
    }
    .build();
    attach_deadlines(&mut scenario.cloudlets, 2_000.0, config.sla_slack);
    let problem = scenario.problem();

    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        AlgorithmKind::BaseTest.build(config.seed),
        AlgorithmKind::AntColony.build(config.seed),
        AlgorithmKind::HoneyBee.build(config.seed),
        AlgorithmKind::Rbs.build(config.seed),
        AlgorithmKind::MinMin.build(config.seed),
        AlgorithmKind::MaxMin.build(config.seed),
        AlgorithmKind::Pso.build(config.seed),
        AlgorithmKind::Ga.build(config.seed),
        AlgorithmKind::CuckooSos.build(config.seed),
        AlgorithmKind::Gsa.build(config.seed),
        Box::new(Hybrid::new(Objective::Makespan, config.seed)),
        Box::new(Portfolio::paper_set(Objective::Makespan, config.seed)),
        AlgorithmKind::Racing(Objective::Makespan).build(config.seed),
    ];

    let mut table = Table::new(vec![
        "scheduler",
        "sched (ms)",
        "makespan (ms)",
        "imbalance",
        "cost",
        "SLA %",
        "energy (Wh)",
        "winner",
        "units",
    ]);
    for scheduler in schedulers.iter_mut() {
        let started = Instant::now();
        let assignment = scheduler.schedule(&problem);
        let sched_ms = started.elapsed().as_secs_f64() * 1_000.0;
        let meta = scheduler.last_meta();
        let outcome = scenario
            .simulate(assignment)
            .expect("generated scenarios are feasible");
        assert_eq!(
            outcome.finished_count(),
            config.cloudlets,
            "{} lost cloudlets",
            scheduler.name()
        );
        let energy = estimate_energy(&outcome, config.vms, &PowerModel::commodity_server());
        table.push_row(vec![
            scheduler.name().to_string(),
            fmt_value(sched_ms),
            fmt_value(outcome.simulation_time_ms().unwrap_or(0.0)),
            fmt_value(outcome.time_imbalance().unwrap_or(0.0)),
            fmt_value(outcome.total_cost()),
            outcome
                .sla_attainment()
                .map(|a| format!("{:.1}", a * 100.0))
                .unwrap_or_else(|| "-".into()),
            energy
                .map(|e| fmt_value(e.total_wh()))
                .unwrap_or_else(|| "-".into()),
            meta.as_ref()
                .map(|m| m.winner.clone())
                .unwrap_or_else(|| "-".into()),
            meta.as_ref()
                .map(|m| m.total_units.to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extended_comparison_covers_all_schedulers() {
        let table = extended_comparison(ExtendedConfig {
            vms: 10,
            cloudlets: 30,
            seed: 1,
            sla_slack: 16.0,
        });
        assert_eq!(table.rows.len(), 13);
        assert_eq!(table.headers.len(), 9);
        // Every row carries a real SLA figure (deadlines were attached).
        for row in &table.rows {
            assert_ne!(row[5], "-", "{} has no SLA result", row[0]);
        }
        // Meta-schedulers export winner provenance into the CSV; plain
        // schedulers leave the column blank.
        let by_name = |name: &str| {
            table
                .rows
                .iter()
                .find(|r| r[0] == name)
                .unwrap_or_else(|| panic!("{name} row missing"))
        };
        assert_ne!(by_name("portfolio")[7], "-");
        assert_ne!(by_name("racing")[7], "-");
        assert_ne!(by_name("racing")[8], "-");
        assert_eq!(by_name("ant-colony")[7], "-");
        assert_eq!(by_name("cuckoo-sos")[7], "-");
        assert_eq!(by_name("gsa")[7], "-");
    }
}
