//! Regeneration of the paper's configuration tables (I–VII).
//!
//! These tables are *inputs*, not results — regenerating them verifies the
//! implementation's defaults encode exactly the parameters the paper
//! reports.

use biosched_core::aco::AcoParams;
use biosched_metrics::report::Table;
use simcloud::cloudlet::CloudletSpec;
use simcloud::vm::VmSpec;

/// Table I — HBO symbol glossary.
pub fn table_i() -> Table {
    let mut t = Table::new(vec!["Parameter", "Meaning"]);
    for (p, m) in [
        ("TCLj", "The cLength of the Cloudlet j"),
        ("Sizei", "The cost of storage used by Vm i"),
        ("dchCPS", "The cost of storage of Datacenter i"),
        ("sizeVMi", "The storage required by VM i"),
        ("Mi", "The cost of RAM to execute Cloudlet j by VM i"),
        ("dchCPR", "Cost of RAM for executing Cloudlet j by VM i"),
        ("RAMVMi", "The RAM required by VM i"),
        ("BWi", "Cost of Bandwidth for executing Cloudlet j by VM i"),
        ("dchCPB", "Datacenter i cost per bandwidth"),
        ("BwVMi", "The needed bandwidth consumed by VM i"),
    ] {
        t.push_row(vec![p, m]);
    }
    t
}

/// Table II — ACO parameters, read from [`AcoParams::paper`].
pub fn table_ii() -> Table {
    let p = AcoParams::paper();
    let mut t = Table::new(vec!["ACO Parameter", "Value"]);
    t.push_row(vec!["Ants".to_string(), p.ants.to_string()]);
    t.push_row(vec!["alpha".to_string(), p.alpha.to_string()]);
    t.push_row(vec!["beta".to_string(), p.beta.to_string()]);
    t.push_row(vec!["rho".to_string(), p.rho.to_string()]);
    t.push_row(vec!["Q".to_string(), p.q.to_string()]);
    t
}

/// Table III — homogeneous VM characteristics.
pub fn table_iii() -> Table {
    let v = VmSpec::homogeneous_default();
    let mut t = Table::new(vec!["VM characteristic", "Value"]);
    t.push_row(vec!["vmMips".to_string(), v.mips.to_string()]);
    t.push_row(vec!["vmSize".to_string(), v.size_mb.to_string()]);
    t.push_row(vec!["vmRam".to_string(), v.ram_mb.to_string()]);
    t.push_row(vec!["vmBw".to_string(), v.bw_mbps.to_string()]);
    t.push_row(vec!["vmPesNumber".to_string(), v.pes.to_string()]);
    t
}

/// Table IV — homogeneous cloudlet parameters.
pub fn table_iv() -> Table {
    let c = CloudletSpec::homogeneous_default();
    let mut t = Table::new(vec!["Cloudlet characteristic", "Value"]);
    t.push_row(vec!["cLength".to_string(), c.length_mi.to_string()]);
    t.push_row(vec!["cFileSize".to_string(), c.file_size_mb.to_string()]);
    t.push_row(vec![
        "cOutputSize".to_string(),
        c.output_size_mb.to_string(),
    ]);
    t.push_row(vec!["cPesNumber".to_string(), c.pes.to_string()]);
    t
}

/// Table V — heterogeneous VM characteristic ranges.
pub fn table_v() -> Table {
    let mut t = Table::new(vec!["Heterogeneous VM characteristic", "Value"]);
    t.push_row(vec!["vmMips", "500-4000"]);
    t.push_row(vec!["vmSize", "5000"]);
    t.push_row(vec!["vmRam", "512"]);
    t.push_row(vec!["vmBw", "500"]);
    t.push_row(vec!["vmPesNumber", "1"]);
    t
}

/// Table VI — heterogeneous cloudlet parameter ranges.
pub fn table_vi() -> Table {
    let mut t = Table::new(vec!["Heterogeneous Cloudlet characteristic", "Value"]);
    t.push_row(vec!["cLength", "1000-20000"]);
    t.push_row(vec!["cFileSize", "300"]);
    t.push_row(vec!["cOutputSize", "300"]);
    t.push_row(vec!["cPesNumber", "1"]);
    t
}

/// Table VII — heterogeneous datacenter cost ranges.
pub fn table_vii() -> Table {
    let mut t = Table::new(vec!["Datacenter characteristic", "Value"]);
    t.push_row(vec!["CostPerMemory", "0.01-0.05"]);
    t.push_row(vec!["CostPerStorage", "0.001-0.004"]);
    t.push_row(vec!["CostPerBandwidth", "0.01-0.05"]);
    t.push_row(vec!["CostPerProcessing", "3"]);
    t
}

/// All seven tables, titled.
pub fn all_tables() -> Vec<(&'static str, Table)> {
    vec![
        ("Table I — HBO parameters (glossary)", table_i()),
        ("Table II — ACO parameters", table_ii()),
        ("Table III — VM characteristics, homogeneous", table_iii()),
        ("Table IV — Cloudlet parameters, homogeneous", table_iv()),
        ("Table V — VM characteristics, heterogeneous", table_v()),
        ("Table VI — Cloudlet parameters, heterogeneous", table_vi()),
        ("Table VII — Datacenter values, heterogeneous", table_vii()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_reflects_paper_constants() {
        let csv = table_ii().to_csv();
        assert!(csv.contains("Ants,50"));
        assert!(csv.contains("alpha,0.01"));
        assert!(csv.contains("beta,0.99"));
        assert!(csv.contains("rho,0.4"));
        assert!(csv.contains("Q,100"));
    }

    #[test]
    fn table_iii_iv_reflect_defaults() {
        assert!(table_iii().to_csv().contains("vmMips,1000"));
        assert!(table_iv().to_csv().contains("cLength,250"));
    }

    #[test]
    fn all_seven_tables_render() {
        let tables = all_tables();
        assert_eq!(tables.len(), 7);
        for (title, t) in tables {
            let text = t.render();
            assert!(!text.is_empty(), "{title} rendered empty");
        }
    }
}
