//! Racing meta-scheduler benchmark: emits `BENCH_racing.json`.
//!
//! Races the full anytime roster ([`biosched_core::racing`]: ACO, GA,
//! PSO, cuckoo-SOS, GSA, HBO) against the run-everyone static portfolio
//! on heterogeneous instances up to the paper-scale 10k-cloudlet tier,
//! and enforces the subsystem's three contracts as hard gates:
//!
//! 1. **Never worse** — the raced plan's objective score matches or
//!    beats every roster member run standalone to its full racing
//!    budget on the same seed (exact for the survivor, asserted for
//!    all).
//! 2. **Budget** — the race spends at most `--units-gate` (default
//!    0.35) of the portfolio's evaluation units, the deterministic
//!    decision-cost currency (one unit = one full-assignment
//!    evaluation through the shared [`EvalCache`]).
//! 3. **Decision time** — racer wall clock beats the run-everyone
//!    portfolio by `--gate-ratio` (default 2×) at the headline tier.
//!
//! Before the headline, a **grid tier** re-runs the racer at 1 and 4
//! rayon threads and asserts byte-identical plans and race reports
//! (winner, per-member spend, total units), then cross-checks the
//! sequential and sharded engines bit-for-bit through the sweep layer,
//! meta-provenance columns included. The JSON's `points` rows hold only
//! unit-counted and simulation-derived values, so CI runs the binary
//! under different `RAYON_NUM_THREADS` and diffs outputs with the
//! machine-dependent lines stripped (`grep -v wall_ms`).

use std::io::Write as _;
use std::time::Instant;

use biosched_core::eval::EvalCache;
use biosched_core::objective::Objective;
use biosched_core::racing::{standalone_scores, RaceParams, RacingScheduler};
use biosched_core::scheduler::{AlgorithmKind, Scheduler};
use biosched_workload::heterogeneous::HeterogeneousScenario;
use biosched_workload::scenario::Scenario;
use biosched_workload::sweep::run_point_on;
use simcloud::simulation::EngineKind;

fn set_threads(n: usize) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("thread pool");
}

fn scenario(vms: usize, cloudlets: usize, seed: u64) -> Scenario {
    HeterogeneousScenario {
        vm_count: vms,
        cloudlet_count: cloudlets,
        datacenter_count: 4,
        seed,
    }
    .build()
}

/// One raced configuration: deterministic race outcome plus the
/// standalone roster it was measured against.
struct Row {
    tier: &'static str,
    vms: usize,
    cloudlets: usize,
    seed: u64,
    winner: String,
    raced_score: f64,
    best_standalone: f64,
    best_member: String,
    total_units: u64,
    portfolio_units: u64,
    spent: Vec<(String, u64)>,
    standalone: Vec<(String, f64)>,
    racer_wall_ms: f64,
    portfolio_wall_ms: f64,
}

fn race_tier(
    tier: &'static str,
    vms: usize,
    cloudlets: usize,
    seed: u64,
    params: &RaceParams,
) -> Row {
    let s = scenario(vms, cloudlets, seed);
    let problem = s.problem();
    // Both arms share one prebuilt cache, so the wall comparison is
    // pure decision time, not cache construction.
    let cache = EvalCache::new(&problem);

    let wall = Instant::now();
    let mut racer = RacingScheduler::new(params.clone(), seed);
    let plan = racer.schedule_with_cache(&problem, &cache);
    let racer_wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    let raced_score = cache.score(plan.as_slice(), params.objective);
    let report = racer.last_report().expect("race ran").clone();

    let wall = Instant::now();
    let standalone = standalone_scores(seed, params, &problem, &cache);
    let portfolio_wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    let (best_member, best_standalone) = standalone
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(n, s)| (n.to_string(), *s))
        .expect("roster is non-empty");

    Row {
        tier,
        vms,
        cloudlets,
        seed,
        winner: report.winner.to_string(),
        raced_score,
        best_standalone,
        best_member,
        total_units: report.total_units,
        portfolio_units: report.portfolio_units,
        spent: report
            .spent
            .iter()
            .map(|(n, u)| (n.to_string(), *u))
            .collect(),
        standalone: standalone
            .iter()
            .map(|(n, s)| (n.to_string(), *s))
            .collect(),
        racer_wall_ms,
        portfolio_wall_ms,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    let mut out_path = String::from("BENCH_racing.json");
    let mut seed = 42u64;
    let mut vms = 1_000usize;
    let mut cloudlets = 10_000usize;
    let mut gate_ratio: Option<f64> = None;
    let mut units_gate = 0.35f64;
    let mut no_gate = false;
    let mut threads: Option<usize> = None;
    let mut smoke = false;
    let mut skip_grid = false;
    while let Some(a) = iter.next() {
        let mut val = || iter.next().expect("flag value").clone();
        match a.as_str() {
            "--out" => out_path = val(),
            "--seed" => seed = val().parse().unwrap(),
            "--vms" => vms = val().parse().unwrap(),
            "--cloudlets" => cloudlets = val().parse().unwrap(),
            "--gate-ratio" => gate_ratio = Some(val().parse().unwrap()),
            "--units-gate" => units_gate = val().parse().unwrap(),
            "--no-gate" => no_gate = true,
            "--threads" => threads = Some(val().parse().unwrap()),
            "--smoke" => smoke = true,
            "--skip-grid" => skip_grid = true,
            other => panic!(
                "unknown flag {other} (try: --out F --seed N --vms N --cloudlets N \
                 --gate-ratio R --units-gate X --no-gate --threads N --smoke --skip-grid)"
            ),
        }
    }
    if smoke {
        // CI preset: real races, seconds of wall clock. The wall gate is
        // skipped (small instances gate on noise) but quality and budget
        // are deterministic and stay enforced.
        vms = 100;
        cloudlets = 1_000;
    }
    let gate_ratio = gate_ratio.unwrap_or(2.0);
    // The wall-clock gate is a statement about the 10k-cloudlet tier,
    // where evaluation cost dominates; small instances gate on noise.
    let wall_gate = !no_gate && cloudlets >= 10_000;
    let params = RaceParams::new(Objective::Makespan);

    // ------------------------------------------------------------------
    // Grid tier: thread- and engine-determinism on a small instance.
    // ------------------------------------------------------------------
    const GRID_VMS: usize = 32;
    const GRID_CLOUDLETS: usize = 256;
    if skip_grid {
        eprintln!("grid tier: skipped (--skip-grid)");
    } else {
        eprintln!(
            "grid tier: {GRID_VMS} VMs / {GRID_CLOUDLETS} cloudlets, threads {{1, 4}}, \
             sequential x sharded engine cross-check"
        );
        let s = scenario(GRID_VMS, GRID_CLOUDLETS, seed);
        let problem = s.problem();
        let cache = EvalCache::new(&problem);
        set_threads(1);
        let mut racer = RacingScheduler::new(params.clone(), seed);
        let base_plan = racer.schedule_with_cache(&problem, &cache);
        let base_report = racer.last_report().expect("race ran").clone();
        set_threads(4);
        let mut racer = RacingScheduler::new(params.clone(), seed);
        let again_plan = racer.schedule_with_cache(&problem, &cache);
        let again_report = racer.last_report().expect("race ran").clone();
        assert_eq!(base_plan, again_plan, "race plan changed with thread count");
        assert_eq!(
            base_report, again_report,
            "race provenance changed with thread count"
        );
        // Through the sweep layer on both engines: every simulated
        // metric and the provenance columns must agree bit for bit.
        let kind = AlgorithmKind::Racing(Objective::Makespan);
        let seq = run_point_on(&s, kind, seed, EngineKind::Sequential);
        let sh = run_point_on(&s, kind, seed, EngineKind::Sharded);
        assert_eq!(
            seq.simulation_time_ms.to_bits(),
            sh.simulation_time_ms.to_bits(),
            "racer makespan diverged across engines"
        );
        assert_eq!(seq.total_cost.to_bits(), sh.total_cost.to_bits());
        assert_eq!(seq.meta_winner, sh.meta_winner);
        assert_eq!(seq.meta_spent, sh.meta_spent);
        eprintln!(
            "  winner {} at {} of {} units; engines agree (makespan {:.1} ms, winner {})",
            base_report.winner,
            base_report.total_units,
            base_report.portfolio_units,
            seq.simulation_time_ms,
            seq.meta_winner.as_deref().unwrap_or("-"),
        );
    }
    set_threads(threads.unwrap_or(0));

    // ------------------------------------------------------------------
    // Headline tier: racer vs run-everyone portfolio.
    // ------------------------------------------------------------------
    eprintln!("headline tier: {vms} VMs / {cloudlets} cloudlets, seed {seed}");
    let row = race_tier("headline", vms, cloudlets, seed, &params);
    let ratio = row.total_units as f64 / row.portfolio_units as f64;
    let speedup = if row.racer_wall_ms > 0.0 {
        row.portfolio_wall_ms / row.racer_wall_ms
    } else {
        f64::INFINITY
    };
    eprintln!(
        "  racer: winner {} scored {:?} in {} of {} units ({:.1}% of portfolio), \
         {:.1} ms wall vs {:.1} ms run-everyone ({speedup:.2}x)",
        row.winner,
        row.raced_score,
        row.total_units,
        row.portfolio_units,
        ratio * 100.0,
        row.racer_wall_ms,
        row.portfolio_wall_ms,
    );
    for (name, score) in &row.standalone {
        eprintln!("  standalone {name}: {score:?}");
    }

    // Gates 1 and 2 are deterministic — always enforced.
    assert!(
        row.raced_score <= row.best_standalone + 1e-9,
        "racer ({}) at {} lost to standalone {} at {}",
        row.winner,
        row.raced_score,
        row.best_member,
        row.best_standalone
    );
    eprintln!(
        "gate: raced score {:?} <= best standalone {} at {:?}",
        row.raced_score, row.best_member, row.best_standalone
    );
    assert!(
        ratio <= units_gate,
        "race spent {:.1}% of the portfolio's evaluation units (gate {:.0}%)",
        ratio * 100.0,
        units_gate * 100.0
    );
    eprintln!(
        "gate: {} of {} units = {:.1}% <= {:.0}%",
        row.total_units,
        row.portfolio_units,
        ratio * 100.0,
        units_gate * 100.0
    );
    if wall_gate {
        assert!(
            speedup >= gate_ratio,
            "racer must beat the run-everyone portfolio by {gate_ratio}x at the \
             {cloudlets}-cloudlet tier: got {speedup:.2}x ({:.1} ms vs {:.1} ms)",
            row.racer_wall_ms,
            row.portfolio_wall_ms
        );
        eprintln!("gate: decision time {speedup:.2}x over run-everyone >= {gate_ratio}x");
    } else {
        eprintln!("gate: wall-clock gate skipped (enabled at >= 10k cloudlets without --no-gate)");
    }

    // ------------------------------------------------------------------
    // JSON emission.
    // ------------------------------------------------------------------
    let pairs = |v: &[(String, u64)]| -> String {
        let items: Vec<String> = v
            .iter()
            .map(|(n, u)| format!("{{\"member\": \"{n}\", \"units\": {u}}}"))
            .collect();
        items.join(", ")
    };
    let scores = |v: &[(String, f64)]| -> String {
        let items: Vec<String> = v
            .iter()
            .map(|(n, s)| format!("{{\"member\": \"{n}\", \"score\": {s:?}}}"))
            .collect();
        items.join(", ")
    };
    let mut json = String::from("{\n  \"bench\": \"racing\",\n");
    json.push_str(&format!(
        "  \"seed\": {seed},\n  \"grid\": {{\"vms\": {GRID_VMS}, \
         \"cloudlets\": {GRID_CLOUDLETS}}},\n"
    ));
    json.push_str(&format!(
        "  \"headline\": {{\"vms\": {vms}, \"cloudlets\": {cloudlets}, \
         \"units_gate\": {units_gate:?}, \"wall_gate_ratio\": {gate_ratio:?}, \
         \"wall_gate_enforced\": {wall_gate}}},\n"
    ));
    json.push_str(
        "  \"note\": \"points rows are evaluation-unit-counted and byte-identical across \
         rayon thread counts and engines (the binary asserts both on the grid tier); wall \
         rows carry machine-dependent decision wall clock and are stripped before CI \
         diffs\",\n",
    );
    json.push_str("  \"points\": [\n");
    json.push_str(&format!(
        "    {{\"tier\": \"{}\", \"vms\": {}, \"cloudlets\": {}, \"seed\": {}, \
         \"winner\": \"{}\", \"raced_score\": {:?}, \"best_member\": \"{}\", \
         \"best_standalone_score\": {:?}, \"total_units\": {}, \"portfolio_units\": {}, \
         \"units_ratio\": {:?},\n     \"spent\": [{}],\n     \"standalone\": [{}]}}\n",
        row.tier,
        row.vms,
        row.cloudlets,
        row.seed,
        row.winner,
        row.raced_score,
        row.best_member,
        row.best_standalone,
        row.total_units,
        row.portfolio_units,
        ratio,
        pairs(&row.spent),
        scores(&row.standalone),
    ));
    json.push_str("  ],\n  \"wall\": [\n");
    json.push_str(&format!(
        "    {{\"tier\": \"{}\", \"racer_wall_ms\": {:.2}, \"portfolio_wall_ms\": {:.2}, \
         \"decision_speedup\": {speedup:.3}}}\n",
        row.tier, row.racer_wall_ms, row.portfolio_wall_ms,
    ));
    json.push_str("  ]\n}\n");

    let mut f = std::fs::File::create(&out_path).expect("output file");
    f.write_all(json.as_bytes()).expect("write json");
    let peak_rss = biosched_bench::rss::peak_rss_kb()
        .map_or_else(|| "unknown".to_string(), |kb| kb.to_string());
    eprintln!("wrote {out_path} (peak RSS {peak_rss} kB)");
    print!("{json}");
}
