//! End-to-end repro pipeline benchmark: emits `BENCH_repro.json`.
//!
//! Measures what the pipeline overhaul bought on the `repro all` figure
//! workload along two axes:
//!
//! * **Wall clock** — the `legacy` child replays the pre-overhaul
//!   pipeline (one sweep per figure, so Figs. 4/5 run their homogeneous
//!   sweeps twice; algorithms serial within a point; a private
//!   `EvalCache` per scheduler via `Scheduler::schedule`; `RecordMode::Full`)
//!   against the `overhauled` child running the current pipeline (one
//!   sweep per axis feeding both figures, flat `(point × algorithm)`
//!   executor, shared per-point artifacts, `RecordMode::Aggregate`).
//! * **Peak RSS** — the `mem-full` / `mem-aggregate` children run the
//!   record-heavy Fig. 4b slice while *holding* every
//!   [`SimulationOutcome`](simcloud::stats::SimulationOutcome), the
//!   retention contract `RecordMode` exists for.
//!
//! `VmHWM` is monotonic per process, so every configuration runs in its
//! own child process (the parent re-executes its own binary with
//! `--child <mode>`); each child prints one JSON line with its wall time
//! and peak RSS, and the parent assembles the comparison file.

use std::io::Write as _;
use std::time::Instant;

use biosched_bench::figures::{heterogeneous_sweep_on, homogeneous_sweep_on};
use biosched_bench::rss::peak_rss_kb;
use biosched_core::eval::EvalCache;
use biosched_core::scheduler::AlgorithmKind;
use biosched_workload::heterogeneous::{
    fig6_vm_points, HeterogeneousScenario, DEFAULT_DATACENTERS,
};
use biosched_workload::homogeneous::{fig4a_vm_points, fig4b_vm_points, HomogeneousScenario};
use rayon::prelude::*;
use simcloud::simulation::EngineKind;
use simcloud::stats::RecordMode;

#[derive(Debug, Clone)]
struct Options {
    out_path: String,
    scale: usize,
    seed: u64,
    hetero_cloudlets: usize,
    child: Option<String>,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    let mut opts = Options {
        out_path: "BENCH_repro.json".into(),
        scale: 10,
        seed: 42,
        hetero_cloudlets: 1_000,
        child: None,
    };
    while let Some(a) = iter.next() {
        let mut val = || iter.next().expect("flag value").clone();
        match a.as_str() {
            "--out" => opts.out_path = val(),
            "--scale" => opts.scale = val().parse().expect("numeric --scale"),
            "--seed" => opts.seed = val().parse().expect("numeric --seed"),
            "--hetero-cloudlets" => {
                opts.hetero_cloudlets = val().parse().expect("numeric --hetero-cloudlets")
            }
            "--child" => opts.child = Some(val()),
            other => panic!(
                "unknown flag {other} (try: --out F --scale N --seed N --hetero-cloudlets N)"
            ),
        }
    }
    assert!(opts.scale >= 1, "--scale must be >= 1");
    opts
}

/// Pre-overhaul pipeline replica for one homogeneous axis: parallel over
/// points, serial over algorithms, a fresh problem and private scheduler
/// cache per (point, algorithm), full per-cloudlet records.
fn legacy_homogeneous_sweep(points: &[usize], scale: usize, seed: u64) -> usize {
    points
        .par_iter()
        .map(|&vms| {
            let scenario = HomogeneousScenario::scaled(vms, scale).build();
            let mut finished = 0usize;
            for &alg in &AlgorithmKind::PAPER_SET {
                let problem = scenario.problem();
                let assignment = alg.build(seed).schedule(&problem);
                let outcome = scenario
                    .simulate_on(assignment, EngineKind::Sequential)
                    .expect("legacy simulation");
                finished += outcome.finished_count();
            }
            finished
        })
        .sum()
}

/// Pre-overhaul heterogeneous sweep replica (same nested shape).
fn legacy_heterogeneous_sweep(points: &[usize], cloudlets: usize, seed: u64) -> usize {
    points
        .par_iter()
        .map(|&vms| {
            let scenario = HeterogeneousScenario {
                vm_count: vms,
                cloudlet_count: cloudlets,
                datacenter_count: DEFAULT_DATACENTERS,
                seed,
            }
            .build();
            let mut finished = 0usize;
            for &alg in &AlgorithmKind::PAPER_SET {
                let problem = scenario.problem();
                let assignment = alg.build(seed).schedule(&problem);
                let outcome = scenario
                    .simulate_on(assignment, EngineKind::Sequential)
                    .expect("legacy simulation");
                finished += outcome.finished_count();
            }
            finished
        })
        .sum()
}

/// The `repro all` figure workload, pre-overhaul: Figs. 4a/5a and 4b/5b
/// each re-ran their sweep, so both homogeneous axes execute twice.
fn child_legacy(opts: &Options) -> usize {
    let mut finished = 0usize;
    for _ in 0..2 {
        finished += legacy_homogeneous_sweep(&fig4a_vm_points(), opts.scale, opts.seed);
        finished += legacy_homogeneous_sweep(&fig4b_vm_points(), opts.scale, opts.seed);
    }
    finished += legacy_heterogeneous_sweep(&fig6_vm_points(), opts.hetero_cloudlets, opts.seed);
    finished
}

/// The same figure workload on the current pipeline: one flat
/// shared-artifact sweep per axis feeds both the Fig. 4 and Fig. 5
/// extraction.
fn child_overhauled(opts: &Options) -> usize {
    let mut finished = 0usize;
    for points in [fig4a_vm_points(), fig4b_vm_points()] {
        let results = homogeneous_sweep_on(&points, opts.scale, opts.seed, EngineKind::Sequential);
        finished += results.iter().flatten().map(|r| r.finished).sum::<usize>();
    }
    let results = heterogeneous_sweep_on(
        &fig6_vm_points(),
        opts.hetero_cloudlets,
        opts.seed,
        EngineKind::Sequential,
    );
    finished += results.iter().flatten().map(|r| r.finished).sum::<usize>();
    finished
}

/// Record-retention slice: the Fig. 4b axis run serially while keeping
/// every outcome alive, as a CSV-export / drill-down consumer would. In
/// `Full` mode each outcome retains one `CloudletRecord` per cloudlet; in
/// `Aggregate` mode it retains O(VMs) folded metrics.
fn child_mem(opts: &Options, mode: RecordMode) -> usize {
    let mut held = Vec::new();
    for &vms in &fig4b_vm_points() {
        let scenario = HomogeneousScenario::scaled(vms, opts.scale).build();
        let problem = scenario.problem();
        let cache = EvalCache::new(&problem);
        for &alg in &AlgorithmKind::PAPER_SET {
            let assignment = alg.build(opts.seed).schedule_with_cache(&problem, &cache);
            let outcome = scenario
                .simulate_mode(assignment, EngineKind::Sequential, mode)
                .expect("memory-slice simulation");
            held.push(outcome);
        }
    }
    held.iter().map(|o| o.finished_count()).sum()
}

fn run_child(opts: &Options, mode: &str) {
    let start = Instant::now();
    let finished = match mode {
        "legacy" => child_legacy(opts),
        "overhauled" => child_overhauled(opts),
        "mem-full" => child_mem(opts, RecordMode::Full),
        "mem-aggregate" => child_mem(opts, RecordMode::Aggregate),
        other => panic!("unknown --child mode {other}"),
    };
    let wall_ms = start.elapsed().as_secs_f64() * 1_000.0;
    assert!(finished > 0, "child {mode} finished zero cloudlets");
    let rss = peak_rss_kb().map_or_else(|| "null".to_string(), |kb| kb.to_string());
    eprintln!("child {mode}: {finished} cloudlets finished, {wall_ms:.0} ms, rss {rss} kB");
    println!("{{\"wall_ms\": {wall_ms:.3}, \"peak_rss_kb\": {rss}, \"finished\": {finished}}}");
}

#[derive(Debug, Clone, Copy)]
struct ChildReport {
    wall_ms: f64,
    peak_rss_kb: Option<f64>,
    finished: usize,
}

fn json_number(line: &str, key: &str) -> Option<f64> {
    let idx = line.find(&format!("\"{key}\":"))?;
    let rest = line[idx..].split(':').nth(1)?;
    let token: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    token.parse().ok()
}

fn spawn_child(opts: &Options, mode: &str) -> ChildReport {
    let exe = std::env::current_exe().expect("own binary path");
    eprintln!("running child {mode}…");
    let output = std::process::Command::new(exe)
        .args([
            "--child",
            mode,
            "--scale",
            &opts.scale.to_string(),
            "--seed",
            &opts.seed.to_string(),
            "--hetero-cloudlets",
            &opts.hetero_cloudlets.to_string(),
        ])
        .output()
        .expect("spawn child");
    std::io::stderr()
        .write_all(&output.stderr)
        .expect("relay child stderr");
    assert!(
        output.status.success(),
        "child {mode} failed with {:?}",
        output.status
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    let line = stdout
        .lines()
        .rev()
        .find(|l| l.contains("\"wall_ms\""))
        .unwrap_or_else(|| panic!("child {mode} printed no report: {stdout}"));
    ChildReport {
        wall_ms: json_number(line, "wall_ms").expect("wall_ms in child report"),
        peak_rss_kb: json_number(line, "peak_rss_kb"),
        finished: json_number(line, "finished").expect("finished in child report") as usize,
    }
}

fn fmt_rss(kb: Option<f64>) -> String {
    kb.map_or_else(|| "null".to_string(), |v| format!("{v:.0}"))
}

fn main() {
    let opts = parse_args();
    if let Some(mode) = &opts.child {
        run_child(&opts, mode);
        return;
    }

    let legacy = spawn_child(&opts, "legacy");
    let overhauled = spawn_child(&opts, "overhauled");
    let mem_full = spawn_child(&opts, "mem-full");
    let mem_aggregate = spawn_child(&opts, "mem-aggregate");

    // The two pipelines must complete identical per-sweep workloads; the
    // legacy one simply runs the homogeneous half twice.
    let legacy_unique = overhauled.finished;
    assert!(
        legacy.finished > legacy_unique,
        "legacy child should duplicate homogeneous work ({} vs {})",
        legacy.finished,
        legacy_unique
    );
    assert_eq!(
        mem_full.finished, mem_aggregate.finished,
        "record-mode children must finish identical workloads"
    );

    let speedup = legacy.wall_ms / overhauled.wall_ms;
    let rss_ratio = match (mem_full.peak_rss_kb, mem_aggregate.peak_rss_kb) {
        (Some(f), Some(a)) if a > 0.0 => Some(f / a),
        _ => None,
    };
    eprintln!(
        "end-to-end: legacy {:.0} ms vs overhauled {:.0} ms ({speedup:.2}x)",
        legacy.wall_ms, overhauled.wall_ms
    );
    if let Some(r) = rss_ratio {
        eprintln!(
            "record retention: full {} kB vs aggregate {} kB ({r:.2}x)",
            fmt_rss(mem_full.peak_rss_kb),
            fmt_rss(mem_aggregate.peak_rss_kb)
        );
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"repro\",\n  \"machine_cores\": {cores},\n  \"seed\": {},\n  \
         \"scale\": {},\n  \"hetero_cloudlets\": {},\n  \"end_to_end\": {{\n    \
         \"workload\": \"repro all figure sweeps (figs 4, 5, 6)\",\n    \
         \"legacy\": {{\"wall_ms\": {:.1}, \"peak_rss_kb\": {}, \"finished\": {}}},\n    \
         \"overhauled\": {{\"wall_ms\": {:.1}, \"peak_rss_kb\": {}, \"finished\": {}}},\n    \
         \"speedup\": {speedup:.2}\n  }},\n  \"record_memory\": {{\n    \
         \"workload\": \"fig4b axis, all outcomes held\",\n    \
         \"full\": {{\"wall_ms\": {:.1}, \"peak_rss_kb\": {}}},\n    \
         \"aggregate\": {{\"wall_ms\": {:.1}, \"peak_rss_kb\": {}}},\n    \
         \"rss_ratio\": {}\n  }}\n}}\n",
        opts.seed,
        opts.scale,
        opts.hetero_cloudlets,
        legacy.wall_ms,
        fmt_rss(legacy.peak_rss_kb),
        legacy.finished,
        overhauled.wall_ms,
        fmt_rss(overhauled.peak_rss_kb),
        overhauled.finished,
        mem_full.wall_ms,
        fmt_rss(mem_full.peak_rss_kb),
        mem_aggregate.wall_ms,
        fmt_rss(mem_aggregate.peak_rss_kb),
        rss_ratio.map_or_else(|| "null".to_string(), |r| format!("{r:.2}")),
    );
    let mut f = std::fs::File::create(&opts.out_path).expect("output file");
    f.write_all(json.as_bytes()).expect("write json");
    eprintln!("wrote {}", opts.out_path);
    print!("{json}");
}
