//! Scheduler throughput benchmark: emits `BENCH_schedulers.json`.
//!
//! Measures pure scheduling time (no simulation) for the paper algorithms
//! at 1k/10k/100k/1m-cloudlet scales (the paper's 10:1 cloudlet:VM ratio;
//! "1m" is the full 10⁶-cloudlet × 10⁵-VM headline point) across a set of
//! rayon thread counts. While timing, it also enforces the overhaul's
//! correctness and performance gates:
//!
//! * at 1k/10k the optimized ACO run with [`AcoParams::reference_compat`]
//!   must be byte-identical to the frozen pre-overhaul
//!   [`biosched_core::aco::reference`] at every thread count;
//! * at 10k the candidate-list fast path ("AntColony(topk)", top-η k=32)
//!   must land within 1% of the full-row default's estimated makespan —
//!   on homogeneous fleets the quality cost of the k-candidate
//!   restriction stays in the noise (heterogeneous fleets pay more,
//!   which is why the paper profile keeps full rows; see EXPERIMENTS.md);
//! * at 1k the candidate-list ACO must not be slower at 4 threads than
//!   at 1 thread beyond a 1.5× margin — small problems stay on the
//!   serial path instead of paying fan-out overhead;
//! * every algorithm must produce byte-identical plans at every thread
//!   count (scheduling is seed-deterministic, threads only change speed);
//! * the incremental τ^α snapshot feeding the candidate-list path
//!   ([`PheromoneMatrix::prepare_pow_incremental`]) must track the exact
//!   sweep within float rounding on every deposited edge — and exactly on
//!   the shared base — across interleaved deposit/evaporate rounds
//!   (checked up front, before any timing run);
//! * with `--budget-ms B`, the scale-profile ACO at the largest requested
//!   scale must finish within B milliseconds.
//!
//! Large scales time a reduced roster (Base Test, ACO top-k/scale
//! profile/divide-and-conquer, GA and PSO scale profiles): the frozen
//! reference, the full-row ACO and the O(population·C·V) HBO path are
//! left at the scales they can finish in sensible wall-clock. Every point also records the
//! plan's estimated makespan so speed never silently trades away quality.
//!
//! Thread counts are switched in-process through rayon's global builder
//! (the vendored shim lets the latest `build_global` win), so one run
//! covers the whole matrix.

use std::collections::HashMap;
use std::io::Write as _;
use std::time::Instant;

use biosched_core::aco::{reference, AcoParams, AntColony, PheromoneMatrix};
use biosched_core::assignment::Assignment;
use biosched_core::dnc::{DivideAndConquer, ShardSpec};
use biosched_core::ga::{GaParams, Genetic};
use biosched_core::problem::SchedulingProblem;
use biosched_core::pso::{ParticleSwarm, PsoParams};
use biosched_core::scheduler::{AlgorithmKind, Scheduler};
use biosched_workload::homogeneous::HomogeneousScenario;

/// (label, divisor into the paper's 100k-VM / 1M-cloudlet point). "10k"
/// (1 000 VMs / 10 000 cloudlets) is the quality-gate point; "1m" is the
/// full paper-scale headline.
const SCALES: &[(&str, usize)] = &[("1k", 1_000), ("10k", 100), ("100k", 10), ("1m", 1)];

/// Cloudlet count from which the reduced large-scale roster runs.
const LARGE_SCALE_CLOUDLETS: usize = 50_000;

struct Point {
    algorithm: String,
    scale: String,
    vms: usize,
    cloudlets: usize,
    threads: usize,
    sched_ms: f64,
    est_makespan_ms: f64,
}

type Builder = Box<dyn Fn(u64) -> Box<dyn Scheduler>>;

fn set_threads(n: usize) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("thread pool");
}

/// Best-of-`reps` wall time of one scheduling run.
fn time_best<F: FnMut() -> f64>(reps: usize, mut run: F) -> f64 {
    (0..reps.max(1))
        .map(|_| run())
        .fold(f64::INFINITY, f64::min)
}

/// Gate on the incremental τ^α maintenance behind the candidate-list fast
/// path: drive an exact-sweep matrix and an incrementally-refreshed one
/// through identical deposit/evaporate rounds (the warm broker's steady
/// state) and require the incremental snapshot to match the shared base
/// power bit for bit and every deposited edge within float rounding.
/// Timing of the two refresh styles is reported, not asserted — the win
/// is one shared `powf` per call instead of one per touched edge, but a
/// micro-timing assert would be CI noise.
fn incremental_pow_gate() {
    const SLOTS: u64 = 256;
    const VMS: u64 = 4_096;
    const ROUNDS: usize = 24;
    let (alpha, rho) = (0.01, 0.4);
    let mut exact = PheromoneMatrix::new(1.0);
    let mut inc = PheromoneMatrix::new(1.0);
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state
    };
    for round in 0..ROUNDS {
        for _ in 0..512 {
            let slot = ((next() >> 33) % SLOTS) as u32;
            let vm = ((next() >> 33) % VMS) as u32;
            let amount = 0.05 + (next() >> 11) as f64 / (1u64 << 53) as f64;
            exact.deposit(slot, vm, amount);
            inc.deposit(slot, vm, amount);
        }
        exact.evaporate(rho);
        inc.evaporate(rho);
        exact.prepare_pow(alpha);
        inc.prepare_pow_incremental(alpha);
        assert_eq!(
            exact.base_pow().to_bits(),
            inc.base_pow().to_bits(),
            "round {round}: incremental base power diverged from the exact sweep"
        );
        let mut expected = Vec::new();
        exact.for_each_deposited_pow(|slot, vm, p| expected.push((slot, vm, p)));
        let mut i = 0;
        inc.for_each_deposited_pow(|slot, vm, p| {
            let (es, ev, ep) = expected[i];
            assert_eq!(
                (es, ev),
                (slot, vm),
                "round {round}: deposited-edge sets diverged at index {i}"
            );
            assert!(
                (p - ep).abs() <= ep * 1e-9,
                "round {round} edge ({slot},{vm}): incremental τ^α {p} vs exact {ep}"
            );
            i += 1;
        });
        assert_eq!(i, expected.len(), "round {ROUNDS}: incremental lost edges");
    }
    let reps = 50;
    let exact_ms = time_best(1, || {
        let t = Instant::now();
        for _ in 0..reps {
            exact.evaporate(rho);
            exact.prepare_pow(alpha);
        }
        t.elapsed().as_secs_f64() * 1_000.0
    });
    let inc_ms = time_best(1, || {
        let t = Instant::now();
        for _ in 0..reps {
            inc.evaporate(rho);
            inc.prepare_pow_incremental(alpha);
        }
        t.elapsed().as_secs_f64() * 1_000.0
    });
    eprintln!(
        "incremental τ^α gate: {} edges tracked exactly over {ROUNDS} rounds; \
         steady-state refresh ×{reps}: exact {exact_ms:.2} ms, incremental {inc_ms:.2} ms",
        exact.deposited_edges()
    );
}

/// The roster timed at one scale: display label + scheduler factory.
fn roster(cloudlets: usize) -> Vec<(String, Builder)> {
    let mut list: Vec<(String, Builder)> = Vec::new();
    let large = cloudlets >= LARGE_SCALE_CLOUDLETS;
    if !large {
        // Reference-equivalent profile: random candidate subsets, linear
        // roulette — what `aco::reference` implements.
        list.push((
            "AntColony(compat)".into(),
            Box::new(|seed| Box::new(AntColony::new(AcoParams::reference_compat(), seed))),
        ));
        // The paper-default profile ("AntColony" proper): full weight
        // rows, prefix-sum sampling — the quality baseline the 1% gate
        // measures the candidate list against.
        list.push((
            "AntColony".into(),
            Box::new(|seed| Box::new(AntColony::new(AcoParams::paper(), seed))),
        ));
    }
    if cloudlets < 1_000_000 {
        // Candidate-list fast path at the paper's effort (50 ants × 8
        // iterations, top-η k=32). At the 1m point even that blows any
        // single-socket budget; the scale profile below is the headline
        // configuration there.
        list.push((
            "AntColony(topk)".into(),
            Box::new(|seed| {
                Box::new(AntColony::new(
                    AcoParams {
                        candidates: Some(AcoParams::DEFAULT_CANDIDATES),
                        ..AcoParams::paper()
                    },
                    seed,
                ))
            }),
        ));
    }
    if !large {
        for kind in [
            AlgorithmKind::BaseTest,
            AlgorithmKind::HoneyBee,
            AlgorithmKind::Rbs,
            AlgorithmKind::Ga,
            AlgorithmKind::Pso,
        ] {
            list.push((
                kind.label().to_string(),
                Box::new(move |seed| kind.build(seed)),
            ));
        }
    } else {
        let aco_scale = AcoParams::for_scale(cloudlets);
        let dnc_params = aco_scale.clone();
        list.push((
            "AntColony(scale)".into(),
            Box::new(move |seed| Box::new(AntColony::new(aco_scale.clone(), seed))),
        ));
        list.push((
            "AntColony(dnc4)".into(),
            Box::new(move |seed| {
                let params = dnc_params.clone();
                Box::new(
                    DivideAndConquer::new(
                        ShardSpec::Count(4),
                        seed,
                        Box::new(move |s| Box::new(AntColony::new(params.clone(), s))),
                    )
                    .expect("valid shard spec"),
                )
            }),
        ));
        list.push((
            "Base Test".into(),
            Box::new(|seed| AlgorithmKind::BaseTest.build(seed)),
        ));
        let ga = GaParams::for_scale(cloudlets);
        list.push((
            "GA(scale)".into(),
            Box::new(move |seed| Box::new(Genetic::new(ga.clone(), seed))),
        ));
        let pso = PsoParams::for_scale(cloudlets);
        list.push((
            "PSO(scale)".into(),
            Box::new(move |seed| Box::new(ParticleSwarm::new(pso.clone(), seed))),
        ));
    }
    list
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    let mut out_path = String::from("BENCH_schedulers.json");
    let mut thread_counts: Vec<usize> = vec![1, 4];
    let mut scales: Vec<String> = SCALES.iter().map(|(l, _)| l.to_string()).collect();
    let mut seed = 42u64;
    let mut reps = 2usize;
    let mut budget_ms: Option<f64> = None;
    while let Some(a) = iter.next() {
        let mut val = || iter.next().expect("flag value").clone();
        match a.as_str() {
            "--out" => out_path = val(),
            "--threads" => {
                thread_counts = val()
                    .split(',')
                    .map(|t| t.parse().expect("numeric thread count"))
                    .collect()
            }
            "--scales" => scales = val().split(',').map(str::to_string).collect(),
            "--seed" => seed = val().parse().unwrap(),
            "--reps" => reps = val().parse().unwrap(),
            "--budget-ms" => budget_ms = Some(val().parse().expect("numeric budget")),
            other => panic!(
                "unknown flag {other} (try: --out F --threads 1,4 --scales 1k,10k,100k,1m \
                 --seed N --reps N --budget-ms B)"
            ),
        }
    }

    incremental_pow_gate();

    let mut points: Vec<Point> = Vec::new();
    let mut summary: Vec<(String, usize, f64)> = Vec::new();
    // First-seen plan per (algorithm, scale): all later thread counts
    // must reproduce it byte for byte.
    let mut plans: HashMap<(String, String), Assignment> = HashMap::new();
    // Candidate-list ACO wall time per (scale, threads) for the parity gate.
    let mut aco_times: HashMap<(String, usize), f64> = HashMap::new();
    let largest_scale = SCALES
        .iter()
        .filter(|(l, _)| scales.iter().any(|s| s == l))
        .next_back()
        .map(|&(l, d)| (l.to_string(), d));

    for (label, divisor) in SCALES {
        if !scales.iter().any(|s| s == label) {
            continue;
        }
        let shape = HomogeneousScenario::scaled(100_000, *divisor);
        let problem: SchedulingProblem = shape.build().problem();
        let large = shape.cloudlet_count >= LARGE_SCALE_CLOUDLETS;
        // The 1m point runs each configuration once: best-of-N on a
        // 10⁶-cloudlet deterministic run buys nothing but wall-clock.
        let scale_reps = if shape.cloudlet_count >= 1_000_000 {
            1
        } else {
            reps
        };
        eprintln!(
            "scale {label}: {} vms / {} cloudlets",
            shape.vm_count, shape.cloudlet_count
        );

        for &threads in &thread_counts {
            set_threads(threads);

            let mut ref_assignment = None;
            if !large {
                // Frozen pre-overhaul ACO: the honest baseline, timed on
                // the same pool so the comparison is at equal parallelism.
                let ref_ms = time_best(scale_reps, || {
                    let t = Instant::now();
                    let a = reference::schedule_reference(
                        &AcoParams::reference_compat(),
                        seed,
                        &problem,
                    );
                    let ms = t.elapsed().as_secs_f64() * 1_000.0;
                    ref_assignment = Some(a);
                    ms
                });
                let est = ref_assignment
                    .as_ref()
                    .expect("reference ran")
                    .estimated_makespan_ms(&problem);
                points.push(Point {
                    algorithm: "AntColony(ref)".into(),
                    scale: label.to_string(),
                    vms: shape.vm_count,
                    cloudlets: shape.cloudlet_count,
                    threads,
                    sched_ms: ref_ms,
                    est_makespan_ms: est,
                });
                summary.push((label.to_string(), threads, ref_ms));
            }

            for (name, build) in roster(shape.cloudlet_count) {
                let mut last: Option<Assignment> = None;
                let ms = time_best(scale_reps, || {
                    let mut scheduler = build(seed);
                    let t = Instant::now();
                    let a = scheduler.schedule(&problem);
                    let ms = t.elapsed().as_secs_f64() * 1_000.0;
                    last = Some(a);
                    ms
                });
                let a = last.expect("scheduler ran");
                a.validate(&problem)
                    .unwrap_or_else(|e| panic!("{name} invalid plan at {label}: {e}"));
                if name == "AntColony(compat)" {
                    assert_eq!(
                        Some(&a),
                        ref_assignment.as_ref(),
                        "reference-compat ACO diverged from the frozen reference \
                         at {threads} threads, scale {label}"
                    );
                }
                match plans.entry((name.clone(), label.to_string())) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(a.clone());
                    }
                    std::collections::hash_map::Entry::Occupied(e) => {
                        assert_eq!(
                            e.get(),
                            &a,
                            "{name} plan changed with thread count at scale {label}"
                        );
                    }
                }
                if name == "AntColony(topk)" {
                    aco_times.insert((label.to_string(), threads), ms);
                }
                let est = a.estimated_makespan_ms(&problem);
                eprintln!("  {threads}t {name}: {ms:.1} ms (est makespan {est:.0} ms)");
                points.push(Point {
                    algorithm: name,
                    scale: label.to_string(),
                    vms: shape.vm_count,
                    cloudlets: shape.cloudlet_count,
                    threads,
                    sched_ms: ms,
                    est_makespan_ms: est,
                });
            }

            // Quality gate: the candidate-list fast path must stay within
            // 1% of the unrestricted full-row ACO at the 10k gate point.
            if *label == "10k" {
                let topk = plans
                    .get(&("AntColony(topk)".to_string(), label.to_string()))
                    .expect("candidate-list ACO ran")
                    .estimated_makespan_ms(&problem);
                let full = plans
                    .get(&("AntColony".to_string(), label.to_string()))
                    .expect("full-row ACO ran")
                    .estimated_makespan_ms(&problem);
                assert!(
                    topk <= full * 1.01,
                    "candidate-list ACO makespan {topk:.1} ms exceeds 1% over \
                     full-row {full:.1} ms at the 10k gate"
                );
                eprintln!(
                    "  quality gate: top-k {topk:.1} ms vs full-row {full:.1} ms \
                     ({:+.3}%)",
                    (topk / full - 1.0) * 100.0
                );
            }
        }

        // Parity gate: at 1k the candidate-list ACO stays on the serial
        // path, so extra threads may not cost more than measurement noise.
        if *label == "1k" {
            if let (Some(&t1), Some(&t4)) = (
                aco_times.get(&(label.to_string(), 1)),
                aco_times.get(&(label.to_string(), 4)),
            ) {
                assert!(
                    t4 <= t1 * 1.5,
                    "1k ACO regressed under threads: {t4:.1} ms at 4t vs {t1:.1} ms at 1t"
                );
                eprintln!("  thread parity: 1t {t1:.1} ms, 4t {t4:.1} ms");
            }
        }
    }
    set_threads(0);

    // Wall-clock budget gate on the headline configuration.
    if let (Some(budget), Some((largest, divisor))) = (budget_ms, largest_scale) {
        let cloudlets = HomogeneousScenario::scaled(100_000, divisor).cloudlet_count;
        let gate_algorithm = if cloudlets >= LARGE_SCALE_CLOUDLETS {
            "AntColony(scale)"
        } else {
            "AntColony(topk)"
        };
        let worst = points
            .iter()
            .filter(|p| p.scale == largest && p.algorithm == gate_algorithm)
            .map(|p| p.sched_ms)
            .fold(f64::NAN, f64::max);
        assert!(
            worst.is_finite(),
            "--budget-ms set but {gate_algorithm} never ran at scale {largest}"
        );
        assert!(
            worst <= budget,
            "{gate_algorithm} at {largest} took {worst:.0} ms, over the \
             {budget:.0} ms budget"
        );
        eprintln!("budget gate: {gate_algorithm} at {largest} = {worst:.0} ms <= {budget:.0} ms");
    }

    let peak_rss =
        biosched_bench::rss::peak_rss_kb().map_or_else(|| "null".to_string(), |kb| kb.to_string());
    let mut json = String::from("{\n  \"bench\": \"schedulers\",\n");
    json.push_str(&format!(
        "  \"machine_cores\": {},\n  \"seed\": {seed},\n  \"peak_rss_kb\": {peak_rss},\n  \"points\": [\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"scale\": \"{}\", \"vms\": {}, \"cloudlets\": {}, \"threads\": {}, \"sched_ms\": {:.3}, \"est_makespan_ms\": {:.3}}}{}\n",
            p.algorithm,
            p.scale,
            p.vms,
            p.cloudlets,
            p.threads,
            p.sched_ms,
            p.est_makespan_ms,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"reference_aco_ms\": [\n");
    for (i, (scale, threads, ms)) in summary.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scale\": \"{scale}\", \"threads\": {threads}, \"sched_ms\": {ms:.3}}}{}\n",
            if i + 1 < summary.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let mut f = std::fs::File::create(&out_path).expect("output file");
    f.write_all(json.as_bytes()).expect("write json");
    eprintln!("wrote {out_path}");
    print!("{json}");
}
