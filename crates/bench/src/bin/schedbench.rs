//! Scheduler throughput benchmark: emits `BENCH_schedulers.json`.
//!
//! Measures pure scheduling time (no simulation) for every paper
//! algorithm at 1k/10k-cloudlet scales (the paper's 10:1 cloudlet:VM
//! ratio) across a set of rayon thread counts, plus the frozen
//! pre-overhaul ACO (`biosched_core::aco::reference`) as the honest
//! baseline the hot-path speedup is measured against. While timing, it
//! also asserts the optimized ACO's assignment is byte-identical to the
//! reference at every thread count — a CI tripwire on top of the
//! equivalence tests.
//!
//! Thread counts are switched in-process through rayon's global builder
//! (the vendored shim lets the latest `build_global` win), so one run
//! covers the whole matrix.

use std::io::Write as _;
use std::time::Instant;

use biosched_core::aco::{reference, AcoParams};
use biosched_core::problem::SchedulingProblem;
use biosched_core::scheduler::AlgorithmKind;
use biosched_workload::homogeneous::HomogeneousScenario;

/// (label, divisor into the paper's 100k-VM / 1M-cloudlet point). "10k"
/// (1 000 VMs / 10 000 cloudlets) is the issue's acceptance-gate point.
const SCALES: &[(&str, usize)] = &[("1k", 1_000), ("10k", 100)];

struct Point {
    algorithm: String,
    scale: String,
    vms: usize,
    cloudlets: usize,
    threads: usize,
    sched_ms: f64,
}

fn set_threads(n: usize) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("thread pool");
}

/// Best-of-`reps` wall time of one scheduling run.
fn time_best<F: FnMut() -> f64>(reps: usize, mut run: F) -> f64 {
    (0..reps.max(1))
        .map(|_| run())
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    let mut out_path = String::from("BENCH_schedulers.json");
    let mut thread_counts: Vec<usize> = vec![1, 4];
    let mut scales: Vec<String> = SCALES.iter().map(|(l, _)| l.to_string()).collect();
    let mut seed = 42u64;
    let mut reps = 2usize;
    while let Some(a) = iter.next() {
        let mut val = || iter.next().expect("flag value").clone();
        match a.as_str() {
            "--out" => out_path = val(),
            "--threads" => {
                thread_counts = val()
                    .split(',')
                    .map(|t| t.parse().expect("numeric thread count"))
                    .collect()
            }
            "--scales" => scales = val().split(',').map(str::to_string).collect(),
            "--seed" => seed = val().parse().unwrap(),
            "--reps" => reps = val().parse().unwrap(),
            other => panic!(
                "unknown flag {other} (try: --out F --threads 1,4 --scales 1k,10k --seed N --reps N)"
            ),
        }
    }

    let mut points: Vec<Point> = Vec::new();
    let mut summary: Vec<(String, usize, f64)> = Vec::new();

    for (label, divisor) in SCALES {
        if !scales.iter().any(|s| s == label) {
            continue;
        }
        let shape = HomogeneousScenario::scaled(100_000, *divisor);
        let problem: SchedulingProblem = shape.build().problem();
        eprintln!(
            "scale {label}: {} vms / {} cloudlets",
            shape.vm_count, shape.cloudlet_count
        );

        for &threads in &thread_counts {
            set_threads(threads);

            // Frozen pre-overhaul ACO: the baseline, timed on the same
            // pool so the comparison is at equal parallelism budget.
            let mut ref_assignment = None;
            let ref_ms = time_best(reps, || {
                let t = Instant::now();
                let a = reference::schedule_reference(&AcoParams::paper(), seed, &problem);
                let ms = t.elapsed().as_secs_f64() * 1_000.0;
                ref_assignment = Some(a);
                ms
            });
            let ref_assignment = ref_assignment.expect("reference ran");
            points.push(Point {
                algorithm: "AntColony(ref)".into(),
                scale: label.to_string(),
                vms: shape.vm_count,
                cloudlets: shape.cloudlet_count,
                threads,
                sched_ms: ref_ms,
            });

            let mut aco_ms = f64::NAN;
            for kind in AlgorithmKind::PAPER_SET {
                let ms = time_best(reps, || {
                    let mut scheduler = kind.build(seed);
                    let t = Instant::now();
                    let a = scheduler.schedule(&problem);
                    let ms = t.elapsed().as_secs_f64() * 1_000.0;
                    if kind == AlgorithmKind::AntColony {
                        assert_eq!(
                            a, ref_assignment,
                            "optimized ACO diverged from the reference \
                             at {threads} threads, scale {label}"
                        );
                    }
                    ms
                });
                if kind == AlgorithmKind::AntColony {
                    aco_ms = ms;
                }
                points.push(Point {
                    algorithm: kind.label().to_string(),
                    scale: label.to_string(),
                    vms: shape.vm_count,
                    cloudlets: shape.cloudlet_count,
                    threads,
                    sched_ms: ms,
                });
            }
            let speedup = ref_ms / aco_ms;
            eprintln!(
                "  {threads} threads: ACO {aco_ms:.1} ms vs reference {ref_ms:.1} ms \
                 ({speedup:.1}x)"
            );
            summary.push((label.to_string(), threads, speedup));
        }
    }
    set_threads(0);

    let peak_rss =
        biosched_bench::rss::peak_rss_kb().map_or_else(|| "null".to_string(), |kb| kb.to_string());
    let mut json = String::from("{\n  \"bench\": \"schedulers\",\n");
    json.push_str(&format!(
        "  \"machine_cores\": {},\n  \"seed\": {seed},\n  \"peak_rss_kb\": {peak_rss},\n  \"points\": [\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"scale\": \"{}\", \"vms\": {}, \"cloudlets\": {}, \"threads\": {}, \"sched_ms\": {:.3}}}{}\n",
            p.algorithm,
            p.scale,
            p.vms,
            p.cloudlets,
            p.threads,
            p.sched_ms,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"aco_speedup_vs_reference\": [\n");
    for (i, (scale, threads, speedup)) in summary.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scale\": \"{scale}\", \"threads\": {threads}, \"speedup\": {speedup:.2}}}{}\n",
            if i + 1 < summary.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let mut f = std::fs::File::create(&out_path).expect("output file");
    f.write_all(json.as_bytes()).expect("write json");
    eprintln!("wrote {out_path}");
    print!("{json}");
}
