//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <command> [options]
//!
//! Commands:
//!   fig4a fig4b    homogeneous simulation time (Fig. 4)
//!   fig5a fig5b    homogeneous scheduling time (Fig. 5)
//!   fig6           all four heterogeneous figures (Fig. 6a-6d)
//!   fig6a..fig6d   one heterogeneous figure
//!   tables         Tables I-VII from implementation defaults
//!   extended       all nine schedulers x all six metrics (one point)
//!   convergence    ACO vs PSO vs GA convergence curves
//!   fig6-stats     Fig. 6 metrics with 5-seed error bars
//!   resilience     paper metrics + resilience counters vs host-failure
//!                  rate, with 3-seed error bars (chaos campaign)
//!   stream         streaming broker: warm vs cold replanning latency per
//!                  wave, queue backlog and wait/throughput metrics
//!   all            every table and figure above
//!
//! Options:
//!   --seed N            base RNG seed (default 42)
//!   --scale N           homogeneous down-scale divisor (default 100;
//!                       1 = paper scale: 10^6 cloudlets, takes hours)
//!   --full-scale        shorthand for --scale 1 and 5000 heterogeneous
//!                       cloudlets
//!   --hetero-cloudlets N  heterogeneous workload size (default 1000)
//!   --csv DIR           also write each figure/table as CSV under DIR
//!   --ascii / --no-ascii  toggle ASCII charts (default on)
//!   --engine E          simulation engine: sequential (default) or
//!                       sharded (identical figures, faster wall-clock)
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use biosched_bench::convergence::{convergence_figure, ConvergenceConfig};
use biosched_bench::extended::{extended_comparison, ExtendedConfig};
use biosched_bench::figures::{
    figure_from_results, heterogeneous_sweep_on, homogeneous_sweep_on, Metric,
};
use biosched_bench::tables::all_tables;
use biosched_metrics::report::{fmt_value, Table};
use biosched_metrics::series::FigureSeries;
use biosched_workload::heterogeneous::fig6_vm_points;
use biosched_workload::homogeneous::{fig4a_vm_points, fig4b_vm_points};
use biosched_workload::sweep::PointResult;
use simcloud::simulation::EngineKind;

#[derive(Debug, Clone)]
struct Options {
    command: String,
    seed: u64,
    scale: usize,
    hetero_cloudlets: usize,
    csv_dir: Option<PathBuf>,
    ascii: bool,
    engine: EngineKind,
}

fn usage() -> &'static str {
    "usage: repro <fig4a|fig4b|fig5a|fig5b|fig6|fig6a|fig6b|fig6c|fig6d|fig6-stats|resilience|stream|tables|extended|convergence|all> \
     [--seed N] [--scale N] [--full-scale] [--hetero-cloudlets N] [--csv DIR] [--ascii] \
     [--engine sequential|sharded]"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        command: String::new(),
        seed: 42,
        scale: 100,
        hetero_cloudlets: 1_000,
        csv_dir: None,
        ascii: true,
        engine: EngineKind::Sequential,
    };
    let mut it = args.iter();
    match it.next() {
        Some(cmd) if !cmd.starts_with("--") => opts.command = cmd.clone(),
        _ => return Err(usage().to_string()),
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                opts.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--scale" => {
                opts.scale = it
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
                if opts.scale == 0 {
                    return Err("--scale must be >= 1".into());
                }
            }
            "--full-scale" => {
                opts.scale = 1;
                opts.hetero_cloudlets = 5_000;
            }
            "--hetero-cloudlets" => {
                opts.hetero_cloudlets = it
                    .next()
                    .ok_or("--hetero-cloudlets needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --hetero-cloudlets: {e}"))?;
            }
            "--csv" => {
                opts.csv_dir = Some(PathBuf::from(it.next().ok_or("--csv needs a directory")?));
            }
            "--ascii" => opts.ascii = true,
            "--no-ascii" => opts.ascii = false,
            "--engine" => {
                opts.engine = match it
                    .next()
                    .ok_or("--engine needs a value")?
                    .to_ascii_lowercase()
                    .as_str()
                {
                    "sequential" | "seq" => EngineKind::Sequential,
                    "sharded" => EngineKind::Sharded,
                    other => return Err(format!("bad --engine: '{other}'")),
                };
            }
            other => return Err(format!("unknown option {other}\n{}", usage())),
        }
    }
    Ok(opts)
}

fn emit_figure(fig: &FigureSeries, slug: &str, opts: &Options) {
    println!("\n=== {} ===", fig.title);
    if opts.ascii {
        println!("{}", fig.render_ascii(72, 18));
    }
    // Always print the numeric rows — these are the paper's data points.
    let x_header = if fig.x_label.contains("Virtual Machines") {
        "VMs".to_string()
    } else {
        fig.x_label.clone()
    };
    let mut t = Table::new(
        std::iter::once(x_header)
            .chain(fig.series.iter().map(|(n, _)| n.clone()))
            .collect::<Vec<_>>(),
    );
    for (i, x) in fig.x.iter().enumerate() {
        t.push_row(
            std::iter::once(format!("{x:.0}"))
                .chain(fig.series.iter().map(|(_, v)| fmt_value(v[i])))
                .collect::<Vec<_>>(),
        );
    }
    println!("{}", t.render());
    if let Some(dir) = &opts.csv_dir {
        let path = dir.join(format!("{slug}.csv"));
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::write(&path, fig.to_csv()) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
}

/// One homogeneous sweep, any number of figures extracted from it. Figs. 4
/// and 5 plot different metrics of the *same* experiment, so `all` asks for
/// both at once instead of re-running the sweep per figure.
fn homogeneous(points: Vec<usize>, figs: &[(Metric, &str, &str)], opts: &Options) {
    println!(
        "running homogeneous sweep ({} points, scale 1/{}, seed {})…",
        points.len(),
        opts.scale,
        opts.seed
    );
    let results = homogeneous_sweep_on(&points, opts.scale, opts.seed, opts.engine);
    sanity_check(&results);
    for (metric, title, slug) in figs {
        let fig = figure_from_results(title, &points, &results, *metric);
        emit_figure(&fig, slug, opts);
    }
}

fn heterogeneous(metrics: &[(Metric, &str, &str)], opts: &Options) {
    let points = fig6_vm_points();
    println!(
        "running heterogeneous sweep ({} points, {} cloudlets, seed {})…",
        points.len(),
        opts.hetero_cloudlets,
        opts.seed
    );
    let results = heterogeneous_sweep_on(&points, opts.hetero_cloudlets, opts.seed, opts.engine);
    sanity_check(&results);
    for (metric, title, slug) in metrics {
        let fig = figure_from_results(title, &points, &results, *metric);
        emit_figure(&fig, slug, opts);
    }
}

/// Every run must complete its whole workload — anything else means the
/// scenario infrastructure was infeasible and the figures would be lies.
/// Likewise every point must have run on the engine it asked for: a sweep
/// that mixed engines would blend wall-clock regimes into one curve.
fn sanity_check(results: &[Vec<PointResult>]) {
    for row in results {
        for r in row {
            assert_eq!(
                r.finished, r.cloudlet_count,
                "{} finished only {}/{} cloudlets at {} VMs",
                r.algorithm, r.finished, r.cloudlet_count, r.vm_count
            );
            assert_eq!(
                r.engine_ran,
                r.engine_requested,
                "{} at {} VMs fell back from {:?} to {:?}: {}",
                r.algorithm,
                r.vm_count,
                r.engine_requested,
                r.engine_ran,
                r.engine_fallback_reason.unwrap_or("no reason recorded")
            );
        }
    }
}

/// `requested→ran` engine provenance for a summary-CSV row, with the
/// fallback reason attached when the two differ.
fn engine_cell(requested: EngineKind, ran: EngineKind, reason: Option<&'static str>) -> String {
    match reason {
        Some(why) => format!("{}→{} ({why})", requested.name(), ran.name()),
        None => format!("{}→{}", requested.name(), ran.name()),
    }
}

/// The streaming-broker figure family: per-wave scheduling latency for
/// warm vs cold replanning, the warm-mode backlog trace, and a summary
/// table of queueing/latency metrics per (algorithm, mode).
fn stream_family(opts: &Options) {
    use biosched_core::scheduler::AlgorithmKind;
    use biosched_workload::heterogeneous::HeterogeneousScenario;
    use biosched_workload::online::WavePlan;
    use biosched_workload::stream::{run_stream, ReplanMode, StreamConfig};
    use simcloud::stats::RecordMode;

    let cloudlets = opts.hetero_cloudlets;
    let vms = (cloudlets / 10).max(20);
    let mut scenario = HeterogeneousScenario {
        vm_count: vms,
        cloudlet_count: cloudlets,
        datacenter_count: 4,
        seed: opts.seed,
    }
    .build();
    // Space-shared execution so cloudlets genuinely queue for PEs: the
    // wait metrics then measure scheduling quality, not just the constant
    // VM-provisioning offset that time-sharing reduces them to.
    scenario.vm_scheduler = simcloud::cloudlet_sched::SchedulerKind::SpaceShared;
    let plan = WavePlan::poisson(cloudlets, cloudlets.div_ceil(10).max(1), 500.0, opts.seed);
    let kinds = [
        AlgorithmKind::AntColony,
        AlgorithmKind::Ga,
        AlgorithmKind::Pso,
        AlgorithmKind::BaseTest,
        AlgorithmKind::LeastConnection,
        AlgorithmKind::WeightedRoundRobin,
        AlgorithmKind::Sjf,
        AlgorithmKind::BestFit,
    ];
    println!(
        "streaming broker: {} waves over {} cloudlets / {} VMs, \
         {} algorithms × warm|cold, seed {}, {:?} engine…",
        plan.waves.len(),
        cloudlets,
        vms,
        kinds.len(),
        opts.seed,
        opts.engine
    );

    let wave_axis: Vec<f64> = (0..plan.waves.len()).map(|w| w as f64).collect();
    let mut latency_fig = FigureSeries::new(
        "Stream — Scheduling Latency per Wave (warm vs cold)",
        "wave",
        "scheduling latency (ms)",
        wave_axis.clone(),
    );
    let mut backlog_fig = FigureSeries::new(
        "Stream — Queue Backlog at Replan (warm)",
        "wave",
        "backlog (cloudlets)",
        wave_axis,
    );
    let mut t = Table::new(vec![
        "algorithm",
        "mode",
        "engine (req→ran)",
        "sched total (ms)",
        "sched mean (ms/wave)",
        "sched worst (ms)",
        "wait p50 (ms)",
        "wait p99 (ms)",
        "throughput (/s)",
        "peak backlog",
    ]);
    for kind in kinds {
        for mode in [ReplanMode::Warm, ReplanMode::Cold] {
            let cfg = StreamConfig {
                kind,
                seed: opts.seed,
                mode,
                engine: opts.engine,
                record: RecordMode::Aggregate,
            };
            let r = run_stream(&scenario, &plan, &cfg).expect("stream run");
            assert_eq!(
                r.outcome.finished_count(),
                cloudlets,
                "{kind} ({}) finished only {}/{} cloudlets",
                mode.label(),
                r.outcome.finished_count(),
                cloudlets
            );
            let sched: Vec<f64> = r.waves.iter().map(|w| w.sched_ms).collect();
            // Latency curves for the metaheuristics (the kinds with real
            // warm state); backlog trace for every warm run.
            if matches!(
                kind,
                AlgorithmKind::AntColony | AlgorithmKind::Ga | AlgorithmKind::Pso
            ) {
                latency_fig.push_series(format!("{} ({})", kind.label(), mode.label()), sched);
            }
            if mode == ReplanMode::Warm {
                backlog_fig.push_series(
                    kind.label(),
                    r.waves.iter().map(|w| w.backlog as f64).collect(),
                );
            }
            t.push_row(vec![
                kind.label().to_string(),
                mode.label().to_string(),
                engine_cell(
                    opts.engine,
                    r.outcome.engine,
                    r.outcome.fallback.as_ref().map(|f| f.reason),
                ),
                fmt_value(r.total_sched_ms()),
                fmt_value(r.mean_sched_ms().unwrap_or(0.0)),
                fmt_value(r.max_sched_ms().unwrap_or(0.0)),
                fmt_value(r.outcome.wait_p50_ms().unwrap_or(0.0)),
                fmt_value(r.outcome.wait_p99_ms().unwrap_or(0.0)),
                fmt_value(r.outcome.throughput_per_s().unwrap_or(0.0)),
                r.peak_backlog().to_string(),
            ]);
        }
    }
    emit_figure(&latency_fig, "stream_sched_latency", opts);
    emit_figure(&backlog_fig, "stream_backlog", opts);
    println!("\n{}", t.render());
    if let Some(dir) = &opts.csv_dir {
        let path = dir.join("stream_summary.csv");
        if t.write_csv(&path).is_ok() {
            println!("wrote {}", path.display());
        }
    }
}

fn print_tables(opts: &Options) {
    for (title, table) in all_tables() {
        println!("\n=== {title} ===");
        println!("{}", table.render());
        if let Some(dir) = &opts.csv_dir {
            let slug: String = title
                .chars()
                .take_while(|c| *c != '—')
                .collect::<String>()
                .trim()
                .to_lowercase()
                .replace(' ', "_");
            let path = dir.join(format!("{slug}.csv"));
            if table.write_csv(&path).is_ok() {
                println!("wrote {}", path.display());
            }
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let fig4a = (
        Metric::SimulationTime,
        "Fig 4a — Simulation Time (homogeneous, 1k-9k VMs)",
        "fig4a_simulation_time",
    );
    let fig4b = (
        Metric::SimulationTime,
        "Fig 4b — Simulation Time (homogeneous, 10k-90k VMs)",
        "fig4b_simulation_time",
    );
    let fig5a = (
        Metric::SchedulingTime,
        "Fig 5a — Scheduling Time (homogeneous, 1k-9k VMs)",
        "fig5a_scheduling_time",
    );
    let fig5b = (
        Metric::SchedulingTime,
        "Fig 5b — Scheduling Time (homogeneous, 10k-90k VMs)",
        "fig5b_scheduling_time",
    );
    let fig6_all: [(Metric, &str, &str); 4] = [
        (
            Metric::SimulationTime,
            "Fig 6a — Simulation Time (heterogeneous)",
            "fig6a_simulation_time",
        ),
        (
            Metric::SchedulingTime,
            "Fig 6b — Scheduling Time (heterogeneous)",
            "fig6b_scheduling_time",
        ),
        (
            Metric::Imbalance,
            "Fig 6c — Degree of Time Imbalance (heterogeneous)",
            "fig6c_imbalance",
        ),
        (
            Metric::ProcessingCost,
            "Fig 6d — Processing Cost (heterogeneous)",
            "fig6d_cost",
        ),
    ];

    match opts.command.as_str() {
        "fig4a" => homogeneous(fig4a_vm_points(), &[fig4a], &opts),
        "fig4b" => homogeneous(fig4b_vm_points(), &[fig4b], &opts),
        "fig5a" => homogeneous(fig4a_vm_points(), &[fig5a], &opts),
        "fig5b" => homogeneous(fig4b_vm_points(), &[fig5b], &opts),
        "fig6" => heterogeneous(&fig6_all, &opts),
        "fig6a" => heterogeneous(&fig6_all[0..1], &opts),
        "fig6b" => heterogeneous(&fig6_all[1..2], &opts),
        "fig6c" => heterogeneous(&fig6_all[2..3], &opts),
        "fig6d" => heterogeneous(&fig6_all[3..4], &opts),
        "tables" => print_tables(&opts),
        "fig6-stats" => {
            use biosched_bench::figures::heterogeneous_sweep_repeated_on;
            let points = fig6_vm_points();
            let reps = 5usize;
            println!(
                "heterogeneous sweep with error bars: {} points × 4 algorithms × {} seeds, \
                 {} cloudlets…",
                points.len(),
                reps,
                opts.hetero_cloudlets
            );
            let results = heterogeneous_sweep_repeated_on(
                &points,
                opts.hetero_cloudlets,
                opts.seed,
                reps,
                opts.engine,
            );
            let mut t = Table::new(vec![
                "VMs".to_string(),
                "algorithm".to_string(),
                "engine (req→ran)".to_string(),
                "makespan ms (±CI95)".to_string(),
                "imbalance (±CI95)".to_string(),
                "cost (±CI95)".to_string(),
            ]);
            for (x, row) in points.iter().zip(&results) {
                for r in row {
                    t.push_row(vec![
                        x.to_string(),
                        r.algorithm.label().to_string(),
                        engine_cell(r.engine_requested, r.engine_ran, r.engine_fallback_reason),
                        format!(
                            "{} ±{}",
                            fmt_value(r.simulation_time_ms.mean),
                            fmt_value(r.simulation_time_ms.ci95)
                        ),
                        format!(
                            "{} ±{}",
                            fmt_value(r.imbalance.mean),
                            fmt_value(r.imbalance.ci95)
                        ),
                        format!(
                            "{} ±{}",
                            fmt_value(r.total_cost.mean),
                            fmt_value(r.total_cost.ci95)
                        ),
                    ]);
                }
            }
            println!("\n{}", t.render());
            if let Some(dir) = &opts.csv_dir {
                let path = dir.join("fig6_stats.csv");
                if t.write_csv(&path).is_ok() {
                    println!("wrote {}", path.display());
                }
            }
        }
        "resilience" => {
            use biosched_workload::heterogeneous::HeterogeneousScenario;
            use biosched_workload::resilience::resilience_sweep;
            use simcloud::broker::RecoveryPolicy;
            use simcloud::faults::FaultSpec;

            let fractions = [0.0, 0.1, 0.25, 0.5];
            let algorithms = biosched_core::scheduler::AlgorithmKind::PAPER_SET;
            let reps = 3usize;
            let cloudlets = opts.hetero_cloudlets.min(400);
            println!(
                "resilience sweep: {} failure rates × {} algorithms × {} seeds, \
                 {} cloudlets, seed {}, {:?} engine…",
                fractions.len(),
                algorithms.len(),
                reps,
                cloudlets,
                opts.seed,
                opts.engine
            );
            let spec = FaultSpec::default();
            let policy = RecoveryPolicy {
                max_attempts: 6,
                base_backoff_ms: 500.0,
                backoff_factor: 2.0,
                max_backoff_ms: 4_000.0,
            };
            let results = resilience_sweep(
                &fractions,
                &algorithms,
                &spec,
                policy,
                opts.seed,
                reps,
                opts.engine,
                |seed| {
                    HeterogeneousScenario {
                        vm_count: 40,
                        cloudlet_count: cloudlets,
                        datacenter_count: 4,
                        seed,
                    }
                    .build()
                },
            );
            let mut t = Table::new(vec![
                "host fail rate".to_string(),
                "algorithm".to_string(),
                "completion (±CI95)".to_string(),
                "goodput (±CI95)".to_string(),
                "retries (±CI95)".to_string(),
                "wasted ms (±CI95)".to_string(),
                "MTTR ms (±CI95)".to_string(),
                "makespan ms (±CI95)".to_string(),
            ]);
            for (f, row) in fractions.iter().zip(&results) {
                for r in row {
                    let pm = |m: &biosched_workload::sweep::RepeatedMetric| {
                        format!("{} ±{}", fmt_value(m.mean), fmt_value(m.ci95))
                    };
                    t.push_row(vec![
                        format!("{f:.2}"),
                        r.algorithm.label().to_string(),
                        pm(&r.completion_ratio),
                        pm(&r.goodput),
                        pm(&r.retries),
                        pm(&r.wasted_work_ms),
                        pm(&r.mttr_ms),
                        pm(&r.simulation_time_ms),
                    ]);
                }
            }
            println!("\n{}", t.render());
            if let Some(dir) = &opts.csv_dir {
                let path = dir.join("resilience.csv");
                if t.write_csv(&path).is_ok() {
                    println!("wrote {}", path.display());
                }
            }

            // Paper-scale spotlight: the harshest fraction at the
            // paper's nominal fleet (100k VMs / 1M cloudlets, divided
            // by --scale like the homogeneous figures), planned by the
            // Base Test binder so the engines — not the optimizers —
            // set the wall clock. Runs on both engines and checks the
            // metrics agree to the bit.
            use biosched_workload::resilience::{inject_faults, run_resilient_point};
            use std::time::Instant;

            let spot_vms = (100_000 / opts.scale).max(40);
            let spot_cloudlets = (1_000_000 / opts.scale).max(400);
            let spot_fraction = *fractions.last().expect("non-empty fractions");
            println!(
                "\nspotlight point: {spot_vms} VMs / {spot_cloudlets} cloudlets \
                 (scale 1/{}), fail fraction {spot_fraction}, Base Test, both engines…",
                opts.scale
            );
            let mut spot = Vec::new();
            for engine in [EngineKind::Sequential, EngineKind::Sharded] {
                let mut scenario = HeterogeneousScenario {
                    vm_count: spot_vms,
                    cloudlet_count: spot_cloudlets,
                    datacenter_count: 4,
                    seed: opts.seed,
                }
                .build();
                let mut spot_spec = spec.clone();
                spot_spec.host_fail_fraction = spot_fraction;
                inject_faults(&mut scenario, &spot_spec, opts.seed, policy);
                let wall = Instant::now();
                let point = run_resilient_point(
                    &scenario,
                    biosched_core::scheduler::AlgorithmKind::BaseTest,
                    opts.seed,
                    engine,
                )
                .expect("spotlight point");
                let wall_ms = wall.elapsed().as_secs_f64() * 1_000.0;
                println!(
                    "  {engine:?}: {wall_ms:.0} ms wall — completion {:.4}, \
                     goodput {:.4}, {} retries, makespan {} ms",
                    point.completion_ratio,
                    point.goodput,
                    point.retries,
                    fmt_value(point.simulation_time_ms),
                );
                spot.push(point);
            }
            if let [a, b] = spot.as_slice() {
                assert_eq!(
                    a.completion_ratio.to_bits(),
                    b.completion_ratio.to_bits(),
                    "spotlight engines diverged"
                );
                assert_eq!(a.retries, b.retries, "spotlight engines diverged");
                assert_eq!(
                    a.simulation_time_ms.to_bits(),
                    b.simulation_time_ms.to_bits(),
                    "spotlight engines diverged"
                );
            }
        }
        "convergence" => {
            println!(
                "convergence curves: ACO vs PSO vs GA, 40 iterations, \
                 60 VMs x 120 cloudlets…"
            );
            let fig = convergence_figure(ConvergenceConfig {
                seed: opts.seed,
                ..ConvergenceConfig::default()
            });
            emit_figure(&fig, "convergence", &opts);
        }
        "extended" => {
            println!(
                "extended comparison: every scheduler in the workspace on one \
                 heterogeneous point (100 VMs, 400 cloudlets, SLA slack 8x)…"
            );
            let table = extended_comparison(ExtendedConfig {
                seed: opts.seed,
                ..ExtendedConfig::default()
            });
            println!("\n{}", table.render());
            if let Some(dir) = &opts.csv_dir {
                let path = dir.join("extended_comparison.csv");
                if table.write_csv(&path).is_ok() {
                    println!("wrote {}", path.display());
                }
            }
        }
        "stream" => stream_family(&opts),
        "all" => {
            print_tables(&opts);
            // Figs. 4 and 5 come from the same two sweeps: one run each,
            // two figures each.
            homogeneous(fig4a_vm_points(), &[fig4a, fig5a], &opts);
            homogeneous(fig4b_vm_points(), &[fig4b, fig5b], &opts);
            heterogeneous(&fig6_all, &opts);
            stream_family(&opts);
        }
        other => {
            eprintln!("unknown command {other}\n{}", usage());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
