//! Resilience benchmark: emits `BENCH_faults.json`.
//!
//! Runs the seeded chaos campaign — host-failure fractions crossed with
//! the paper's four schedulers, each point repeated over seeds — through
//! [`biosched_workload::resilience::resilience_sweep`] and records the
//! recovery metrics (completion ratio, goodput, retries, wasted work,
//! MTTR) plus the simulated makespan.
//!
//! Every number in the JSON is computed inside the simulation, so the
//! file is byte-identical no matter how many rayon threads execute the
//! sweep. CI exploits that: the chaos-smoke job runs this binary under
//! `RAYON_NUM_THREADS=1` and `=4` and diffs the outputs. Wall-clock time
//! and peak RSS are reported on stderr only, never in the file.

use std::io::Write as _;
use std::time::Instant;

use biosched_core::scheduler::AlgorithmKind;
use biosched_workload::heterogeneous::HeterogeneousScenario;
use biosched_workload::resilience::resilience_sweep;
use biosched_workload::sweep::RepeatedMetric;
use simcloud::broker::RecoveryPolicy;
use simcloud::faults::FaultSpec;

/// Host-failure fractions swept (0 = control row: must be fault-free).
const FRACTIONS: &[f64] = &[0.0, 0.1, 0.25, 0.5];

/// `{mean, ci95}` with full round-trip precision so equal results
/// serialize to equal bytes.
fn metric_json(m: &RepeatedMetric) -> String {
    format!("{{\"mean\": {:?}, \"ci95\": {:?}}}", m.mean, m.ci95)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    let mut out_path = String::from("BENCH_faults.json");
    let mut seed = 42u64;
    let mut reps = 3usize;
    let mut vms = 40usize;
    let mut cloudlets = 400usize;
    let mut threads: Option<usize> = None;
    while let Some(a) = iter.next() {
        let mut val = || iter.next().expect("flag value").clone();
        match a.as_str() {
            "--out" => out_path = val(),
            "--seed" => seed = val().parse().unwrap(),
            "--reps" => reps = val().parse().unwrap(),
            "--vms" => vms = val().parse().unwrap(),
            "--cloudlets" => cloudlets = val().parse().unwrap(),
            "--threads" => threads = Some(val().parse().unwrap()),
            other => panic!(
                "unknown flag {other} (try: --out F --seed N --reps N --vms N \
                 --cloudlets N --threads N)"
            ),
        }
    }
    if let Some(n) = threads {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .expect("thread pool");
    }

    let spec = FaultSpec::default();
    let policy = RecoveryPolicy {
        max_attempts: 6,
        base_backoff_ms: 500.0,
        backoff_factor: 2.0,
        max_backoff_ms: 4_000.0,
    };
    let algorithms = AlgorithmKind::PAPER_SET;
    eprintln!(
        "chaos campaign: {} fractions × {} algorithms × {reps} seeds, \
         {vms} VMs / {cloudlets} cloudlets, seed {seed}",
        FRACTIONS.len(),
        algorithms.len(),
    );

    let wall = Instant::now();
    let results = resilience_sweep(FRACTIONS, &algorithms, &spec, policy, seed, reps, |s| {
        HeterogeneousScenario {
            vm_count: vms,
            cloudlet_count: cloudlets,
            datacenter_count: 4,
            seed: s,
        }
        .build()
    });
    let wall_ms = wall.elapsed().as_secs_f64() * 1_000.0;

    // Control row sanity: with no faults armed, recovery must be free.
    for s in &results[0] {
        assert_eq!(
            s.completion_ratio.mean, 1.0,
            "{:?} lost cloudlets without faults",
            s.algorithm
        );
        assert_eq!(
            s.retries.mean, 0.0,
            "{:?} retried without faults",
            s.algorithm
        );
    }

    let mut json = String::from("{\n  \"bench\": \"faults\",\n");
    json.push_str(&format!(
        "  \"seed\": {seed},\n  \"reps\": {reps},\n  \"vms\": {vms},\n  \
         \"cloudlets\": {cloudlets},\n  \"datacenters\": 4,\n"
    ));
    json.push_str(&format!(
        "  \"policy\": {{\"max_attempts\": {}, \"base_backoff_ms\": {:?}, \
         \"backoff_factor\": {:?}, \"max_backoff_ms\": {:?}}},\n",
        policy.max_attempts, policy.base_backoff_ms, policy.backoff_factor, policy.max_backoff_ms
    ));
    json.push_str("  \"points\": [\n");
    let total = FRACTIONS.len() * algorithms.len();
    let mut emitted = 0usize;
    for (f, row) in FRACTIONS.iter().zip(&results) {
        for s in row {
            emitted += 1;
            json.push_str(&format!(
                "    {{\"fraction\": {f:?}, \"algorithm\": \"{}\", \
                 \"completion_ratio\": {}, \"goodput\": {}, \"retries\": {}, \
                 \"wasted_work_ms\": {}, \"mttr_ms\": {}, \"makespan_ms\": {}}}{}\n",
                s.algorithm.label(),
                metric_json(&s.completion_ratio),
                metric_json(&s.goodput),
                metric_json(&s.retries),
                metric_json(&s.wasted_work_ms),
                metric_json(&s.mttr_ms),
                metric_json(&s.simulation_time_ms),
                if emitted < total { "," } else { "" }
            ));
        }
    }
    json.push_str("  ]\n}\n");

    let mut f = std::fs::File::create(&out_path).expect("output file");
    f.write_all(json.as_bytes()).expect("write json");
    let peak_rss = biosched_bench::rss::peak_rss_kb()
        .map_or_else(|| "unknown".to_string(), |kb| kb.to_string());
    eprintln!("wrote {out_path} ({wall_ms:.0} ms wall, peak RSS {peak_rss} kB)");
    print!("{json}");
}
