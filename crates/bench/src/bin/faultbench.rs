//! Resilience benchmark: emits `BENCH_faults.json`.
//!
//! Runs the seeded chaos campaign — host-failure fractions crossed with
//! the paper's four schedulers, each point repeated over seeds — through
//! [`biosched_workload::resilience::resilience_sweep`] on **both**
//! engines (sequential kernel and epoch-sharded replay) and records the
//! recovery metrics (completion ratio, goodput, retries, wasted work,
//! MTTR) plus the simulated makespan, one row per engine.
//!
//! Every metric in the JSON is computed inside the simulation, so those
//! rows are byte-identical across engines and no matter how many rayon
//! threads execute the sweep — the binary asserts both properties. CI
//! exploits that: the chaos-smoke job runs this binary under
//! `RAYON_NUM_THREADS=1` and `=4` and diffs the outputs with the
//! machine-dependent `wall_ms` lines stripped (`grep -v wall_ms`). Wall
//! clock per engine × fraction lives in the trailing `"wall"` block
//! (one line per entry) so the committed file still documents the
//! sequential-vs-sharded speed story on the machine that produced it.

use std::io::Write as _;
use std::time::Instant;

use biosched_core::scheduler::AlgorithmKind;
use biosched_workload::heterogeneous::HeterogeneousScenario;
use biosched_workload::resilience::{
    inject_faults, resilience_sweep, run_resilient_point, ResilienceSummary,
};
use biosched_workload::sweep::RepeatedMetric;
use simcloud::broker::RecoveryPolicy;
use simcloud::faults::FaultSpec;
use simcloud::simulation::EngineKind;

/// Host-failure fractions swept (0 = control row: must be fault-free).
const FRACTIONS: &[f64] = &[0.0, 0.1, 0.25, 0.5];

/// `{mean, ci95}` with full round-trip precision so equal results
/// serialize to equal bytes.
fn metric_json(m: &RepeatedMetric) -> String {
    format!("{{\"mean\": {:?}, \"ci95\": {:?}}}", m.mean, m.ci95)
}

/// Engine label as it appears in the JSON (`BENCH_simulator.json` uses
/// the same lowercase names).
fn engine_label(e: EngineKind) -> &'static str {
    match e {
        EngineKind::Sequential => "sequential",
        EngineKind::Sharded => "sharded",
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    let mut out_path = String::from("BENCH_faults.json");
    let mut seed = 42u64;
    let mut reps = 3usize;
    let mut vms = 40usize;
    let mut cloudlets = 400usize;
    let mut threads: Option<usize> = None;
    let mut big_vms = 5_000usize;
    let mut big_cloudlets = 50_000usize;
    let mut engines = vec![EngineKind::Sequential, EngineKind::Sharded];
    while let Some(a) = iter.next() {
        let mut val = || iter.next().expect("flag value").clone();
        match a.as_str() {
            "--out" => out_path = val(),
            "--seed" => seed = val().parse().unwrap(),
            "--reps" => reps = val().parse().unwrap(),
            "--vms" => vms = val().parse().unwrap(),
            "--cloudlets" => cloudlets = val().parse().unwrap(),
            "--threads" => threads = Some(val().parse().unwrap()),
            "--big-vms" => big_vms = val().parse().unwrap(),
            "--big-cloudlets" => big_cloudlets = val().parse().unwrap(),
            "--engine" => {
                engines = match val().as_str() {
                    "sequential" => vec![EngineKind::Sequential],
                    "sharded" => vec![EngineKind::Sharded],
                    "both" => vec![EngineKind::Sequential, EngineKind::Sharded],
                    other => panic!("unknown engine {other} (sequential|sharded|both)"),
                }
            }
            other => panic!(
                "unknown flag {other} (try: --out F --seed N --reps N --vms N \
                 --cloudlets N --big-vms N --big-cloudlets N --threads N \
                 --engine sequential|sharded|both)"
            ),
        }
    }
    if let Some(n) = threads {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .expect("thread pool");
    }

    let spec = FaultSpec::default();
    let policy = RecoveryPolicy {
        max_attempts: 6,
        base_backoff_ms: 500.0,
        backoff_factor: 2.0,
        max_backoff_ms: 4_000.0,
    };
    let algorithms = AlgorithmKind::PAPER_SET;
    eprintln!(
        "chaos campaign: {} fractions × {} algorithms × {reps} seeds × {} engines, \
         {vms} VMs / {cloudlets} cloudlets, seed {seed}",
        FRACTIONS.len(),
        algorithms.len(),
        engines.len(),
    );

    // One timed sweep per (engine, fraction). Rep seeds depend only on
    // the rep index, so sweeping fractions one at a time is
    // metric-identical to one grid call — it just gives wall clock the
    // per-fraction resolution the sequential-vs-sharded comparison needs.
    let mut per_engine: Vec<Vec<Vec<ResilienceSummary>>> = Vec::new();
    let mut walls: Vec<Vec<f64>> = Vec::new();
    for &engine in &engines {
        let mut rows = Vec::new();
        let mut row_walls = Vec::new();
        for &fraction in FRACTIONS {
            let wall = Instant::now();
            let mut result = resilience_sweep(
                &[fraction],
                &algorithms,
                &spec,
                policy,
                seed,
                reps,
                engine,
                |s| {
                    HeterogeneousScenario {
                        vm_count: vms,
                        cloudlet_count: cloudlets,
                        datacenter_count: 4,
                        seed: s,
                    }
                    .build()
                },
            );
            row_walls.push(wall.elapsed().as_secs_f64() * 1_000.0);
            rows.push(result.pop().expect("one fraction in, one row out"));
        }
        eprintln!(
            "{:>10}: {:.0} ms wall ({})",
            engine_label(engine),
            row_walls.iter().sum::<f64>(),
            FRACTIONS
                .iter()
                .zip(&row_walls)
                .map(|(f, w)| format!("f={f}: {w:.0} ms"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        per_engine.push(rows);
        walls.push(row_walls);
    }

    for (engine, results) in engines.iter().zip(&per_engine) {
        // Control row sanity: with no faults armed, recovery must be free.
        for s in &results[0] {
            assert_eq!(
                s.completion_ratio.mean,
                1.0,
                "{:?} lost cloudlets without faults on the {} engine",
                s.algorithm,
                engine_label(*engine),
            );
            assert_eq!(
                s.retries.mean,
                0.0,
                "{:?} retried without faults on the {} engine",
                s.algorithm,
                engine_label(*engine),
            );
        }
    }
    // Engine equivalence: every simulated metric must agree to the bit.
    if let [seq, shard] = per_engine.as_slice() {
        for (f, (row_a, row_b)) in seq.iter().zip(shard).enumerate() {
            for (a, b) in row_a.iter().zip(row_b) {
                let pairs = [
                    (a.completion_ratio.mean, b.completion_ratio.mean),
                    (a.goodput.mean, b.goodput.mean),
                    (a.retries.mean, b.retries.mean),
                    (a.wasted_work_ms.mean, b.wasted_work_ms.mean),
                    (a.mttr_ms.mean, b.mttr_ms.mean),
                    (a.simulation_time_ms.mean, b.simulation_time_ms.mean),
                ];
                for (x, y) in pairs {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "engines diverged at fraction {} / {:?}",
                        FRACTIONS[f],
                        a.algorithm,
                    );
                }
            }
        }
    }

    // The largest fault-sweep point: one big single run per engine at
    // the harshest fraction. The Base Test binder plans it (cyclic, so
    // scheduling cost is negligible) — the wall clock here measures the
    // engines, not the optimizers. Metrics must still agree to the bit.
    let big_fraction = *FRACTIONS.last().expect("non-empty fractions");
    let mut big_runs = Vec::new();
    for &engine in &engines {
        let mut scenario = HeterogeneousScenario {
            vm_count: big_vms,
            cloudlet_count: big_cloudlets,
            datacenter_count: 4,
            seed,
        }
        .build();
        let mut spec = spec.clone();
        spec.host_fail_fraction = big_fraction;
        inject_faults(&mut scenario, &spec, seed, policy);
        let wall = Instant::now();
        let point = run_resilient_point(&scenario, AlgorithmKind::BaseTest, seed, engine)
            .expect("big fault point");
        let wall_ms = wall.elapsed().as_secs_f64() * 1_000.0;
        eprintln!(
            "largest point ({big_vms} VMs / {big_cloudlets} cloudlets, fraction {big_fraction}): \
             {} engine {wall_ms:.0} ms, completion {:.4}, {} retries",
            engine_label(engine),
            point.completion_ratio,
            point.retries,
        );
        big_runs.push((engine, wall_ms, point));
    }
    if let [(_, _, a), (_, _, b)] = big_runs.as_slice() {
        assert_eq!(a.completion_ratio.to_bits(), b.completion_ratio.to_bits());
        assert_eq!(a.goodput.to_bits(), b.goodput.to_bits());
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.abandoned, b.abandoned);
        assert_eq!(a.wasted_work_ms.to_bits(), b.wasted_work_ms.to_bits());
        assert_eq!(a.mttr_ms.to_bits(), b.mttr_ms.to_bits());
        assert_eq!(
            a.simulation_time_ms.to_bits(),
            b.simulation_time_ms.to_bits()
        );
        assert_eq!(a.finished, b.finished);
    }

    let mut json = String::from("{\n  \"bench\": \"faults\",\n");
    json.push_str(&format!(
        "  \"seed\": {seed},\n  \"reps\": {reps},\n  \"vms\": {vms},\n  \
         \"cloudlets\": {cloudlets},\n  \"datacenters\": 4,\n"
    ));
    json.push_str(&format!(
        "  \"policy\": {{\"max_attempts\": {}, \"base_backoff_ms\": {:?}, \
         \"backoff_factor\": {:?}, \"max_backoff_ms\": {:?}}},\n",
        policy.max_attempts, policy.base_backoff_ms, policy.backoff_factor, policy.max_backoff_ms
    ));
    json.push_str(
        "  \"note\": \"metrics are computed in-simulation and byte-identical across \
         engines and rayon thread counts; wall_ms lines are machine-dependent (committed \
         values: one sweep per engine x fraction on the committing machine) and are \
         stripped before CI diffs\",\n",
    );
    json.push_str("  \"points\": [\n");
    let total = engines.len() * FRACTIONS.len() * algorithms.len();
    let mut emitted = 0usize;
    for (engine, results) in engines.iter().zip(&per_engine) {
        for (f, row) in FRACTIONS.iter().zip(results) {
            for s in row {
                emitted += 1;
                json.push_str(&format!(
                    "    {{\"engine\": \"{}\", \"fraction\": {f:?}, \"algorithm\": \"{}\", \
                     \"completion_ratio\": {}, \"goodput\": {}, \"retries\": {}, \
                     \"wasted_work_ms\": {}, \"mttr_ms\": {}, \"makespan_ms\": {}}}{}\n",
                    engine_label(*engine),
                    s.algorithm.label(),
                    metric_json(&s.completion_ratio),
                    metric_json(&s.goodput),
                    metric_json(&s.retries),
                    metric_json(&s.wasted_work_ms),
                    metric_json(&s.mttr_ms),
                    metric_json(&s.simulation_time_ms),
                    if emitted < total { "," } else { "" }
                ));
            }
        }
    }
    json.push_str("  ],\n  \"wall\": [\n");
    let wall_total = engines.len() * FRACTIONS.len() + big_runs.len();
    let mut wall_emitted = 0usize;
    for (engine, row_walls) in engines.iter().zip(&walls) {
        for (f, w) in FRACTIONS.iter().zip(row_walls) {
            wall_emitted += 1;
            json.push_str(&format!(
                "    {{\"engine\": \"{}\", \"fraction\": {f:?}, \"vms\": {vms}, \
                 \"cloudlets\": {cloudlets}, \"wall_ms\": {w:.1}}}{}\n",
                engine_label(*engine),
                if wall_emitted < wall_total { "," } else { "" }
            ));
        }
    }
    for (engine, w, _) in &big_runs {
        wall_emitted += 1;
        json.push_str(&format!(
            "    {{\"engine\": \"{}\", \"fraction\": {big_fraction:?}, \"vms\": {big_vms}, \
             \"cloudlets\": {big_cloudlets}, \"point\": \"largest\", \"wall_ms\": {w:.1}}}{}\n",
            engine_label(*engine),
            if wall_emitted < wall_total { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let mut f = std::fs::File::create(&out_path).expect("output file");
    f.write_all(json.as_bytes()).expect("write json");
    let peak_rss = biosched_bench::rss::peak_rss_kb()
        .map_or_else(|| "unknown".to_string(), |kb| kb.to_string());
    eprintln!("wrote {out_path} (peak RSS {peak_rss} kB)");
    print!("{json}");
}
