//! Streaming-broker benchmark: emits `BENCH_stream.json`.
//!
//! Drives the warm-state streaming broker ([`biosched_workload::stream`])
//! at the paper's full scale — 10⁶ cloudlets arriving in Poisson waves
//! over a 10⁵-VM space-shared heterogeneous fleet, executed on the
//! epoch-sharded engine — and records what a long-running control plane
//! cares about: per-wave scheduling latency, queue backlog at each replan
//! instant, and the queueing metrics of the merged plan (wait p50/p99,
//! mean wait, throughput).
//!
//! Every roster entry runs in both replan modes: **warm** (resident
//! scheduler, per-wave [`EvalCache::retarget_cloudlets`], carried
//! `WarmState`) and **cold** (fresh scheduler and fresh cache every wave
//! — the control arm runs the identical per-wave algorithm). The binary
//! enforces the headline perf gate: warm ACO must beat cold ACO by
//! `--gate-ratio` (default 2×) in mean per-wave scheduling time at the
//! 100k-VM tier, where cold's O(#VMs) cache build and candidate-ring
//! sort dominate the per-wave budget.
//!
//! Before the headline, a small **grid tier** re-runs every configuration
//! at 1 and 4 rayon threads in-process and asserts byte-identical merged
//! plans and backlog traces (deterministic baselines stay byte-identical,
//! metaheuristics stay seed-deterministic), then cross-checks the
//! sequential engine and full-record mode bit-for-bit against the
//! sharded/aggregate run. The JSON's `points` rows hold only
//! simulation-derived values, so CI runs the binary under different
//! `RAYON_NUM_THREADS` and diffs outputs with the machine-dependent
//! lines stripped (`grep -v wall_ms`).

use std::io::Write as _;
use std::time::Instant;

use biosched_core::aco::{AcoParams, AntColony};
use biosched_core::ga::{GaParams, Genetic};
use biosched_core::pso::{ParticleSwarm, PsoParams};
use biosched_core::scheduler::{AlgorithmKind, Scheduler};
use biosched_workload::heterogeneous::HeterogeneousScenario;
use biosched_workload::online::WavePlan;
use biosched_workload::scenario::Scenario;
use biosched_workload::stream::{run_stream_with, ReplanMode, StreamConfig, StreamOutcome};
use simcloud::cloudlet_sched::SchedulerKind as VmSchedKind;
use simcloud::simulation::EngineKind;
use simcloud::stats::RecordMode;

type Builder = Box<dyn Fn(u64) -> Box<dyn Scheduler>>;

fn set_threads(n: usize) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("thread pool");
}

/// Heterogeneous fleet under the space-shared cloudlet policy: cloudlets
/// genuinely queue for PEs, so wait p50/p99 measure scheduling quality
/// instead of the constant VM-provisioning offset every plan pays under
/// time sharing.
fn scenario(vms: usize, cloudlets: usize, seed: u64) -> Scenario {
    let mut s = HeterogeneousScenario {
        vm_count: vms,
        cloudlet_count: cloudlets,
        datacenter_count: 4,
        seed,
    }
    .build();
    s.vm_scheduler = VmSchedKind::SpaceShared;
    s
}

/// The streaming roster: scale-profile metaheuristics (warm state is
/// pheromone / incumbent seeding) plus the stateful balancer baselines
/// (warm state is the instance itself: LC's load vector, WRR's virtual
/// clock, round-robin's cursor).
fn roster(cloudlets: usize) -> Vec<(AlgorithmKind, String, Builder)> {
    let aco = AcoParams::for_scale(cloudlets);
    let ga = GaParams::for_scale(cloudlets);
    let pso = PsoParams::for_scale(cloudlets);
    vec![
        (
            AlgorithmKind::AntColony,
            "AntColony(scale)".into(),
            Box::new(move |seed| Box::new(AntColony::new(aco.clone(), seed)) as Box<dyn Scheduler>),
        ),
        (
            AlgorithmKind::Ga,
            "GA(scale)".into(),
            Box::new(move |seed| Box::new(Genetic::new(ga.clone(), seed)) as Box<dyn Scheduler>),
        ),
        (
            AlgorithmKind::Pso,
            "PSO(scale)".into(),
            Box::new(move |seed| {
                Box::new(ParticleSwarm::new(pso.clone(), seed)) as Box<dyn Scheduler>
            }),
        ),
        (
            AlgorithmKind::BaseTest,
            AlgorithmKind::BaseTest.label().into(),
            Box::new(|seed| AlgorithmKind::BaseTest.build(seed)),
        ),
        (
            AlgorithmKind::LeastConnection,
            AlgorithmKind::LeastConnection.label().into(),
            Box::new(|seed| AlgorithmKind::LeastConnection.build(seed)),
        ),
        (
            AlgorithmKind::WeightedRoundRobin,
            AlgorithmKind::WeightedRoundRobin.label().into(),
            Box::new(|seed| AlgorithmKind::WeightedRoundRobin.build(seed)),
        ),
        (
            AlgorithmKind::Sjf,
            AlgorithmKind::Sjf.label().into(),
            Box::new(|seed| AlgorithmKind::Sjf.build(seed)),
        ),
        (
            AlgorithmKind::BestFit,
            AlgorithmKind::BestFit.label().into(),
            Box::new(|seed| AlgorithmKind::BestFit.build(seed)),
        ),
    ]
}

/// One finished configuration, split into simulation-derived values
/// (byte-stable across threads/engines, emitted in `points`) and
/// machine-dependent wall clock (emitted in `wall`).
struct Row {
    tier: &'static str,
    algorithm: String,
    mode: ReplanMode,
    waves: usize,
    rounds: usize,
    peak_backlog: usize,
    finished: usize,
    makespan_ms: Option<f64>,
    wait_p50_ms: Option<f64>,
    wait_p99_ms: Option<f64>,
    mean_wait_ms: Option<f64>,
    throughput_per_s: Option<f64>,
    sched_total_ms: f64,
    sched_mean_ms: f64,
    sched_p95_ms: f64,
    sched_max_ms: f64,
    run_wall_ms: f64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn row_from(
    tier: &'static str,
    algorithm: &str,
    mode: ReplanMode,
    r: &StreamOutcome,
    run_wall_ms: f64,
) -> Row {
    let mut sched: Vec<f64> = r
        .waves
        .iter()
        .filter(|w| w.scheduled > 0)
        .map(|w| w.sched_ms)
        .collect();
    sched.sort_by(f64::total_cmp);
    Row {
        tier,
        algorithm: algorithm.to_string(),
        mode,
        waves: r.waves.len(),
        rounds: r.rounds(),
        peak_backlog: r.peak_backlog(),
        finished: r.outcome.finished_count(),
        makespan_ms: r.outcome.simulation_time_ms(),
        wait_p50_ms: r.outcome.wait_p50_ms(),
        wait_p99_ms: r.outcome.wait_p99_ms(),
        mean_wait_ms: r.outcome.mean_wait_ms(),
        throughput_per_s: r.outcome.throughput_per_s(),
        sched_total_ms: r.total_sched_ms(),
        sched_mean_ms: r.mean_sched_ms().unwrap_or(0.0),
        sched_p95_ms: percentile(&sched, 0.95),
        sched_max_ms: r.max_sched_ms().unwrap_or(0.0),
        run_wall_ms,
    }
}

/// `{:?}`-formatted float or `null` — full round-trip precision so equal
/// results serialize to equal bytes.
fn opt_json(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| format!("{x:?}"))
}

fn mode_cfg(kind: AlgorithmKind, seed: u64, mode: ReplanMode) -> StreamConfig {
    match mode {
        ReplanMode::Warm => StreamConfig::warm(kind, seed),
        ReplanMode::Cold => StreamConfig::cold(kind, seed),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    let mut out_path = String::from("BENCH_stream.json");
    let mut seed = 42u64;
    let mut vms = 100_000usize;
    let mut cloudlets = 1_000_000usize;
    let mut waves = 4_000usize;
    let mut interval_ms = 2_000.0f64;
    let mut gate_ratio: Option<f64> = None;
    let mut no_gate = false;
    let mut threads: Option<usize> = None;
    let mut smoke = false;
    let mut only: Option<String> = None;
    let mut skip_grid = false;
    while let Some(a) = iter.next() {
        let mut val = || iter.next().expect("flag value").clone();
        match a.as_str() {
            "--out" => out_path = val(),
            "--seed" => seed = val().parse().unwrap(),
            "--vms" => vms = val().parse().unwrap(),
            "--cloudlets" => cloudlets = val().parse().unwrap(),
            "--waves" => waves = val().parse().unwrap(),
            "--interval-ms" => interval_ms = val().parse().unwrap(),
            "--gate-ratio" => gate_ratio = Some(val().parse().unwrap()),
            "--no-gate" => no_gate = true,
            "--threads" => threads = Some(val().parse().unwrap()),
            "--smoke" => smoke = true,
            "--only" => only = Some(val().to_lowercase()),
            "--skip-grid" => skip_grid = true,
            other => panic!(
                "unknown flag {other} (try: --out F --seed N --vms N --cloudlets N \
                 --waves N --interval-ms X --gate-ratio R --no-gate --threads N --smoke \
                 --only SUBSTR --skip-grid)"
            ),
        }
    }
    if smoke {
        // CI preset: big enough for real waves, small enough for minutes.
        vms = 2_000;
        cloudlets = 20_000;
        waves = 25;
        no_gate = true;
    }
    let gate_ratio = gate_ratio.unwrap_or(2.0);
    // The warm-vs-cold gate is a statement about the 100k-VM tier, where
    // cold's per-wave O(#VMs) rebuild dominates; small fleets would gate
    // on noise.
    let gate = !no_gate && vms >= 50_000;
    // Roster filter: substring match on the lower-cased display label.
    let keep = |name: &str| {
        only.as_ref()
            .is_none_or(|pat| name.to_lowercase().contains(pat))
    };

    // ------------------------------------------------------------------
    // Grid tier: thread- and engine-determinism on a small instance.
    // ------------------------------------------------------------------
    const GRID_VMS: usize = 600;
    const GRID_CLOUDLETS: usize = 6_000;
    const GRID_WAVES: usize = 12;
    let grid_scenario = scenario(GRID_VMS, GRID_CLOUDLETS, seed);
    // `poisson` takes the *mean wave size*; divide to target a wave count.
    let grid_plan = WavePlan::poisson(GRID_CLOUDLETS, GRID_CLOUDLETS / GRID_WAVES, 800.0, seed);
    let mut rows: Vec<Row> = Vec::new();
    if skip_grid {
        eprintln!("grid tier: skipped (--skip-grid)");
    } else {
        eprintln!(
            "grid tier: {GRID_VMS} VMs / {GRID_CLOUDLETS} cloudlets / {GRID_WAVES} waves, \
             threads {{1, 4}}, engine x record cross-check"
        );
    }
    for (kind, name, build) in roster(GRID_CLOUDLETS) {
        if skip_grid || !keep(&name) {
            continue;
        }
        for mode in [ReplanMode::Warm, ReplanMode::Cold] {
            let cfg = mode_cfg(kind, seed, mode)
                .on_engine(EngineKind::Sharded)
                .with_record(RecordMode::Aggregate);
            set_threads(1);
            let wall = Instant::now();
            let base = run_stream_with(&grid_scenario, &grid_plan, &cfg, &mut |s| build(s))
                .expect("grid run");
            let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
            set_threads(4);
            let again = run_stream_with(&grid_scenario, &grid_plan, &cfg, &mut |s| build(s))
                .expect("grid rerun");
            assert_eq!(
                base.assignment,
                again.assignment,
                "{name} {} plan changed with thread count",
                mode.label()
            );
            let backlog =
                |r: &StreamOutcome| -> Vec<usize> { r.waves.iter().map(|w| w.backlog).collect() };
            assert_eq!(
                backlog(&base),
                backlog(&again),
                "{name} {} backlog trace changed with thread count",
                mode.label()
            );
            // Sequential engine + full records must match the sharded +
            // aggregate run bit for bit on every simulated metric.
            let cross = run_stream_with(
                &grid_scenario,
                &grid_plan,
                &mode_cfg(kind, seed, mode),
                &mut |s| build(s),
            )
            .expect("grid cross-check");
            assert_eq!(base.assignment, cross.assignment);
            for (metric, a, b) in [
                (
                    "makespan",
                    base.outcome.simulation_time_ms(),
                    cross.outcome.simulation_time_ms(),
                ),
                (
                    "wait_p50",
                    base.outcome.wait_p50_ms(),
                    cross.outcome.wait_p50_ms(),
                ),
                (
                    "wait_p99",
                    base.outcome.wait_p99_ms(),
                    cross.outcome.wait_p99_ms(),
                ),
                (
                    "mean_wait",
                    base.outcome.mean_wait_ms(),
                    cross.outcome.mean_wait_ms(),
                ),
                (
                    "throughput",
                    base.outcome.throughput_per_s(),
                    cross.outcome.throughput_per_s(),
                ),
            ] {
                assert_eq!(
                    a.map(f64::to_bits),
                    b.map(f64::to_bits),
                    "{name} {}: {metric} diverged across engine/record grid",
                    mode.label()
                );
            }
            eprintln!(
                "  {name} {}: {} waves, peak backlog {}, wait p99 {}",
                mode.label(),
                base.rounds(),
                base.peak_backlog(),
                opt_json(base.outcome.wait_p99_ms()),
            );
            rows.push(row_from("grid", &name, mode, &base, wall_ms));
        }
    }
    // Back to the requested (or RAYON_NUM_THREADS / automatic) pool for
    // the headline tier.
    set_threads(threads.unwrap_or(0));

    // ------------------------------------------------------------------
    // Headline tier: rolling arrival load through the sharded engine.
    // ------------------------------------------------------------------
    let head_scenario = scenario(vms, cloudlets, seed);
    let head_plan = WavePlan::poisson(cloudlets, (cloudlets / waves).max(1), interval_ms, seed);
    eprintln!(
        "headline tier: {vms} VMs / {cloudlets} cloudlets / ~{waves} Poisson waves \
         ({} actual, mean interval {interval_ms} ms), sharded engine, space-shared policy",
        head_plan.waves.len()
    );
    // Mean per-wave scheduling latency per (algorithm label, mode) for
    // the gate report.
    let mut head_sched: Vec<(String, ReplanMode, f64)> = Vec::new();
    // Per-wave latency traces for the ACO pair: the scheduling-latency-
    // per-wave story the figure family plots.
    let mut aco_traces: Vec<(ReplanMode, Vec<f64>)> = Vec::new();
    for (kind, name, build) in roster(cloudlets) {
        if !keep(&name) {
            continue;
        }
        for mode in [ReplanMode::Warm, ReplanMode::Cold] {
            let cfg = mode_cfg(kind, seed, mode)
                .on_engine(EngineKind::Sharded)
                .with_record(RecordMode::Aggregate);
            let wall = Instant::now();
            let r = run_stream_with(&head_scenario, &head_plan, &cfg, &mut |s| build(s))
                .expect("headline run");
            let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
            assert_eq!(
                r.outcome.finished_count(),
                cloudlets,
                "{name} {}: streamed cloudlets must all finish",
                mode.label()
            );
            let row = row_from("headline", &name, mode, &r, wall_ms);
            eprintln!(
                "  {name} {}: sched mean {:.2} ms/wave (p95 {:.2}, max {:.2}), \
                 peak backlog {}, wait p99 {}, {:.0} ms total wall",
                mode.label(),
                row.sched_mean_ms,
                row.sched_p95_ms,
                row.sched_max_ms,
                row.peak_backlog,
                opt_json(row.wait_p99_ms),
                wall_ms,
            );
            head_sched.push((name.clone(), mode, row.sched_mean_ms));
            if kind == AlgorithmKind::AntColony {
                aco_traces.push((
                    mode,
                    r.waves
                        .iter()
                        .filter(|w| w.scheduled > 0)
                        .map(|w| w.sched_ms)
                        .collect(),
                ));
            }
            rows.push(row);
        }
    }

    // Warm-vs-cold speedups, gated on the ACO arm at the 100k-VM tier.
    let mean_of = |label: &str, mode: ReplanMode| -> f64 {
        head_sched
            .iter()
            .find(|(l, m, _)| l == label && *m == mode)
            .map(|(_, _, ms)| *ms)
            .expect("headline roster ran both modes")
    };
    let mut speedups: Vec<(String, f64, f64, f64)> = Vec::new();
    for (_, name, _) in roster(cloudlets) {
        if !keep(&name) {
            continue;
        }
        let warm = mean_of(&name, ReplanMode::Warm);
        let cold = mean_of(&name, ReplanMode::Cold);
        let speedup = if warm > 0.0 {
            cold / warm
        } else {
            f64::INFINITY
        };
        eprintln!(
            "  warm speedup {name}: {speedup:.2}x (cold {cold:.2} ms/wave vs warm {warm:.2})"
        );
        speedups.push((name, warm, cold, speedup));
    }
    if gate {
        let (_, warm, cold, speedup) = speedups
            .iter()
            .find(|(n, ..)| n.starts_with("AntColony"))
            .expect("ACO in roster");
        assert!(
            *speedup >= gate_ratio,
            "warm ACO replanning must beat cold by {gate_ratio}x at the {vms}-VM tier: \
             got {speedup:.2}x (warm {warm:.3} ms/wave, cold {cold:.3} ms/wave)"
        );
        eprintln!("gate: warm ACO {speedup:.2}x over cold >= {gate_ratio}x");
    } else {
        eprintln!("gate: skipped (enabled at >= 50k VMs and without --no-gate/--smoke)");
    }

    // ------------------------------------------------------------------
    // JSON emission.
    // ------------------------------------------------------------------
    let mut json = String::from("{\n  \"bench\": \"stream\",\n");
    json.push_str(&format!(
        "  \"seed\": {seed},\n  \"grid\": {{\"vms\": {GRID_VMS}, \"cloudlets\": {GRID_CLOUDLETS}, \
         \"waves\": {GRID_WAVES}}},\n"
    ));
    json.push_str(&format!(
        "  \"headline\": {{\"vms\": {vms}, \"cloudlets\": {cloudlets}, \"waves\": {waves}, \
         \"mean_interval_ms\": {interval_ms:?}, \"engine\": \"sharded\", \
         \"policy\": \"space_shared\"}},\n"
    ));
    json.push_str(
        "  \"note\": \"points rows are simulation-derived and byte-identical across rayon \
         thread counts, engines and record modes (the binary asserts all three on the grid \
         tier); wall rows carry machine-dependent scheduling/run wall clock and are stripped \
         before CI diffs\",\n",
    );
    json.push_str("  \"points\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"tier\": \"{}\", \"algorithm\": \"{}\", \"mode\": \"{}\", \"waves\": {}, \
             \"rounds\": {}, \"peak_backlog\": {}, \"finished\": {}, \"makespan_ms\": {}, \
             \"wait_p50_ms\": {}, \"wait_p99_ms\": {}, \"mean_wait_ms\": {}, \
             \"throughput_per_s\": {}}}{}\n",
            r.tier,
            r.algorithm,
            r.mode.label(),
            r.waves,
            r.rounds,
            r.peak_backlog,
            r.finished,
            opt_json(r.makespan_ms),
            opt_json(r.wait_p50_ms),
            opt_json(r.wait_p99_ms),
            opt_json(r.mean_wait_ms),
            opt_json(r.throughput_per_s),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"wall\": [\n");
    let wall_total = rows.len() + speedups.len() + aco_traces.len();
    let mut emitted = 0usize;
    for r in &rows {
        emitted += 1;
        json.push_str(&format!(
            "    {{\"tier\": \"{}\", \"algorithm\": \"{}\", \"mode\": \"{}\", \
             \"sched_total_wall_ms\": {:.3}, \"sched_mean_wall_ms\": {:.4}, \
             \"sched_p95_wall_ms\": {:.4}, \"sched_max_wall_ms\": {:.4}, \
             \"run_wall_ms\": {:.1}}}{}\n",
            r.tier,
            r.algorithm,
            r.mode.label(),
            r.sched_total_ms,
            r.sched_mean_ms,
            r.sched_p95_ms,
            r.sched_max_ms,
            r.run_wall_ms,
            if emitted < wall_total { "," } else { "" }
        ));
    }
    for (name, warm, cold, speedup) in &speedups {
        emitted += 1;
        json.push_str(&format!(
            "    {{\"tier\": \"headline\", \"algorithm\": \"{name}\", \
             \"warm_mean_wall_ms\": {warm:.4}, \"cold_mean_wall_ms\": {cold:.4}, \
             \"warm_speedup\": {speedup:.3}, \"gated\": {}}}{}\n",
            gate && name.starts_with("AntColony"),
            if emitted < wall_total { "," } else { "" }
        ));
    }
    for (mode, trace) in &aco_traces {
        emitted += 1;
        let vals: Vec<String> = trace.iter().map(|ms| format!("{ms:.3}")).collect();
        json.push_str(&format!(
            "    {{\"tier\": \"headline\", \"algorithm\": \"AntColony(scale)\", \"mode\": \"{}\", \
             \"per_wave_sched_wall_ms\": [{}]}}{}\n",
            mode.label(),
            vals.join(", "),
            if emitted < wall_total { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let mut f = std::fs::File::create(&out_path).expect("output file");
    f.write_all(json.as_bytes()).expect("write json");
    let peak_rss = biosched_bench::rss::peak_rss_kb()
        .map_or_else(|| "unknown".to_string(), |kb| kb.to_string());
    eprintln!("wrote {out_path} (peak RSS {peak_rss} kB)");
    print!("{json}");
}
