//! Workflow DAG benchmark: emits `BENCH_workflows.json`.
//!
//! Runs the paper-scale workflow shapes ([`biosched_workload::workflow`])
//! on **both** engines — the sequential kernel and the dependency-aware
//! epoch driver — and records per-shape aggregates plus wall clock. The
//! binary asserts three properties before writing anything:
//!
//! 1. every aggregate metric is bit-identical across engines (the
//!    dependency-aware epoch driver's trace-equivalence contract),
//! 2. `Workflow::critical_path_mi` is memoized: repeat calls return the
//!    same bits as a freshly built workflow's first call,
//! 3. in full mode, the sharded engine beats the kernel by ≥ 1.3× on the
//!    largest point (a colocated pipeline ensemble where every release
//!    resolves inside a replay lane — the shape the epoch driver is
//!    built for).
//!
//! Everything emitted except the `"wall"` block is computed inside the
//! simulation, so the JSON is byte-identical no matter how many rayon
//! threads execute it. CI exploits that: the dag-smoke job runs
//! `dagbench --smoke` under `RAYON_NUM_THREADS=1` and `=4` and diffs the
//! outputs with the machine-dependent lines stripped (`grep -v wall_ms`;
//! every machine-dependent line contains `wall_ms`). Full mode adds the
//! two paper-scale points: a 1M-task layered DAG over 100k VMs (run
//! sequentially and sharded at 1 and 4 threads, aggregates compared to
//! the bit) and the 1.2M-task ensemble that carries the speedup gate.

use std::io::Write as _;
use std::time::Instant;

use biosched_workload::workflow::{self, Workflow};
use simcloud::datacenter::DatacenterBlueprint;
use simcloud::prelude::*;

/// One matrix entry: a named workflow and the assignment rule that
/// decides how many releases resolve locally vs cross-shard.
struct ShapePoint {
    name: &'static str,
    workflow: Workflow,
    /// Maps task id → VM index (over `vms` VMs).
    assign: fn(usize, usize) -> usize,
    vms: usize,
}

/// Chains colocated in runs of ten: mostly local releases, one cross
/// hop per run boundary.
fn assign_runs_of_ten(task: usize, vms: usize) -> usize {
    (task / 10) % vms
}

/// Round-robin spread: consecutive tasks land on different VMs, so
/// almost every release crosses shards.
fn assign_spread(task: usize, vms: usize) -> usize {
    task % vms
}

/// Whole pipelines pinned to one VM (10-stage jobs): every release is
/// local, chains replay without a single barrier.
fn assign_colocated_10(task: usize, vms: usize) -> usize {
    (task / 10) % vms
}

/// Five-stage variant of [`assign_colocated_10`] for the smoke tier.
fn assign_colocated_5(task: usize, vms: usize) -> usize {
    (task / 5) % vms
}

/// The equivalence matrix at either tier. Shapes match the generators
/// the paper-scale tier uses; smoke shrinks counts ~20×.
fn matrix(smoke: bool, seed: u64) -> Vec<ShapePoint> {
    if smoke {
        vec![
            ShapePoint {
                name: "chain",
                workflow: workflow::chain(1_000, 4_000.0),
                assign: assign_runs_of_ten,
                vms: 64,
            },
            ShapePoint {
                name: "fork_join",
                workflow: workflow::fork_join(100, 3, 4_000.0),
                assign: assign_spread,
                vms: 64,
            },
            ShapePoint {
                name: "layered_sparse",
                workflow: workflow::layered_sparse(6, 200, 3, (500.0, 2_000.0), seed),
                assign: assign_spread,
                vms: 64,
            },
            ShapePoint {
                name: "pipeline_ensemble",
                workflow: workflow::pipeline_ensemble(200, 5, 1_000.0, seed),
                assign: assign_colocated_5,
                vms: 64,
            },
        ]
    } else {
        vec![
            ShapePoint {
                name: "chain",
                workflow: workflow::chain(20_000, 4_000.0),
                assign: assign_runs_of_ten,
                vms: 256,
            },
            ShapePoint {
                name: "fork_join",
                workflow: workflow::fork_join(2_000, 4, 4_000.0),
                assign: assign_spread,
                vms: 256,
            },
            ShapePoint {
                name: "layered_sparse",
                workflow: workflow::layered_sparse(8, 2_500, 3, (500.0, 2_000.0), seed),
                assign: assign_spread,
                vms: 256,
            },
            ShapePoint {
                name: "pipeline_ensemble",
                workflow: workflow::pipeline_ensemble(2_000, 10, 1_000.0, seed),
                assign: assign_colocated_10,
                vms: 256,
            },
        ]
    }
}

/// Runs one workflow on `engine` in aggregate mode; returns the outcome
/// and the wall clock in ms.
fn run_shape(
    wf: &Workflow,
    assign: fn(usize, usize) -> usize,
    vms: usize,
    engine: EngineKind,
) -> (SimulationOutcome, f64) {
    let vm = VmSpec::new(1_000.0, 10_000.0, 512.0, 1_000.0, 2);
    let assignment: Vec<VmId> = (0..wf.len())
        .map(|c| VmId::from_index(assign(c, vms)))
        .collect();
    let wall = Instant::now();
    let outcome = SimulationBuilder::new()
        .engine(engine)
        .record_mode(RecordMode::Aggregate)
        .datacenter(DatacenterBlueprint::sized_for(
            &vm,
            vms,
            2,
            DatacenterCharacteristics::default(),
        ))
        .vms(vec![vm; vms])
        .cloudlets(wf.specs.clone())
        .assignment(assignment)
        .dependencies(wf.parents.clone())
        .run()
        .expect("DAG scenario is feasible by construction");
    let wall_ms = wall.elapsed().as_secs_f64() * 1_000.0;
    assert_eq!(outcome.engine, engine, "requested engine must run");
    assert_eq!(outcome.fallback, None, "no workflow shape falls back");
    assert_eq!(
        outcome.finished_count(),
        wf.len(),
        "the whole DAG must complete"
    );
    (outcome, wall_ms)
}

/// Asserts every aggregate the outcome can answer agrees to the bit.
fn assert_aggregates_match(a: &SimulationOutcome, b: &SimulationOutcome, label: &str) {
    let f = |v: Option<f64>| v.map(f64::to_bits);
    assert_eq!(a.finished_count(), b.finished_count(), "{label}: finished");
    assert_eq!(a.observed_count(), b.observed_count(), "{label}: observed");
    assert_eq!(
        a.end_time.as_millis().to_bits(),
        b.end_time.as_millis().to_bits(),
        "{label}: end_time ({} vs {})",
        a.end_time.as_millis(),
        b.end_time.as_millis()
    );
    assert_eq!(
        f(a.simulation_time_ms()),
        f(b.simulation_time_ms()),
        "{label}: simulation_time_ms"
    );
    assert_eq!(
        f(a.mean_execution_ms()),
        f(b.mean_execution_ms()),
        "{label}: mean_execution_ms"
    );
    assert_eq!(f(a.goodput()), f(b.goodput()), "{label}: goodput");
    assert_eq!(
        a.total_cost().to_bits(),
        b.total_cost().to_bits(),
        "{label}: total_cost"
    );
    assert_eq!(
        a.events_processed, b.events_processed,
        "{label}: events_processed"
    );
}

/// The `critical_path_mi` micro-assert: the memoized value must be
/// bit-identical to a fresh workflow's first computation, and a chain's
/// critical path is exactly its task count × length (both f64-exact).
fn assert_critical_path_memoized(seed: u64) {
    let chain = workflow::chain(1_000, 10.0);
    let first = chain.critical_path_mi();
    assert_eq!(
        first.to_bits(),
        (10_000.0f64).to_bits(),
        "chain lower bound"
    );
    assert_eq!(
        first.to_bits(),
        chain.critical_path_mi().to_bits(),
        "memoized repeat call"
    );
    let a = workflow::layered_sparse(5, 100, 3, (500.0, 2_000.0), seed);
    let b = workflow::layered_sparse(5, 100, 3, (500.0, 2_000.0), seed);
    let cached = a.critical_path_mi();
    assert!(cached > 0.0);
    assert_eq!(cached.to_bits(), a.critical_path_mi().to_bits());
    assert_eq!(
        cached.to_bits(),
        b.critical_path_mi().to_bits(),
        "memoized value equals a fresh workflow's computation"
    );
}

fn engine_label(e: EngineKind) -> &'static str {
    match e {
        EngineKind::Sequential => "sequential",
        EngineKind::Sharded => "sharded",
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    let mut out_path = String::from("BENCH_workflows.json");
    let mut seed = 42u64;
    let mut smoke = false;
    let mut threads: Option<usize> = None;
    let mut big_vms = 100_000usize;
    let mut big_layers = 10usize;
    let mut big_jobs = 120_000usize;
    while let Some(a) = iter.next() {
        let mut val = || iter.next().expect("flag value").clone();
        match a.as_str() {
            "--out" => out_path = val(),
            "--seed" => seed = val().parse().unwrap(),
            "--smoke" => smoke = true,
            "--threads" => threads = Some(val().parse().unwrap()),
            "--big-vms" => big_vms = val().parse().unwrap(),
            "--big-layers" => big_layers = val().parse().unwrap(),
            "--big-jobs" => big_jobs = val().parse().unwrap(),
            other => panic!(
                "unknown flag {other} (try: --out F --seed N --smoke --threads N \
                 --big-vms N --big-layers N --big-jobs N)"
            ),
        }
    }
    if let Some(n) = threads {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .expect("thread pool");
    }

    assert_critical_path_memoized(seed);

    let points = matrix(smoke, seed);
    eprintln!(
        "workflow matrix ({}): {} shapes × 2 engines, seed {seed}",
        if smoke { "smoke" } else { "full" },
        points.len(),
    );
    // (shape meta, per-engine outcome + wall)
    let mut rows = Vec::new();
    for p in &points {
        let (seq, seq_wall) = run_shape(&p.workflow, p.assign, p.vms, EngineKind::Sequential);
        let (shd, shd_wall) = run_shape(&p.workflow, p.assign, p.vms, EngineKind::Sharded);
        assert_aggregates_match(&seq, &shd, p.name);
        eprintln!(
            "  {:>18}: {} tasks / {} edges / {} VMs — sequential {seq_wall:.0} ms, \
             sharded {shd_wall:.0} ms",
            p.name,
            p.workflow.len(),
            p.workflow.edge_count(),
            p.vms,
        );
        rows.push((p, seq, seq_wall, shd_wall));
    }

    // Paper-scale points (full mode only; CI smoke must stay fast).
    let mut big_rows = Vec::new();
    let mut big_tasks = 0usize;
    let mut largest: Option<(usize, f64, f64, f64)> = None;
    if !smoke {
        // 1M-task layered DAG over 100k VMs: sequential once, sharded at
        // 1 and 4 threads — aggregates must agree to the bit everywhere.
        let wf = workflow::layered_sparse(big_layers, big_vms, 2, (500.0, 2_000.0), seed);
        eprintln!(
            "layered at paper scale: {} tasks / {} edges / {big_vms} VMs",
            wf.len(),
            wf.edge_count(),
        );
        let (seq, seq_wall) = run_shape(&wf, assign_spread, big_vms, EngineKind::Sequential);
        eprintln!("  sequential: {seq_wall:.0} ms");
        for pool in [1usize, 4] {
            rayon::ThreadPoolBuilder::new()
                .num_threads(pool)
                .build_global()
                .expect("vendored rayon accepts repeated global builds");
            let (shd, shd_wall) = run_shape(&wf, assign_spread, big_vms, EngineKind::Sharded);
            assert_aggregates_match(&seq, &shd, &format!("layered 1M, {pool} threads"));
            eprintln!("  sharded ({pool} threads): {shd_wall:.0} ms");
            big_rows.push((pool, shd_wall));
        }
        big_rows.insert(0, (0, seq_wall)); // pool 0 = sequential row
        big_tasks = wf.len();

        // The largest point: a colocated pipeline ensemble (10-stage
        // jobs pinned to one VM each) — every release resolves inside a
        // replay lane, so the epoch driver drains the whole DAG in one
        // flush. This is the shape that carries the ≥1.3× gate.
        let wf = workflow::pipeline_ensemble(big_jobs, 10, 1_000.0, seed);
        eprintln!(
            "largest point: pipeline ensemble, {} tasks / {} VMs (colocated)",
            wf.len(),
            big_vms,
        );
        let (seq, seq_wall) = run_shape(&wf, assign_colocated_10, big_vms, EngineKind::Sequential);
        eprintln!("  sequential: {seq_wall:.0} ms");
        let (shd, shd_wall) = run_shape(&wf, assign_colocated_10, big_vms, EngineKind::Sharded);
        eprintln!("  sharded:    {shd_wall:.0} ms");
        assert_aggregates_match(&seq, &shd, "largest ensemble");
        let speedup = seq_wall / shd_wall;
        eprintln!("  speedup: {speedup:.2}×");
        assert!(
            speedup >= 1.3,
            "the dependency-aware epoch driver must beat the kernel ≥1.3× on the \
             largest point, got {speedup:.2}× ({seq_wall:.0} ms vs {shd_wall:.0} ms)"
        );
        largest = Some((wf.len(), seq_wall, shd_wall, speedup));
    }

    let mut json = String::from("{\n  \"bench\": \"workflows\",\n");
    json.push_str(&format!(
        "  \"seed\": {seed},\n  \"tier\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    json.push_str(
        "  \"note\": \"aggregates are computed in-simulation and byte-identical across \
         engines and rayon thread counts (asserted before writing); wall_ms lines are \
         machine-dependent and are stripped before CI diffs\",\n",
    );
    json.push_str("  \"points\": [\n");
    for (i, (p, seq, _, _)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shape\": \"{}\", \"tasks\": {}, \"edges\": {}, \"vms\": {}, \
             \"critical_path_mi\": {:?}, \"finished\": {}, \"makespan_ms\": {:?}, \
             \"mean_execution_ms\": {:?}, \"goodput\": {:?}, \"events\": {}}}{}\n",
            p.name,
            p.workflow.len(),
            p.workflow.edge_count(),
            p.vms,
            p.workflow.critical_path_mi(),
            seq.finished_count(),
            seq.end_time.as_millis(),
            seq.mean_execution_ms().unwrap_or(0.0),
            seq.goodput().unwrap_or(0.0),
            seq.events_processed,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"wall\": [\n");
    let mut wall_lines: Vec<String> = Vec::new();
    for (p, _, seq_wall, shd_wall) in &rows {
        for (engine, w) in [("sequential", seq_wall), ("sharded", shd_wall)] {
            wall_lines.push(format!(
                "    {{\"shape\": \"{}\", \"engine\": \"{engine}\", \"tasks\": {}, \
                 \"vms\": {}, \"wall_ms\": {w:.1}}}",
                p.name,
                p.workflow.len(),
                p.vms,
            ));
        }
    }
    for (pool, w) in &big_rows {
        let engine = if *pool == 0 {
            engine_label(EngineKind::Sequential).to_string()
        } else {
            format!("{}-{pool}t", engine_label(EngineKind::Sharded))
        };
        wall_lines.push(format!(
            "    {{\"shape\": \"layered_sparse\", \"point\": \"paper-scale\", \
             \"engine\": \"{engine}\", \"tasks\": {big_tasks}, \"vms\": {big_vms}, \
             \"wall_ms\": {w:.1}}}",
        ));
    }
    if let Some((tasks, seq_wall, shd_wall, speedup)) = largest {
        wall_lines.push(format!(
            "    {{\"shape\": \"pipeline_ensemble\", \"point\": \"largest\", \
             \"tasks\": {tasks}, \"vms\": {big_vms}, \
             \"sequential_wall_ms\": {seq_wall:.1}, \"sharded_wall_ms\": {shd_wall:.1}, \
             \"speedup_wall_ms\": {speedup:.2}}}",
        ));
    }
    json.push_str(&wall_lines.join(",\n"));
    json.push_str("\n  ]\n}\n");

    let mut f = std::fs::File::create(&out_path).expect("output file");
    f.write_all(json.as_bytes()).expect("write json");
    let peak_rss = biosched_bench::rss::peak_rss_kb()
        .map_or_else(|| "unknown".to_string(), |kb| kb.to_string());
    eprintln!("wrote {out_path} (peak RSS {peak_rss} kB)");
    print!("{json}");
}
