//! Simulator throughput benchmark: emits `BENCH_simulator.json`.
//!
//! Measures wall-clock, event throughput and peak RSS of the discrete-event
//! simulator at 1k/10k/100k-cloudlet scales (the paper's 10:1 cloudlet:VM
//! ratio) for each engine, plus the full paper-scale point (100 000 VMs /
//! 1 000 000 cloudlets) with `--full-scale`.
//!
//! Each point runs in a child process (this binary re-invoked in `point`
//! mode) so peak-RSS figures are per-point rather than cumulative.

use std::io::Write as _;
use std::process::Command;
use std::time::Instant;

use biosched_core::scheduler::AlgorithmKind;
use biosched_workload::homogeneous::HomogeneousScenario;
use simcloud::simulation::EngineKind;

/// (label, divisor into the paper's 100k-VM / 1M-cloudlet point).
const SCALES: &[(&str, usize)] = &[("1k", 1_000), ("10k", 100), ("100k", 10)];

fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| {
                l.strip_prefix("VmHWM:")
                    .and_then(|v| v.trim().trim_end_matches(" kB").trim().parse().ok())
            })
        })
        .unwrap_or(0)
}

fn run_point(vms: usize, cloudlets: usize, engine: &str) {
    let scenario = HomogeneousScenario {
        vm_count: vms,
        cloudlet_count: cloudlets,
    }
    .build();
    let assignment = AlgorithmKind::BaseTest
        .build(0)
        .schedule(&scenario.problem());
    let kind = match engine {
        "sequential" => EngineKind::Sequential,
        "sharded" => EngineKind::Sharded,
        other => panic!("unknown engine {other} (try: sequential, sharded)"),
    };
    let started = Instant::now();
    let outcome = scenario
        .simulate_on(assignment, kind)
        .expect("simulation must complete");
    let wall = started.elapsed().as_secs_f64() * 1_000.0;
    assert_eq!(outcome.finished_count(), cloudlets, "all cloudlets finish");
    assert_eq!(outcome.engine, kind, "requested engine must actually run");
    println!("wall_ms={wall}");
    println!("events={}", outcome.events_processed);
    println!("end_time_ms={}", outcome.end_time.as_millis());
    println!("peak_rss_kb={}", peak_rss_kb());
}

struct PointOut {
    label: String,
    vms: usize,
    cloudlets: usize,
    engine: String,
    threads: usize,
    wall_ms: f64,
    events: u64,
    events_per_sec: f64,
    peak_rss_kb: u64,
}

fn spawn_point(
    label: &str,
    vms: usize,
    cloudlets: usize,
    engine: &str,
    threads: usize,
) -> PointOut {
    let exe = std::env::current_exe().expect("own path");
    let out = Command::new(exe)
        .args([
            "point",
            "--vms",
            &vms.to_string(),
            "--cloudlets",
            &cloudlets.to_string(),
            "--engine",
            engine,
            "--threads",
            &threads.to_string(),
        ])
        .output()
        .expect("child benchmark process");
    assert!(
        out.status.success(),
        "point {label}/{engine} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let get = |key: &str| -> f64 {
        stdout
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("child output missing {key}"))
            .parse()
            .expect("numeric field")
    };
    let wall_ms = get("wall_ms");
    let events = get("events") as u64;
    PointOut {
        label: label.to_string(),
        vms,
        cloudlets,
        engine: engine.to_string(),
        threads,
        wall_ms,
        events,
        events_per_sec: events as f64 / (wall_ms / 1_000.0),
        peak_rss_kb: get("peak_rss_kb") as u64,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    if args.first().map(String::as_str) == Some("point") {
        let mut vms = 0usize;
        let mut cloudlets = 0usize;
        let mut engine = String::from("sequential");
        let mut threads = 1usize;
        iter.next();
        while let Some(a) = iter.next() {
            let mut val = || iter.next().expect("flag value").clone();
            match a.as_str() {
                "--vms" => vms = val().parse().unwrap(),
                "--cloudlets" => cloudlets = val().parse().unwrap(),
                "--engine" => engine = val(),
                "--threads" => threads = val().parse().unwrap(),
                other => panic!("unknown point flag {other}"),
            }
        }
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .expect("thread pool");
        run_point(vms, cloudlets, &engine);
        return;
    }

    let mut out_path = String::from("BENCH_simulator.json");
    let mut full_scale = false;
    let mut threads = 8usize;
    let mut engines: Vec<String> = vec!["sequential".into(), "sharded".into()];
    while let Some(a) = iter.next() {
        let mut val = || iter.next().expect("flag value").clone();
        match a.as_str() {
            "--out" => out_path = val(),
            "--full-scale" => full_scale = true,
            "--threads" => threads = val().parse().unwrap(),
            "--engines" => engines = val().split(',').map(str::to_string).collect(),
            other => panic!("unknown flag {other}"),
        }
    }

    let mut points = Vec::new();
    for (label, divisor) in SCALES {
        for engine in &engines {
            let s = HomogeneousScenario::scaled(100_000, *divisor);
            eprintln!(
                "running {label} ({} vms / {} cloudlets) on {engine}...",
                s.vm_count, s.cloudlet_count
            );
            points.push(spawn_point(
                label,
                s.vm_count,
                s.cloudlet_count,
                engine,
                threads,
            ));
        }
    }
    if full_scale {
        for engine in &engines {
            eprintln!("running full-scale (100000 vms / 1000000 cloudlets) on {engine}...");
            points.push(spawn_point("full", 100_000, 1_000_000, engine, threads));
        }
    }

    let mut json = String::from("{\n  \"bench\": \"simulator\",\n");
    json.push_str(&format!(
        "  \"machine_cores\": {},\n  \"points\": [\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scale\": \"{}\", \"vms\": {}, \"cloudlets\": {}, \"engine\": \"{}\", \"threads\": {}, \"wall_ms\": {:.3}, \"events\": {}, \"events_per_sec\": {:.1}, \"peak_rss_kb\": {}}}{}\n",
            p.label,
            p.vms,
            p.cloudlets,
            p.engine,
            p.threads,
            p.wall_ms,
            p.events,
            p.events_per_sec,
            p.peak_rss_kb,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let mut f = std::fs::File::create(&out_path).expect("output file");
    f.write_all(json.as_bytes()).expect("write json");
    eprintln!("wrote {out_path}");
    print!("{json}");
}
