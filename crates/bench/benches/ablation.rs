//! Parameter ablations — the "better parametric configuration" analysis
//! the paper motivates in its introduction.
//!
//! Sweeps each algorithm's key knob and records both decision time
//! (criterion's measurement) and, via stderr notes, the estimated makespan
//! quality so time/quality trade-offs are visible in one run:
//!
//! * ACO: ant count and iteration count (Table II's population knobs).
//! * HBO: the `facLB` load-balance factor.
//! * RBS: the VM group size.
//! * Greedy baselines: Min-Min vs Max-Min.

use biosched_core::aco::{AcoParams, AntColony};
use biosched_core::ga::{GaParams, Genetic};
use biosched_core::hbo::{HboParams, HoneyBee};
use biosched_core::minmax::{MaxMin, MinMin};
use biosched_core::objective::{score_assignment, Objective};
use biosched_core::pso::{ParticleSwarm, PsoParams};
use biosched_core::rbs::{RandomBiasedSampling, RbsParams};
use biosched_core::scheduler::Scheduler;
use biosched_workload::heterogeneous::HeterogeneousScenario;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn problem() -> biosched_core::problem::SchedulingProblem {
    HeterogeneousScenario {
        vm_count: 100,
        cloudlet_count: 500,
        datacenter_count: 4,
        seed: 42,
    }
    .build()
    .problem()
}

fn bench_aco_ants(c: &mut Criterion) {
    let p = problem();
    let mut group = c.benchmark_group("ablation/aco_ants");
    group.sample_size(10);
    for ants in [10usize, 25, 50] {
        let params = AcoParams {
            ants,
            ..AcoParams::paper()
        };
        group.bench_function(BenchmarkId::from_parameter(ants), |b| {
            b.iter(|| {
                let mut s = AntColony::new(params.clone(), 1);
                black_box(s.schedule(black_box(&p)))
            })
        });
        let quality = AntColony::new(params.clone(), 1)
            .schedule(&p)
            .estimated_makespan_ms(&p);
        eprintln!("[ablation] aco ants={ants}: est. makespan {quality:.1} ms");
    }
    group.finish();
}

fn bench_aco_iterations(c: &mut Criterion) {
    let p = problem();
    let mut group = c.benchmark_group("ablation/aco_iterations");
    group.sample_size(10);
    for iterations in [2usize, 8, 16] {
        let params = AcoParams {
            iterations,
            ..AcoParams::paper()
        };
        group.bench_function(BenchmarkId::from_parameter(iterations), |b| {
            b.iter(|| {
                let mut s = AntColony::new(params.clone(), 1);
                black_box(s.schedule(black_box(&p)))
            })
        });
    }
    group.finish();
}

fn bench_hbo_fac_lb(c: &mut Criterion) {
    let p = problem();
    let mut group = c.benchmark_group("ablation/hbo_fac_lb");
    for fac in [0.3f64, 0.7, 1.0] {
        let params = HboParams {
            fac_lb: fac,
            ..HboParams::paper()
        };
        group.bench_function(BenchmarkId::from_parameter(fac), |b| {
            b.iter(|| {
                let mut s = HoneyBee::new(params.clone(), 1);
                black_box(s.schedule(black_box(&p)))
            })
        });
    }
    group.finish();
}

fn bench_rbs_group_size(c: &mut Criterion) {
    let p = problem();
    let mut group = c.benchmark_group("ablation/rbs_group_size");
    for size in [2usize, 10, 50] {
        let params = RbsParams { group_size: size };
        group.bench_function(BenchmarkId::from_parameter(size), |b| {
            b.iter(|| {
                let mut s = RandomBiasedSampling::new(params.clone(), 1);
                black_box(s.schedule(black_box(&p)))
            })
        });
    }
    group.finish();
}

fn bench_greedy_baselines(c: &mut Criterion) {
    let p = problem();
    let mut group = c.benchmark_group("ablation/greedy_baselines");
    group.sample_size(10);
    group.bench_function("min_min", |b| {
        b.iter(|| black_box(MinMin::new().schedule(black_box(&p))))
    });
    group.bench_function("max_min", |b| {
        b.iter(|| black_box(MaxMin::new().schedule(black_box(&p))))
    });
    group.finish();
}

/// The survey claim the paper repeats ([30]: PSO converges fastest, GA is
/// slow): measure decision time for the three population heuristics at
/// comparable search budgets, and note solution quality on stderr.
fn bench_population_heuristics(c: &mut Criterion) {
    let p = problem();
    let mut group = c.benchmark_group("ablation/population_heuristics");
    group.sample_size(10);

    group.bench_function("aco_paper", |b| {
        b.iter(|| {
            let mut s = AntColony::new(AcoParams::paper(), 1);
            black_box(s.schedule(black_box(&p)))
        })
    });
    group.bench_function("pso_standard", |b| {
        b.iter(|| {
            let mut s = ParticleSwarm::new(PsoParams::standard(), 1);
            black_box(s.schedule(black_box(&p)))
        })
    });
    group.bench_function("ga_standard", |b| {
        b.iter(|| {
            let mut s = Genetic::new(GaParams::standard(), 1);
            black_box(s.schedule(black_box(&p)))
        })
    });
    group.finish();

    for (name, assignment) in [
        ("aco", AntColony::new(AcoParams::paper(), 1).schedule(&p)),
        (
            "pso",
            ParticleSwarm::new(PsoParams::standard(), 1).schedule(&p),
        ),
        ("ga", Genetic::new(GaParams::standard(), 1).schedule(&p)),
    ] {
        eprintln!(
            "[ablation] {name}: est. makespan {:.1} ms",
            score_assignment(&p, &assignment, Objective::Makespan)
        );
    }
}

/// Substrate ablation: VM→host allocation policies on a tightly packed
/// datacenter (how fast each policy places a full fleet).
fn bench_vm_allocation_policies(c: &mut Criterion) {
    use simcloud::host::{Host, HostSpec};
    use simcloud::ids::{HostId, VmId};
    use simcloud::vm::VmSpec;
    use simcloud::vm_alloc::{BestFit, FirstFit, LeastLoaded, RoundRobinHosts, VmAllocationPolicy};

    let vm = VmSpec::homogeneous_default();
    let make_hosts = || -> Vec<Host> {
        (0..64)
            .map(|i| Host::new(HostId(i), HostSpec::roomy_for(&vm, 4)))
            .collect()
    };

    fn place_all(
        policy: &mut dyn VmAllocationPolicy,
        hosts: &mut [Host],
        vm: &VmSpec,
        count: u32,
    ) -> usize {
        let mut placed = 0usize;
        for i in 0..count {
            if let Some(host) = policy.select_host(hosts, vm) {
                if hosts[host.index()].allocate_vm(VmId(i), vm) {
                    placed += 1;
                }
            }
        }
        placed
    }

    let mut group = c.benchmark_group("ablation/vm_allocation");
    group.bench_function("first_fit", |b| {
        b.iter(|| {
            let mut hosts = make_hosts();
            black_box(place_all(&mut FirstFit::default(), &mut hosts, &vm, 256))
        })
    });
    group.bench_function("best_fit", |b| {
        b.iter(|| {
            let mut hosts = make_hosts();
            black_box(place_all(&mut BestFit, &mut hosts, &vm, 256))
        })
    });
    group.bench_function("least_loaded", |b| {
        b.iter(|| {
            let mut hosts = make_hosts();
            black_box(place_all(&mut LeastLoaded, &mut hosts, &vm, 256))
        })
    });
    group.bench_function("round_robin", |b| {
        b.iter(|| {
            let mut hosts = make_hosts();
            black_box(place_all(
                &mut RoundRobinHosts::default(),
                &mut hosts,
                &vm,
                256,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_aco_ants,
    bench_aco_iterations,
    bench_hbo_fac_lb,
    bench_rbs_group_size,
    bench_greedy_baselines,
    bench_population_heuristics,
    bench_vm_allocation_policies
);
criterion_main!(benches);
