//! Substrate benchmarks: the discrete-event simulator itself.
//!
//! These measure `simcloud`'s event throughput so figure-level timings can
//! be attributed correctly between scheduler cost (the paper's metric) and
//! simulator cost (our substrate's overhead).

use biosched_core::scheduler::AlgorithmKind;
use biosched_workload::homogeneous::HomogeneousScenario;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use simcloud::event::{Event, EventQueue};
use simcloud::ids::EntityId;
use simcloud::time::SimTime;
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/event_queue");
    for n in [1_000usize, 100_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(BenchmarkId::new("push_pop", n), |b| {
            b.iter(|| {
                let mut q = EventQueue::with_capacity(n);
                // Scattered times exercise heap reordering.
                for i in 0..n {
                    let t = ((i * 2_654_435_761) % 1_000_000) as f64;
                    q.push(SimTime::new(t), EntityId(0), EntityId(0), Event::Start);
                }
                let mut last = 0.0;
                while let Some(ev) = q.pop() {
                    last = ev.time.as_millis();
                }
                black_box(last)
            })
        });
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/end_to_end");
    group.sample_size(10);
    for (vms, cloudlets) in [(50usize, 500usize), (200, 5_000)] {
        let scenario = HomogeneousScenario {
            vm_count: vms,
            cloudlet_count: cloudlets,
        }
        .build();
        let assignment = AlgorithmKind::BaseTest
            .build(0)
            .schedule(&scenario.problem());
        group.throughput(Throughput::Elements(cloudlets as u64));
        group.bench_function(
            BenchmarkId::from_parameter(format!("{vms}vm_{cloudlets}cl")),
            |b| {
                b.iter(|| {
                    let outcome = scenario
                        .simulate(black_box(assignment.clone()))
                        .expect("simulation runs");
                    black_box(outcome.finished_count())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_end_to_end);
criterion_main!(benches);
