//! Evaluation-kernel micro-benchmarks.
//!
//! Quantifies what `core::eval` buys over the pre-kernel code paths:
//!
//! * `exec_ms`: Eq. 6 lookup through the dense ETC matrix / the cached
//!   per-VM rates vs recomputing from `SchedulingProblem` every time;
//! * `rescore`: evaluating single-cloudlet moves with the incremental
//!   [`LoadTracker`] vs re-scoring the whole plan from scratch, at 1k,
//!   10k and 100k cloudlets;
//! * `population`: batch GA/PSO-style population scoring through
//!   [`evaluate_population`] vs a serial `score_assignment` loop.

use biosched_core::assignment::Assignment;
use biosched_core::eval::{evaluate_population, EvalCache, LoadTracker};
use biosched_core::objective::{score_assignment, Objective};
use biosched_core::problem::SchedulingProblem;
use biosched_workload::heterogeneous::HeterogeneousScenario;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use simcloud::ids::VmId;
use std::hint::black_box;

const VMS: usize = 50;

fn problem_with(cloudlets: usize) -> SchedulingProblem {
    HeterogeneousScenario {
        vm_count: VMS,
        cloudlet_count: cloudlets,
        datacenter_count: 4,
        seed: 42,
    }
    .build()
    .problem()
}

/// Full ETC sweep: every (cloudlet, VM) pair once.
fn bench_exec_ms(c: &mut Criterion) {
    let problem = problem_with(1_000);
    let dense = EvalCache::new(&problem);
    let lite = EvalCache::lite(&problem);
    let n = problem.cloudlet_count();
    let v = problem.vm_count();

    let mut group = c.benchmark_group("eval_kernel/exec_ms_1000cl_50vm");
    group.throughput(Throughput::Elements((n * v) as u64));
    group.bench_function(BenchmarkId::from_parameter("uncached"), |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for cl in 0..n {
                for vm in 0..v {
                    acc += problem.expected_exec_ms(cl, vm);
                }
            }
            black_box(acc)
        })
    });
    group.bench_function(BenchmarkId::from_parameter("cached_lite"), |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for cl in 0..n {
                for vm in 0..v {
                    acc += lite.exec_ms(cl, vm);
                }
            }
            black_box(acc)
        })
    });
    group.bench_function(BenchmarkId::from_parameter("cached_dense"), |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for cl in 0..n {
                for vm in 0..v {
                    acc += dense.exec_ms(cl, vm);
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

/// Local-search move evaluation: 64 single-cloudlet moves, scored
/// incrementally vs by re-scoring the full plan.
fn bench_rescore(c: &mut Criterion) {
    for size in [1_000usize, 10_000, 100_000] {
        let problem = problem_with(size);
        let v = problem.vm_count();
        let cache = EvalCache::new(&problem);
        let base: Vec<VmId> = (0..size).map(|i| VmId::from_index(i % v)).collect();
        let mut tracker = LoadTracker::new(&cache);
        for (cl, vm) in base.iter().enumerate() {
            tracker.assign(&cache, cl, vm.index());
        }
        let probes: Vec<(usize, usize)> = (0..64).map(|k| (k * 997 % size, k * 31 % v)).collect();

        let mut group = c.benchmark_group(format!("eval_kernel/rescore_{size}cl"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(probes.len() as u64));
        group.bench_function(BenchmarkId::from_parameter("from_scratch"), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for &(cl, vm) in &probes {
                    let mut plan = base.clone();
                    plan[cl] = VmId::from_index(vm);
                    acc += score_assignment(&problem, &Assignment::new(plan), Objective::Makespan);
                }
                black_box(acc)
            })
        });
        group.bench_function(BenchmarkId::from_parameter("incremental"), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for &(cl, vm) in &probes {
                    let orig = tracker.unassign(&cache, cl);
                    acc += tracker.score_if(&cache, cl, vm, Objective::Makespan);
                    tracker.assign(&cache, cl, orig);
                }
                black_box(acc)
            })
        });
        group.finish();
    }
}

/// GA/PSO-style batch: score a 32-genome population.
fn bench_population(c: &mut Criterion) {
    for size in [1_000usize, 10_000] {
        let problem = problem_with(size);
        let v = problem.vm_count();
        let cache = EvalCache::new(&problem);
        let genomes: Vec<Vec<u32>> = (0..32)
            .map(|g| (0..size).map(|i| ((i + g * 7) % v) as u32).collect())
            .collect();

        let mut group = c.benchmark_group(format!("eval_kernel/population32_{size}cl"));
        group.sample_size(10);
        group.throughput(Throughput::Elements((genomes.len() * size) as u64));
        group.bench_function(BenchmarkId::from_parameter("serial_from_scratch"), |b| {
            b.iter(|| {
                let total: f64 = genomes
                    .iter()
                    .map(|g| {
                        let plan = Assignment::new(g.iter().map(|x| VmId(*x)).collect());
                        score_assignment(&problem, &plan, Objective::Makespan)
                    })
                    .sum();
                black_box(total)
            })
        });
        group.bench_function(BenchmarkId::from_parameter("evaluate_population"), |b| {
            b.iter(|| black_box(evaluate_population(&cache, &genomes, Objective::Makespan)))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_exec_ms, bench_rescore, bench_population);
criterion_main!(benches);
