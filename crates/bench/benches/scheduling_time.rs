//! Scheduling-time micro-benchmarks (the measurement behind Figs. 5/6b).
//!
//! Benchmarks each algorithm's pure decision time on fixed problems —
//! one homogeneous point and one heterogeneous point — so relative
//! scheduler costs (Base ≪ RBS < HBO < ACO) can be verified precisely.

use biosched_core::aco::{reference, AcoParams, AntColony};
use biosched_core::scheduler::{AlgorithmKind, Scheduler};
use biosched_workload::heterogeneous::HeterogeneousScenario;
use biosched_workload::homogeneous::HomogeneousScenario;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_homogeneous(c: &mut Criterion) {
    let problem = HomogeneousScenario {
        vm_count: 100,
        cloudlet_count: 1_000,
    }
    .build()
    .problem();

    let mut group = c.benchmark_group("scheduling_time/homogeneous_100vm_1000cl");
    group.sample_size(10);
    for kind in AlgorithmKind::PAPER_SET {
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter(|| {
                let mut scheduler = kind.build(42);
                black_box(scheduler.schedule(black_box(&problem)))
            })
        });
    }
    group.finish();
}

fn bench_heterogeneous(c: &mut Criterion) {
    let problem = HeterogeneousScenario {
        vm_count: 200,
        cloudlet_count: 1_000,
        datacenter_count: 4,
        seed: 42,
    }
    .build()
    .problem();

    let mut group = c.benchmark_group("scheduling_time/heterogeneous_200vm_1000cl");
    group.sample_size(10);
    for kind in AlgorithmKind::PAPER_SET {
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter(|| {
                let mut scheduler = kind.build(42);
                black_box(scheduler.schedule(black_box(&problem)))
            })
        });
    }
    group.finish();
}

fn bench_vm_scaling(c: &mut Criterion) {
    // How each scheduler's decision time grows with the fleet (Fig. 5's
    // x-axis effect, scaled down).
    let mut group = c.benchmark_group("scheduling_time/vm_scaling_500cl");
    group.sample_size(10);
    for vms in [50usize, 200, 800] {
        let problem = HeterogeneousScenario {
            vm_count: vms,
            cloudlet_count: 500,
            datacenter_count: 4,
            seed: 7,
        }
        .build()
        .problem();
        for kind in [AlgorithmKind::BaseTest, AlgorithmKind::AntColony] {
            group.bench_function(BenchmarkId::new(kind.label(), vms), |b| {
                b.iter(|| {
                    let mut scheduler = kind.build(7);
                    black_box(scheduler.schedule(black_box(&problem)))
                })
            });
        }
    }
    group.finish();
}

fn bench_colony_parallelism(c: &mut Criterion) {
    // The hot-path overhaul's headline comparison at the issue's gate
    // point (10k cloudlets / 1k VMs): the frozen pre-overhaul loop vs the
    // optimized path with colonies kept sequential (1 rayon thread) vs
    // fanned out (4 threads). Assignments are byte-identical across all
    // three — only wall-clock differs.
    let problem = HomogeneousScenario {
        vm_count: 1_000,
        cloudlet_count: 10_000,
    }
    .build()
    .problem();
    let set_threads = |n: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .expect("vendored rayon accepts repeated build_global");
    };

    let mut group = c.benchmark_group("scheduling_time/colony_parallelism_1000vm_10000cl");
    group.sample_size(10);
    group.bench_function("reference", |b| {
        set_threads(1);
        b.iter(|| {
            black_box(reference::schedule_reference(
                &AcoParams::paper(),
                42,
                black_box(&problem),
            ))
        })
    });
    for threads in [1usize, 4] {
        group.bench_function(BenchmarkId::new("optimized", threads), |b| {
            set_threads(threads);
            b.iter(|| {
                let mut scheduler = AntColony::new(AcoParams::paper(), 42);
                black_box(scheduler.schedule(black_box(&problem)))
            })
        });
    }
    set_threads(0);
    group.finish();
}

criterion_group!(
    benches,
    bench_homogeneous,
    bench_heterogeneous,
    bench_vm_scaling,
    bench_colony_parallelism
);
criterion_main!(benches);
