//! Scheduling-time micro-benchmarks (the measurement behind Figs. 5/6b).
//!
//! Benchmarks each algorithm's pure decision time on fixed problems —
//! one homogeneous point and one heterogeneous point — so relative
//! scheduler costs (Base ≪ RBS < HBO < ACO) can be verified precisely.

use biosched_core::scheduler::AlgorithmKind;
use biosched_workload::heterogeneous::HeterogeneousScenario;
use biosched_workload::homogeneous::HomogeneousScenario;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_homogeneous(c: &mut Criterion) {
    let problem = HomogeneousScenario {
        vm_count: 100,
        cloudlet_count: 1_000,
    }
    .build()
    .problem();

    let mut group = c.benchmark_group("scheduling_time/homogeneous_100vm_1000cl");
    group.sample_size(10);
    for kind in AlgorithmKind::PAPER_SET {
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter(|| {
                let mut scheduler = kind.build(42);
                black_box(scheduler.schedule(black_box(&problem)))
            })
        });
    }
    group.finish();
}

fn bench_heterogeneous(c: &mut Criterion) {
    let problem = HeterogeneousScenario {
        vm_count: 200,
        cloudlet_count: 1_000,
        datacenter_count: 4,
        seed: 42,
    }
    .build()
    .problem();

    let mut group = c.benchmark_group("scheduling_time/heterogeneous_200vm_1000cl");
    group.sample_size(10);
    for kind in AlgorithmKind::PAPER_SET {
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter(|| {
                let mut scheduler = kind.build(42);
                black_box(scheduler.schedule(black_box(&problem)))
            })
        });
    }
    group.finish();
}

fn bench_vm_scaling(c: &mut Criterion) {
    // How each scheduler's decision time grows with the fleet (Fig. 5's
    // x-axis effect, scaled down).
    let mut group = c.benchmark_group("scheduling_time/vm_scaling_500cl");
    group.sample_size(10);
    for vms in [50usize, 200, 800] {
        let problem = HeterogeneousScenario {
            vm_count: vms,
            cloudlet_count: 500,
            datacenter_count: 4,
            seed: 7,
        }
        .build()
        .problem();
        for kind in [AlgorithmKind::BaseTest, AlgorithmKind::AntColony] {
            group.bench_function(BenchmarkId::new(kind.label(), vms), |b| {
                b.iter(|| {
                    let mut scheduler = kind.build(7);
                    black_box(scheduler.schedule(black_box(&problem)))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_homogeneous,
    bench_heterogeneous,
    bench_vm_scaling
);
criterion_main!(benches);
