//! Figure data: an x-axis with one or more named y-series.
//!
//! Every figure in the paper is a family of lines over a VM-count x-axis;
//! [`FigureSeries`] is exactly that, with CSV export and an ASCII renderer
//! for terminal inspection.

/// Data behind one figure.
#[derive(Debug, Clone)]
pub struct FigureSeries {
    /// Figure title (e.g. "Fig 6a — Simulation Time, heterogeneous").
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// X values, shared by all series.
    pub x: Vec<f64>,
    /// Named y-series, each aligned with `x`.
    pub series: Vec<(String, Vec<f64>)>,
}

impl FigureSeries {
    /// Creates an empty figure with labels.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
        x: Vec<f64>,
    ) -> Self {
        FigureSeries {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            x,
            series: Vec::new(),
        }
    }

    /// Adds a named series; its length must match the x-axis.
    pub fn push_series(&mut self, name: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.x.len(),
            "series length must match the x-axis"
        );
        self.series.push((name.into(), values));
    }

    /// Renders the figure as CSV: header `x_label,name1,name2,…` then rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&csv_escape(&self.x_label));
        for (name, _) in &self.series {
            out.push(',');
            out.push_str(&csv_escape(name));
        }
        out.push('\n');
        for (i, x) in self.x.iter().enumerate() {
            out.push_str(&format!("{x}"));
            for (_, values) in &self.series {
                out.push_str(&format!(",{}", values[i]));
            }
            out.push('\n');
        }
        out
    }

    /// Renders a monochrome ASCII line chart (for terminal reports).
    ///
    /// Each series is drawn with its own marker; a legend follows.
    pub fn render_ascii(&self, width: usize, height: usize) -> String {
        const MARKERS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&'];
        let width = width.max(16);
        let height = height.max(4);
        let mut out = format!("{}\n", self.title);
        if self.x.is_empty() || self.series.is_empty() {
            out.push_str("(no data)\n");
            return out;
        }
        let y_min = self
            .series
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .fold(f64::INFINITY, f64::min)
            .min(0.0);
        let mut y_max = self
            .series
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .fold(f64::NEG_INFINITY, f64::max);
        if y_max <= y_min {
            y_max = y_min + 1.0;
        }
        let x_min = self.x.first().copied().unwrap_or(0.0);
        let x_max = self.x.last().copied().unwrap_or(1.0).max(x_min + 1.0);

        let mut grid = vec![vec![' '; width]; height];
        for (si, (_, values)) in self.series.iter().enumerate() {
            let marker = MARKERS[si % MARKERS.len()];
            for (x, y) in self.x.iter().zip(values) {
                let col = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
                let row_f = (y - y_min) / (y_max - y_min) * (height - 1) as f64;
                let row = height - 1 - row_f.round() as usize;
                let cell = &mut grid[row.min(height - 1)][col.min(width - 1)];
                // Overlapping points show the later series' marker.
                *cell = marker;
            }
        }
        out.push_str(&format!("{:>12.3} ┤", y_max));
        out.push_str(&grid[0].iter().collect::<String>());
        out.push('\n');
        for row in &grid[1..height - 1] {
            out.push_str("             │");
            out.push_str(&row.iter().collect::<String>());
            out.push('\n');
        }
        out.push_str(&format!("{:>12.3} ┼", y_min));
        out.push_str(&grid[height - 1].iter().collect::<String>());
        out.push('\n');
        out.push_str(&format!(
            "             {:<.0}{}{:>.0}\n",
            x_min,
            " ".repeat(width.saturating_sub(8)),
            x_max
        ));
        out.push_str(&format!(
            "             x: {}   y: {}\n",
            self.x_label, self.y_label
        ));
        for (si, (name, _)) in self.series.iter().enumerate() {
            out.push_str(&format!(
                "             {} {}\n",
                MARKERS[si % MARKERS.len()],
                name
            ));
        }
        out
    }
}

/// Escapes a CSV field (quotes when it contains commas/quotes/newlines).
pub fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> FigureSeries {
        let mut f = FigureSeries::new("Test", "VMs", "ms", vec![1.0, 2.0, 3.0]);
        f.push_series("a", vec![10.0, 20.0, 30.0]);
        f.push_series("b", vec![5.0, 5.0, 5.0]);
        f
    }

    #[test]
    fn csv_round_shape() {
        let csv = fig().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "VMs,a,b");
        assert_eq!(lines[1], "1,10,5");
        assert_eq!(lines.len(), 4);
    }

    #[test]
    #[should_panic(expected = "match the x-axis")]
    fn mismatched_series_rejected() {
        fig().push_series("bad", vec![1.0]);
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("q\"q"), "\"q\"\"q\"");
    }

    #[test]
    fn ascii_render_contains_markers_and_legend() {
        let art = fig().render_ascii(40, 10);
        assert!(art.contains('*'));
        assert!(art.contains('o'));
        assert!(art.contains("x: VMs"));
        assert!(art.contains("* a"));
        assert!(art.contains("o b"));
    }

    #[test]
    fn ascii_render_empty_is_graceful() {
        let f = FigureSeries::new("Empty", "x", "y", vec![]);
        assert!(f.render_ascii(40, 10).contains("no data"));
    }

    #[test]
    fn ascii_render_flat_series_does_not_panic() {
        let mut f = FigureSeries::new("Flat", "x", "y", vec![1.0, 2.0]);
        f.push_series("z", vec![0.0, 0.0]);
        let _ = f.render_ascii(30, 8);
    }
}
