//! # biosched-metrics — measurement, statistics and reporting
//!
//! Utilities shared by the benchmark harness and examples:
//!
//! * [`summary`] — descriptive statistics (mean/σ/CI) over repetitions.
//! * [`series`] — figure data ([`series::FigureSeries`]) with CSV export
//!   and an ASCII line-chart renderer.
//! * [`report`] — aligned terminal tables and CSV files.
//!
//! The paper's metric *definitions* (Eq. 12 simulation time, Eq. 13 time
//! imbalance, processing cost) live on
//! [`simcloud::stats::SimulationOutcome`], next to the data they are
//! computed from; this crate handles aggregation and presentation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod distribution;
pub mod markdown;
pub mod report;
pub mod series;
pub mod summary;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::distribution::{gini, percentile, Histogram};
    pub use crate::markdown::{figure_to_markdown, table_to_markdown};
    pub use crate::report::{fmt_value, Table};
    pub use crate::series::{csv_escape, FigureSeries};
    pub use crate::summary::Summary;
}
