//! Distribution views: percentiles, histograms, inequality.
//!
//! The paper reports only extremes-over-mean (Eq. 13); these utilities
//! expose the full shape of execution-time and load distributions —
//! tail latency (p95/p99), histograms for terminal display, and the Gini
//! coefficient as a sharper load-inequality measure than Eq. 13.

/// Percentile of a sample using nearest-rank on a sorted copy.
///
/// `q` is in `[0, 1]`; returns `None` on an empty sample.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile must be in [0,1], got {q}"
    );
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Gini coefficient of a non-negative sample: 0 = perfectly equal,
/// →1 = all mass on one element. `None` for empty or all-zero samples.
pub fn gini(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    debug_assert!(values.iter().all(|v| *v >= 0.0), "gini needs non-negatives");
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let total: f64 = sorted.iter().sum();
    if total == 0.0 {
        return None;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, v)| (i as f64 + 1.0) * v)
        .sum();
    Some((2.0 * weighted) / (n * total) - (n + 1.0) / n)
}

/// A fixed-width histogram over a sample.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Inclusive lower edge of the first bin.
    pub min: f64,
    /// Exclusive upper edge of the last bin (max value lands in it).
    pub max: f64,
    /// Counts per bin.
    pub bins: Vec<usize>,
}

impl Histogram {
    /// Builds a histogram with `bin_count` equal-width bins spanning the
    /// sample's range. `None` on an empty sample.
    pub fn of(values: &[f64], bin_count: usize) -> Option<Self> {
        assert!(bin_count > 0, "need at least one bin");
        if values.is_empty() {
            return None;
        }
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut bins = vec![0usize; bin_count];
        let width = (max - min) / bin_count as f64;
        for v in values {
            let idx = if width == 0.0 {
                0
            } else {
                (((v - min) / width) as usize).min(bin_count - 1)
            };
            bins[idx] += 1;
        }
        Some(Histogram { min, max, bins })
    }

    /// Total observations.
    pub fn count(&self) -> usize {
        self.bins.iter().sum()
    }

    /// Renders the histogram as horizontal ASCII bars.
    pub fn render_ascii(&self, width: usize) -> String {
        let width = width.max(8);
        let peak = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let bin_width = (self.max - self.min) / self.bins.len() as f64;
        let mut out = String::new();
        for (i, count) in self.bins.iter().enumerate() {
            let lo = self.min + bin_width * i as f64;
            let hi = lo + bin_width;
            let bar = "█".repeat(count * width / peak);
            out.push_str(&format!("{lo:>12.1}–{hi:<12.1} │{bar} {count}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.5), Some(50.0));
        assert_eq!(percentile(&v, 0.99), Some(99.0));
        assert_eq!(percentile(&v, 1.0), Some(100.0));
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn percentile_rejects_bad_q() {
        let _ = percentile(&[1.0], 1.5);
    }

    #[test]
    fn gini_extremes() {
        // Perfect equality.
        assert!(gini(&[5.0, 5.0, 5.0, 5.0]).unwrap() < 1e-12);
        // Total inequality approaches (n-1)/n.
        let g = gini(&[0.0, 0.0, 0.0, 100.0]).unwrap();
        assert!((g - 0.75).abs() < 1e-12);
        // Monotone in skew.
        let mild = gini(&[4.0, 5.0, 6.0]).unwrap();
        let harsh = gini(&[1.0, 5.0, 9.0]).unwrap();
        assert!(harsh > mild);
        assert_eq!(gini(&[]), None);
        assert_eq!(gini(&[0.0, 0.0]), None);
    }

    #[test]
    fn histogram_bins_cover_range() {
        let v = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 9.9, 10.0];
        let h = Histogram::of(&v, 5).unwrap();
        assert_eq!(h.count(), 8);
        assert_eq!(h.bins.len(), 5);
        // The max value lands in the last bin, not out of range.
        assert!(h.bins[4] >= 1);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 10.0);
    }

    #[test]
    fn histogram_degenerate_single_value() {
        let h = Histogram::of(&[3.0, 3.0, 3.0], 4).unwrap();
        assert_eq!(h.bins[0], 3);
        assert_eq!(h.count(), 3);
        assert!(Histogram::of(&[], 4).is_none());
    }

    #[test]
    fn ascii_render_shows_counts() {
        let h = Histogram::of(&[1.0, 1.0, 2.0, 9.0], 2).unwrap();
        let art = h.render_ascii(20);
        assert!(art.contains('█'));
        assert!(art.contains(" 3\n"), "first bin holds three values: {art}");
    }
}
