//! Tabular reports: aligned terminal tables and CSV files.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::series::csv_escape;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each must match the header width.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; its width must match the headers.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
    }

    /// Renders with padded columns, a header underline and `│` separators.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(out, "{:<w$}", h, w = widths[i]);
            if i + 1 < cols {
                out.push_str(" │ ");
            }
        }
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 3 * (cols - 1);
        out.push_str(&"─".repeat(total));
        out.push('\n');
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(out, "{:<w$}", cell, w = widths[i]);
                if i + 1 < cols {
                    out.push_str(" │ ");
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .map(|c| csv_escape(c))
                .collect::<Vec<_>>()
                .join(",")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Formats a float with engineering-friendly precision (3 significant-ish
/// decimals, stripping noise on large magnitudes).
pub fn fmt_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1_000.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.6}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new(vec!["alg", "ms"]);
        t.push_row(vec!["base", "1.5"]);
        t.push_row(vec!["aco", "200"]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let text = table().render();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("alg"));
        assert!(lines[0].contains('│'));
        assert!(lines[1].starts_with('─'));
        assert_eq!(lines.len(), 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        table().push_row(vec!["only-one"]);
    }

    #[test]
    fn csv_output() {
        let csv = table().to_csv();
        assert_eq!(csv.lines().next().unwrap(), "alg,ms");
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("biosched-metrics-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        table().write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("base"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn value_formatting() {
        assert_eq!(fmt_value(0.0), "0");
        assert_eq!(fmt_value(12_345.678), "12345.7");
        assert_eq!(fmt_value(4.66920), "4.669");
        assert_eq!(fmt_value(0.000123), "0.000123");
    }
}
