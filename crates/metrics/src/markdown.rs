//! Markdown rendering for tables and figure series.
//!
//! `EXPERIMENTS.md`-style reports can be generated mechanically from the
//! same structures the terminal renderers use.

use crate::report::Table;
use crate::series::FigureSeries;

/// Escapes a cell for a markdown table (pipes and newlines).
fn md_escape(cell: &str) -> String {
    cell.replace('|', "\\|").replace('\n', " ")
}

/// Renders a [`Table`] as a GitHub-flavored markdown table.
pub fn table_to_markdown(table: &Table) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(
        &table
            .headers
            .iter()
            .map(|h| md_escape(h))
            .collect::<Vec<_>>()
            .join(" | "),
    );
    out.push_str(" |\n|");
    for _ in &table.headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in &table.rows {
        out.push_str("| ");
        out.push_str(
            &row.iter()
                .map(|c| md_escape(c))
                .collect::<Vec<_>>()
                .join(" | "),
        );
        out.push_str(" |\n");
    }
    out
}

/// Renders a [`FigureSeries`] as a markdown section: a heading, the data
/// table, and axis labels.
pub fn figure_to_markdown(fig: &FigureSeries) -> String {
    let mut table = Table::new(
        std::iter::once(fig.x_label.clone())
            .chain(fig.series.iter().map(|(n, _)| n.clone()))
            .collect::<Vec<_>>(),
    );
    for (i, x) in fig.x.iter().enumerate() {
        table.push_row(
            std::iter::once(format!("{x}"))
                .chain(fig.series.iter().map(|(_, v)| format!("{}", v[i])))
                .collect::<Vec<_>>(),
        );
    }
    format!(
        "## {}\n\n{}\n*y-axis: {}*\n",
        fig.title,
        table_to_markdown(&table),
        fig.y_label
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_markdown_shape() {
        let mut t = Table::new(vec!["alg", "ms"]);
        t.push_row(vec!["base", "1.5"]);
        t.push_row(vec!["a|b", "2"]);
        let md = table_to_markdown(&t);
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| alg | ms |");
        assert_eq!(lines[1], "|---|---|");
        assert!(lines[3].contains("a\\|b"), "pipes escaped: {}", lines[3]);
    }

    #[test]
    fn figure_markdown_contains_everything() {
        let mut f = FigureSeries::new("Fig X", "VMs", "ms", vec![1.0, 2.0]);
        f.push_series("base", vec![10.0, 20.0]);
        let md = figure_to_markdown(&f);
        assert!(md.starts_with("## Fig X"));
        assert!(md.contains("| VMs | base |"));
        assert!(md.contains("| 1 | 10 |"));
        assert!(md.contains("*y-axis: ms*"));
    }
}
