//! Descriptive statistics over repeated measurements.

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample. Returns `None` for an empty slice.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        })
    }

    /// Half-width of the ~95% confidence interval (normal approximation,
    /// 1.96 σ/√n). Zero for n < 2.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std_dev / (self.n as f64).sqrt()
        }
    }

    /// Coefficient of variation (σ/μ); `None` when the mean is zero.
    pub fn cv(&self) -> Option<f64> {
        (self.mean != 0.0).then(|| self.std_dev / self.mean.abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - 1.290_994_448_735_805_6).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(Summary::of(&[]).is_none());
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn confidence_interval_shrinks_with_n() {
        let small = Summary::of(&[1.0, 3.0]).unwrap();
        let values: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { 3.0 })
            .collect();
        let large = Summary::of(&values).unwrap();
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    fn cv_handles_zero_mean() {
        assert!(Summary::of(&[0.0, 0.0]).unwrap().cv().is_none());
        let s = Summary::of(&[2.0, 4.0]).unwrap();
        assert!(s.cv().unwrap() > 0.0);
    }
}
