//! Fault-injection experiments: chaos campaigns, fault-aware
//! rescheduling and resilience metrics.
//!
//! The simulator's fault layer ([`simcloud::faults`]) replays a seeded
//! chaos timeline and the broker retries orphaned cloudlets under a
//! [`RecoveryPolicy`]. This module closes the loop at the experiment
//! level: [`CacheRescheduler`] adapts any study [`Scheduler`] into the
//! broker's [`Rescheduler`] slot — retry batches are re-planned by the
//! *same* algorithm that produced the initial assignment, over the fleet
//! that is actually alive (and at its degraded speeds) — and
//! [`resilience_sweep`] measures how each algorithm degrades as the host
//! failure rate climbs.

use biosched_core::eval::EvalCache;
use biosched_core::problem::SchedulingProblem;
use biosched_core::scheduler::{AlgorithmKind, Scheduler};
use rayon::prelude::*;
use simcloud::broker::{RecoveryPolicy, Rescheduler};
use simcloud::error::SimError;
use simcloud::faults::{FaultPlan, FaultSpec};
use simcloud::ids::{CloudletId, VmId};
use simcloud::kernel::World;
use simcloud::simulation::EngineKind;
use simcloud::stats::{RecordMode, SimulationOutcome};
use simcloud::time::SimTime;

use crate::scenario::Scenario;
use crate::sweep::{summarize, RepeatedMetric};

/// Adapts a study [`Scheduler`] into the broker's [`Rescheduler`] slot.
///
/// Each retry batch becomes a fresh sub-problem over the VMs that are
/// alive *now*, with each VM's MIPS scaled to its current effective rate
/// (so stragglers look slow to the algorithm, exactly as they are), and
/// the wrapped scheduler re-plans it through `schedule_with_cache` — its
/// internal state (ACO pheromones and RNG, the Base Test's cursor)
/// carries across rounds like a resident broker-side scheduler's would.
/// Sub-problem VM indices are mapped back to real fleet ids before the
/// plan is returned.
pub struct CacheRescheduler {
    scheduler: Box<dyn Scheduler>,
    problem: SchedulingProblem,
}

impl CacheRescheduler {
    /// Wraps `scheduler` for retry planning over `problem`'s workload.
    ///
    /// `problem` must be the same scheduler-facing view the initial
    /// assignment was computed from ([`Scenario::problem`]).
    pub fn new(scheduler: Box<dyn Scheduler>, problem: SchedulingProblem) -> Self {
        CacheRescheduler { scheduler, problem }
    }
}

impl Rescheduler for CacheRescheduler {
    fn replan(&mut self, world: &World, _now: SimTime, batch: &[CloudletId]) -> Vec<VmId> {
        let alive: Vec<VmId> = world
            .vms
            .iter()
            .filter(|v| v.is_active())
            .map(|v| v.id)
            .collect();
        if alive.is_empty() {
            // Nothing to plan onto; the broker re-queues the batch.
            return vec![VmId(0); batch.len()];
        }
        let vms = alive
            .iter()
            .map(|&id| {
                let vm = world.vm(id);
                let mut spec = self.problem.vms[id.index()].clone();
                spec.mips = vm.effective_mips();
                spec
            })
            .collect();
        let placement = alive
            .iter()
            .map(|&id| self.problem.vm_placement[id.index()])
            .collect();
        let cloudlets = batch
            .iter()
            .map(|&c| self.problem.cloudlets[c.index()].clone())
            .collect();
        let sub =
            SchedulingProblem::new(vms, cloudlets, self.problem.datacenters.clone(), placement)
                .expect("alive-fleet sub-problems inherit scenario consistency");
        let cache = EvalCache::lite(&sub);
        let plan = self.scheduler.schedule_with_cache(&sub, &cache);
        assert_eq!(
            plan.len(),
            batch.len(),
            "rescheduler returned a partial plan"
        );
        (0..batch.len())
            .map(|slot| alive[plan.vm_for(slot).index()])
            .collect()
    }
}

/// Arms `scenario` with a generated chaos timeline and a retry policy.
///
/// The plan is drawn from `(spec, fault_seed)` over the scenario's own
/// fleet shape ([`Scenario::host_counts`]), so the same seed reproduces
/// the same timeline on every rerun and at every thread count.
pub fn inject_faults(
    scenario: &mut Scenario,
    spec: &FaultSpec,
    fault_seed: u64,
    policy: RecoveryPolicy,
) {
    let plan = FaultPlan::generate(
        spec,
        fault_seed,
        &scenario.host_counts(),
        scenario.vm_count(),
    );
    scenario.faults = Some(plan);
    scenario.recovery = Some(policy);
}

/// Resilience metrics for one (faulted scenario, algorithm) run.
#[derive(Debug, Clone)]
pub struct ResiliencePointResult {
    /// Algorithm that planned (and re-planned) the work.
    pub algorithm: AlgorithmKind,
    /// Fraction of observed cloudlets that finished.
    pub completion_ratio: f64,
    /// Useful execution time over total (useful + wasted) execution time.
    pub goodput: f64,
    /// Broker resubmissions that actually went back out.
    pub retries: u64,
    /// Cloudlets abandoned after exhausting their retry budget.
    pub abandoned: u64,
    /// Execution time lost to failures, in ms.
    pub wasted_work_ms: f64,
    /// Mean failure→completion gap over recovered cloudlets, in ms
    /// (0 when nothing needed recovering).
    pub mttr_ms: f64,
    /// Eq. 12 simulated makespan in ms.
    pub simulation_time_ms: f64,
    /// Cloudlets that finished.
    pub finished: usize,
}

/// Runs one algorithm over a faulted scenario with fault-aware retries.
///
/// The algorithm plans the initial assignment, then the *same* scheduler
/// instance re-plans every retry batch via [`CacheRescheduler`]. The
/// scenario must carry a [`RecoveryPolicy`] (see [`inject_faults`]);
/// an un-faulted scenario degenerates to a plain [`crate::sweep`] point
/// with perfect resilience metrics. Both engines produce bit-identical
/// results; [`EngineKind::Sharded`] replays the bulk of the timeline in
/// parallel between fault instants.
pub fn run_resilient_point(
    scenario: &Scenario,
    algorithm: AlgorithmKind,
    seed: u64,
    engine: EngineKind,
) -> Result<ResiliencePointResult, SimError> {
    let problem = scenario.problem();
    let cache = EvalCache::new(&problem);
    let mut scheduler = algorithm.build(seed);
    let assignment = scheduler.schedule_with_cache(&problem, &cache);
    assignment
        .validate(&problem)
        .unwrap_or_else(|e| panic!("{algorithm} produced an invalid assignment: {e}"));
    let rescheduler = CacheRescheduler::new(scheduler, problem);
    let outcome = scenario.simulate_resilient(
        assignment,
        engine,
        RecordMode::Aggregate,
        Box::new(rescheduler),
    )?;
    Ok(point_from_outcome(algorithm, &outcome))
}

fn point_from_outcome(
    algorithm: AlgorithmKind,
    outcome: &SimulationOutcome,
) -> ResiliencePointResult {
    ResiliencePointResult {
        algorithm,
        completion_ratio: outcome.completion_ratio().unwrap_or(1.0),
        goodput: outcome.goodput().unwrap_or(1.0),
        retries: outcome.resilience.retries,
        abandoned: outcome.resilience.abandoned,
        wasted_work_ms: outcome.resilience.wasted_work_ms,
        mttr_ms: outcome.mean_time_to_recovery_ms().unwrap_or(0.0),
        simulation_time_ms: outcome.simulation_time_ms().unwrap_or(0.0),
        finished: outcome.finished_count(),
    }
}

/// [`ResiliencePointResult`] aggregated over repeated seeds, with ~95%
/// confidence intervals.
#[derive(Debug, Clone)]
pub struct ResilienceSummary {
    /// Algorithm that produced the points.
    pub algorithm: AlgorithmKind,
    /// Repetitions aggregated.
    pub reps: usize,
    /// Completion ratio over reps.
    pub completion_ratio: RepeatedMetric,
    /// Goodput over reps.
    pub goodput: RepeatedMetric,
    /// Retry count over reps.
    pub retries: RepeatedMetric,
    /// Wasted work over reps, in ms.
    pub wasted_work_ms: RepeatedMetric,
    /// Mean time to recovery over reps, in ms.
    pub mttr_ms: RepeatedMetric,
    /// Makespan over reps, in ms.
    pub simulation_time_ms: RepeatedMetric,
}

/// Sweeps algorithms over a grid of chaos intensities.
///
/// For each `fail_fractions[i]`, `make_scenario(seed)` builds the rep's
/// workload, [`inject_faults`] arms it with `spec` at that host-failure
/// fraction (fault seed = workload seed), and every algorithm runs
/// [`run_resilient_point`]. Reps use seeds `base_seed..base_seed + reps`
/// as one flat rayon work list; results come back `[fraction][algorithm]`
/// with CIs over reps. Deterministic for fixed seeds at any thread count.
#[allow(clippy::too_many_arguments)]
pub fn resilience_sweep<F>(
    fail_fractions: &[f64],
    algorithms: &[AlgorithmKind],
    spec: &FaultSpec,
    policy: RecoveryPolicy,
    base_seed: u64,
    reps: usize,
    engine: EngineKind,
    make_scenario: F,
) -> Vec<Vec<ResilienceSummary>>
where
    F: Fn(u64) -> Scenario + Sync,
{
    assert!(reps > 0, "need at least one repetition");
    let a = algorithms.len();
    let tasks: Vec<(usize, usize, usize)> = (0..fail_fractions.len())
        .flat_map(|fi| (0..reps).flat_map(move |ri| (0..a).map(move |ai| (fi, ri, ai))))
        .collect();
    let flat: Vec<ResiliencePointResult> = tasks
        .par_iter()
        .map(|&(fi, ri, ai)| {
            let seed = base_seed + ri as u64;
            let mut scenario = make_scenario(seed);
            let mut spec = spec.clone();
            spec.host_fail_fraction = fail_fractions[fi];
            inject_faults(&mut scenario, &spec, seed, policy);
            run_resilient_point(&scenario, algorithms[ai], seed, engine)
                .unwrap_or_else(|e| panic!("resilience point failed: {e}"))
        })
        .collect();
    (0..fail_fractions.len())
        .map(|fi| {
            (0..a)
                .map(|ai| {
                    let per_rep: Vec<&ResiliencePointResult> = (0..reps)
                        .map(|ri| &flat[fi * reps * a + ri * a + ai])
                        .collect();
                    let pick = |f: fn(&ResiliencePointResult) -> f64| -> RepeatedMetric {
                        let values: Vec<f64> = per_rep.iter().map(|r| f(r)).collect();
                        summarize(&values)
                    };
                    ResilienceSummary {
                        algorithm: algorithms[ai],
                        reps,
                        completion_ratio: pick(|r| r.completion_ratio),
                        goodput: pick(|r| r.goodput),
                        retries: pick(|r| r.retries as f64),
                        wasted_work_ms: pick(|r| r.wasted_work_ms),
                        mttr_ms: pick(|r| r.mttr_ms),
                        simulation_time_ms: pick(|r| r.simulation_time_ms),
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heterogeneous::HeterogeneousScenario;

    /// A chaos campaign that repairs fast enough for a patient policy.
    fn gentle_spec(fail_fraction: f64) -> FaultSpec {
        FaultSpec {
            host_fail_fraction: fail_fraction,
            fail_window_ms: (500.0, 8_000.0),
            repair_after_ms: Some((2_000.0, 5_000.0)),
            straggler_fraction: 0.2,
            ..FaultSpec::default()
        }
    }

    /// A policy with enough budget to outlast every gentle repair.
    fn patient_policy() -> RecoveryPolicy {
        RecoveryPolicy {
            max_attempts: 6,
            base_backoff_ms: 500.0,
            backoff_factor: 2.0,
            max_backoff_ms: 4_000.0,
        }
    }

    fn scenario(seed: u64) -> Scenario {
        HeterogeneousScenario {
            vm_count: 8,
            cloudlet_count: 40,
            datacenter_count: 2,
            seed,
        }
        .build()
    }

    #[test]
    fn resilient_point_is_deterministic_and_engine_independent() {
        let mut s = scenario(3);
        inject_faults(&mut s, &gentle_spec(0.3), 7, patient_policy());
        let a =
            run_resilient_point(&s, AlgorithmKind::AntColony, 3, EngineKind::Sequential).unwrap();
        let b =
            run_resilient_point(&s, AlgorithmKind::AntColony, 3, EngineKind::Sequential).unwrap();
        let c = run_resilient_point(&s, AlgorithmKind::AntColony, 3, EngineKind::Sharded).unwrap();
        for other in [&b, &c] {
            assert_eq!(
                a.completion_ratio.to_bits(),
                other.completion_ratio.to_bits()
            );
            assert_eq!(a.goodput.to_bits(), other.goodput.to_bits());
            assert_eq!(a.wasted_work_ms.to_bits(), other.wasted_work_ms.to_bits());
            assert_eq!(a.retries, other.retries);
            assert_eq!(a.abandoned, other.abandoned);
            assert_eq!(a.mttr_ms.to_bits(), other.mttr_ms.to_bits());
            assert_eq!(a.finished, other.finished);
            assert_eq!(
                a.simulation_time_ms.to_bits(),
                other.simulation_time_ms.to_bits()
            );
        }
    }

    #[test]
    fn paper_set_survives_gentle_chaos() {
        // The acceptance bar: with repairs and a patient retry budget,
        // every paper algorithm keeps completion ratio at 1.0 and pays a
        // real (nonzero) resilience bill.
        let mut any_retries = false;
        for algorithm in AlgorithmKind::PAPER_SET {
            // 16 VMs over 2 DCs -> 4 hosts; at 0.9 some host fails with
            // near certainty, exercising the retry path for every
            // algorithm.
            let mut s = HeterogeneousScenario {
                vm_count: 16,
                cloudlet_count: 64,
                datacenter_count: 2,
                seed: 11,
            }
            .build();
            inject_faults(&mut s, &gentle_spec(0.9), 11, patient_policy());
            let r = run_resilient_point(&s, algorithm, 11, EngineKind::Sharded).unwrap();
            assert!(
                r.completion_ratio >= 0.99,
                "{algorithm} lost work under gentle chaos: {}",
                r.completion_ratio
            );
            assert_eq!(r.abandoned, 0, "{algorithm} abandoned cloudlets");
            any_retries |= r.retries > 0;
        }
        assert!(any_retries, "half the hosts failing must force retries");
    }

    #[test]
    fn faulted_run_reports_resilience_costs() {
        let mut s = scenario(5);
        inject_faults(&mut s, &gentle_spec(0.6), 5, patient_policy());
        let r =
            run_resilient_point(&s, AlgorithmKind::BaseTest, 5, EngineKind::Sequential).unwrap();
        if r.retries > 0 {
            assert!(r.goodput <= 1.0);
            assert!(r.mttr_ms > 0.0 || r.wasted_work_ms >= 0.0);
        }
        // The same workload unfaulted is perfectly resilient.
        let clean = scenario(5);
        let c = run_resilient_point(&clean, AlgorithmKind::BaseTest, 5, EngineKind::Sequential)
            .unwrap();
        assert_eq!(c.completion_ratio, 1.0);
        assert_eq!(c.goodput, 1.0);
        assert_eq!(c.retries, 0);
        assert_eq!(c.wasted_work_ms, 0.0);
    }

    #[test]
    fn full_and_aggregate_modes_agree_under_faults() {
        let mut s = scenario(9);
        inject_faults(&mut s, &gentle_spec(0.4), 9, patient_policy());
        let problem = s.problem();
        let cache = EvalCache::new(&problem);
        let run = |mode: RecordMode| {
            let mut scheduler = AlgorithmKind::Rbs.build(9);
            let assignment = scheduler.schedule_with_cache(&problem, &cache);
            let rescheduler = CacheRescheduler::new(scheduler, problem.clone());
            s.simulate_resilient(
                assignment,
                EngineKind::Sequential,
                mode,
                Box::new(rescheduler),
            )
            .unwrap()
        };
        let full = run(RecordMode::Full);
        let agg = run(RecordMode::Aggregate);
        assert_eq!(full.finished_count(), agg.finished_count());
        assert_eq!(full.failed_count(), agg.failed_count());
        assert_eq!(full.observed_count(), agg.observed_count());
        assert_eq!(full.resilience, agg.resilience);
        assert_eq!(
            full.goodput().map(f64::to_bits),
            agg.goodput().map(f64::to_bits)
        );
        assert_eq!(
            full.completion_ratio().map(f64::to_bits),
            agg.completion_ratio().map(f64::to_bits)
        );
    }

    #[test]
    fn sweep_degrades_gracefully_with_cis() {
        let summaries = resilience_sweep(
            &[0.0, 0.5],
            &[AlgorithmKind::BaseTest, AlgorithmKind::Rbs],
            &gentle_spec(0.0),
            patient_policy(),
            21,
            3,
            EngineKind::Sequential,
            scenario,
        );
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].len(), 2);
        for s in &summaries[0] {
            // No host failures: nothing wasted, nothing retried for
            // host reasons (stragglers slow VMs but kill nothing).
            assert_eq!(s.reps, 3);
            assert_eq!(s.completion_ratio.mean, 1.0);
            assert_eq!(s.wasted_work_ms.mean, 0.0);
        }
        for s in &summaries[1] {
            assert!(s.completion_ratio.mean >= 0.99);
            assert!(
                s.retries.mean > 0.0,
                "{}: half the hosts down must cost retries",
                s.algorithm
            );
            assert!(s.wasted_work_ms.mean > 0.0);
        }
    }
}
