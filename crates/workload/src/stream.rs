//! Streaming broker: warm-state incremental replanning under continuous
//! arrival load.
//!
//! [`run_online`](crate::online::run_online) re-invokes a scheduler per
//! arrival wave but treats every wave as a from-scratch call. This module
//! is the production-shaped version: a long-running broker that carries
//! **warm state** across wave boundaries and measures what a real control
//! plane cares about — per-wave scheduling latency and queue backlog on
//! top of the simulator's wait/throughput metrics.
//!
//! ## Replan modes
//!
//! [`ReplanMode::Warm`] keeps one scheduler instance, one [`EvalCache`]
//! (cloudlet side retargeted per wave via
//! [`EvalCache::retarget_cloudlets`], VM side and candidate ring reused)
//! and one [`WarmState`] alive for the whole run. Each scheduler family
//! consumes the warm state its own way ([`Scheduler::schedule_warm`]):
//! ACO re-seeds from the previous wave's evaporated pheromone matrix,
//! GA/PSO fold the surviving incumbent plan into their initial
//! population/swarm, and the greedy/balancer kinds simply keep their
//! instance state (round-robin cursor, least-connection load vector,
//! weighted-RR virtual clock).
//!
//! [`ReplanMode::Cold`] rebuilds everything every wave — fresh scheduler
//! from the same seed, fresh cache, no carried state. It is the control
//! arm for the warm-speedup claim, not a deliberately hobbled strawman:
//! it runs the identical per-wave algorithm.
//!
//! Warm plans are **not** claimed equal to cold plans. Each mode is
//! separately deterministic: same seed, same wave plan ⇒ byte-identical
//! merged assignment at any rayon thread count and on either engine.
//!
//! ## Interaction with the epoch-sharded engine
//!
//! The broker plans each wave when it arrives, then the merged plan is
//! executed once with per-cloudlet arrival times. On the sharded engine
//! those staggered arrivals land in the epoch-based superstep replay:
//! wave boundaries act as arrival horizons inside the epoch stream, and
//! in-flight execution, fault strikes, retries and resubmission
//! interleave with the waves exactly as they do for
//! [`run_online`](crate::online::run_online) — bit-identically to the
//! sequential kernel.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use biosched_core::assignment::Assignment;
use biosched_core::eval::EvalCache;
use biosched_core::problem::SchedulingProblem;
use biosched_core::scheduler::{AlgorithmKind, Scheduler};
use biosched_core::warm::WarmState;
use simcloud::error::SimError;
use simcloud::ids::VmId;
use simcloud::simulation::EngineKind;
use simcloud::stats::{RecordMode, SimulationOutcome};

use crate::online::WavePlan;
use crate::scenario::Scenario;

/// Whether the broker carries warm state across wave boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplanMode {
    /// Persistent scheduler + retargeted cache + [`WarmState`].
    Warm,
    /// Fresh scheduler and fresh cache every wave (the control arm).
    Cold,
}

impl ReplanMode {
    /// Lower-case label for reports and JSON keys.
    pub fn label(self) -> &'static str {
        match self {
            ReplanMode::Warm => "warm",
            ReplanMode::Cold => "cold",
        }
    }
}

/// One streaming-broker run, fully specified.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Which algorithm replans each wave.
    pub kind: AlgorithmKind,
    /// Construction seed (cold mode rebuilds from it every wave).
    pub seed: u64,
    /// Warm or cold replanning.
    pub mode: ReplanMode,
    /// Simulation engine for the merged plan.
    pub engine: EngineKind,
    /// Retention mode for the simulated outcome.
    pub record: RecordMode,
}

impl StreamConfig {
    /// Warm-mode config on the sequential engine with full records.
    pub fn warm(kind: AlgorithmKind, seed: u64) -> Self {
        StreamConfig {
            kind,
            seed,
            mode: ReplanMode::Warm,
            engine: EngineKind::Sequential,
            record: RecordMode::Full,
        }
    }

    /// Cold-mode config on the sequential engine with full records.
    pub fn cold(kind: AlgorithmKind, seed: u64) -> Self {
        StreamConfig {
            mode: ReplanMode::Cold,
            ..Self::warm(kind, seed)
        }
    }

    /// Same config on a different engine.
    pub fn on_engine(self, engine: EngineKind) -> Self {
        StreamConfig { engine, ..self }
    }

    /// Same config with a different record mode.
    pub fn with_record(self, record: RecordMode) -> Self {
        StreamConfig { record, ..self }
    }
}

/// Per-wave broker measurements.
#[derive(Debug, Clone)]
pub struct WaveStat {
    /// Wave index (position in the [`WavePlan`]).
    pub wave: usize,
    /// Wave arrival time in ms from t = 0.
    pub arrival_ms: f64,
    /// Cloudlets scheduled in this wave.
    pub scheduled: usize,
    /// Queue depth at the replan instant: this wave's arrivals plus every
    /// earlier cloudlet whose *estimated* finish (broker-side ETC model,
    /// contention-blind) is still in the future. Deterministic and
    /// identical in both record modes and on both engines.
    pub backlog: usize,
    /// Wall-clock scheduling latency for this wave in ms: wave-problem
    /// construction + cache build/retarget + the scheduler call.
    pub sched_ms: f64,
}

/// Result of a streaming-broker run.
#[derive(Debug)]
pub struct StreamOutcome {
    /// The merged cloudlet→VM plan across all waves.
    pub assignment: Assignment,
    /// Per-cloudlet arrival times used for the simulation.
    pub arrivals: Vec<f64>,
    /// The simulated outcome (wait/throughput metrics live here).
    pub outcome: SimulationOutcome,
    /// One entry per wave, in arrival order.
    pub waves: Vec<WaveStat>,
}

impl StreamOutcome {
    /// Number of scheduler invocations (= non-empty waves).
    pub fn rounds(&self) -> usize {
        self.waves.iter().filter(|w| w.scheduled > 0).count()
    }

    /// Total wall-clock scheduling time across all waves, in ms.
    pub fn total_sched_ms(&self) -> f64 {
        self.waves.iter().map(|w| w.sched_ms).sum()
    }

    /// Mean scheduling latency per non-empty wave, in ms.
    pub fn mean_sched_ms(&self) -> Option<f64> {
        let n = self.rounds();
        (n > 0).then(|| self.total_sched_ms() / n as f64)
    }

    /// Worst single-wave scheduling latency, in ms.
    pub fn max_sched_ms(&self) -> Option<f64> {
        self.waves
            .iter()
            .map(|w| w.sched_ms)
            .fold(None, |m: Option<f64>, s| Some(m.map_or(s, |m| m.max(s))))
    }

    /// Deepest queue backlog observed at any replan instant.
    pub fn peak_backlog(&self) -> usize {
        self.waves.iter().map(|w| w.backlog).max().unwrap_or(0)
    }
}

/// Runs the streaming broker with `cfg.kind`'s registry construction.
pub fn run_stream(
    scenario: &Scenario,
    plan: &WavePlan,
    cfg: &StreamConfig,
) -> Result<StreamOutcome, SimError> {
    let kind = cfg.kind;
    run_stream_with(scenario, plan, cfg, &mut |seed| kind.build(seed))
}

/// [`run_stream`] with a caller-supplied scheduler factory — the hook for
/// non-default parameters (e.g. `AcoParams::for_scale` at the 100k-VM
/// tier). `build` is called once in warm mode and once per non-empty wave
/// in cold mode, always with `cfg.seed`.
pub fn run_stream_with(
    scenario: &Scenario,
    plan: &WavePlan,
    cfg: &StreamConfig,
    build: &mut dyn FnMut(u64) -> Box<dyn Scheduler>,
) -> Result<StreamOutcome, SimError> {
    plan.validate(scenario.cloudlet_count())
        .map_err(|what| SimError::InvalidSpec { what })?;
    let full = scenario.problem();
    let vm_count = full.vm_count();
    let mut merged: Vec<Option<VmId>> = vec![None; scenario.cloudlet_count()];
    let mut arrivals = vec![0.0f64; scenario.cloudlet_count()];
    let mut wave_stats = Vec::with_capacity(plan.waves.len());

    // Broker-side queue model: per-VM virtual completion clocks plus a
    // min-heap of estimated cloudlet finish times (non-negative f64 bits
    // compare like the floats themselves). Powers WaveStat::backlog.
    let mut vm_clock = vec![0.0f64; vm_count];
    let mut est_finish: BinaryHeap<Reverse<u64>> = BinaryHeap::new();

    // Warm-mode persistent state.
    let mut resident: Option<Box<dyn Scheduler>> = None;
    let mut resident_cache: Option<EvalCache> = None;
    let mut warm = WarmState::new();

    // Resident wave problem: the fleet half (VMs, datacenters, placement)
    // is cloned from the scenario once, then each wave swaps only the
    // cloudlet side. A long-running broker keeps its fleet description
    // resident — re-cloning 10⁵ `VmSpec`s per wave would tax both replan
    // modes with an O(#VMs) cost that has nothing to do with scheduling.
    let mut wave_problem: Option<SchedulingProblem> = None;

    for (w, (wave, &wave_time)) in plan.waves.iter().zip(&plan.wave_times).enumerate() {
        while est_finish
            .peek()
            .is_some_and(|Reverse(bits)| f64::from_bits(*bits) <= wave_time)
        {
            est_finish.pop();
        }
        let backlog = est_finish.len() + wave.len();
        if wave.is_empty() {
            wave_stats.push(WaveStat {
                wave: w,
                arrival_ms: wave_time,
                scheduled: 0,
                backlog,
                sched_ms: 0.0,
            });
            continue;
        }

        let clock = Instant::now();
        let wave_cloudlets = wave.iter().map(|&c| full.cloudlets[c].clone()).collect();
        let wp: &SchedulingProblem = match wave_problem.as_mut() {
            Some(p) => {
                p.cloudlets = wave_cloudlets;
                p
            }
            None => wave_problem.insert(
                SchedulingProblem::new(
                    full.vms.clone(),
                    wave_cloudlets,
                    full.datacenters.clone(),
                    full.vm_placement.clone(),
                )
                .expect("wave problems inherit scenario consistency"),
            ),
        };
        let cold_cache;
        let (wave_assignment, cache): (Assignment, &EvalCache) = match cfg.mode {
            ReplanMode::Warm => {
                let sched = resident.get_or_insert_with(|| build(cfg.seed));
                match resident_cache.as_mut() {
                    Some(cache) => cache.retarget_cloudlets(wp),
                    None => resident_cache = Some(EvalCache::new(wp)),
                }
                let cache = resident_cache.as_ref().expect("cache filled above");
                let a = sched.schedule_warm(wp, cache, &mut warm);
                (a, cache)
            }
            ReplanMode::Cold => {
                cold_cache = EvalCache::new(wp);
                let a = build(cfg.seed).schedule_with_cache(wp, &cold_cache);
                (a, &cold_cache)
            }
        };
        let sched_ms = clock.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            wave_assignment.len(),
            wave.len(),
            "wave {w}: scheduler returned a partial plan"
        );

        for (slot, &cloudlet) in wave.iter().enumerate() {
            let vm = wave_assignment.vm_for(slot);
            merged[cloudlet] = Some(vm);
            arrivals[cloudlet] = wave_time;
            let v = vm.index();
            let start_est = vm_clock[v].max(wave_time);
            let finish_est = start_est + cache.exec_ms(slot, v);
            vm_clock[v] = finish_est;
            est_finish.push(Reverse(finish_est.to_bits()));
        }
        wave_stats.push(WaveStat {
            wave: w,
            arrival_ms: wave_time,
            scheduled: wave.len(),
            backlog,
            sched_ms,
        });
    }

    let assignment = Assignment::new(
        merged
            .into_iter()
            .map(|m| m.expect("plan.validate guarantees full coverage"))
            .collect(),
    );
    let mut staged = scenario.clone();
    staged.arrivals = Some(arrivals.clone());
    let outcome = staged.simulate_mode(assignment.clone(), cfg.engine, cfg.record)?;
    Ok(StreamOutcome {
        assignment,
        arrivals,
        outcome,
        waves: wave_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heterogeneous::HeterogeneousScenario;
    use crate::online::run_online;
    use biosched_core::prelude::*;

    fn scenario() -> Scenario {
        HeterogeneousScenario {
            vm_count: 10,
            cloudlet_count: 60,
            datacenter_count: 2,
            seed: 4,
        }
        .build()
    }

    #[test]
    fn warm_stream_schedules_and_finishes_everything() {
        let s = scenario();
        let plan = WavePlan::uniform(60, 4, 2_000.0);
        let r = run_stream(&s, &plan, &StreamConfig::warm(AlgorithmKind::AntColony, 7)).unwrap();
        assert_eq!(r.rounds(), 4);
        assert_eq!(r.outcome.finished_count(), 60);
        assert!(r.assignment.validate(&s.problem()).is_ok());
        assert_eq!(r.waves.len(), 4);
        assert!(r.total_sched_ms() > 0.0);
        assert!(r.mean_sched_ms().unwrap() <= r.max_sched_ms().unwrap());
        // Cloudlets never start before their wave arrives.
        for (c, arrival) in r.arrivals.iter().enumerate() {
            let start = r.outcome.records[c].start.unwrap().as_millis();
            assert!(start + 1e-9 >= *arrival);
        }
    }

    #[test]
    fn warm_baseline_matches_run_online() {
        // For kinds whose cross-wave state already lives in the instance
        // (round-robin's cursor), the warm stream is the same broker as
        // run_online: byte-identical merged plans.
        let s = scenario();
        let plan = WavePlan::uniform(60, 3, 1_000.0);
        let stream =
            run_stream(&s, &plan, &StreamConfig::warm(AlgorithmKind::BaseTest, 0)).unwrap();
        let mut rr = RoundRobin::new();
        let online = run_online(&s, &mut rr, &plan).unwrap();
        assert_eq!(stream.assignment, online.assignment);
        assert_eq!(stream.arrivals, online.arrivals);
    }

    #[test]
    fn each_mode_is_deterministic_per_seed() {
        let s = scenario();
        let plan = WavePlan::poisson(60, 12, 500.0, 3);
        for kind in [
            AlgorithmKind::AntColony,
            AlgorithmKind::Ga,
            AlgorithmKind::Pso,
            AlgorithmKind::CuckooSos,
            AlgorithmKind::Gsa,
            AlgorithmKind::Racing(biosched_core::objective::Objective::Makespan),
            AlgorithmKind::LeastConnection,
            AlgorithmKind::WeightedRoundRobin,
            AlgorithmKind::Sjf,
            AlgorithmKind::BestFit,
        ] {
            for cfg in [StreamConfig::warm(kind, 42), StreamConfig::cold(kind, 42)] {
                let a = run_stream(&s, &plan, &cfg).unwrap();
                let b = run_stream(&s, &plan, &cfg).unwrap();
                assert_eq!(
                    a.assignment,
                    b.assignment,
                    "{kind} {} mode must be deterministic",
                    cfg.mode.label()
                );
            }
        }
    }

    #[test]
    fn backlog_accumulates_when_waves_arrive_at_once() {
        // Every wave at t=0: nothing can have finished, so backlog is the
        // running total of arrivals.
        let s = scenario();
        let plan = WavePlan::uniform(60, 3, 0.0);
        let r = run_stream(&s, &plan, &StreamConfig::warm(AlgorithmKind::BaseTest, 0)).unwrap();
        let sizes: Vec<usize> = plan.waves.iter().map(Vec::len).collect();
        assert_eq!(r.waves[0].backlog, sizes[0]);
        assert_eq!(r.waves[1].backlog, sizes[0] + sizes[1]);
        assert_eq!(r.waves[2].backlog, sizes[0] + sizes[1] + sizes[2]);
        assert_eq!(r.peak_backlog(), 60);
    }

    #[test]
    fn backlog_drains_between_sparse_waves() {
        // Waves spaced far beyond the work's estimated span: each replan
        // sees only its own arrivals.
        let s = scenario();
        let plan = WavePlan::uniform(60, 3, 1e9);
        let r = run_stream(&s, &plan, &StreamConfig::warm(AlgorithmKind::BaseTest, 0)).unwrap();
        for (stat, wave) in r.waves.iter().zip(&plan.waves) {
            assert_eq!(stat.backlog, wave.len());
        }
    }

    #[test]
    fn engines_and_record_modes_agree_on_stream_metrics() {
        let s = scenario();
        let plan = WavePlan::poisson(60, 10, 800.0, 9);
        let base = StreamConfig::warm(AlgorithmKind::AntColony, 11);
        let seq = run_stream(&s, &plan, &base).unwrap();
        let sharded = run_stream(&s, &plan, &base.on_engine(EngineKind::Sharded)).unwrap();
        let agg = run_stream(&s, &plan, &base.with_record(RecordMode::Aggregate)).unwrap();
        assert_eq!(seq.assignment, sharded.assignment);
        assert_eq!(seq.assignment, agg.assignment);
        for other in [&sharded, &agg] {
            assert_eq!(
                seq.outcome.simulation_time_ms().map(f64::to_bits),
                other.outcome.simulation_time_ms().map(f64::to_bits)
            );
            assert_eq!(
                seq.outcome.wait_p50_ms().map(f64::to_bits),
                other.outcome.wait_p50_ms().map(f64::to_bits)
            );
            assert_eq!(
                seq.outcome.wait_p99_ms().map(f64::to_bits),
                other.outcome.wait_p99_ms().map(f64::to_bits)
            );
            assert_eq!(
                seq.outcome.throughput_per_s().map(f64::to_bits),
                other.outcome.throughput_per_s().map(f64::to_bits)
            );
        }
        assert!(seq.outcome.wait_p99_ms().unwrap() >= seq.outcome.wait_p50_ms().unwrap());
        assert!(seq.outcome.throughput_per_s().unwrap() > 0.0);
    }

    #[test]
    fn stream_composes_with_faults_and_recovery() {
        use simcloud::broker::RecoveryPolicy;
        use simcloud::faults::FaultSpec;

        let mut s = scenario();
        crate::resilience::inject_faults(
            &mut s,
            &FaultSpec {
                host_fail_fraction: 0.6,
                repair_after_ms: Some((2_000.0, 4_000.0)),
                ..FaultSpec::default()
            },
            13,
            RecoveryPolicy {
                max_attempts: 6,
                base_backoff_ms: 500.0,
                backoff_factor: 2.0,
                max_backoff_ms: 4_000.0,
            },
        );
        let plan = WavePlan::uniform(60, 3, 1_000.0);
        let cfg = StreamConfig::warm(AlgorithmKind::LeastConnection, 5);
        let seq = run_stream(&s, &plan, &cfg).unwrap();
        let sharded = run_stream(&s, &plan, &cfg.on_engine(EngineKind::Sharded)).unwrap();
        assert_eq!(
            seq.outcome.finished_count() + seq.outcome.resilience.abandoned as usize,
            60,
            "every cloudlet either finishes or exhausts its retry budget"
        );
        assert_eq!(
            seq.outcome.finished_count(),
            sharded.outcome.finished_count()
        );
        assert_eq!(
            seq.outcome.resilience.retries,
            sharded.outcome.resilience.retries
        );
    }

    mod properties {
        use super::*;
        use biosched_core::eval::EvalCache;
        use biosched_core::warm::WarmState;
        use proptest::prelude::*;
        use proptest::test_runner::TestCaseError;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]

            /// Warm-state extension on fleet-unchanged waves: driving any
            /// metaheuristic wave by wave through a retargeted cache keeps
            /// plans valid, records the incumbent, grows ACO's pheromone
            /// matrix, and replays byte-identically from a fresh start.
            #[test]
            fn warm_state_extends_across_fleet_unchanged_waves(
                seed in 0u64..300,
                wave_count in 1usize..5,
                cloudlets in 8usize..28,
            ) {
                let s = HeterogeneousScenario {
                    vm_count: 6,
                    cloudlet_count: cloudlets,
                    datacenter_count: 1,
                    seed,
                }
                .build();
                let plan = WavePlan::uniform(cloudlets, wave_count, 50.0);
                let full = s.problem();
                for kind in [
                    AlgorithmKind::AntColony,
                    AlgorithmKind::Ga,
                    AlgorithmKind::Pso,
                    AlgorithmKind::CuckooSos,
                    AlgorithmKind::Gsa,
                ] {
                    let run = |plans: &mut Vec<Vec<u32>>| -> Result<(), TestCaseError> {
                        let mut sched = kind.build(seed);
                        let mut warm = WarmState::new();
                        let mut cache: Option<EvalCache> = None;
                        prop_assert!(warm.is_cold());
                        for wave in plan.waves.iter().filter(|w| !w.is_empty()) {
                            let wp = SchedulingProblem::new(
                                full.vms.clone(),
                                wave.iter().map(|&c| full.cloudlets[c].clone()).collect(),
                                full.datacenters.clone(),
                                full.vm_placement.clone(),
                            )
                            .expect("consistent wave problem");
                            match cache.as_mut() {
                                Some(c) => c.retarget_cloudlets(&wp),
                                None => cache = Some(EvalCache::new(&wp)),
                            }
                            let a = sched.schedule_warm(
                                &wp,
                                cache.as_ref().expect("filled"),
                                &mut warm,
                            );
                            prop_assert!(a.validate(&wp).is_ok());
                            let raw: Vec<u32> =
                                a.as_slice().iter().map(|vm| vm.0).collect();
                            prop_assert_eq!(warm.incumbent.as_deref(), Some(raw.as_slice()));
                            plans.push(raw);
                        }
                        if kind == AlgorithmKind::AntColony {
                            prop_assert!(
                                warm.pheromone.is_some(),
                                "ACO must capture its pheromone matrix"
                            );
                        }
                        Ok(())
                    };
                    let (mut first, mut second) = (Vec::new(), Vec::new());
                    run(&mut first)?;
                    run(&mut second)?;
                    prop_assert_eq!(&first, &second, "{} warm replay diverged", kind);
                }
            }
        }
    }
}
