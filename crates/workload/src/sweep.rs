//! Experiment execution: run algorithms over scenario sweeps.
//!
//! One *point* = (scenario, algorithm): the scheduler is timed (the
//! paper's "scheduling time" metric), its assignment is simulated, and the
//! paper's four metrics are collected. A *sweep* runs a point set in
//! parallel with rayon, mirroring how the paper varies the VM count along
//! each figure's x-axis.

use std::time::Instant;

use biosched_core::scheduler::AlgorithmKind;
use rayon::prelude::*;
use simcloud::simulation::EngineKind;

use crate::scenario::Scenario;

/// All metrics the paper reports for one (scenario, algorithm) pair.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Algorithm that produced this point.
    pub algorithm: AlgorithmKind,
    /// Number of VMs in the scenario.
    pub vm_count: usize,
    /// Number of cloudlets in the scenario.
    pub cloudlet_count: usize,
    /// Wall-clock time the scheduler took (Figs. 5/6b).
    pub scheduling_time_ms: f64,
    /// Eq. 12 simulated makespan in ms (Figs. 4/6a).
    pub simulation_time_ms: f64,
    /// Eq. 13 degree of time imbalance (Fig. 6c).
    pub imbalance: f64,
    /// Total processing cost (Fig. 6d).
    pub total_cost: f64,
    /// Mean per-cloudlet execution time in ms (diagnostics).
    pub mean_execution_ms: f64,
    /// Cloudlets that finished (sanity: should equal `cloudlet_count`).
    pub finished: usize,
}

/// Runs one algorithm over one scenario and collects every metric.
///
/// Panics if the simulation itself fails — scenario generators are
/// responsible for producing feasible infrastructure.
pub fn run_point(scenario: &Scenario, algorithm: AlgorithmKind, seed: u64) -> PointResult {
    run_point_on(scenario, algorithm, seed, EngineKind::Sequential)
}

/// [`run_point`] on a chosen simulation engine. Metrics are identical
/// across engines (the sharded kernel is trace-equivalent); only
/// wall-clock differs.
pub fn run_point_on(
    scenario: &Scenario,
    algorithm: AlgorithmKind,
    seed: u64,
    engine: EngineKind,
) -> PointResult {
    let problem = scenario.problem();
    let mut scheduler = algorithm.build(seed);

    let started = Instant::now();
    let assignment = scheduler.schedule(&problem);
    let scheduling_time_ms = started.elapsed().as_secs_f64() * 1_000.0;

    assignment
        .validate(&problem)
        .unwrap_or_else(|e| panic!("{algorithm} produced an invalid assignment: {e}"));
    let outcome = scenario
        .simulate_on(assignment, engine)
        .unwrap_or_else(|e| panic!("simulation failed for {algorithm}: {e}"));

    PointResult {
        algorithm,
        vm_count: scenario.vm_count(),
        cloudlet_count: scenario.cloudlet_count(),
        scheduling_time_ms,
        simulation_time_ms: outcome.simulation_time_ms().unwrap_or(0.0),
        imbalance: outcome.time_imbalance().unwrap_or(0.0),
        total_cost: outcome.total_cost(),
        mean_execution_ms: outcome.mean_execution_ms().unwrap_or(0.0),
        finished: outcome.finished_count(),
    }
}

/// Runs `algorithms` over every scenario produced by `make_scenario` for
/// the given x-axis `points`, in parallel over points.
///
/// Returns one `Vec<PointResult>` per point, ordered like `points`, each
/// ordered like `algorithms`.
pub fn sweep<F>(
    points: &[usize],
    algorithms: &[AlgorithmKind],
    seed: u64,
    make_scenario: F,
) -> Vec<Vec<PointResult>>
where
    F: Fn(usize) -> Scenario + Sync,
{
    sweep_on(
        points,
        algorithms,
        seed,
        EngineKind::Sequential,
        make_scenario,
    )
}

/// [`sweep`] with every point simulated on a chosen engine.
pub fn sweep_on<F>(
    points: &[usize],
    algorithms: &[AlgorithmKind],
    seed: u64,
    engine: EngineKind,
    make_scenario: F,
) -> Vec<Vec<PointResult>>
where
    F: Fn(usize) -> Scenario + Sync,
{
    points
        .par_iter()
        .map(|&x| {
            let scenario = make_scenario(x);
            algorithms
                .iter()
                .map(|&alg| run_point_on(&scenario, alg, seed, engine))
                .collect()
        })
        .collect()
}

/// Mean and spread of one metric over repeated seeded runs.
#[derive(Debug, Clone, Copy)]
pub struct RepeatedMetric {
    /// Mean over repetitions.
    pub mean: f64,
    /// Half-width of the ~95% confidence interval.
    pub ci95: f64,
}

/// A point result aggregated over several seeds.
#[derive(Debug, Clone)]
pub struct RepeatedPointResult {
    /// Algorithm that produced this point.
    pub algorithm: AlgorithmKind,
    /// Number of VMs in the scenario.
    pub vm_count: usize,
    /// Repetitions aggregated.
    pub reps: usize,
    /// Eq. 12 simulated makespan.
    pub simulation_time_ms: RepeatedMetric,
    /// Scheduler wall-clock.
    pub scheduling_time_ms: RepeatedMetric,
    /// Eq. 13 imbalance.
    pub imbalance: RepeatedMetric,
    /// Total processing cost.
    pub total_cost: RepeatedMetric,
}

fn summarize(values: &[f64]) -> RepeatedMetric {
    let n = values.len().max(1) as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = if values.len() > 1 {
        values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    RepeatedMetric {
        mean,
        ci95: if values.len() > 1 {
            1.96 * var.sqrt() / n.sqrt()
        } else {
            0.0
        },
    }
}

/// Runs one algorithm over `reps` seeded variants of a scenario and
/// aggregates every metric. `make_scenario(seed)` builds the variant;
/// seeds are `base_seed..base_seed + reps`, also used for the scheduler.
pub fn run_point_repeated<F>(
    algorithm: AlgorithmKind,
    base_seed: u64,
    reps: usize,
    make_scenario: F,
) -> RepeatedPointResult
where
    F: Fn(u64) -> Scenario + Sync,
{
    run_point_repeated_on(
        algorithm,
        base_seed,
        reps,
        EngineKind::Sequential,
        make_scenario,
    )
}

/// [`run_point_repeated`] with every repetition simulated on a chosen
/// engine. Metrics are identical across engines (the sharded kernel is
/// trace-equivalent); only wall-clock differs.
pub fn run_point_repeated_on<F>(
    algorithm: AlgorithmKind,
    base_seed: u64,
    reps: usize,
    engine: EngineKind,
    make_scenario: F,
) -> RepeatedPointResult
where
    F: Fn(u64) -> Scenario + Sync,
{
    assert!(reps > 0, "need at least one repetition");
    let results: Vec<PointResult> = (0..reps as u64)
        .into_par_iter()
        .map(|r| {
            let seed = base_seed + r;
            run_point_on(&make_scenario(seed), algorithm, seed, engine)
        })
        .collect();
    let pick = |f: fn(&PointResult) -> f64| -> RepeatedMetric {
        let values: Vec<f64> = results.iter().map(f).collect();
        summarize(&values)
    };
    RepeatedPointResult {
        algorithm,
        vm_count: results[0].vm_count,
        reps,
        simulation_time_ms: pick(|r| r.simulation_time_ms),
        scheduling_time_ms: pick(|r| r.scheduling_time_ms),
        imbalance: pick(|r| r.imbalance),
        total_cost: pick(|r| r.total_cost),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heterogeneous::HeterogeneousScenario;
    use crate::homogeneous::HomogeneousScenario;

    #[test]
    fn run_point_collects_all_metrics() {
        let scenario = HomogeneousScenario {
            vm_count: 4,
            cloudlet_count: 20,
        }
        .build();
        let r = run_point(&scenario, AlgorithmKind::BaseTest, 0);
        assert_eq!(r.finished, 20);
        assert_eq!(r.vm_count, 4);
        assert!(r.simulation_time_ms > 0.0);
        assert!(r.scheduling_time_ms >= 0.0);
        assert!(r.mean_execution_ms > 0.0);
        // Homogeneous + free DC: zero cost, near-zero imbalance.
        assert_eq!(r.total_cost, 0.0);
        assert!(r.imbalance < 1e-9);
    }

    #[test]
    fn sweep_orders_points_and_algorithms() {
        let results = sweep(
            &[2, 4],
            &[AlgorithmKind::BaseTest, AlgorithmKind::Rbs],
            1,
            |vms| {
                HomogeneousScenario {
                    vm_count: vms,
                    cloudlet_count: 8,
                }
                .build()
            },
        );
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].len(), 2);
        assert_eq!(results[0][0].vm_count, 2);
        assert_eq!(results[1][0].vm_count, 4);
        assert_eq!(results[0][0].algorithm, AlgorithmKind::BaseTest);
        assert_eq!(results[0][1].algorithm, AlgorithmKind::Rbs);
    }

    #[test]
    fn repeated_points_aggregate_with_spread() {
        let r = run_point_repeated(AlgorithmKind::Rbs, 100, 4, |seed| {
            HeterogeneousScenario {
                vm_count: 6,
                cloudlet_count: 30,
                datacenter_count: 2,
                seed,
            }
            .build()
        });
        assert_eq!(r.reps, 4);
        assert!(r.simulation_time_ms.mean > 0.0);
        // Different seeds -> different workloads -> nonzero spread.
        assert!(r.simulation_time_ms.ci95 > 0.0);
        assert!(r.total_cost.ci95 >= 0.0);
    }

    #[test]
    fn single_rep_has_zero_ci() {
        let r = run_point_repeated(AlgorithmKind::BaseTest, 7, 1, |seed| {
            HeterogeneousScenario {
                vm_count: 4,
                cloudlet_count: 10,
                datacenter_count: 2,
                seed,
            }
            .build()
        });
        assert_eq!(r.simulation_time_ms.ci95, 0.0);
    }

    #[test]
    fn repeated_metrics_match_across_engines() {
        let make = |seed| {
            HeterogeneousScenario {
                vm_count: 6,
                cloudlet_count: 30,
                datacenter_count: 2,
                seed,
            }
            .build()
        };
        let seq =
            run_point_repeated_on(AlgorithmKind::HoneyBee, 5, 3, EngineKind::Sequential, make);
        let sh = run_point_repeated_on(AlgorithmKind::HoneyBee, 5, 3, EngineKind::Sharded, make);
        // The sharded kernel is trace-equivalent: every simulated metric
        // aggregates to the same bits; only wall-clock may differ.
        assert_eq!(
            seq.simulation_time_ms.mean.to_bits(),
            sh.simulation_time_ms.mean.to_bits()
        );
        assert_eq!(seq.imbalance.mean.to_bits(), sh.imbalance.mean.to_bits());
        assert_eq!(seq.total_cost.mean.to_bits(), sh.total_cost.mean.to_bits());
    }

    #[test]
    fn heterogeneous_point_accrues_cost() {
        let scenario = HeterogeneousScenario {
            vm_count: 8,
            cloudlet_count: 40,
            datacenter_count: 2,
            seed: 3,
        }
        .build();
        let r = run_point(&scenario, AlgorithmKind::HoneyBee, 3);
        assert_eq!(r.finished, 40);
        assert!(r.total_cost > 0.0);
        assert!(r.imbalance > 0.0, "heterogeneous exec times must spread");
    }
}
