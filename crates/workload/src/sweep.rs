//! Experiment execution: run algorithms over scenario sweeps.
//!
//! One *point* = (scenario, algorithm): the scheduler is timed (the
//! paper's "scheduling time" metric), its assignment is simulated, and the
//! paper's four metrics are collected.
//!
//! The executor is *flat*: a sweep expands to one `(point × algorithm)`
//! (or `(point × algorithm × rep)`) rayon work list instead of nesting
//! "parallel over points, serial over algorithms" — no point serializes
//! its whole algorithm set behind one slow ACO run. Tasks at the same
//! point share one read-only [`PointArtifacts`] (scenario + problem +
//! [`EvalCache`]), built lazily by the first task to arrive and dropped by
//! the last to finish, and every simulation runs under
//! [`RecordMode::Aggregate`] so a point retains O(VMs) memory, not
//! O(cloudlets). Metrics are bit-identical to the old nested executor:
//! `EvalCache` construction is deterministic (shared = private) and the
//! aggregate fold replays the record scan's operation order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use biosched_core::eval::EvalCache;
use biosched_core::problem::SchedulingProblem;
use biosched_core::scheduler::AlgorithmKind;
use rayon::prelude::*;
use simcloud::simulation::{EngineFallback, EngineKind};
use simcloud::stats::RecordMode;

use crate::scenario::Scenario;

/// All metrics the paper reports for one (scenario, algorithm) pair.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Algorithm that produced this point.
    pub algorithm: AlgorithmKind,
    /// Number of VMs in the scenario.
    pub vm_count: usize,
    /// Number of cloudlets in the scenario.
    pub cloudlet_count: usize,
    /// Wall-clock time the scheduler took (Figs. 5/6b). Times the
    /// `schedule_with_cache` call only; building the shared evaluation
    /// cache is reported separately in `cache_build_ms` so sharing it
    /// across algorithms does not skew the paper's metric.
    pub scheduling_time_ms: f64,
    /// Wall-clock time spent building this point's shared
    /// [`PointArtifacts`] (problem + [`EvalCache`]), amortized over every
    /// algorithm and rep at the point. Reported once per artifact build;
    /// tasks that reused an existing cache report the same figure.
    pub cache_build_ms: f64,
    /// Eq. 12 simulated makespan in ms (Figs. 4/6a).
    pub simulation_time_ms: f64,
    /// Eq. 13 degree of time imbalance (Fig. 6c).
    pub imbalance: f64,
    /// Total processing cost (Fig. 6d).
    pub total_cost: f64,
    /// Mean per-cloudlet execution time in ms (diagnostics).
    pub mean_execution_ms: f64,
    /// Cloudlets that finished (sanity: should equal `cloudlet_count`).
    pub finished: usize,
    /// Engine the caller asked this point to simulate on.
    pub engine_requested: EngineKind,
    /// Engine the simulation actually ran on. Always equals
    /// `engine_requested` today; recorded per point so a sweep that ever
    /// mixes engines does so loudly in its output, not via a stderr note.
    pub engine_ran: EngineKind,
    /// Why the engines differ, when they do ([`EngineFallback`] reason).
    pub engine_fallback_reason: Option<&'static str>,
    /// Winning member name when the algorithm is a meta-scheduler
    /// (portfolio or racer); `None` for single-algorithm kinds.
    pub meta_winner: Option<String>,
    /// Per-member budget spent by a meta-scheduler, rendered as
    /// `name:units;name:units` (deterministic evaluation units).
    pub meta_spent: Option<String>,
}

/// Read-only state every task at one scenario point shares: the scenario,
/// its scheduler-facing problem, and one evaluation cache.
pub struct PointArtifacts {
    /// The scenario itself.
    pub scenario: Scenario,
    /// Scheduler-facing view, built once.
    pub problem: SchedulingProblem,
    /// Evaluation cache over `problem`, built once, shared read-only.
    pub cache: EvalCache,
    /// Wall-clock ms spent building `problem` + `cache`.
    pub cache_build_ms: f64,
}

impl PointArtifacts {
    /// Builds the shared state for one scenario point.
    pub fn build(scenario: Scenario) -> Self {
        let started = Instant::now();
        let problem = scenario.problem();
        let cache = EvalCache::new(&problem);
        let cache_build_ms = started.elapsed().as_secs_f64() * 1_000.0;
        PointArtifacts {
            scenario,
            problem,
            cache,
            cache_build_ms,
        }
    }
}

/// Lazily built, reference-counted slot for one point's artifacts.
///
/// The first task to arrive builds the artifacts under the lock; the last
/// task to release drops them, bounding peak memory to the artifacts of
/// points actually in flight rather than the whole sweep.
struct ArtifactCell {
    artifacts: Mutex<Option<Arc<PointArtifacts>>>,
    remaining: AtomicUsize,
}

impl ArtifactCell {
    fn new(users: usize) -> Self {
        ArtifactCell {
            artifacts: Mutex::new(None),
            remaining: AtomicUsize::new(users),
        }
    }

    fn acquire(&self, make: impl FnOnce() -> Scenario) -> Arc<PointArtifacts> {
        let mut slot = self.artifacts.lock().expect("artifact lock poisoned");
        slot.get_or_insert_with(|| Arc::new(PointArtifacts::build(make())))
            .clone()
    }

    fn release(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.artifacts
                .lock()
                .expect("artifact lock poisoned")
                .take();
        }
    }
}

/// Runs one algorithm over one scenario and collects every metric.
///
/// Panics if the simulation itself fails — scenario generators are
/// responsible for producing feasible infrastructure.
pub fn run_point(scenario: &Scenario, algorithm: AlgorithmKind, seed: u64) -> PointResult {
    run_point_on(scenario, algorithm, seed, EngineKind::Sequential)
}

/// [`run_point`] on a chosen simulation engine. Metrics are identical
/// across engines (the sharded kernel is trace-equivalent); only
/// wall-clock differs. Builds private [`PointArtifacts`] for the call.
pub fn run_point_on(
    scenario: &Scenario,
    algorithm: AlgorithmKind,
    seed: u64,
    engine: EngineKind,
) -> PointResult {
    let artifacts = PointArtifacts::build(scenario.clone());
    run_point_with(&artifacts, algorithm, seed, engine, RecordMode::Aggregate)
}

/// Runs one algorithm over prebuilt shared [`PointArtifacts`].
///
/// Only the `schedule_with_cache` call is timed as scheduling time; the
/// (shared) cache build is carried in `PointResult::cache_build_ms`.
pub fn run_point_with(
    artifacts: &PointArtifacts,
    algorithm: AlgorithmKind,
    seed: u64,
    engine: EngineKind,
    mode: RecordMode,
) -> PointResult {
    let problem = &artifacts.problem;
    let mut scheduler = algorithm.build(seed);

    let started = Instant::now();
    let assignment = scheduler.schedule_with_cache(problem, &artifacts.cache);
    let scheduling_time_ms = started.elapsed().as_secs_f64() * 1_000.0;
    let meta = scheduler.last_meta();

    assignment
        .validate(problem)
        .unwrap_or_else(|e| panic!("{algorithm} produced an invalid assignment: {e}"));
    let outcome = artifacts
        .scenario
        .simulate_mode(assignment, engine, mode)
        .unwrap_or_else(|e| panic!("simulation failed for {algorithm}: {e}"));

    PointResult {
        algorithm,
        vm_count: artifacts.scenario.vm_count(),
        cloudlet_count: artifacts.scenario.cloudlet_count(),
        scheduling_time_ms,
        cache_build_ms: artifacts.cache_build_ms,
        simulation_time_ms: outcome.simulation_time_ms().unwrap_or(0.0),
        imbalance: outcome.time_imbalance().unwrap_or(0.0),
        total_cost: outcome.total_cost(),
        mean_execution_ms: outcome.mean_execution_ms().unwrap_or(0.0),
        finished: outcome.finished_count(),
        engine_requested: engine,
        engine_ran: outcome.engine,
        engine_fallback_reason: outcome.fallback.as_ref().map(|f: &EngineFallback| f.reason),
        meta_winner: meta.as_ref().map(|m| m.winner.clone()),
        meta_spent: meta.as_ref().map(|m| {
            m.spent
                .iter()
                .map(|(name, units)| format!("{name}:{units}"))
                .collect::<Vec<_>>()
                .join(";")
        }),
    }
}

/// Runs `algorithms` over every scenario produced by `make_scenario` for
/// the given x-axis `points`, as one flat parallel work list.
///
/// Returns one `Vec<PointResult>` per point, ordered like `points`, each
/// ordered like `algorithms`.
pub fn sweep<F>(
    points: &[usize],
    algorithms: &[AlgorithmKind],
    seed: u64,
    make_scenario: F,
) -> Vec<Vec<PointResult>>
where
    F: Fn(usize) -> Scenario + Sync,
{
    sweep_on(
        points,
        algorithms,
        seed,
        EngineKind::Sequential,
        make_scenario,
    )
}

/// [`sweep`] with every point simulated on a chosen engine, in
/// [`RecordMode::Aggregate`] (metric-identical to full records).
pub fn sweep_on<F>(
    points: &[usize],
    algorithms: &[AlgorithmKind],
    seed: u64,
    engine: EngineKind,
    make_scenario: F,
) -> Vec<Vec<PointResult>>
where
    F: Fn(usize) -> Scenario + Sync,
{
    sweep_mode_on(
        points,
        algorithms,
        seed,
        engine,
        RecordMode::Aggregate,
        make_scenario,
    )
}

/// [`sweep_on`] with an explicit [`RecordMode`] — the benches use this to
/// measure Full-vs-Aggregate memory; experiment callers want the
/// [`sweep_on`] default.
pub fn sweep_mode_on<F>(
    points: &[usize],
    algorithms: &[AlgorithmKind],
    seed: u64,
    engine: EngineKind,
    mode: RecordMode,
    make_scenario: F,
) -> Vec<Vec<PointResult>>
where
    F: Fn(usize) -> Scenario + Sync,
{
    if algorithms.is_empty() {
        return points.iter().map(|_| Vec::new()).collect();
    }
    let cells: Vec<ArtifactCell> = points
        .iter()
        .map(|_| ArtifactCell::new(algorithms.len()))
        .collect();
    // Flat (point × algorithm) task list, point-major so the regrouping
    // below is a plain chunking of the order-preserving parallel collect.
    let tasks: Vec<(usize, usize)> = (0..points.len())
        .flat_map(|pi| (0..algorithms.len()).map(move |ai| (pi, ai)))
        .collect();
    let flat: Vec<PointResult> = tasks
        .par_iter()
        .map(|&(pi, ai)| {
            let cell = &cells[pi];
            let artifacts = cell.acquire(|| make_scenario(points[pi]));
            let result = run_point_with(&artifacts, algorithms[ai], seed, engine, mode);
            cell.release();
            result
        })
        .collect();
    flat.chunks(algorithms.len()).map(<[_]>::to_vec).collect()
}

/// Mean and spread of one metric over repeated seeded runs.
#[derive(Debug, Clone, Copy)]
pub struct RepeatedMetric {
    /// Mean over repetitions.
    pub mean: f64,
    /// Half-width of the ~95% confidence interval.
    pub ci95: f64,
}

/// A point result aggregated over several seeds.
#[derive(Debug, Clone)]
pub struct RepeatedPointResult {
    /// Algorithm that produced this point.
    pub algorithm: AlgorithmKind,
    /// Number of VMs in the scenario.
    pub vm_count: usize,
    /// Repetitions aggregated.
    pub reps: usize,
    /// Eq. 12 simulated makespan.
    pub simulation_time_ms: RepeatedMetric,
    /// Scheduler wall-clock.
    pub scheduling_time_ms: RepeatedMetric,
    /// Eq. 13 imbalance.
    pub imbalance: RepeatedMetric,
    /// Total processing cost.
    pub total_cost: RepeatedMetric,
    /// Engine requested for every repetition (reps never mix engines).
    pub engine_requested: EngineKind,
    /// Engine every repetition actually ran on.
    pub engine_ran: EngineKind,
    /// Fallback reason, when requested and ran differ.
    pub engine_fallback_reason: Option<&'static str>,
}

/// Two-sided 95% Student-t critical values for 1–30 degrees of freedom.
/// The paper's error bars aggregate 5 seeds, where the old normal
/// approximation (1.96) understated the interval by 42%: df = 4 needs
/// 2.776. Past 30 df the normal value is within 2% and used directly.
const T95: [f64; 30] = [
    12.706205, 4.302653, 3.182446, 2.776445, 2.570582, 2.446912, 2.364624, 2.306004, 2.262157,
    2.228139, 2.200985, 2.178813, 2.160369, 2.144787, 2.131450, 2.119905, 2.109816, 2.100922,
    2.093024, 2.085963, 2.079614, 2.073873, 2.068658, 2.063899, 2.059539, 2.055529, 2.051831,
    2.048407, 2.045230, 2.042272,
];

/// 95% two-sided critical value for `df` degrees of freedom.
fn t95(df: usize) -> f64 {
    if df == 0 {
        return 0.0;
    }
    T95.get(df - 1).copied().unwrap_or(1.96)
}

pub(crate) fn summarize(values: &[f64]) -> RepeatedMetric {
    let n = values.len().max(1) as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = if values.len() > 1 {
        values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    RepeatedMetric {
        mean,
        ci95: if values.len() > 1 {
            t95(values.len() - 1) * var.sqrt() / n.sqrt()
        } else {
            0.0
        },
    }
}

/// Folds raw per-rep results into a [`RepeatedPointResult`].
fn aggregate_reps(algorithm: AlgorithmKind, results: &[PointResult]) -> RepeatedPointResult {
    let pick = |f: fn(&PointResult) -> f64| -> RepeatedMetric {
        let values: Vec<f64> = results.iter().map(f).collect();
        summarize(&values)
    };
    debug_assert!(
        results
            .iter()
            .all(|r| r.engine_ran == results[0].engine_ran),
        "repetitions of one point must not mix engines"
    );
    RepeatedPointResult {
        algorithm,
        vm_count: results[0].vm_count,
        reps: results.len(),
        simulation_time_ms: pick(|r| r.simulation_time_ms),
        scheduling_time_ms: pick(|r| r.scheduling_time_ms),
        imbalance: pick(|r| r.imbalance),
        total_cost: pick(|r| r.total_cost),
        engine_requested: results[0].engine_requested,
        engine_ran: results[0].engine_ran,
        engine_fallback_reason: results[0].engine_fallback_reason,
    }
}

/// Runs one algorithm over `reps` seeded variants of a scenario and
/// aggregates every metric. `make_scenario(seed)` builds the variant;
/// seeds are `base_seed..base_seed + reps`, also used for the scheduler.
pub fn run_point_repeated<F>(
    algorithm: AlgorithmKind,
    base_seed: u64,
    reps: usize,
    make_scenario: F,
) -> RepeatedPointResult
where
    F: Fn(u64) -> Scenario + Sync,
{
    run_point_repeated_on(
        algorithm,
        base_seed,
        reps,
        EngineKind::Sequential,
        make_scenario,
    )
}

/// [`run_point_repeated`] with every repetition simulated on a chosen
/// engine. Metrics are identical across engines (the sharded kernel is
/// trace-equivalent); only wall-clock differs.
pub fn run_point_repeated_on<F>(
    algorithm: AlgorithmKind,
    base_seed: u64,
    reps: usize,
    engine: EngineKind,
    make_scenario: F,
) -> RepeatedPointResult
where
    F: Fn(u64) -> Scenario + Sync,
{
    assert!(reps > 0, "need at least one repetition");
    let results: Vec<PointResult> = (0..reps as u64)
        .into_par_iter()
        .map(|r| {
            let seed = base_seed + r;
            run_point_on(&make_scenario(seed), algorithm, seed, engine)
        })
        .collect();
    aggregate_reps(algorithm, &results)
}

/// Repeated sweep over a full grid, as one flat `(point × rep ×
/// algorithm)` parallel work list.
///
/// `make_scenario(x, seed)` builds the scenario for x-axis value `x` and
/// workload seed `seed`; seeds are `base_seed..base_seed + reps` and also
/// seed the schedulers, like [`run_point_repeated_on`]. Every `(point,
/// rep)` pair shares one lazily built [`PointArtifacts`] across all
/// algorithms (the workload varies per rep, so reps cannot share), and
/// tasks are ordered rep-major so sharing tasks sit adjacent in the work
/// list. Results come back as one `Vec<RepeatedPointResult>` per point,
/// ordered like `points`, each ordered like `algorithms` — exactly what
/// the old nested "serial points × serial algorithms × parallel reps"
/// loop produced, without a slow algorithm serializing its whole point.
pub fn sweep_repeated_on<F>(
    points: &[usize],
    algorithms: &[AlgorithmKind],
    base_seed: u64,
    reps: usize,
    engine: EngineKind,
    make_scenario: F,
) -> Vec<Vec<RepeatedPointResult>>
where
    F: Fn(usize, u64) -> Scenario + Sync,
{
    assert!(reps > 0, "need at least one repetition");
    if algorithms.is_empty() {
        return points.iter().map(|_| Vec::new()).collect();
    }
    let a = algorithms.len();
    let cells: Vec<ArtifactCell> = (0..points.len() * reps)
        .map(|_| ArtifactCell::new(a))
        .collect();
    // (point, rep, algorithm) lexicographic: all users of one artifact
    // cell are contiguous, so a work-chunk tends to build, use and free a
    // cell without another thread ever waiting on its lock.
    let tasks: Vec<(usize, usize, usize)> = (0..points.len())
        .flat_map(|pi| (0..reps).flat_map(move |ri| (0..a).map(move |ai| (pi, ri, ai))))
        .collect();
    let flat: Vec<PointResult> = tasks
        .par_iter()
        .map(|&(pi, ri, ai)| {
            let seed = base_seed + ri as u64;
            let cell = &cells[pi * reps + ri];
            let artifacts = cell.acquire(|| make_scenario(points[pi], seed));
            let result = run_point_with(
                &artifacts,
                algorithms[ai],
                seed,
                engine,
                RecordMode::Aggregate,
            );
            cell.release();
            result
        })
        .collect();
    // flat[pi*reps*a + ri*a + ai] → regroup to [point][algorithm] over reps.
    (0..points.len())
        .map(|pi| {
            (0..a)
                .map(|ai| {
                    let per_rep: Vec<PointResult> = (0..reps)
                        .map(|ri| flat[pi * reps * a + ri * a + ai].clone())
                        .collect();
                    aggregate_reps(algorithms[ai], &per_rep)
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heterogeneous::HeterogeneousScenario;
    use crate::homogeneous::HomogeneousScenario;

    #[test]
    fn run_point_collects_all_metrics() {
        let scenario = HomogeneousScenario {
            vm_count: 4,
            cloudlet_count: 20,
        }
        .build();
        let r = run_point(&scenario, AlgorithmKind::BaseTest, 0);
        assert_eq!(r.finished, 20);
        assert_eq!(r.vm_count, 4);
        assert!(r.simulation_time_ms > 0.0);
        assert!(r.scheduling_time_ms >= 0.0);
        assert!(r.mean_execution_ms > 0.0);
        // Homogeneous + free DC: zero cost, near-zero imbalance.
        assert_eq!(r.total_cost, 0.0);
        assert!(r.imbalance < 1e-9);
    }

    #[test]
    fn sweep_orders_points_and_algorithms() {
        let results = sweep(
            &[2, 4],
            &[AlgorithmKind::BaseTest, AlgorithmKind::Rbs],
            1,
            |vms| {
                HomogeneousScenario {
                    vm_count: vms,
                    cloudlet_count: 8,
                }
                .build()
            },
        );
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].len(), 2);
        assert_eq!(results[0][0].vm_count, 2);
        assert_eq!(results[1][0].vm_count, 4);
        assert_eq!(results[0][0].algorithm, AlgorithmKind::BaseTest);
        assert_eq!(results[0][1].algorithm, AlgorithmKind::Rbs);
    }

    #[test]
    fn repeated_points_aggregate_with_spread() {
        let r = run_point_repeated(AlgorithmKind::Rbs, 100, 4, |seed| {
            HeterogeneousScenario {
                vm_count: 6,
                cloudlet_count: 30,
                datacenter_count: 2,
                seed,
            }
            .build()
        });
        assert_eq!(r.reps, 4);
        assert!(r.simulation_time_ms.mean > 0.0);
        // Different seeds -> different workloads -> nonzero spread.
        assert!(r.simulation_time_ms.ci95 > 0.0);
        assert!(r.total_cost.ci95 >= 0.0);
    }

    #[test]
    fn single_rep_has_zero_ci() {
        let r = run_point_repeated(AlgorithmKind::BaseTest, 7, 1, |seed| {
            HeterogeneousScenario {
                vm_count: 4,
                cloudlet_count: 10,
                datacenter_count: 2,
                seed,
            }
            .build()
        });
        assert_eq!(r.simulation_time_ms.ci95, 0.0);
    }

    #[test]
    fn repeated_metrics_match_across_engines() {
        let make = |seed| {
            HeterogeneousScenario {
                vm_count: 6,
                cloudlet_count: 30,
                datacenter_count: 2,
                seed,
            }
            .build()
        };
        let seq =
            run_point_repeated_on(AlgorithmKind::HoneyBee, 5, 3, EngineKind::Sequential, make);
        let sh = run_point_repeated_on(AlgorithmKind::HoneyBee, 5, 3, EngineKind::Sharded, make);
        // The sharded kernel is trace-equivalent: every simulated metric
        // aggregates to the same bits; only wall-clock may differ.
        assert_eq!(
            seq.simulation_time_ms.mean.to_bits(),
            sh.simulation_time_ms.mean.to_bits()
        );
        assert_eq!(seq.imbalance.mean.to_bits(), sh.imbalance.mean.to_bits());
        assert_eq!(seq.total_cost.mean.to_bits(), sh.total_cost.mean.to_bits());
    }

    #[test]
    fn meta_provenance_flows_into_points_and_matches_across_engines() {
        use biosched_core::objective::Objective;
        let scenario = HeterogeneousScenario {
            vm_count: 6,
            cloudlet_count: 30,
            datacenter_count: 2,
            seed: 17,
        }
        .build();
        let kind = AlgorithmKind::Racing(Objective::Makespan);
        let seq = run_point_on(&scenario, kind, 17, EngineKind::Sequential);
        let sh = run_point_on(&scenario, kind, 17, EngineKind::Sharded);
        // The race budget is counted in evaluation units, so the winner,
        // the per-member spend, and every simulated metric are
        // bit-identical across engines.
        assert_eq!(
            seq.simulation_time_ms.to_bits(),
            sh.simulation_time_ms.to_bits()
        );
        assert_eq!(seq.total_cost.to_bits(), sh.total_cost.to_bits());
        assert_eq!(seq.meta_winner, sh.meta_winner);
        assert_eq!(seq.meta_spent, sh.meta_spent);
        let winner = seq.meta_winner.as_deref().expect("racer reports a winner");
        let spent = seq.meta_spent.as_deref().expect("racer reports spend");
        assert!(spent.contains(&format!("{winner}:")), "{spent}");
        assert_eq!(spent.matches(';').count(), 5, "six roster members");

        let portfolio = run_point(&scenario, AlgorithmKind::Portfolio(Objective::Makespan), 17);
        assert!(portfolio.meta_winner.is_some());
        // Plain schedulers leave the provenance columns empty.
        let plain = run_point(&scenario, AlgorithmKind::HoneyBee, 17);
        assert_eq!(plain.meta_winner, None);
        assert_eq!(plain.meta_spent, None);
    }

    #[test]
    fn ci95_uses_student_t_at_five_reps() {
        // Five values with sample sd = sqrt(2.5): the paper's rep count.
        let m = summarize(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.mean, 2.0);
        let sd = 2.5f64.sqrt();
        let multiplier = m.ci95 / (sd / 5.0f64.sqrt());
        // df = 4 → t = 2.776445, not the normal 1.96.
        assert!(
            (multiplier - 2.776445).abs() < 1e-6,
            "expected the df=4 Student-t multiplier, got {multiplier}"
        );
    }

    #[test]
    fn ci95_falls_back_to_normal_past_thirty_df() {
        let values: Vec<f64> = (0..40).map(f64::from).collect();
        let m = summarize(&values);
        let n = values.len() as f64;
        let sd = (values.iter().map(|v| (v - m.mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt();
        let multiplier = m.ci95 / (sd / n.sqrt());
        assert!((multiplier - 1.96).abs() < 1e-9);
    }

    #[test]
    fn flat_repeated_sweep_matches_per_point_aggregation() {
        let make = |vms: usize, seed: u64| {
            HeterogeneousScenario {
                vm_count: vms,
                cloudlet_count: 24,
                datacenter_count: 2,
                seed,
            }
            .build()
        };
        let algorithms = [AlgorithmKind::BaseTest, AlgorithmKind::HoneyBee];
        let points = [4usize, 6];
        let flat = sweep_repeated_on(&points, &algorithms, 11, 3, EngineKind::Sequential, make);
        assert_eq!(flat.len(), 2);
        for (pi, &vms) in points.iter().enumerate() {
            assert_eq!(flat[pi].len(), 2);
            for (ai, &alg) in algorithms.iter().enumerate() {
                let nested = run_point_repeated_on(alg, 11, 3, EngineKind::Sequential, |seed| {
                    make(vms, seed)
                });
                let got = &flat[pi][ai];
                assert_eq!(got.algorithm, alg);
                assert_eq!(got.vm_count, vms);
                assert_eq!(got.reps, 3);
                // Simulated metrics are seed-deterministic: the flat
                // executor must aggregate the very same bits.
                assert_eq!(
                    got.simulation_time_ms.mean.to_bits(),
                    nested.simulation_time_ms.mean.to_bits()
                );
                assert_eq!(
                    got.imbalance.mean.to_bits(),
                    nested.imbalance.mean.to_bits()
                );
                assert_eq!(
                    got.total_cost.mean.to_bits(),
                    nested.total_cost.mean.to_bits()
                );
                assert_eq!(
                    got.imbalance.ci95.to_bits(),
                    nested.imbalance.ci95.to_bits()
                );
            }
        }
    }

    #[test]
    fn shared_artifacts_report_cache_build_time() {
        let results = sweep(
            &[4],
            &[AlgorithmKind::BaseTest, AlgorithmKind::HoneyBee],
            1,
            |vms| {
                HomogeneousScenario {
                    vm_count: vms,
                    cloudlet_count: 16,
                }
                .build()
            },
        );
        // Both algorithms at the point share one artifact build and must
        // report the same figure.
        assert!(results[0][0].cache_build_ms >= 0.0);
        assert_eq!(
            results[0][0].cache_build_ms.to_bits(),
            results[0][1].cache_build_ms.to_bits()
        );
    }

    #[test]
    fn point_results_record_engine_provenance() {
        let scenario = HomogeneousScenario {
            vm_count: 4,
            cloudlet_count: 12,
        }
        .build();
        for engine in [EngineKind::Sequential, EngineKind::Sharded] {
            let r = run_point_on(&scenario, AlgorithmKind::BaseTest, 0, engine);
            assert_eq!(r.engine_requested, engine);
            assert_eq!(r.engine_ran, engine, "no scenario falls back anymore");
            assert_eq!(r.engine_fallback_reason, None);
        }
        let rep =
            run_point_repeated_on(AlgorithmKind::BaseTest, 3, 2, EngineKind::Sharded, |seed| {
                HeterogeneousScenario {
                    vm_count: 4,
                    cloudlet_count: 10,
                    datacenter_count: 2,
                    seed,
                }
                .build()
            });
        assert_eq!(rep.engine_requested, EngineKind::Sharded);
        assert_eq!(rep.engine_ran, EngineKind::Sharded);
        assert_eq!(rep.engine_fallback_reason, None);
    }

    #[test]
    fn heterogeneous_point_accrues_cost() {
        let scenario = HeterogeneousScenario {
            vm_count: 8,
            cloudlet_count: 40,
            datacenter_count: 2,
            seed: 3,
        }
        .build();
        let r = run_point(&scenario, AlgorithmKind::HoneyBee, 3);
        assert_eq!(r.finished, 40);
        assert!(r.total_cost > 0.0);
        assert!(r.imbalance > 0.0, "heterogeneous exec times must spread");
    }
}
