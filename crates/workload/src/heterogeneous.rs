//! The paper's heterogeneous scenario (Section VI-B, Tables V, VI, VII).
//!
//! VM MIPS ratings are drawn uniformly from 500–4000 (Table V), cloudlet
//! lengths from 1000–20000 MI (Table VI), and datacenter prices from the
//! Table VII ranges (memory 0.01–0.05, storage 0.001–0.004, bandwidth
//! 0.01–0.05, processing fixed at 3). The paper sweeps 50–950 VMs against
//! 5000 cloudlets across these datacenters.

use rand::rngs::StdRng;
use rand::Rng;
use simcloud::characteristics::CostModel;
use simcloud::cloudlet::CloudletSpec;
use simcloud::ids::DatacenterId;
use simcloud::rng::stream;
use simcloud::vm::VmSpec;

use crate::scenario::{DatacenterSetup, Scenario};

/// The paper's heterogeneous cloudlet count.
pub const PAPER_CLOUDLETS: usize = 5_000;

/// Datacenters in the heterogeneous study (the paper leaves the count
/// implicit; four spans the Table VII price ranges meaningfully).
pub const DEFAULT_DATACENTERS: usize = 4;

/// VM-count x-axis of Fig. 6 (50, 150, …, 950).
pub fn fig6_vm_points() -> Vec<usize> {
    (0..10).map(|k| 50 + k * 100).collect()
}

/// Generator for heterogeneous experiment points.
#[derive(Debug, Clone)]
pub struct HeterogeneousScenario {
    /// Number of VMs.
    pub vm_count: usize,
    /// Number of cloudlets.
    pub cloudlet_count: usize,
    /// Number of datacenters with independently drawn prices.
    pub datacenter_count: usize,
    /// Workload-generation seed.
    pub seed: u64,
}

impl HeterogeneousScenario {
    /// A paper point: `vm_count` VMs, 5000 cloudlets, 4 datacenters.
    pub fn paper(vm_count: usize, seed: u64) -> Self {
        HeterogeneousScenario {
            vm_count,
            cloudlet_count: PAPER_CLOUDLETS,
            datacenter_count: DEFAULT_DATACENTERS,
            seed,
        }
    }

    /// Draws one VM spec per Table V.
    fn draw_vm(rng: &mut StdRng) -> VmSpec {
        VmSpec::new(rng.gen_range(500.0..=4_000.0), 5_000.0, 512.0, 500.0, 1)
    }

    /// Draws one cloudlet spec per Table VI.
    fn draw_cloudlet(rng: &mut StdRng) -> CloudletSpec {
        CloudletSpec::new(rng.gen_range(1_000.0..=20_000.0), 300.0, 300.0, 1)
    }

    /// Draws one datacenter's prices per Table VII.
    fn draw_cost(rng: &mut StdRng) -> CostModel {
        CostModel::new(
            rng.gen_range(0.01..=0.05),
            rng.gen_range(0.001..=0.004),
            rng.gen_range(0.01..=0.05),
            3.0,
        )
    }

    /// Materializes the scenario (deterministic per seed).
    pub fn build(&self) -> Scenario {
        assert!(self.vm_count > 0, "scenario needs VMs");
        assert!(self.datacenter_count > 0, "scenario needs datacenters");
        let mut vm_rng = stream(self.seed, "workload/vms");
        let mut cl_rng = stream(self.seed, "workload/cloudlets");
        let mut dc_rng = stream(self.seed, "workload/datacenters");

        let vms: Vec<VmSpec> = (0..self.vm_count)
            .map(|_| Self::draw_vm(&mut vm_rng))
            .collect();
        let cloudlets: Vec<CloudletSpec> = (0..self.cloudlet_count)
            .map(|_| Self::draw_cloudlet(&mut cl_rng))
            .collect();
        let datacenters: Vec<DatacenterSetup> = (0..self.datacenter_count)
            .map(|_| DatacenterSetup {
                cost: Self::draw_cost(&mut dc_rng),
            })
            .collect();
        let vm_placement: Vec<DatacenterId> = (0..self.vm_count)
            .map(|i| DatacenterId::from_index(i % self.datacenter_count))
            .collect();
        Scenario {
            vms,
            cloudlets,
            datacenters,
            vm_placement,
            vm_scheduler: simcloud::cloudlet_sched::SchedulerKind::TimeShared,
            arrivals: None,
            host_failures: Vec::new(),
            dependencies: None,
            faults: None,
            recovery: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_table_ranges() {
        let s = HeterogeneousScenario::paper(100, 42).build();
        assert!(s.vms.iter().all(|v| (500.0..=4_000.0).contains(&v.mips)));
        assert!(s.vms.iter().all(|v| v.ram_mb == 512.0 && v.pes == 1));
        assert!(s
            .cloudlets
            .iter()
            .all(|c| (1_000.0..=20_000.0).contains(&c.length_mi)));
        for d in &s.datacenters {
            assert!((0.01..=0.05).contains(&d.cost.per_memory));
            assert!((0.001..=0.004).contains(&d.cost.per_storage));
            assert!((0.01..=0.05).contains(&d.cost.per_bandwidth));
            assert_eq!(d.cost.per_processing, 3.0);
        }
    }

    #[test]
    fn workload_is_actually_heterogeneous() {
        let s = HeterogeneousScenario::paper(50, 1).build();
        assert!(!s.problem().is_homogeneous());
        let first = s.vms[0].mips;
        assert!(s.vms.iter().any(|v| (v.mips - first).abs() > 1.0));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = HeterogeneousScenario::paper(30, 9).build();
        let b = HeterogeneousScenario::paper(30, 9).build();
        assert_eq!(a.vms, b.vms);
        assert_eq!(a.cloudlets, b.cloudlets);
        let c = HeterogeneousScenario::paper(30, 10).build();
        assert_ne!(a.vms, c.vms);
    }

    #[test]
    fn placement_spreads_across_datacenters() {
        let s = HeterogeneousScenario::paper(40, 2).build();
        for d in 0..DEFAULT_DATACENTERS {
            let count = s.vm_placement.iter().filter(|dc| dc.index() == d).count();
            assert_eq!(count, 10);
        }
    }

    #[test]
    fn fig6_axis() {
        let pts = fig6_vm_points();
        assert_eq!(pts.len(), 10);
        assert_eq!(pts[0], 50);
        assert_eq!(pts[9], 950);
    }

    #[test]
    fn vm_count_sweep_changes_only_fleet() {
        let a = HeterogeneousScenario::paper(50, 5).build();
        let b = HeterogeneousScenario::paper(150, 5).build();
        assert_eq!(a.cloudlets, b.cloudlets, "same seed, same workload");
        assert_eq!(b.vm_count(), 150);
    }
}
