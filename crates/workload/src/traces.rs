//! Synthetic stress workloads.
//!
//! The paper motivates its study with "extreme load and large-scale
//! environment conditions"; these generators push past the uniform Tables
//! V/VI distributions to probe the algorithms where uniform workloads
//! cannot: heavy-tailed task lengths (a few elephants among mice), bimodal
//! mixes, and skewed fleets (a handful of fast VMs in a sea of slow ones).

use rand::rngs::StdRng;
use rand::Rng;
use simcloud::cloudlet::CloudletSpec;
use simcloud::rng::stream;
use simcloud::vm::VmSpec;

/// Heavy-tailed (bounded Pareto) cloudlet lengths.
///
/// Lengths follow a Pareto distribution with shape `alpha` truncated to
/// `[min_mi, max_mi]` via inverse-transform sampling. `alpha` around 1.1
/// gives the elephants-and-mice mix typical of cluster traces.
pub fn pareto_cloudlets(
    count: usize,
    min_mi: f64,
    max_mi: f64,
    alpha: f64,
    seed: u64,
) -> Vec<CloudletSpec> {
    assert!(min_mi > 0.0 && max_mi > min_mi, "need 0 < min < max");
    assert!(alpha > 0.0, "Pareto shape must be positive");
    let mut rng = stream(seed, "traces/pareto");
    let l = min_mi.powf(alpha);
    let h = max_mi.powf(alpha);
    (0..count)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..1.0);
            // Bounded-Pareto inverse CDF.
            let x = (-(u * h - u * l - h) / (h * l)).powf(-1.0 / alpha);
            CloudletSpec::new(x.clamp(min_mi, max_mi), 300.0, 300.0, 1)
        })
        .collect()
}

/// Bimodal lengths: a fraction `heavy_share` of cloudlets is `heavy_mi`
/// long, the rest `light_mi`.
pub fn bimodal_cloudlets(
    count: usize,
    light_mi: f64,
    heavy_mi: f64,
    heavy_share: f64,
    seed: u64,
) -> Vec<CloudletSpec> {
    assert!((0.0..=1.0).contains(&heavy_share));
    let mut rng = stream(seed, "traces/bimodal");
    (0..count)
        .map(|_| {
            let mi = if rng.gen_bool(heavy_share) {
                heavy_mi
            } else {
                light_mi
            };
            CloudletSpec::new(mi, 300.0, 300.0, 1)
        })
        .collect()
}

/// A skewed fleet: `fast_count` VMs at `fast_mips`, the rest at
/// `slow_mips` — the regime where load-blind schedulers fall apart.
pub fn skewed_fleet(
    total: usize,
    fast_count: usize,
    fast_mips: f64,
    slow_mips: f64,
) -> Vec<VmSpec> {
    assert!(fast_count <= total, "fast_count exceeds fleet size");
    (0..total)
        .map(|i| {
            let mips = if i < fast_count { fast_mips } else { slow_mips };
            VmSpec::new(mips, 5_000.0, 512.0, 500.0, 1)
        })
        .collect()
}

/// Draws lengths for a "flash crowd": mostly tiny tasks with occasional
/// bursts of `burst_len` consecutive heavy ones.
pub fn bursty_cloudlets(
    count: usize,
    light_mi: f64,
    heavy_mi: f64,
    burst_len: usize,
    burst_prob: f64,
    seed: u64,
) -> Vec<CloudletSpec> {
    assert!(burst_len > 0);
    assert!((0.0..=1.0).contains(&burst_prob));
    let mut rng: StdRng = stream(seed, "traces/bursty");
    let mut out = Vec::with_capacity(count);
    let mut burst_remaining = 0usize;
    for _ in 0..count {
        if burst_remaining == 0 && rng.gen_bool(burst_prob) {
            burst_remaining = burst_len;
        }
        let mi = if burst_remaining > 0 {
            burst_remaining -= 1;
            heavy_mi
        } else {
            light_mi
        };
        out.push(CloudletSpec::new(mi, 300.0, 300.0, 1));
    }
    out
}

/// Attaches SLA deadlines to a workload: each cloudlet must finish within
/// `slack × (length_mi / reference_mips)` seconds of submission — i.e.
/// `slack` times its solo runtime on a reference VM. `slack = 1` is a
/// hard-real-time demand; larger values loosen the SLA.
pub fn attach_deadlines(cloudlets: &mut [CloudletSpec], reference_mips: f64, slack: f64) {
    assert!(reference_mips > 0.0 && slack > 0.0);
    for cl in cloudlets.iter_mut() {
        let solo_ms = cl.length_mi / reference_mips * 1_000.0;
        cl.deadline_ms = Some(solo_ms * slack);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlines_scale_with_length_and_slack() {
        let mut cls = vec![
            CloudletSpec::new(1_000.0, 0.0, 0.0, 1),
            CloudletSpec::new(2_000.0, 0.0, 0.0, 1),
        ];
        attach_deadlines(&mut cls, 1_000.0, 3.0);
        assert_eq!(cls[0].deadline_ms, Some(3_000.0));
        assert_eq!(cls[1].deadline_ms, Some(6_000.0));
        for cl in &cls {
            assert!(cl.validate().is_ok());
        }
    }

    #[test]
    fn pareto_respects_bounds_and_is_skewed() {
        let cls = pareto_cloudlets(2_000, 100.0, 100_000.0, 1.1, 7);
        assert_eq!(cls.len(), 2_000);
        assert!(cls
            .iter()
            .all(|c| (100.0..=100_000.0).contains(&c.length_mi)));
        // Heavy tail: mean well above median.
        let mut lens: Vec<f64> = cls.iter().map(|c| c.length_mi).collect();
        lens.sort_by(f64::total_cmp);
        let median = lens[lens.len() / 2];
        let mean: f64 = lens.iter().sum::<f64>() / lens.len() as f64;
        assert!(mean > 1.5 * median, "mean {mean} vs median {median}");
    }

    #[test]
    fn bimodal_share_is_respected() {
        let cls = bimodal_cloudlets(4_000, 100.0, 10_000.0, 0.25, 3);
        let heavy = cls.iter().filter(|c| c.length_mi == 10_000.0).count();
        let share = heavy as f64 / 4_000.0;
        assert!((share - 0.25).abs() < 0.05, "share {share}");
    }

    #[test]
    fn skewed_fleet_shape() {
        let fleet = skewed_fleet(10, 2, 4_000.0, 500.0);
        assert_eq!(fleet.iter().filter(|v| v.mips == 4_000.0).count(), 2);
        assert_eq!(fleet.iter().filter(|v| v.mips == 500.0).count(), 8);
    }

    #[test]
    fn bursts_are_contiguous() {
        let cls = bursty_cloudlets(500, 100.0, 9_000.0, 5, 0.05, 11);
        // Every run of heavy tasks must be at least... well, bursts can
        // merge; just check both classes are present and deterministic.
        assert!(cls.iter().any(|c| c.length_mi == 9_000.0));
        assert!(cls.iter().any(|c| c.length_mi == 100.0));
        let again = bursty_cloudlets(500, 100.0, 9_000.0, 5, 0.05, 11);
        assert_eq!(cls, again);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            pareto_cloudlets(50, 10.0, 1_000.0, 1.3, 1),
            pareto_cloudlets(50, 10.0, 1_000.0, 1.3, 1)
        );
        assert_ne!(
            bimodal_cloudlets(50, 1.0, 2.0, 0.5, 1),
            bimodal_cloudlets(50, 1.0, 2.0, 0.5, 2)
        );
    }
}
