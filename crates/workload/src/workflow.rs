//! Workflow (DAG) workload generators.
//!
//! The paper's related work is dominated by *workflow* schedulers
//! ([18] Pandey, [3] Chen & Zhang, [23] Rodriguez & Buyya all schedule
//! DAGs); this module generates the classic shapes so the simulator's
//! precedence engine and the HEFT scheduler in `biosched-core` can be
//! exercised: chains, fork-joins, random layered DAGs and a
//! Montage-style pipeline-of-stages ensemble.

use std::sync::OnceLock;

use rand::Rng;
use simcloud::cloudlet::CloudletSpec;
use simcloud::ids::CloudletId;
use simcloud::rng::stream;

use crate::scenario::Scenario;

/// A workload with precedence constraints.
#[derive(Debug, Clone)]
pub struct Workflow {
    /// Task specs, in id order.
    pub specs: Vec<CloudletSpec>,
    /// `parents[c]` = tasks that must finish before `c` starts.
    pub parents: Vec<Vec<CloudletId>>,
    /// Memoized critical-path length (computed once per workflow; paper-
    /// scale DAGs are queried repeatedly during bench setup).
    critical_path: OnceLock<f64>,
}

impl Workflow {
    /// Builds a workflow from task specs and a parent list.
    pub fn new(specs: Vec<CloudletSpec>, parents: Vec<Vec<CloudletId>>) -> Workflow {
        assert_eq!(
            specs.len(),
            parents.len(),
            "one parent list per task required"
        );
        Workflow {
            specs,
            parents,
            critical_path: OnceLock::new(),
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True for an empty workflow.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Total edges in the DAG.
    pub fn edge_count(&self) -> usize {
        self.parents.iter().map(Vec::len).sum()
    }

    /// Installs this workflow into a scenario (replacing its cloudlets)
    /// and returns the dependency list to pass to the simulator.
    pub fn install(&self, scenario: &mut Scenario) {
        scenario.cloudlets = self.specs.clone();
        scenario.dependencies = Some(self.parents.clone());
    }

    /// Critical-path length in MI assuming unit-capacity execution — a
    /// scheduler-independent lower-bound proxy. Computed once (one
    /// topological pass) and memoized; repeat calls are free.
    pub fn critical_path_mi(&self) -> f64 {
        *self
            .critical_path
            .get_or_init(|| self.compute_critical_path_mi())
    }

    /// One Kahn-style topological DP over the DAG.
    fn compute_critical_path_mi(&self) -> f64 {
        let n = self.len();
        let mut longest = vec![0.0f64; n];
        // parents[] lists only earlier... not guaranteed; do topological DP.
        let mut indegree: Vec<usize> = self.parents.iter().map(Vec::len).collect();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (c, ps) in self.parents.iter().enumerate() {
            for p in ps {
                children[p.index()].push(c);
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|c| indegree[*c] == 0).collect();
        let mut best = 0.0f64;
        while let Some(c) = ready.pop() {
            let finish = longest[c] + self.specs[c].length_mi;
            best = best.max(finish);
            for &child in &children[c] {
                longest[child] = longest[child].max(finish);
                indegree[child] -= 1;
                if indegree[child] == 0 {
                    ready.push(child);
                }
            }
        }
        best
    }
}

/// A linear chain of `n` tasks of `length_mi` each.
pub fn chain(n: usize, length_mi: f64) -> Workflow {
    assert!(n > 0);
    let specs = vec![CloudletSpec::new(length_mi, 0.0, 0.0, 1); n];
    let parents = (0..n)
        .map(|c| {
            if c == 0 {
                vec![]
            } else {
                vec![CloudletId::from_index(c - 1)]
            }
        })
        .collect();
    Workflow::new(specs, parents)
}

/// A fork-join: one source, `width` parallel branches of `depth` tasks,
/// one sink.
pub fn fork_join(width: usize, depth: usize, length_mi: f64) -> Workflow {
    assert!(width > 0 && depth > 0);
    let n = 2 + width * depth;
    let mut specs = vec![CloudletSpec::new(length_mi, 0.0, 0.0, 1); n];
    // Source and sink are lightweight coordination tasks.
    specs[0] = CloudletSpec::new(length_mi / 10.0, 0.0, 0.0, 1);
    specs[n - 1] = CloudletSpec::new(length_mi / 10.0, 0.0, 0.0, 1);
    let mut parents: Vec<Vec<CloudletId>> = vec![Vec::new(); n];
    let task_id = |branch: usize, level: usize| 1 + branch * depth + level;
    for branch in 0..width {
        parents[task_id(branch, 0)].push(CloudletId(0));
        for level in 1..depth {
            parents[task_id(branch, level)]
                .push(CloudletId::from_index(task_id(branch, level - 1)));
        }
        parents[n - 1].push(CloudletId::from_index(task_id(branch, depth - 1)));
    }
    Workflow::new(specs, parents)
}

/// A random layered DAG: `layers` layers of `width` tasks; each task
/// depends on each task of the previous layer with probability `p_edge`
/// (plus one guaranteed parent so layers actually order).
pub fn layered_random(
    layers: usize,
    width: usize,
    p_edge: f64,
    length_range_mi: (f64, f64),
    seed: u64,
) -> Workflow {
    assert!(layers > 0 && width > 0);
    assert!((0.0..=1.0).contains(&p_edge));
    let (lo, hi) = length_range_mi;
    assert!(0.0 < lo && lo <= hi);
    let mut rng = stream(seed, "workflow/layered");
    let n = layers * width;
    let specs = (0..n)
        .map(|_| CloudletSpec::new(rng.gen_range(lo..=hi), 0.0, 0.0, 1))
        .collect();
    let mut parents: Vec<Vec<CloudletId>> = vec![Vec::new(); n];
    for layer in 1..layers {
        for w in 0..width {
            let c = layer * width + w;
            for pw in 0..width {
                let p = (layer - 1) * width + pw;
                if rng.gen_bool(p_edge) {
                    parents[c].push(CloudletId::from_index(p));
                }
            }
            if parents[c].is_empty() {
                // Guarantee layering: inherit one random parent.
                let p = (layer - 1) * width + rng.gen_range(0..width);
                parents[c].push(CloudletId::from_index(p));
            }
        }
    }
    Workflow::new(specs, parents)
}

/// A paper-scale random layered DAG: `layers` layers of `width` tasks,
/// each sampling up to `k_parents` distinct parents from the previous
/// layer (at least one, so layers actually order).
///
/// [`layered_random`] flips a coin per (task, candidate-parent) pair —
/// O(layers × width²), intractable at the paper's 100k width. This
/// generator is O(tasks × k) and is what the DAG benches use for the
/// 1M-task tier.
pub fn layered_sparse(
    layers: usize,
    width: usize,
    k_parents: usize,
    length_range_mi: (f64, f64),
    seed: u64,
) -> Workflow {
    assert!(layers > 0 && width > 0 && k_parents > 0);
    let (lo, hi) = length_range_mi;
    assert!(0.0 < lo && lo <= hi);
    let mut rng = stream(seed, "workflow/layered-sparse");
    let n = layers * width;
    let specs = (0..n)
        .map(|_| CloudletSpec::new(rng.gen_range(lo..=hi), 0.0, 0.0, 1))
        .collect();
    let mut parents: Vec<Vec<CloudletId>> = vec![Vec::new(); n];
    let k = k_parents.min(width);
    let mut picks: Vec<usize> = Vec::with_capacity(k);
    for layer in 1..layers {
        for w in 0..width {
            let c = layer * width + w;
            let want = rng.gen_range(1..=k);
            picks.clear();
            while picks.len() < want {
                let pw = rng.gen_range(0..width);
                if !picks.contains(&pw) {
                    picks.push(pw);
                }
            }
            picks.sort_unstable();
            parents[c] = picks
                .iter()
                .map(|&pw| CloudletId::from_index((layer - 1) * width + pw))
                .collect();
        }
    }
    Workflow::new(specs, parents)
}

/// A Montage-style ensemble: `jobs` independent pipelines, each
/// `stages` long with a fan-out/fan-in middle stage — the scientific
/// workload shape the related work schedules.
pub fn pipeline_ensemble(jobs: usize, stages: usize, length_mi: f64, seed: u64) -> Workflow {
    assert!(jobs > 0 && stages > 0);
    let mut rng = stream(seed, "workflow/ensemble");
    let mut specs = Vec::new();
    let mut parents: Vec<Vec<CloudletId>> = Vec::new();
    for _ in 0..jobs {
        let mut prev: Option<usize> = None;
        for _ in 0..stages {
            let id = specs.len();
            let jitter: f64 = rng.gen_range(0.5..1.5);
            specs.push(CloudletSpec::new(length_mi * jitter, 0.0, 0.0, 1));
            parents.push(match prev {
                Some(p) => vec![CloudletId::from_index(p)],
                None => vec![],
            });
            prev = Some(id);
        }
    }
    Workflow::new(specs, parents)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shape() {
        let w = chain(4, 100.0);
        assert_eq!(w.len(), 4);
        assert_eq!(w.edge_count(), 3);
        assert_eq!(w.parents[0], vec![]);
        assert_eq!(w.parents[3], vec![CloudletId(2)]);
        assert!((w.critical_path_mi() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn fork_join_shape() {
        let w = fork_join(3, 2, 1_000.0);
        assert_eq!(w.len(), 2 + 6);
        // Source has no parents; sink has `width` parents.
        assert!(w.parents[0].is_empty());
        assert_eq!(w.parents[7].len(), 3);
        // Critical path: source + 2 levels + sink = 100 + 2000 + 100.
        assert!((w.critical_path_mi() - 2_200.0).abs() < 1e-9);
    }

    #[test]
    fn layered_random_is_layered_and_connected() {
        let w = layered_random(4, 5, 0.3, (100.0, 1_000.0), 7);
        assert_eq!(w.len(), 20);
        // Every non-first-layer task has at least one parent from the
        // previous layer.
        for layer in 1..4 {
            for t in 0..5 {
                let c = layer * 5 + t;
                assert!(!w.parents[c].is_empty(), "task {c} is unparented");
                for p in &w.parents[c] {
                    assert!(p.index() / 5 == layer - 1, "parent not in previous layer");
                }
            }
        }
        // Deterministic per seed.
        let again = layered_random(4, 5, 0.3, (100.0, 1_000.0), 7);
        assert_eq!(w.parents, again.parents);
    }

    #[test]
    fn layered_sparse_is_layered_bounded_and_deterministic() {
        let w = layered_sparse(5, 50, 3, (100.0, 1_000.0), 11);
        assert_eq!(w.len(), 250);
        for layer in 1..5 {
            for t in 0..50 {
                let c = layer * 50 + t;
                let ps = &w.parents[c];
                assert!(!ps.is_empty() && ps.len() <= 3, "task {c} degree");
                for pair in ps.windows(2) {
                    assert!(pair[0] < pair[1], "parents sorted and distinct");
                }
                for p in ps {
                    assert_eq!(p.index() / 50, layer - 1, "parent not in previous layer");
                }
            }
        }
        let again = layered_sparse(5, 50, 3, (100.0, 1_000.0), 11);
        assert_eq!(w.parents, again.parents);
    }

    #[test]
    fn critical_path_is_memoized() {
        let w = chain(100, 10.0);
        assert!((w.critical_path_mi() - 1_000.0).abs() < 1e-9);
        // Second call hits the memo (same value, no recompute observable;
        // the clone carries the cached value too).
        let c = w.clone();
        assert_eq!(
            w.critical_path_mi().to_bits(),
            c.critical_path_mi().to_bits()
        );
    }

    #[test]
    fn ensemble_pipelines_are_independent() {
        let w = pipeline_ensemble(3, 4, 500.0, 1);
        assert_eq!(w.len(), 12);
        assert_eq!(w.edge_count(), 9, "3 pipelines x 3 internal edges");
        // Stage boundaries: tasks 0, 4, 8 are roots.
        assert!(w.parents[0].is_empty());
        assert!(w.parents[4].is_empty());
        assert!(w.parents[8].is_empty());
    }

    #[test]
    fn install_wires_scenario() {
        use crate::homogeneous::HomogeneousScenario;
        let mut scenario = HomogeneousScenario {
            vm_count: 4,
            cloudlet_count: 1, // replaced by install
        }
        .build();
        let w = chain(5, 250.0);
        w.install(&mut scenario);
        assert_eq!(scenario.cloudlet_count(), 5);
        assert!(scenario.dependencies.is_some());
    }

    #[test]
    fn critical_path_handles_diamonds() {
        // c0 -> {c1, c2} -> c3 with c2 longer.
        let w = Workflow::new(
            vec![
                CloudletSpec::new(100.0, 0.0, 0.0, 1),
                CloudletSpec::new(200.0, 0.0, 0.0, 1),
                CloudletSpec::new(900.0, 0.0, 0.0, 1),
                CloudletSpec::new(100.0, 0.0, 0.0, 1),
            ],
            vec![
                vec![],
                vec![CloudletId(0)],
                vec![CloudletId(0)],
                vec![CloudletId(1), CloudletId(2)],
            ],
        );
        assert!((w.critical_path_mi() - 1_100.0).abs() < 1e-9);
    }
}
