//! # biosched-workload — experimental scenarios from the paper
//!
//! Generators for the exact setups of Section VI:
//!
//! * [`homogeneous`] — Tables III/IV, the 10³–10⁵ VM / 10⁶ cloudlet sweep
//!   behind Figs. 4 and 5 (with principled down-scaling).
//! * [`heterogeneous`] — Tables V/VI/VII, the 50–950 VM / 5000 cloudlet
//!   sweep behind Fig. 6.
//! * [`traces`] — stress extensions: heavy-tailed, bimodal and bursty
//!   workloads plus skewed fleets.
//! * [`scenario`] — the [`scenario::Scenario`] bundle gluing a workload to
//!   infrastructure, schedulers and the simulator.
//! * [`stream`] — the streaming broker: warm-state incremental
//!   replanning per arrival wave with queueing/latency measurements.
//! * [`sweep`] — rayon-parallel experiment execution collecting the
//!   paper's four metrics per (scenario, algorithm) point.
//! * [`resilience`] — fault-injection campaigns: seeded chaos timelines,
//!   fault-aware rescheduling and resilience metrics with CIs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod heterogeneous;
pub mod homogeneous;
pub mod online;
pub mod resilience;
pub mod scenario;
pub mod stream;
pub mod sweep;
pub mod traces;
pub mod workflow;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::heterogeneous::{fig6_vm_points, HeterogeneousScenario};
    pub use crate::homogeneous::{fig4a_vm_points, fig4b_vm_points, HomogeneousScenario};
    pub use crate::online::{run_online, OnlineOutcome, WavePlan};
    pub use crate::resilience::{
        inject_faults, resilience_sweep, run_resilient_point, CacheRescheduler,
        ResiliencePointResult, ResilienceSummary,
    };
    pub use crate::scenario::{DatacenterSetup, Scenario};
    pub use crate::stream::{
        run_stream, run_stream_with, ReplanMode, StreamConfig, StreamOutcome, WaveStat,
    };
    pub use crate::sweep::{run_point, sweep, PointResult};
    pub use crate::workflow::Workflow;
}
