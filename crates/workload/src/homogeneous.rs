//! The paper's homogeneous scenario (Section VI-B, Tables III & IV).
//!
//! Identical VMs (1000 MIPS, 5000 MB image, 512 MB RAM, 500 Mbps, 1 PE)
//! receive identical cloudlets (250 MI, 300 MB in/out, 1 PE) in one free
//! datacenter. The paper sweeps 1 000–9 000 and 10 000–90 000 VMs against
//! 1 000 000 cloudlets; [`HomogeneousScenario::scaled`] keeps the same
//! cloudlet:VM ratios at tractable sizes.

use simcloud::characteristics::CostModel;
use simcloud::cloudlet::CloudletSpec;
use simcloud::ids::DatacenterId;
use simcloud::vm::VmSpec;

use crate::scenario::{DatacenterSetup, Scenario};

/// The paper's full-scale cloudlet count.
pub const PAPER_CLOUDLETS: usize = 1_000_000;

/// VM-count x-axis of Figs. 4a/5a.
pub fn fig4a_vm_points() -> Vec<usize> {
    (1..=9).map(|k| k * 1_000).collect()
}

/// VM-count x-axis of Figs. 4b/5b.
pub fn fig4b_vm_points() -> Vec<usize> {
    (1..=9).map(|k| k * 10_000).step_by(2).collect()
}

/// Generator for homogeneous experiment points.
#[derive(Debug, Clone)]
pub struct HomogeneousScenario {
    /// Number of identical VMs.
    pub vm_count: usize,
    /// Number of identical cloudlets.
    pub cloudlet_count: usize,
}

impl HomogeneousScenario {
    /// An exact paper-scale point: `vm_count` VMs, 10⁶ cloudlets.
    pub fn paper(vm_count: usize) -> Self {
        HomogeneousScenario {
            vm_count,
            cloudlet_count: PAPER_CLOUDLETS,
        }
    }

    /// A scaled point preserving the paper's cloudlet:VM ratio.
    ///
    /// The paper pairs 10⁶ cloudlets with 10³–10⁵ VMs; `scale` divides
    /// both sides (e.g. `scale = 100` turns the 1000-VM point into 10 VMs
    /// and 10 000 cloudlets).
    pub fn scaled(vm_count: usize, scale: usize) -> Self {
        let scale = scale.max(1);
        HomogeneousScenario {
            vm_count: (vm_count / scale).max(1),
            cloudlet_count: (PAPER_CLOUDLETS / scale).max(1),
        }
    }

    /// Materializes the scenario.
    pub fn build(&self) -> Scenario {
        Scenario {
            vms: vec![VmSpec::homogeneous_default(); self.vm_count],
            cloudlets: vec![CloudletSpec::homogeneous_default(); self.cloudlet_count],
            // Cost is not an objective in the homogeneous study; a single
            // free datacenter matches the paper's setup.
            datacenters: vec![DatacenterSetup {
                cost: CostModel::free(),
            }],
            vm_placement: vec![DatacenterId(0); self.vm_count],
            vm_scheduler: simcloud::cloudlet_sched::SchedulerKind::TimeShared,
            arrivals: None,
            host_failures: Vec::new(),
            dependencies: None,
            faults: None,
            recovery: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_iii_iv_defaults() {
        let s = HomogeneousScenario {
            vm_count: 3,
            cloudlet_count: 5,
        }
        .build();
        assert_eq!(s.vms.len(), 3);
        assert_eq!(s.cloudlets.len(), 5);
        assert!(s.vms.iter().all(|v| *v == VmSpec::homogeneous_default()));
        assert!(s
            .cloudlets
            .iter()
            .all(|c| *c == CloudletSpec::homogeneous_default()));
        assert_eq!(s.datacenters.len(), 1);
        assert_eq!(s.datacenters[0].cost, CostModel::free());
    }

    #[test]
    fn figure_x_axes() {
        assert_eq!(
            fig4a_vm_points(),
            vec![1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000]
        );
        assert_eq!(
            fig4b_vm_points(),
            vec![10_000, 30_000, 50_000, 70_000, 90_000]
        );
    }

    #[test]
    fn paper_scale_ratio() {
        let s = HomogeneousScenario::paper(1_000);
        assert_eq!(s.cloudlet_count, 1_000_000);
    }

    #[test]
    fn scaled_preserves_ratio() {
        let full = HomogeneousScenario::paper(1_000);
        let scaled = HomogeneousScenario::scaled(1_000, 100);
        let full_ratio = full.cloudlet_count as f64 / full.vm_count as f64;
        let scaled_ratio = scaled.cloudlet_count as f64 / scaled.vm_count as f64;
        assert!((full_ratio - scaled_ratio).abs() < 1e-9);
        assert_eq!(scaled.vm_count, 10);
        assert_eq!(scaled.cloudlet_count, 10_000);
    }

    #[test]
    fn scale_never_degenerates_to_zero() {
        let s = HomogeneousScenario::scaled(100, 1_000_000);
        assert!(s.vm_count >= 1);
        assert!(s.cloudlet_count >= 1);
    }

    #[test]
    fn problem_is_homogeneous() {
        let p = HomogeneousScenario {
            vm_count: 4,
            cloudlet_count: 8,
        }
        .build()
        .problem();
        assert!(p.is_homogeneous());
    }
}
