//! Online (multi-round) scheduling.
//!
//! The paper's introduction demands schedulers that "adapt to changes
//! along with defined demand": in a real cloud, cloudlets arrive over
//! time and the scheduler is re-invoked per batch. This module slices a
//! scenario's workload into arrival *waves*, runs the scheduler once per
//! wave (letting it carry state — the Base Test's cursor, ACO's RNG —
//! across rounds, exactly as a resident scheduler would), and simulates
//! the merged plan with staggered arrivals.

use biosched_core::assignment::Assignment;
use biosched_core::problem::SchedulingProblem;
use biosched_core::scheduler::Scheduler;
use rand::Rng;
use simcloud::error::SimError;
use simcloud::ids::VmId;
use simcloud::rng::stream;
use simcloud::stats::SimulationOutcome;

use crate::scenario::Scenario;

/// How a workload is sliced into arrival waves.
#[derive(Debug, Clone)]
pub struct WavePlan {
    /// Arrival time of each wave, in ms from t=0 (ascending).
    pub wave_times: Vec<f64>,
    /// Cloudlet indices per wave (a partition of `0..cloudlet_count`).
    pub waves: Vec<Vec<usize>>,
}

impl WavePlan {
    /// Splits `cloudlet_count` cloudlets into `wave_count` equal waves
    /// arriving every `interval_ms`.
    pub fn uniform(cloudlet_count: usize, wave_count: usize, interval_ms: f64) -> Self {
        assert!(wave_count > 0, "need at least one wave");
        assert!(interval_ms >= 0.0, "interval must be non-negative");
        let mut waves: Vec<Vec<usize>> = vec![Vec::new(); wave_count];
        for c in 0..cloudlet_count {
            waves[c * wave_count / cloudlet_count.max(1)].push(c);
        }
        let wave_times = (0..wave_count).map(|w| w as f64 * interval_ms).collect();
        WavePlan { wave_times, waves }
    }

    /// Poisson-process arrivals: waves sized by draws with mean
    /// `mean_wave`, spaced by exponential gaps with mean `mean_gap_ms`.
    pub fn poisson(cloudlet_count: usize, mean_wave: usize, mean_gap_ms: f64, seed: u64) -> Self {
        assert!(mean_wave > 0);
        assert!(mean_gap_ms > 0.0);
        let mut rng = stream(seed, "online/poisson");
        let mut waves = Vec::new();
        let mut wave_times = Vec::new();
        let mut next = 0usize;
        let mut t = 0.0f64;
        while next < cloudlet_count {
            // Wave size ~ 1 + Poisson-ish draw (geometric approximation).
            let mut size = 1usize;
            while size < 4 * mean_wave && rng.gen_range(0.0..1.0) < 1.0 - 1.0 / mean_wave as f64 {
                size += 1;
            }
            let end = (next + size).min(cloudlet_count);
            waves.push((next..end).collect());
            wave_times.push(t);
            next = end;
            // Exponential gap via inverse transform.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -mean_gap_ms * u.ln();
        }
        WavePlan { wave_times, waves }
    }

    /// Validates the plan against a workload size.
    pub fn validate(&self, cloudlet_count: usize) -> Result<(), String> {
        if self.wave_times.len() != self.waves.len() {
            return Err("wave_times and waves must align".into());
        }
        let mut seen = vec![false; cloudlet_count];
        for wave in &self.waves {
            for &c in wave {
                if c >= cloudlet_count {
                    return Err(format!("wave references cloudlet {c} out of range"));
                }
                if seen[c] {
                    return Err(format!("cloudlet {c} appears in two waves"));
                }
                seen[c] = true;
            }
        }
        if let Some(missing) = seen.iter().position(|s| !s) {
            return Err(format!("cloudlet {missing} is in no wave"));
        }
        if self.wave_times.windows(2).any(|w| w[1] < w[0]) {
            return Err("wave times must be non-decreasing".into());
        }
        Ok(())
    }
}

/// Result of an online run: the merged plan plus the simulation outcome.
#[derive(Debug)]
pub struct OnlineOutcome {
    /// The merged cloudlet→VM plan across all waves.
    pub assignment: Assignment,
    /// Per-cloudlet arrival times used for the simulation.
    pub arrivals: Vec<f64>,
    /// The simulated outcome.
    pub outcome: SimulationOutcome,
    /// Number of scheduler invocations (= waves).
    pub rounds: usize,
}

/// Runs `scheduler` once per wave and simulates the merged plan.
///
/// Each round sees only that wave's cloudlets (with the full, unchanged
/// fleet), mirroring a broker that binds arrivals as they come. The
/// scheduler's internal state persists across rounds.
pub fn run_online(
    scenario: &Scenario,
    scheduler: &mut dyn Scheduler,
    plan: &WavePlan,
) -> Result<OnlineOutcome, SimError> {
    plan.validate(scenario.cloudlet_count())
        .map_err(|what| SimError::InvalidSpec { what })?;
    let full = scenario.problem();
    let mut merged: Vec<Option<VmId>> = vec![None; scenario.cloudlet_count()];
    let mut arrivals = vec![0.0f64; scenario.cloudlet_count()];

    for (wave, &wave_time) in plan.waves.iter().zip(&plan.wave_times) {
        if wave.is_empty() {
            continue;
        }
        let wave_problem = SchedulingProblem::new(
            full.vms.clone(),
            wave.iter().map(|&c| full.cloudlets[c].clone()).collect(),
            full.datacenters.clone(),
            full.vm_placement.clone(),
        )
        .expect("wave problems inherit scenario consistency");
        let wave_assignment = scheduler.schedule(&wave_problem);
        assert_eq!(
            wave_assignment.len(),
            wave.len(),
            "{} returned a partial wave plan",
            scheduler.name()
        );
        for (slot, &cloudlet) in wave.iter().enumerate() {
            merged[cloudlet] = Some(wave_assignment.vm_for(slot));
            arrivals[cloudlet] = wave_time;
        }
    }

    let assignment = Assignment::new(
        merged
            .into_iter()
            .map(|m| m.expect("plan.validate guarantees full coverage"))
            .collect(),
    );
    let mut staged = scenario.clone();
    staged.arrivals = Some(arrivals.clone());
    let outcome = staged.simulate(assignment.clone())?;
    Ok(OnlineOutcome {
        assignment,
        arrivals,
        outcome,
        rounds: plan.waves.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heterogeneous::HeterogeneousScenario;
    use biosched_core::prelude::*;

    fn scenario() -> Scenario {
        HeterogeneousScenario {
            vm_count: 10,
            cloudlet_count: 60,
            datacenter_count: 2,
            seed: 4,
        }
        .build()
    }

    #[test]
    fn uniform_plan_partitions_everything() {
        let plan = WavePlan::uniform(10, 3, 100.0);
        assert!(plan.validate(10).is_ok());
        assert_eq!(plan.waves.iter().map(Vec::len).sum::<usize>(), 10);
        assert_eq!(plan.wave_times, vec![0.0, 100.0, 200.0]);
    }

    #[test]
    fn poisson_plan_covers_everything() {
        let plan = WavePlan::poisson(100, 8, 500.0, 7);
        assert!(plan.validate(100).is_ok());
        assert!(plan.waves.len() > 1, "100 cloudlets should need >1 wave");
        // Deterministic per seed.
        let again = WavePlan::poisson(100, 8, 500.0, 7);
        assert_eq!(plan.wave_times, again.wave_times);
    }

    #[test]
    fn plan_validation_catches_errors() {
        let mut plan = WavePlan::uniform(4, 2, 10.0);
        plan.waves[1].push(0); // duplicate
        assert!(plan.validate(4).is_err());
        let mut plan = WavePlan::uniform(4, 2, 10.0);
        plan.waves[1].pop(); // missing
        assert!(plan.validate(4).is_err());
        let mut plan = WavePlan::uniform(4, 2, 10.0);
        plan.wave_times = vec![10.0, 0.0]; // decreasing
        assert!(plan.validate(4).is_err());
    }

    #[test]
    fn online_run_completes_all_waves() {
        let s = scenario();
        let plan = WavePlan::uniform(s.cloudlet_count(), 4, 2_000.0);
        let mut scheduler = RoundRobin::new();
        let result = run_online(&s, &mut scheduler, &plan).unwrap();
        assert_eq!(result.rounds, 4);
        assert_eq!(result.outcome.finished_count(), 60);
        // Later waves cannot start before they arrive.
        for (c, arrival) in result.arrivals.iter().enumerate() {
            let start = result.outcome.records[c].start.unwrap().as_millis();
            assert!(
                start + 1e-9 >= *arrival,
                "cloudlet {c} started at {start} before arrival {arrival}"
            );
        }
    }

    #[test]
    fn scheduler_state_carries_across_waves() {
        // RoundRobin's cursor persists: wave 2 continues where wave 1
        // stopped instead of restarting at vm0.
        let s = scenario();
        let plan = WavePlan::uniform(s.cloudlet_count(), 2, 0.0);
        let mut rr = RoundRobin::new();
        let online = run_online(&s, &mut rr, &plan).unwrap();
        let mut rr_batch = RoundRobin::new();
        let batch = rr_batch.schedule(&s.problem());
        assert_eq!(
            online.assignment, batch,
            "two back-to-back RR waves must equal one RR batch"
        );
    }

    #[test]
    fn online_matches_batch_when_single_wave_at_zero() {
        let s = scenario();
        let plan = WavePlan::uniform(s.cloudlet_count(), 1, 0.0);
        let mut scheduler = HoneyBee::new(HboParams::paper(), 5);
        let online = run_online(&s, &mut scheduler, &plan).unwrap();
        let mut batch_scheduler = HoneyBee::new(HboParams::paper(), 5);
        let batch = s.simulate(batch_scheduler.schedule(&s.problem())).unwrap();
        assert_eq!(
            online.outcome.simulation_time_ms(),
            batch.simulation_time_ms()
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Every uniform plan is a valid partition of the workload —
            /// including degenerate shapes like more waves than
            /// cloudlets or an empty workload.
            #[test]
            fn uniform_plans_always_validate(
                cloudlets in 0usize..200,
                waves in 1usize..24,
                interval in 0.0f64..10_000.0,
            ) {
                let plan = WavePlan::uniform(cloudlets, waves, interval);
                prop_assert!(plan.validate(cloudlets).is_ok());
                prop_assert_eq!(plan.waves.len(), waves);
                prop_assert_eq!(
                    plan.waves.iter().map(Vec::len).sum::<usize>(),
                    cloudlets
                );
                // Ascending arrival times, wave-aligned.
                prop_assert_eq!(plan.wave_times.len(), waves);
                for w in plan.wave_times.windows(2) {
                    prop_assert!(w[1] >= w[0]);
                }
            }

            /// Poisson plans partition the workload with strictly
            /// ordered waves for any (size, mean, gap, seed).
            #[test]
            fn poisson_plans_always_validate(
                cloudlets in 1usize..300,
                mean_wave in 1usize..16,
                mean_gap in 1.0f64..5_000.0,
                seed in 0u64..1_000,
            ) {
                let plan = WavePlan::poisson(cloudlets, mean_wave, mean_gap, seed);
                prop_assert!(plan.validate(cloudlets).is_ok());
                prop_assert!(!plan.waves.is_empty());
                // Waves cover 0..cloudlets in order, without gaps.
                let flat: Vec<usize> =
                    plan.waves.iter().flatten().copied().collect();
                prop_assert_eq!(flat, (0..cloudlets).collect::<Vec<_>>());
                for w in plan.wave_times.windows(2) {
                    prop_assert!(w[1] >= w[0]);
                }
                // Same seed, same plan.
                let again = WavePlan::poisson(cloudlets, mean_wave, mean_gap, seed);
                prop_assert_eq!(plan.wave_times, again.wave_times);
                prop_assert_eq!(plan.waves, again.waves);
            }
        }
    }

    #[test]
    fn online_composes_with_fault_recovery() {
        // A faulted scenario still runs the multi-round pipeline: the
        // broker retries orphans (cyclically, absent a rescheduler) while
        // waves keep arriving.
        use simcloud::broker::RecoveryPolicy;
        use simcloud::faults::FaultSpec;

        let mut s = scenario();
        crate::resilience::inject_faults(
            &mut s,
            &FaultSpec {
                host_fail_fraction: 0.6,
                repair_after_ms: Some((2_000.0, 4_000.0)),
                ..FaultSpec::default()
            },
            13,
            RecoveryPolicy {
                max_attempts: 6,
                base_backoff_ms: 500.0,
                backoff_factor: 2.0,
                max_backoff_ms: 4_000.0,
            },
        );
        let plan = WavePlan::uniform(s.cloudlet_count(), 3, 1_000.0);
        let mut rr = RoundRobin::new();
        let result = run_online(&s, &mut rr, &plan).unwrap();
        assert_eq!(result.rounds, 3);
        assert_eq!(
            result.outcome.finished_count() + result.outcome.resilience.abandoned as usize,
            60,
            "every cloudlet either finishes or exhausts its retry budget"
        );
    }

    #[test]
    fn staggered_waves_stretch_the_makespan() {
        let s = scenario();
        let mut rr1 = RoundRobin::new();
        let tight = run_online(&s, &mut rr1, &WavePlan::uniform(60, 2, 0.0)).unwrap();
        let mut rr2 = RoundRobin::new();
        let sparse = run_online(&s, &mut rr2, &WavePlan::uniform(60, 2, 500_000.0)).unwrap();
        let span = |o: &OnlineOutcome| {
            o.outcome
                .records
                .iter()
                .filter_map(|r| Some(r.finish?.as_millis()))
                .fold(0.0, f64::max)
        };
        assert!(span(&sparse) > span(&tight) + 400_000.0);
    }
}
