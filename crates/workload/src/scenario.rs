//! A complete experimental scenario: workload + infrastructure.
//!
//! [`Scenario`] bundles everything one experiment point needs — VM fleet,
//! cloudlet batch, datacenter cost models and VM placement — and knows how
//! to derive both the scheduler-facing [`SchedulingProblem`] and the
//! simulator-facing [`simcloud::simulation::SimulationBuilder`] from one
//! consistent description.

use biosched_core::assignment::Assignment;
use biosched_core::problem::{DatacenterView, SchedulingProblem};
use simcloud::characteristics::{CostModel, DatacenterCharacteristics};
use simcloud::cloudlet::CloudletSpec;
use simcloud::datacenter::DatacenterBlueprint;
use simcloud::error::SimError;
use simcloud::host::HostSpec;
use simcloud::ids::DatacenterId;
use simcloud::simulation::SimulationBuilder;
use simcloud::stats::{RecordMode, SimulationOutcome};
use simcloud::vm::VmSpec;

/// How many VMs each simulated host is sized to hold.
pub const VMS_PER_HOST: u32 = 4;

/// One datacenter's configuration inside a scenario.
#[derive(Debug, Clone)]
pub struct DatacenterSetup {
    /// Resource prices (Table VII).
    pub cost: CostModel,
}

/// A fully specified experiment point.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// VM fleet.
    pub vms: Vec<VmSpec>,
    /// Cloudlet batch.
    pub cloudlets: Vec<CloudletSpec>,
    /// Datacenters.
    pub datacenters: Vec<DatacenterSetup>,
    /// Which datacenter each VM lives in.
    pub vm_placement: Vec<DatacenterId>,
    /// Per-VM cloudlet execution policy. CloudSim's stock examples (and
    /// hence the paper) use the time-shared scheduler, where contention
    /// inflates observed execution times — load-blind schedulers pay for
    /// piling work onto few VMs in Eq. 13's imbalance.
    pub vm_scheduler: simcloud::cloudlet_sched::SchedulerKind,
    /// Optional per-cloudlet arrival times (ms from t=0). `None` is the
    /// paper's batch model: everything arrives at once.
    pub arrivals: Option<Vec<f64>>,
    /// Failure injection: `(datacenter index, host, time)` triples.
    pub host_failures: Vec<(usize, simcloud::ids::HostId, simcloud::time::SimTime)>,
    /// Optional workflow precedence: `parents[c]` must finish before
    /// cloudlet `c` is submitted (see the `workflow` generators).
    pub dependencies: Option<Vec<Vec<simcloud::ids::CloudletId>>>,
    /// Optional seeded chaos timeline (host outages, VM stragglers). An
    /// all-healthy plan is trace-identical to no plan at all.
    pub faults: Option<simcloud::faults::FaultPlan>,
    /// Optional broker retry/backoff policy; see
    /// [`simcloud::broker::RecoveryPolicy`]. Runs on either engine (the
    /// sharded engine executes retries between replay epochs).
    pub recovery: Option<simcloud::broker::RecoveryPolicy>,
}

impl Scenario {
    /// The scheduler-facing view of this scenario.
    pub fn problem(&self) -> SchedulingProblem {
        SchedulingProblem::new(
            self.vms.clone(),
            self.cloudlets.clone(),
            self.datacenters
                .iter()
                .enumerate()
                .map(|(i, d)| DatacenterView {
                    id: DatacenterId::from_index(i),
                    cost: d.cost,
                })
                .collect(),
            self.vm_placement.clone(),
        )
        .expect("scenario generators produce consistent problems")
    }

    /// Host fleet for datacenter `dc`: uniform hosts roomy enough for the
    /// largest VM placed there, packed [`VMS_PER_HOST`] per host.
    fn hosts_for(&self, dc: usize) -> Vec<HostSpec> {
        let placed: Vec<&VmSpec> = self
            .vm_placement
            .iter()
            .enumerate()
            .filter(|(_, d)| d.index() == dc)
            .map(|(v, _)| &self.vms[v])
            .collect();
        if placed.is_empty() {
            // A host is mandatory even for an idle datacenter.
            return vec![HostSpec::roomy_for(&VmSpec::homogeneous_default(), 1)];
        }
        // The envelope VM: per-dimension maximum over everything placed.
        let envelope = VmSpec {
            mips: placed.iter().map(|v| v.mips).fold(0.0, f64::max),
            size_mb: placed.iter().map(|v| v.size_mb).fold(0.0, f64::max),
            ram_mb: placed.iter().map(|v| v.ram_mb).fold(0.0, f64::max),
            bw_mbps: placed.iter().map(|v| v.bw_mbps).fold(0.0, f64::max),
            pes: placed.iter().map(|v| v.pes).max().expect("non-empty"),
        };
        let host = HostSpec::roomy_for(&envelope, VMS_PER_HOST);
        let count = placed.len().div_ceil(VMS_PER_HOST as usize);
        vec![host; count]
    }

    /// Runs `assignment` through the discrete-event simulator on the
    /// default (sequential) engine.
    pub fn simulate(&self, assignment: Assignment) -> Result<SimulationOutcome, SimError> {
        self.simulate_on(assignment, simcloud::simulation::EngineKind::Sequential)
    }

    /// Runs `assignment` on a chosen simulation engine. The sharded
    /// engine replays every scenario shape — fault plans, recovery and
    /// resubmission included — bit-identically to the sequential kernel.
    /// The one exception is a workflow DAG, which runs on the sequential
    /// kernel with the substitution recorded in `outcome.fallback`.
    pub fn simulate_on(
        &self,
        assignment: Assignment,
        engine: simcloud::simulation::EngineKind,
    ) -> Result<SimulationOutcome, SimError> {
        self.simulate_mode(assignment, engine, RecordMode::Full)
    }

    /// [`Scenario::simulate_on`] with an explicit [`RecordMode`]. The
    /// sweep pipeline runs in [`RecordMode::Aggregate`] (metrics folded at
    /// settlement, no per-cloudlet vector); pass [`RecordMode::Full`] when
    /// the caller needs the records themselves (CSV export, SLA/energy
    /// drill-downs over individual cloudlets).
    pub fn simulate_mode(
        &self,
        assignment: Assignment,
        engine: simcloud::simulation::EngineKind,
        mode: RecordMode,
    ) -> Result<SimulationOutcome, SimError> {
        self.builder(assignment, engine, mode).run()
    }

    /// [`Scenario::simulate_mode`] with a fault-aware [`Rescheduler`]
    /// handling the broker's retry batches (see [`crate::resilience`]).
    pub fn simulate_resilient(
        &self,
        assignment: Assignment,
        engine: simcloud::simulation::EngineKind,
        mode: RecordMode,
        rescheduler: Box<dyn simcloud::broker::Rescheduler>,
    ) -> Result<SimulationOutcome, SimError> {
        self.builder(assignment, engine, mode)
            .rescheduler(rescheduler)
            .run()
    }

    /// Lowers the scenario into a fully configured simulation builder.
    fn builder(
        &self,
        assignment: Assignment,
        engine: simcloud::simulation::EngineKind,
        mode: RecordMode,
    ) -> SimulationBuilder {
        let mut builder = SimulationBuilder::new().engine(engine).record_mode(mode);
        for (i, dc) in self.datacenters.iter().enumerate() {
            builder = builder.datacenter(DatacenterBlueprint {
                hosts: self.hosts_for(i),
                characteristics: DatacenterCharacteristics::with_cost(dc.cost),
                allocation: Box::new(simcloud::vm_alloc::FirstFit::default()),
                scheduler: self.vm_scheduler,
                failures: self
                    .host_failures
                    .iter()
                    .filter(|(dc_idx, _, _)| *dc_idx == i)
                    .map(|(_, host, time)| (*host, *time))
                    .collect(),
            });
        }
        if let Some(arrivals) = &self.arrivals {
            builder = builder.arrivals(
                arrivals
                    .iter()
                    .map(|ms| simcloud::time::SimTime::new(*ms))
                    .collect(),
            );
        }
        if let Some(parents) = &self.dependencies {
            builder = builder.dependencies(parents.clone());
        }
        if let Some(plan) = &self.faults {
            builder = builder.faults(plan.clone());
        }
        if let Some(policy) = self.recovery {
            builder = builder.recovery(policy);
        }
        builder
            .vms(self.vms.clone())
            .cloudlets(self.cloudlets.clone())
            .vm_placement(self.vm_placement.clone())
            .assignment(assignment.into_vec())
    }

    /// Host count per datacenter, as the simulator will build them —
    /// the fleet shape [`simcloud::faults::FaultSpec::generate`] samples
    /// outages over.
    pub fn host_counts(&self) -> Vec<usize> {
        (0..self.datacenters.len())
            .map(|i| self.hosts_for(i).len())
            .collect()
    }

    /// Number of VMs.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Number of cloudlets.
    pub fn cloudlet_count(&self) -> usize {
        self.cloudlets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biosched_core::prelude::*;

    fn tiny_scenario() -> Scenario {
        Scenario {
            vms: vec![VmSpec::homogeneous_default(); 6],
            cloudlets: vec![CloudletSpec::homogeneous_default(); 12],
            datacenters: vec![
                DatacenterSetup {
                    cost: CostModel::table_vii_midpoint(),
                },
                DatacenterSetup {
                    cost: CostModel::free(),
                },
            ],
            vm_placement: (0..6)
                .map(|i| DatacenterId(u32::from(i % 2 == 1)))
                .collect(),
            vm_scheduler: simcloud::cloudlet_sched::SchedulerKind::TimeShared,
            arrivals: None,
            host_failures: Vec::new(),
            dependencies: None,
            faults: None,
            recovery: None,
        }
    }

    #[test]
    fn problem_matches_scenario_shape() {
        let s = tiny_scenario();
        let p = s.problem();
        assert_eq!(p.vm_count(), 6);
        assert_eq!(p.cloudlet_count(), 12);
        assert_eq!(p.datacenters.len(), 2);
        assert_eq!(p.vms_in_datacenter(DatacenterId(0)).len(), 3);
    }

    #[test]
    fn simulate_round_trip_finishes_everything() {
        let s = tiny_scenario();
        let assignment = AlgorithmKind::BaseTest.build(0).schedule(&s.problem());
        let outcome = s.simulate(assignment).expect("simulation must run");
        assert_eq!(outcome.finished_count(), 12);
        assert_eq!(outcome.vms_created, 6);
        assert_eq!(outcome.vms_rejected, 0);
    }

    #[test]
    fn hosts_cover_all_placed_vms() {
        let s = tiny_scenario();
        // 3 VMs per DC, 4 per host -> 1 host each.
        assert_eq!(s.hosts_for(0).len(), 1);
        assert_eq!(s.hosts_for(1).len(), 1);
    }

    #[test]
    fn empty_datacenter_still_gets_a_host() {
        let mut s = tiny_scenario();
        s.vm_placement = vec![DatacenterId(0); 6];
        assert_eq!(s.hosts_for(1).len(), 1);
        // And the scenario still simulates fine.
        let a = AlgorithmKind::BaseTest.build(0).schedule(&s.problem());
        assert!(s.simulate(a).is_ok());
    }
}
