//! Pipeline-overhaul equivalence suite.
//!
//! The overhaul's contract is that none of the paper's numbers move:
//! streaming aggregation ([`RecordMode::Aggregate`]) must reproduce the
//! full-record metrics bit-for-bit on both simulation engines, and the
//! flat shared-artifact sweep must produce the same rows as running each
//! point by itself.

use biosched_core::scheduler::AlgorithmKind;
use biosched_workload::heterogeneous::HeterogeneousScenario;
use biosched_workload::homogeneous::HomogeneousScenario;
use biosched_workload::scenario::Scenario;
use biosched_workload::sweep::{run_point_on, run_point_with, sweep_on, PointArtifacts};
use simcloud::prelude::{EngineKind, RecordMode};

const SEEDS: [u64; 3] = [3, 41, 977];

fn scenarios(seed: u64) -> Vec<(&'static str, Scenario)> {
    vec![
        (
            "homogeneous",
            HomogeneousScenario {
                vm_count: 8,
                cloudlet_count: 80,
            }
            .build(),
        ),
        (
            "heterogeneous",
            HeterogeneousScenario {
                vm_count: 10,
                cloudlet_count: 60,
                datacenter_count: 3,
                seed,
            }
            .build(),
        ),
    ]
}

fn bits(v: Option<f64>) -> Option<u64> {
    v.map(f64::to_bits)
}

/// Aggregate-mode outcomes must carry the very same bits as full-record
/// outcomes for every metric the figures consume, on both engines.
#[test]
fn aggregate_mode_matches_full_records_bitwise() {
    for seed in SEEDS {
        for (label, scenario) in scenarios(seed) {
            let assignment = AlgorithmKind::HoneyBee
                .build(seed)
                .schedule(&scenario.problem());
            for engine in [EngineKind::Sequential, EngineKind::Sharded] {
                let full = scenario
                    .simulate_mode(assignment.clone(), engine, RecordMode::Full)
                    .expect("full-mode simulation");
                let agg = scenario
                    .simulate_mode(assignment.clone(), engine, RecordMode::Aggregate)
                    .expect("aggregate-mode simulation");
                let ctx = format!("{label}, seed {seed}, {engine:?}");
                assert_eq!(full.finished_count(), agg.finished_count(), "{ctx}");
                assert_eq!(
                    bits(full.simulation_time_ms()),
                    bits(agg.simulation_time_ms()),
                    "{ctx}: makespan"
                );
                assert_eq!(
                    bits(full.time_imbalance()),
                    bits(agg.time_imbalance()),
                    "{ctx}: imbalance"
                );
                assert_eq!(
                    full.total_cost().to_bits(),
                    agg.total_cost().to_bits(),
                    "{ctx}: cost"
                );
                assert_eq!(
                    bits(full.mean_execution_ms()),
                    bits(agg.mean_execution_ms()),
                    "{ctx}: mean execution"
                );
                assert_eq!(
                    full.per_vm_usage(scenario.vm_count()),
                    agg.per_vm_usage(scenario.vm_count()),
                    "{ctx}: per-VM usage"
                );
                // Full mode keeps the records; aggregate mode must not.
                assert_eq!(full.records.len(), scenario.cloudlet_count(), "{ctx}");
                assert!(agg.records.is_empty(), "{ctx}");
            }
        }
    }
}

/// A point run through the shared-artifact entry point must match the
/// standalone per-point runner on every reported metric.
#[test]
fn shared_artifacts_match_standalone_point_runs() {
    for seed in SEEDS {
        for (label, scenario) in scenarios(seed) {
            let artifacts = PointArtifacts::build(scenario.clone());
            for alg in AlgorithmKind::PAPER_SET {
                let standalone = run_point_on(&scenario, alg, seed, EngineKind::Sequential);
                let shared = run_point_with(
                    &artifacts,
                    alg,
                    seed,
                    EngineKind::Sequential,
                    RecordMode::Aggregate,
                );
                let ctx = format!("{label}, seed {seed}, {alg:?}");
                assert_eq!(standalone.finished, shared.finished, "{ctx}");
                assert_eq!(
                    standalone.simulation_time_ms.to_bits(),
                    shared.simulation_time_ms.to_bits(),
                    "{ctx}: makespan"
                );
                assert_eq!(
                    standalone.imbalance.to_bits(),
                    shared.imbalance.to_bits(),
                    "{ctx}: imbalance"
                );
                assert_eq!(
                    standalone.total_cost.to_bits(),
                    shared.total_cost.to_bits(),
                    "{ctx}: cost"
                );
            }
        }
    }
}

/// The fault layer's zero-cost contract: an armed-but-empty
/// [`FaultPlan`] (and its all-healthy builder) must be trace-identical
/// to no plan at all, on both engines, for every paper metric.
#[test]
fn all_healthy_fault_plan_changes_nothing() {
    use simcloud::faults::FaultPlan;
    for seed in SEEDS {
        for (label, scenario) in scenarios(seed) {
            let assignment = AlgorithmKind::Rbs.build(seed).schedule(&scenario.problem());
            let mut healthy = scenario.clone();
            healthy.faults = Some(FaultPlan::healthy());
            for engine in [EngineKind::Sequential, EngineKind::Sharded] {
                let plain = scenario
                    .simulate_mode(assignment.clone(), engine, RecordMode::Full)
                    .expect("plain simulation");
                let armed = healthy
                    .simulate_mode(assignment.clone(), engine, RecordMode::Full)
                    .expect("all-healthy simulation");
                let ctx = format!("{label}, seed {seed}, {engine:?}");
                assert_eq!(plain.engine, armed.engine, "{ctx}: engine choice");
                assert_eq!(
                    plain.events_processed, armed.events_processed,
                    "{ctx}: event count"
                );
                assert_eq!(plain.resilience, armed.resilience, "{ctx}: counters");
                assert_eq!(
                    bits(plain.simulation_time_ms()),
                    bits(armed.simulation_time_ms()),
                    "{ctx}: makespan"
                );
                assert_eq!(
                    plain.total_cost().to_bits(),
                    armed.total_cost().to_bits(),
                    "{ctx}: cost"
                );
                for (a, b) in plain.records.iter().zip(&armed.records) {
                    assert_eq!(a.finish, b.finish, "{ctx}: finish times");
                    assert_eq!(
                        a.execution_ms.map(f64::to_bits),
                        b.execution_ms.map(f64::to_bits),
                        "{ctx}: execution"
                    );
                }
            }
        }
    }
}

/// The flat executor must regroup its results exactly like the nested
/// point-by-point loop it replaced.
#[test]
fn flat_sweep_matches_pointwise_runs() {
    let points = [4usize, 8, 12];
    let algorithms = [
        AlgorithmKind::AntColony,
        AlgorithmKind::BaseTest,
        AlgorithmKind::HoneyBee,
        AlgorithmKind::Rbs,
    ];
    let seed = 7;
    let make = |vms: usize| {
        HeterogeneousScenario {
            vm_count: vms,
            cloudlet_count: 40,
            datacenter_count: 2,
            seed,
        }
        .build()
    };
    let flat = sweep_on(&points, &algorithms, seed, EngineKind::Sequential, make);
    assert_eq!(flat.len(), points.len());
    for (pi, &vms) in points.iter().enumerate() {
        assert_eq!(flat[pi].len(), algorithms.len());
        for (ai, &alg) in algorithms.iter().enumerate() {
            let lone = run_point_on(&make(vms), alg, seed, EngineKind::Sequential);
            let got = &flat[pi][ai];
            let ctx = format!("{vms} VMs, {alg:?}");
            assert_eq!(got.algorithm, alg, "{ctx}");
            assert_eq!(got.vm_count, vms, "{ctx}");
            assert_eq!(got.finished, lone.finished, "{ctx}");
            assert_eq!(
                got.simulation_time_ms.to_bits(),
                lone.simulation_time_ms.to_bits(),
                "{ctx}: makespan"
            );
            assert_eq!(
                got.imbalance.to_bits(),
                lone.imbalance.to_bits(),
                "{ctx}: imbalance"
            );
            assert_eq!(
                got.total_cost.to_bits(),
                lone.total_cost.to_bits(),
                "{ctx}: cost"
            );
        }
    }
}
