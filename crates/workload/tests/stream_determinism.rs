//! Streaming-broker determinism: warm and cold replanning each promise
//! byte-identical merged plans per seed across rayon thread counts
//! {1, 2, 4, 8} and bit-identical metrics across both engines. Warm and
//! cold plans are *not* claimed equal to each other — each mode is its
//! own deterministic contract.
//!
//! Thread counts are switched in-process through rayon's global builder
//! (the vendored shim allows repeated `build_global`; last one wins).

use biosched_core::scheduler::AlgorithmKind;
use biosched_workload::heterogeneous::HeterogeneousScenario;
use biosched_workload::online::WavePlan;
use biosched_workload::scenario::Scenario;
use biosched_workload::stream::{run_stream, StreamConfig};
use simcloud::simulation::EngineKind;
use simcloud::stats::RecordMode;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn set_threads(n: usize) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("vendored rayon accepts repeated build_global");
}

fn scenario() -> Scenario {
    HeterogeneousScenario {
        vm_count: 12,
        cloudlet_count: 96,
        datacenter_count: 2,
        seed: 21,
    }
    .build()
}

#[test]
fn wave_plans_are_byte_identical_across_thread_counts() {
    let s = scenario();
    let plan = WavePlan::poisson(96, 16, 700.0, 5);
    // ACO fans out across colonies; GA/PSO batch-evaluate in parallel;
    // the balancers are sequential but ride along as regression guards.
    let kinds = [
        AlgorithmKind::AntColony,
        AlgorithmKind::Ga,
        AlgorithmKind::Pso,
        AlgorithmKind::LeastConnection,
        AlgorithmKind::WeightedRoundRobin,
    ];
    for kind in kinds {
        for cfg in [StreamConfig::warm(kind, 42), StreamConfig::cold(kind, 42)] {
            set_threads(1);
            let baseline = run_stream(&s, &plan, &cfg).unwrap();
            for &threads in &THREAD_COUNTS[1..] {
                set_threads(threads);
                let got = run_stream(&s, &plan, &cfg).unwrap();
                assert_eq!(
                    baseline.assignment,
                    got.assignment,
                    "{kind} {} plan diverged at {threads} threads",
                    cfg.mode.label()
                );
                let backlog = |r: &biosched_workload::stream::StreamOutcome| -> Vec<usize> {
                    r.waves.iter().map(|w| w.backlog).collect()
                };
                assert_eq!(
                    backlog(&baseline),
                    backlog(&got),
                    "{kind} {} backlog trace diverged at {threads} threads",
                    cfg.mode.label()
                );
            }
        }
    }
    set_threads(0);
}

#[test]
fn engines_agree_bitwise_on_streamed_metrics() {
    let s = scenario();
    let plan = WavePlan::poisson(96, 12, 500.0, 8);
    for kind in [AlgorithmKind::AntColony, AlgorithmKind::WeightedRoundRobin] {
        for base in [StreamConfig::warm(kind, 7), StreamConfig::cold(kind, 7)] {
            // Engine × record-mode grid: all four must agree bit-for-bit.
            let runs: Vec<_> = [
                base,
                base.on_engine(EngineKind::Sharded),
                base.with_record(RecordMode::Aggregate),
                base.on_engine(EngineKind::Sharded)
                    .with_record(RecordMode::Aggregate),
            ]
            .iter()
            .map(|cfg| run_stream(&s, &plan, cfg).unwrap())
            .collect();
            let reference = &runs[0];
            for other in &runs[1..] {
                assert_eq!(reference.assignment, other.assignment);
                for (name, a, b) in [
                    (
                        "simulation_time",
                        reference.outcome.simulation_time_ms(),
                        other.outcome.simulation_time_ms(),
                    ),
                    (
                        "wait_p50",
                        reference.outcome.wait_p50_ms(),
                        other.outcome.wait_p50_ms(),
                    ),
                    (
                        "wait_p99",
                        reference.outcome.wait_p99_ms(),
                        other.outcome.wait_p99_ms(),
                    ),
                    (
                        "mean_wait",
                        reference.outcome.mean_wait_ms(),
                        other.outcome.mean_wait_ms(),
                    ),
                    (
                        "throughput",
                        reference.outcome.throughput_per_s(),
                        other.outcome.throughput_per_s(),
                    ),
                ] {
                    assert_eq!(
                        a.map(f64::to_bits),
                        b.map(f64::to_bits),
                        "{kind} {}: {name} diverged across engine/record grid",
                        base.mode.label()
                    );
                }
            }
        }
    }
}
