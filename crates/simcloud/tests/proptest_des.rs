//! Property-based tests of the discrete-event substrate itself, driven
//! through the raw `SimulationBuilder` (no workload generators, no
//! schedulers) so the invariants tested are the kernel's own.

use proptest::prelude::*;
use simcloud::prelude::*;

/// A raw random scenario: fleet shape, workload shape, assignment.
#[derive(Debug, Clone)]
struct RawScenario {
    vms: Vec<VmSpec>,
    cloudlets: Vec<CloudletSpec>,
    assignment: Vec<VmId>,
    time_shared: bool,
}

fn raw_scenario() -> impl Strategy<Value = RawScenario> {
    let vm = (500.0f64..4_000.0, 1u32..=4)
        .prop_map(|(mips, pes)| VmSpec::new(mips, 5_000.0, 512.0, 500.0, pes));
    let cloudlet = (100.0f64..20_000.0, 0.0f64..400.0, 1u32..=4)
        .prop_map(|(len, file, pes)| CloudletSpec::new(len, file, file, pes));
    (
        prop::collection::vec(vm, 1..8),
        prop::collection::vec(cloudlet, 1..40),
        prop::bool::ANY,
        any::<u64>(),
    )
        .prop_map(|(vms, cloudlets, time_shared, pick)| {
            let assignment = (0..cloudlets.len())
                .map(|i| VmId::from_index(((pick as usize).wrapping_add(i * 7)) % vms.len()))
                .collect();
            RawScenario {
                vms,
                cloudlets,
                assignment,
                time_shared,
            }
        })
}

fn run(raw: &RawScenario) -> SimulationOutcome {
    // One roomy host per VM: every VM is created, nothing is rejected.
    let envelope = VmSpec {
        mips: raw.vms.iter().map(|v| v.mips).fold(0.0, f64::max),
        size_mb: 5_000.0,
        ram_mb: 512.0,
        bw_mbps: 500.0,
        pes: raw.vms.iter().map(|v| v.pes).max().unwrap(),
    };
    let mut blueprint = simcloud::datacenter::DatacenterBlueprint::sized_for(
        &envelope,
        raw.vms.len(),
        1,
        DatacenterCharacteristics::default(),
    );
    blueprint.scheduler = if raw.time_shared {
        SchedulerKind::TimeShared
    } else {
        SchedulerKind::SpaceShared
    };
    SimulationBuilder::new()
        .datacenter(blueprint)
        .vms(raw.vms.clone())
        .cloudlets(raw.cloudlets.clone())
        .assignment(raw.assignment.clone())
        .run()
        .expect("raw scenarios are feasible by construction")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The kernel always drains; every cloudlet finishes; the clock never
    /// precedes the work it measures.
    #[test]
    fn kernel_always_completes(raw in raw_scenario()) {
        let outcome = run(&raw);
        prop_assert_eq!(outcome.finished_count(), raw.cloudlets.len());
        prop_assert_eq!(outcome.cloudlets_failed, 0);
        prop_assert_eq!(outcome.vms_created, raw.vms.len());
        let makespan = outcome.simulation_time_ms().unwrap();
        prop_assert!(outcome.end_time.as_millis() + 1e-9 >= makespan);
    }

    /// Per-cloudlet compute lower bound: nothing finishes faster than its
    /// solo runtime on its assigned VM.
    #[test]
    fn no_cloudlet_beats_physics(raw in raw_scenario()) {
        let outcome = run(&raw);
        for (i, r) in outcome.records.iter().enumerate() {
            let vm = &raw.vms[raw.assignment[i].index()];
            let cl = &raw.cloudlets[i];
            let effective_pes = cl.pes.min(vm.pes);
            let solo_ms = cl.length_mi / (vm.mips * f64::from(effective_pes)) * 1_000.0;
            let exec = r.execution_ms.unwrap();
            prop_assert!(
                exec + 1e-6 >= solo_ms,
                "cloudlet {i} ran in {exec}ms, below solo bound {solo_ms}ms"
            );
        }
    }

    /// Event accounting: the kernel processes at least one event per
    /// cloudlet and per VM, and a bounded multiple of them.
    #[test]
    fn event_count_is_linear(raw in raw_scenario()) {
        let outcome = run(&raw);
        let n = raw.cloudlets.len() as u64;
        let v = raw.vms.len() as u64;
        prop_assert!(outcome.events_processed >= n + v);
        // Submit + finish + ticks + acks: comfortably under 8 events per
        // object (a regression here means a tick storm).
        prop_assert!(
            outcome.events_processed <= 8 * (n + v) + 16,
            "event storm: {} events for {} cloudlets / {} VMs",
            outcome.events_processed, n, v
        );
    }

    /// Runs are bit-identical when repeated.
    #[test]
    fn repeat_runs_identical(raw in raw_scenario()) {
        let a = run(&raw);
        let b = run(&raw);
        prop_assert_eq!(a.events_processed, b.events_processed);
        prop_assert_eq!(a.end_time, b.end_time);
        for (ra, rb) in a.records.iter().zip(&b.records) {
            prop_assert_eq!(ra.finish, rb.finish);
            prop_assert_eq!(ra.start, rb.start);
        }
    }

    /// Fluid lower bound per VM: the last completion on a VM can never
    /// precede (work assigned to it) / (its peak capacity), under either
    /// sharing discipline. (A cross-discipline *upper* bound does not
    /// exist: space-shared FIFO suffers head-of-line blocking from
    /// multi-PE cloudlets that time-shared does not.)
    #[test]
    fn per_vm_fluid_lower_bound(raw in raw_scenario()) {
        let outcome = run(&raw);
        let v = raw.vms.len();
        let mut work_mi = vec![0.0f64; v];
        for (i, vm) in raw.assignment.iter().enumerate() {
            work_mi[vm.index()] += raw.cloudlets[i].length_mi;
        }
        let mut last_finish = vec![0.0f64; v];
        let mut first_start = vec![f64::INFINITY; v];
        for (i, r) in outcome.records.iter().enumerate() {
            let vm = raw.assignment[i].index();
            last_finish[vm] = last_finish[vm].max(r.finish.unwrap().as_millis());
            first_start[vm] = first_start[vm].min(r.start.unwrap().as_millis());
        }
        for vm in 0..v {
            if work_mi[vm] == 0.0 {
                continue;
            }
            let bound_ms = work_mi[vm] / raw.vms[vm].total_mips() * 1_000.0;
            let busy_span = last_finish[vm] - first_start[vm].min(last_finish[vm]);
            prop_assert!(
                busy_span + 1e-6 >= bound_ms
                    || last_finish[vm] + 1e-6 >= bound_ms,
                "vm {vm} finished {bound_ms}ms of fluid work in {busy_span}ms"
            );
        }
    }
}
