//! Sequential ↔ sharded engine equivalence.
//!
//! The sharded engine's contract is *trace equivalence*: for every
//! eligible scenario it must produce `CloudletRecord`s that are
//! bit-identical (f64 payloads compared by `to_bits`) to the sequential
//! kernel's, along with the same end time and event count — across seeds,
//! both scheduler flavours, homogeneous and heterogeneous fleets, and any
//! rayon thread count. Ineligible scenarios must fall back to the
//! sequential kernel and say so.

use rand::Rng;
use simcloud::datacenter::DatacenterBlueprint;
use simcloud::prelude::*;

/// Scenario shapes exercised by the equivalence sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Shape {
    /// One datacenter, identical VMs, batch submission at t=0.
    Homogeneous,
    /// Two datacenters with distinct latencies and prices, mixed VM
    /// sizes, staggered arrivals.
    Heterogeneous,
}

struct Scenario {
    seed: u64,
    scheduler: SchedulerKind,
    shape: Shape,
}

impl Scenario {
    /// Builds the scenario from scratch (blueprints hold a boxed policy
    /// and cannot be cloned) and runs it on `engine`.
    fn run_on(&self, engine: EngineKind) -> SimulationOutcome {
        let mut rng = simcloud::rng::stream(self.seed, "engine-equivalence");
        let (vm_count, cloudlet_count) = (12, 160);
        let vms: Vec<VmSpec> = (0..vm_count)
            .map(|_| match self.shape {
                Shape::Homogeneous => VmSpec::new(1_000.0, 10_000.0, 512.0, 1_000.0, 2),
                Shape::Heterogeneous => VmSpec::new(
                    rng.gen_range(500.0..2_500.0),
                    10_000.0,
                    512.0,
                    rng.gen_range(100.0..1_000.0),
                    rng.gen_range(1..=4),
                ),
            })
            .collect();
        let cloudlets: Vec<CloudletSpec> = (0..cloudlet_count)
            .map(|_| {
                let len = rng.gen_range(1_000.0..40_000.0);
                match self.shape {
                    Shape::Homogeneous => CloudletSpec::new(len, 0.0, 0.0, 1),
                    Shape::Heterogeneous => CloudletSpec::new(
                        len,
                        rng.gen_range(0.0..300.0),
                        rng.gen_range(0.0..300.0),
                        rng.gen_range(1..=3),
                    ),
                }
            })
            .collect();
        let assignment: Vec<VmId> = (0..cloudlet_count)
            .map(|_| VmId::from_index(rng.gen_range(0..vm_count)))
            .collect();
        let envelope = VmSpec {
            mips: vms.iter().map(|v| v.mips).fold(0.0, f64::max),
            size_mb: 10_000.0,
            ram_mb: 512.0,
            bw_mbps: 1_000.0,
            pes: vms.iter().map(|v| v.pes).max().unwrap(),
        };
        let blueprint = |cost: CostModel| {
            let mut b = DatacenterBlueprint::sized_for(
                &envelope,
                vm_count,
                2,
                DatacenterCharacteristics {
                    cost,
                    ..DatacenterCharacteristics::default()
                },
            );
            b.scheduler = self.scheduler;
            b
        };
        let mut builder = SimulationBuilder::new()
            .engine(engine)
            .vms(vms)
            .cloudlets(cloudlets)
            .assignment(assignment);
        builder = match self.shape {
            Shape::Homogeneous => builder.datacenter(blueprint(CostModel::free())),
            Shape::Heterogeneous => {
                let arrivals: Vec<SimTime> = (0..cloudlet_count)
                    .map(|_| SimTime::new(rng.gen_range(0.0..200.0)))
                    .collect();
                let placement: Vec<DatacenterId> = (0..vm_count)
                    .map(|i| DatacenterId::from_index(i % 2))
                    .collect();
                builder
                    .datacenter(blueprint(CostModel::table_vii_midpoint()))
                    .datacenter(blueprint(CostModel::new(0.05, 0.001, 0.02, 5.0)))
                    .vm_placement(placement)
                    .topology(Topology::with_latencies(vec![1.5, 40.0]))
                    .arrivals(arrivals)
            }
        };
        builder.run().expect("scenario is feasible by construction")
    }
}

fn bits(t: Option<SimTime>) -> Option<u64> {
    t.map(|t| t.as_millis().to_bits())
}

/// Asserts two outcomes are byte-identical (modulo the `engine` tag).
fn assert_identical(a: &SimulationOutcome, b: &SimulationOutcome, label: &str) {
    assert_eq!(a.records.len(), b.records.len(), "{label}: record count");
    for (ra, rb) in a.records.iter().zip(&b.records) {
        let id = ra.id;
        assert_eq!(ra.id, rb.id, "{label}: id order");
        assert_eq!(ra.vm, rb.vm, "{label}: vm of {id:?}");
        assert_eq!(ra.status, rb.status, "{label}: status of {id:?}");
        assert_eq!(
            bits(ra.submit),
            bits(rb.submit),
            "{label}: submit of {id:?}"
        );
        assert_eq!(bits(ra.start), bits(rb.start), "{label}: start of {id:?}");
        assert_eq!(
            bits(ra.finish),
            bits(rb.finish),
            "{label}: finish of {id:?}"
        );
        assert_eq!(
            ra.execution_ms.map(f64::to_bits),
            rb.execution_ms.map(f64::to_bits),
            "{label}: execution of {id:?}"
        );
        assert_eq!(
            ra.cost.to_bits(),
            rb.cost.to_bits(),
            "{label}: cost of {id:?} ({} vs {})",
            ra.cost,
            rb.cost
        );
        assert_eq!(ra.met_deadline, rb.met_deadline, "{label}: sla of {id:?}");
    }
    assert_eq!(
        a.end_time.as_millis().to_bits(),
        b.end_time.as_millis().to_bits(),
        "{label}: end_time ({} vs {})",
        a.end_time.as_millis(),
        b.end_time.as_millis()
    );
    assert_eq!(
        a.events_processed, b.events_processed,
        "{label}: events_processed"
    );
    assert_eq!(a.vms_created, b.vms_created, "{label}: vms_created");
    assert_eq!(a.vms_rejected, b.vms_rejected, "{label}: vms_rejected");
    assert_eq!(
        a.cloudlets_failed, b.cloudlets_failed,
        "{label}: cloudlets_failed"
    );
}

#[test]
fn sharded_matches_sequential_across_seeds_schedulers_and_shapes() {
    for seed in [1u64, 7, 42] {
        for scheduler in [SchedulerKind::SpaceShared, SchedulerKind::TimeShared] {
            for shape in [Shape::Homogeneous, Shape::Heterogeneous] {
                let sc = Scenario {
                    seed,
                    scheduler,
                    shape,
                };
                let seq = sc.run_on(EngineKind::Sequential);
                let shd = sc.run_on(EngineKind::Sharded);
                assert_eq!(seq.engine, EngineKind::Sequential);
                assert_eq!(
                    shd.engine,
                    EngineKind::Sharded,
                    "eligible scenario must not fall back"
                );
                assert!(seq.finished_count() > 0, "scenario must do work");
                let label = format!("seed {seed} / {scheduler:?} / {shape:?}");
                assert_identical(&seq, &shd, &label);
            }
        }
    }
}

/// Shard boundaries move with the worker count; results must not.
#[test]
fn sharded_results_are_thread_count_independent() {
    let sc = Scenario {
        seed: 99,
        scheduler: SchedulerKind::SpaceShared,
        shape: Shape::Heterogeneous,
    };
    let reference = sc.run_on(EngineKind::Sequential);
    for threads in [1usize, 2, 4, 8] {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .expect("vendored rayon accepts repeated global builds");
        let shd = sc.run_on(EngineKind::Sharded);
        assert_eq!(shd.engine, EngineKind::Sharded);
        assert_identical(&reference, &shd, &format!("{threads} threads"));
    }
}

#[test]
fn ineligible_scenarios_fall_back_to_sequential() {
    let vm = VmSpec::new(1_000.0, 10_000.0, 512.0, 1_000.0, 2);
    let mk = || {
        let mut b = DatacenterBlueprint::sized_for(&vm, 2, 1, DatacenterCharacteristics::default());
        b.scheduler = SchedulerKind::SpaceShared;
        b
    };
    let base = |b: DatacenterBlueprint| {
        SimulationBuilder::new()
            .engine(EngineKind::Sharded)
            .datacenter(b)
            .vms(vec![vm.clone(), vm.clone()])
            .cloudlets(vec![
                CloudletSpec::new(5_000.0, 0.0, 0.0, 1),
                CloudletSpec::new(5_000.0, 0.0, 0.0, 1),
            ])
            .assignment(vec![VmId(0), VmId(1)])
    };

    // Workflow dependencies force the sequential kernel.
    let with_deps = base(mk())
        .dependencies(vec![vec![], vec![CloudletId(0)]])
        .run()
        .unwrap();
    assert_eq!(with_deps.engine, EngineKind::Sequential);

    // So does resubmission.
    let with_retries = base(mk()).resubmit_failures(2).run().unwrap();
    assert_eq!(with_retries.engine, EngineKind::Sequential);

    // The fallback still completes the work.
    assert_eq!(with_retries.finished_count(), 2);

    // Failure injection, by contrast, refuses loudly: an explicit Sharded
    // request with chaos events would silently diverge from the timeline
    // the caller asked for, so it is an error rather than a fallback.
    let with_failures = base(mk().with_failure(HostId(0), SimTime::new(1.0e9))).run();
    assert!(matches!(
        with_failures,
        Err(simcloud::error::SimError::Unsupported { .. })
    ));
}
