//! Sequential ↔ sharded engine equivalence.
//!
//! The sharded engine's contract is *trace equivalence*: for every
//! eligible scenario it must produce `CloudletRecord`s that are
//! bit-identical (f64 payloads compared by `to_bits`) to the sequential
//! kernel's, along with the same end time, event count and
//! `ResilienceCounters` — across seeds, both scheduler flavours,
//! homogeneous and heterogeneous fleets, fault plans, recovery policies,
//! resubmission, both record modes and any rayon thread count. The one
//! ineligible shape (a workflow DAG) must run on the sequential kernel
//! and report an explicit `EngineFallback` on the outcome.

use rand::Rng;
use simcloud::datacenter::DatacenterBlueprint;
use simcloud::prelude::*;

/// Scenario shapes exercised by the equivalence sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Shape {
    /// One datacenter, identical VMs, batch submission at t=0.
    Homogeneous,
    /// Two datacenters with distinct latencies and prices, mixed VM
    /// sizes, staggered arrivals.
    Heterogeneous,
}

struct Scenario {
    seed: u64,
    scheduler: SchedulerKind,
    shape: Shape,
}

impl Scenario {
    /// Builds the scenario from scratch (blueprints hold a boxed policy
    /// and cannot be cloned) and runs it on `engine`.
    fn run_on(&self, engine: EngineKind) -> SimulationOutcome {
        let mut rng = simcloud::rng::stream(self.seed, "engine-equivalence");
        let (vm_count, cloudlet_count) = (12, 160);
        let vms: Vec<VmSpec> = (0..vm_count)
            .map(|_| match self.shape {
                Shape::Homogeneous => VmSpec::new(1_000.0, 10_000.0, 512.0, 1_000.0, 2),
                Shape::Heterogeneous => VmSpec::new(
                    rng.gen_range(500.0..2_500.0),
                    10_000.0,
                    512.0,
                    rng.gen_range(100.0..1_000.0),
                    rng.gen_range(1..=4),
                ),
            })
            .collect();
        let cloudlets: Vec<CloudletSpec> = (0..cloudlet_count)
            .map(|_| {
                let len = rng.gen_range(1_000.0..40_000.0);
                match self.shape {
                    Shape::Homogeneous => CloudletSpec::new(len, 0.0, 0.0, 1),
                    Shape::Heterogeneous => CloudletSpec::new(
                        len,
                        rng.gen_range(0.0..300.0),
                        rng.gen_range(0.0..300.0),
                        rng.gen_range(1..=3),
                    ),
                }
            })
            .collect();
        let assignment: Vec<VmId> = (0..cloudlet_count)
            .map(|_| VmId::from_index(rng.gen_range(0..vm_count)))
            .collect();
        let envelope = VmSpec {
            mips: vms.iter().map(|v| v.mips).fold(0.0, f64::max),
            size_mb: 10_000.0,
            ram_mb: 512.0,
            bw_mbps: 1_000.0,
            pes: vms.iter().map(|v| v.pes).max().unwrap(),
        };
        let blueprint = |cost: CostModel| {
            let mut b = DatacenterBlueprint::sized_for(
                &envelope,
                vm_count,
                2,
                DatacenterCharacteristics {
                    cost,
                    ..DatacenterCharacteristics::default()
                },
            );
            b.scheduler = self.scheduler;
            b
        };
        let mut builder = SimulationBuilder::new()
            .engine(engine)
            .vms(vms)
            .cloudlets(cloudlets)
            .assignment(assignment);
        builder = match self.shape {
            Shape::Homogeneous => builder.datacenter(blueprint(CostModel::free())),
            Shape::Heterogeneous => {
                let arrivals: Vec<SimTime> = (0..cloudlet_count)
                    .map(|_| SimTime::new(rng.gen_range(0.0..200.0)))
                    .collect();
                let placement: Vec<DatacenterId> = (0..vm_count)
                    .map(|i| DatacenterId::from_index(i % 2))
                    .collect();
                builder
                    .datacenter(blueprint(CostModel::table_vii_midpoint()))
                    .datacenter(blueprint(CostModel::new(0.05, 0.001, 0.02, 5.0)))
                    .vm_placement(placement)
                    .topology(Topology::with_latencies(vec![1.5, 40.0]))
                    .arrivals(arrivals)
            }
        };
        builder.run().expect("scenario is feasible by construction")
    }
}

fn bits(t: Option<SimTime>) -> Option<u64> {
    t.map(|t| t.as_millis().to_bits())
}

/// Asserts two outcomes are byte-identical (modulo the `engine` tag).
fn assert_identical(a: &SimulationOutcome, b: &SimulationOutcome, label: &str) {
    assert_eq!(a.records.len(), b.records.len(), "{label}: record count");
    for (ra, rb) in a.records.iter().zip(&b.records) {
        let id = ra.id;
        assert_eq!(ra.id, rb.id, "{label}: id order");
        assert_eq!(ra.vm, rb.vm, "{label}: vm of {id:?}");
        assert_eq!(ra.status, rb.status, "{label}: status of {id:?}");
        assert_eq!(
            bits(ra.submit),
            bits(rb.submit),
            "{label}: submit of {id:?}"
        );
        assert_eq!(bits(ra.start), bits(rb.start), "{label}: start of {id:?}");
        assert_eq!(
            bits(ra.finish),
            bits(rb.finish),
            "{label}: finish of {id:?}"
        );
        assert_eq!(
            ra.execution_ms.map(f64::to_bits),
            rb.execution_ms.map(f64::to_bits),
            "{label}: execution of {id:?}"
        );
        assert_eq!(
            ra.cost.to_bits(),
            rb.cost.to_bits(),
            "{label}: cost of {id:?} ({} vs {})",
            ra.cost,
            rb.cost
        );
        assert_eq!(ra.met_deadline, rb.met_deadline, "{label}: sla of {id:?}");
    }
    assert_eq!(
        a.end_time.as_millis().to_bits(),
        b.end_time.as_millis().to_bits(),
        "{label}: end_time ({} vs {})",
        a.end_time.as_millis(),
        b.end_time.as_millis()
    );
    assert_eq!(
        a.events_processed, b.events_processed,
        "{label}: events_processed"
    );
    assert_eq!(a.vms_created, b.vms_created, "{label}: vms_created");
    assert_eq!(a.vms_rejected, b.vms_rejected, "{label}: vms_rejected");
    assert_eq!(
        a.cloudlets_failed, b.cloudlets_failed,
        "{label}: cloudlets_failed"
    );
    assert_resilience_identical(a, b, label);
}

/// Asserts the recovery counters match bit for bit.
fn assert_resilience_identical(a: &SimulationOutcome, b: &SimulationOutcome, label: &str) {
    let (ra, rb) = (&a.resilience, &b.resilience);
    assert_eq!(ra.retries, rb.retries, "{label}: retries");
    assert_eq!(ra.recovered, rb.recovered, "{label}: recovered");
    assert_eq!(ra.abandoned, rb.abandoned, "{label}: abandoned");
    assert_eq!(
        ra.wasted_work_ms.to_bits(),
        rb.wasted_work_ms.to_bits(),
        "{label}: wasted_work_ms ({} vs {})",
        ra.wasted_work_ms,
        rb.wasted_work_ms
    );
    assert_eq!(
        ra.recovery_time_ms.to_bits(),
        rb.recovery_time_ms.to_bits(),
        "{label}: recovery_time_ms ({} vs {})",
        ra.recovery_time_ms,
        rb.recovery_time_ms
    );
}

/// Asserts two aggregate-mode outcomes agree on every accessor the
/// aggregate can answer (the fold itself is private).
fn assert_aggregate_identical(a: &SimulationOutcome, b: &SimulationOutcome, label: &str) {
    let f = |v: Option<f64>| v.map(f64::to_bits);
    assert_eq!(a.finished_count(), b.finished_count(), "{label}: finished");
    assert_eq!(a.failed_count(), b.failed_count(), "{label}: failed");
    assert_eq!(a.observed_count(), b.observed_count(), "{label}: observed");
    assert_eq!(
        f(a.simulation_time_ms()),
        f(b.simulation_time_ms()),
        "{label}: simulation_time_ms"
    );
    assert_eq!(
        f(a.mean_execution_ms()),
        f(b.mean_execution_ms()),
        "{label}: mean_execution_ms"
    );
    assert_eq!(
        f(a.time_imbalance()),
        f(b.time_imbalance()),
        "{label}: time_imbalance"
    );
    assert_eq!(
        f(a.turnaround_imbalance()),
        f(b.turnaround_imbalance()),
        "{label}: turnaround_imbalance"
    );
    assert_eq!(
        a.total_cost().to_bits(),
        b.total_cost().to_bits(),
        "{label}: total_cost"
    );
    assert_eq!(a.sla_violations(), b.sla_violations(), "{label}: sla");
    assert_eq!(f(a.goodput()), f(b.goodput()), "{label}: goodput");
    let (ua, ub) = (a.per_vm_usage(10), b.per_vm_usage(10));
    assert_eq!(ua.counts, ub.counts, "{label}: per-VM counts");
    let busy_a: Vec<u64> = ua.busy_ms.iter().map(|v| v.to_bits()).collect();
    let busy_b: Vec<u64> = ub.busy_ms.iter().map(|v| v.to_bits()).collect();
    assert_eq!(busy_a, busy_b, "{label}: per-VM busy_ms");
    assert_eq!(
        a.end_time.as_millis().to_bits(),
        b.end_time.as_millis().to_bits(),
        "{label}: end_time"
    );
    assert_eq!(
        a.events_processed, b.events_processed,
        "{label}: events_processed"
    );
    assert_resilience_identical(a, b, label);
}

#[test]
fn sharded_matches_sequential_across_seeds_schedulers_and_shapes() {
    for seed in [1u64, 7, 42] {
        for scheduler in [SchedulerKind::SpaceShared, SchedulerKind::TimeShared] {
            for shape in [Shape::Homogeneous, Shape::Heterogeneous] {
                let sc = Scenario {
                    seed,
                    scheduler,
                    shape,
                };
                let seq = sc.run_on(EngineKind::Sequential);
                let shd = sc.run_on(EngineKind::Sharded);
                assert_eq!(seq.engine, EngineKind::Sequential);
                assert_eq!(
                    shd.engine,
                    EngineKind::Sharded,
                    "eligible scenario must not fall back"
                );
                assert!(seq.finished_count() > 0, "scenario must do work");
                let label = format!("seed {seed} / {scheduler:?} / {shape:?}");
                assert_identical(&seq, &shd, &label);
            }
        }
    }
}

/// Shard boundaries move with the worker count; results must not.
#[test]
fn sharded_results_are_thread_count_independent() {
    let sc = Scenario {
        seed: 99,
        scheduler: SchedulerKind::SpaceShared,
        shape: Shape::Heterogeneous,
    };
    let reference = sc.run_on(EngineKind::Sequential);
    for threads in [1usize, 2, 4, 8] {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .expect("vendored rayon accepts repeated global builds");
        let shd = sc.run_on(EngineKind::Sharded);
        assert_eq!(shd.engine, EngineKind::Sharded);
        assert_identical(&reference, &shd, &format!("{threads} threads"));
    }
}

#[test]
fn workflow_dag_reports_explicit_fallback_everything_else_runs_sharded() {
    let vm = VmSpec::new(1_000.0, 10_000.0, 512.0, 1_000.0, 2);
    let mk = || {
        let mut b = DatacenterBlueprint::sized_for(&vm, 2, 1, DatacenterCharacteristics::default());
        b.scheduler = SchedulerKind::SpaceShared;
        b
    };
    let base = |b: DatacenterBlueprint| {
        SimulationBuilder::new()
            .engine(EngineKind::Sharded)
            .datacenter(b)
            .vms(vec![vm.clone(), vm.clone()])
            .cloudlets(vec![
                CloudletSpec::new(5_000.0, 0.0, 0.0, 1),
                CloudletSpec::new(5_000.0, 0.0, 0.0, 1),
            ])
            .assignment(vec![VmId(0), VmId(1)])
    };

    // Workflow dependencies are the one shape that runs on the sequential
    // kernel — recorded explicitly, never a silent switch.
    let with_deps = base(mk())
        .dependencies(vec![vec![], vec![CloudletId(0)]])
        .run()
        .unwrap();
    assert_eq!(with_deps.engine, EngineKind::Sequential);
    let fb = with_deps.fallback.expect("DAG must report the fallback");
    assert_eq!(fb.requested, EngineKind::Sharded);
    assert_eq!(fb.ran, EngineKind::Sequential);
    assert!(!fb.reason.is_empty());
    assert_eq!(with_deps.finished_count(), 2);

    // Resubmission stays on the sharded engine (epoch driver).
    let with_retries = base(mk()).resubmit_failures(2).run().unwrap();
    assert_eq!(with_retries.engine, EngineKind::Sharded);
    assert_eq!(with_retries.fallback, None);
    assert_eq!(with_retries.finished_count(), 2);

    // So does failure injection.
    let with_failures = base(mk().with_failure(HostId(0), SimTime::new(1.0e9)))
        .run()
        .unwrap();
    assert_eq!(with_failures.engine, EngineKind::Sharded);
    assert_eq!(with_failures.fallback, None);
}

/// Which resilience machinery a matrix scenario arms on top of the fault
/// plan.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Resilience {
    /// Host outages, a repair and VM slowdowns; failures are final.
    Faults,
    /// Broker-level retry with backoff and cyclic rebinding.
    Recovery,
    /// Legacy resubmission (`resubmit_failures`).
    Resubmission,
    /// Faults plus a workflow DAG — the explicit sequential fallback.
    Workflow,
}

/// Builds and runs one fault-injected matrix scenario: 10 VMs on 5 hosts,
/// 120 mixed cloudlets, two host outages (one repaired), two slowdowns
/// (one bounded).
fn resilient_outcome(
    seed: u64,
    res: Resilience,
    engine: EngineKind,
    mode: RecordMode,
) -> SimulationOutcome {
    use simcloud::faults::{FaultPlan, HostOutage, VmSlowdown};
    let mut rng = simcloud::rng::stream(seed, "resilience-equivalence");
    let (vm_count, cloudlet_count) = (10usize, 120usize);
    let vm = VmSpec::new(1_000.0, 10_000.0, 512.0, 1_000.0, 2);
    let cloudlets: Vec<CloudletSpec> = (0..cloudlet_count)
        .map(|_| {
            CloudletSpec::new(
                rng.gen_range(1_000.0..40_000.0),
                rng.gen_range(0.0..200.0),
                rng.gen_range(0.0..200.0),
                rng.gen_range(1..=2),
            )
        })
        .collect();
    let assignment: Vec<VmId> = (0..cloudlet_count)
        .map(|_| VmId::from_index(rng.gen_range(0..vm_count)))
        .collect();
    let mut plan = FaultPlan::healthy();
    // Host 0 (VMs 0–1) dies mid-run and comes back; host 2 (VMs 4–5)
    // dies for good; VM 9 limps for a while, VM 7 for the rest of the
    // run. Cloudlets run 1–40 s, so every event lands on live work.
    plan.host_outages.push(HostOutage {
        datacenter: DatacenterId(0),
        host: HostId(0),
        fail_at: SimTime::new(8_000.0),
        repair_at: Some(SimTime::new(20_000.0)),
    });
    plan.host_outages.push(HostOutage {
        datacenter: DatacenterId(0),
        host: HostId(2),
        fail_at: SimTime::new(15_000.0),
        repair_at: None,
    });
    plan.vm_slowdowns.push(VmSlowdown {
        vm: VmId(9),
        from: SimTime::new(5_000.0),
        factor: 0.5,
        until: Some(SimTime::new(30_000.0)),
    });
    plan.vm_slowdowns.push(VmSlowdown {
        vm: VmId(7),
        from: SimTime::new(12_000.0),
        factor: 0.25,
        until: None,
    });
    let mut builder = SimulationBuilder::new()
        .engine(engine)
        .record_mode(mode)
        .datacenter(DatacenterBlueprint::sized_for(
            &vm,
            vm_count,
            2,
            DatacenterCharacteristics::default(),
        ))
        .vms(vec![vm; vm_count])
        .cloudlets(cloudlets)
        .assignment(assignment)
        .faults(plan);
    builder = match res {
        Resilience::Faults => builder,
        Resilience::Recovery => builder.recovery(simcloud::broker::RecoveryPolicy::default()),
        Resilience::Resubmission => builder.resubmit_failures(2),
        Resilience::Workflow => {
            // Sparse chains: every 7th cloudlet waits for one 3 back.
            let deps: Vec<Vec<CloudletId>> = (0..cloudlet_count)
                .map(|i| {
                    if i % 7 == 3 && i >= 3 {
                        vec![CloudletId::from_index(i - 3)]
                    } else {
                        vec![]
                    }
                })
                .collect();
            builder.dependencies(deps)
        }
    };
    builder.run().expect("matrix scenario is feasible")
}

/// The tentpole obligation: faults × recovery × resubmission × workflows,
/// across thread counts, seeds and both record modes, every sharded run
/// bit-identical to the sequential kernel (including the resilience
/// counters), and only the DAG shape reporting a fallback.
#[test]
fn resilience_matrix_matches_sequential_across_threads_seeds_and_modes() {
    let variants = [
        Resilience::Faults,
        Resilience::Recovery,
        Resilience::Resubmission,
        Resilience::Workflow,
    ];
    for threads in [1usize, 2, 4, 8] {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .expect("vendored rayon accepts repeated global builds");
        for seed in [5u64, 17, 83] {
            let mut faults_finished = None;
            for res in variants {
                for mode in [RecordMode::Full, RecordMode::Aggregate] {
                    let label = format!("{threads} threads / seed {seed} / {res:?} / {mode:?}");
                    let seq = resilient_outcome(seed, res, EngineKind::Sequential, mode);
                    let shd = resilient_outcome(seed, res, EngineKind::Sharded, mode);
                    assert_eq!(seq.engine, EngineKind::Sequential);
                    assert_eq!(seq.fallback, None, "{label}: sequential never falls back");
                    if res == Resilience::Workflow {
                        assert_eq!(shd.engine, EngineKind::Sequential, "{label}");
                        assert!(shd.fallback.is_some(), "{label}: DAG reports fallback");
                    } else {
                        assert_eq!(shd.engine, EngineKind::Sharded, "{label}: no fallback");
                        assert_eq!(shd.fallback, None, "{label}");
                    }
                    // The plan must actually bite, in the way each
                    // variant is supposed to react to it.
                    match res {
                        Resilience::Faults => {
                            assert!(seq.finished_count() < 120, "{label}: no work lost");
                            faults_finished = Some(seq.finished_count());
                        }
                        Resilience::Recovery => {
                            assert!(seq.resilience.retries > 0, "{label}: nothing retried");
                        }
                        Resilience::Resubmission => {
                            // Rebinding rescues work the bare plan loses
                            // (legacy resubmission counts on the broker,
                            // not in the resilience counters).
                            assert!(
                                seq.finished_count() > faults_finished.expect("Faults ran first"),
                                "{label}: resubmission rescued nothing"
                            );
                        }
                        Resilience::Workflow => {
                            assert!(seq.finished_count() < 120, "{label}: no work lost");
                        }
                    }
                    match mode {
                        RecordMode::Full => assert_identical(&seq, &shd, &label),
                        RecordMode::Aggregate => assert_aggregate_identical(&seq, &shd, &label),
                    }
                }
            }
        }
    }
}
